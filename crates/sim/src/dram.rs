use std::fmt;

use crate::fault::{self, FaultSite};
use crate::Cycle;

/// Off-chip memory channel parameters.
///
/// The paper's baseline configuration (Table III) provides 128 GB/s at a
/// 1 GHz accelerator clock, i.e. 128 bytes per cycle, with a 64-byte
/// minimum access granularity ("assuming a 64 byte minimum access
/// granularity memory system", Figure 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Sustained channel bandwidth in bytes per accelerator cycle.
    pub bytes_per_cycle: f64,
    /// Fixed access latency added after channel transfer, in cycles.
    pub latency_cycles: Cycle,
    /// Minimum access granularity in bytes; random-access requests are
    /// rounded up to a multiple of this.
    pub access_granularity: u64,
    /// Channel-occupancy overhead per *random* request, in cycles: the
    /// row-activation/bus-turnaround cost of scattered accesses, which is
    /// why random 64-byte reads sustain only ~25-40% of peak DDR bandwidth.
    /// Streaming bursts do not pay it. This is the second half of the
    /// paper's "effective memory bandwidth utilization" story (Figure 6):
    /// sparse-tile fetches waste bandwidth both by over-fetching and by
    /// breaking row locality.
    pub request_overhead_cycles: Cycle,
}

impl DramConfig {
    /// Config for a given bandwidth in GB/s at the 1 GHz clock of Table III.
    ///
    /// ```
    /// use grow_sim::DramConfig;
    /// let cfg = DramConfig::with_bandwidth_gbps(64.0);
    /// assert_eq!(cfg.bytes_per_cycle, 64.0);
    /// ```
    pub fn with_bandwidth_gbps(gbps: f64) -> Self {
        DramConfig {
            bytes_per_cycle: gbps,
            ..Self::default()
        }
    }
}

impl Default for DramConfig {
    /// Table III defaults: 128 GB/s, 64 B granularity; 60-cycle access
    /// latency (row-hit-dominated DDR4/LPDDR-class timing at 1 GHz, and the
    /// point at which a 16-entry LDN table saturates the channel — the
    /// Figure 25(a) knee the paper reports at 8/16-way runahead); 12-cycle
    /// per-request activation overhead for scattered accesses.
    fn default() -> Self {
        DramConfig {
            bytes_per_cycle: 128.0,
            latency_cycles: 60,
            access_granularity: 64,
            request_overhead_cycles: 12,
        }
    }
}

/// Channel/bank organization of the off-chip memory system, used by the
/// end-to-end multi-PE model (`exec=e2e`) to replace the single shared
/// fluid pipe with banked channels.
///
/// Addresses interleave across `channels` at cluster granularity (cluster
/// `i`'s dominant traffic lands on channel `i % channels`), and within a
/// channel concurrent request streams conflict on its `banks` banks: each
/// co-resident memory-active stream adds an expected
/// `request_overhead_cycles * (k - 1) / banks` stall per request (the
/// row-activation cost of ping-ponging rows between `k` streams, amortized
/// over the bank count — the same `request_overhead_cycles` machinery the
/// detailed single-channel FIFO charges for scattered accesses).
///
/// The default `1x1` topology is the legacy idealized shared pipe:
/// conflict modeling is off and the fluid model is bit-identical to the
/// pre-banked code (the golden e2e snapshots are committed against it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemTopology {
    /// Independent memory channels the aggregate bandwidth is spread over.
    pub channels: usize,
    /// Banks per channel; conflicts amortize over this count.
    pub banks: usize,
}

impl Default for MemTopology {
    fn default() -> Self {
        MemTopology {
            channels: 1,
            banks: 1,
        }
    }
}

impl MemTopology {
    /// Builds a topology; both counts must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `banks == 0`.
    pub fn new(channels: usize, banks: usize) -> Self {
        assert!(channels > 0, "at least one channel");
        assert!(banks > 0, "at least one bank");
        MemTopology { channels, banks }
    }

    /// `true` for the legacy `1x1` idealized shared pipe, where conflict
    /// modeling is disabled and the fluid model runs its original path.
    pub fn is_uniform(&self) -> bool {
        self.channels == 1 && self.banks == 1
    }

    /// Home channel of cluster `idx` under address interleaving.
    pub fn home_channel(&self, idx: usize) -> usize {
        idx % self.channels
    }

    /// Expected extra channel-occupancy cycles *per byte* for a stream
    /// sharing its home channel with `co_residents` other memory-active
    /// streams: one request per `access_granularity` bytes, each paying
    /// `request_overhead_cycles * co_residents / banks` of expected
    /// bank-conflict serialization. Zero when the stream has the channel
    /// to itself.
    pub fn conflict_penalty_per_byte(&self, dram: &DramConfig, co_residents: usize) -> f64 {
        if co_residents == 0 {
            return 0.0;
        }
        let per_request =
            dram.request_overhead_cycles as f64 * co_residents as f64 / self.banks as f64;
        per_request / dram.access_granularity.max(1) as f64
    }
}

/// Category of an off-chip transfer, used to break down traffic the way the
/// paper's figures do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// CSR/CSC stream of the sparse LHS matrix (`A` in aggregation, `X` in
    /// combination): values + indices + compression metadata.
    LhsSparse,
    /// Demand fetches of dense RHS rows (`XW` rows in aggregation).
    RhsRows,
    /// HDN-cache preload fills at cluster start (GROW only).
    RhsPreload,
    /// Weight matrix `W` fetches (combination RHS).
    Weights,
    /// HDN ID list fetches at cluster start (GROW only).
    HdnIdList,
    /// Output matrix write-back.
    Output,
    /// Partial-sum spill/merge traffic (sparse-sparse baselines only).
    PartialSums,
}

impl TrafficClass {
    /// All classes, for iteration in reports.
    pub const ALL: [TrafficClass; 7] = [
        TrafficClass::LhsSparse,
        TrafficClass::RhsRows,
        TrafficClass::RhsPreload,
        TrafficClass::Weights,
        TrafficClass::HdnIdList,
        TrafficClass::Output,
        TrafficClass::PartialSums,
    ];

    fn index(self) -> usize {
        match self {
            TrafficClass::LhsSparse => 0,
            TrafficClass::RhsRows => 1,
            TrafficClass::RhsPreload => 2,
            TrafficClass::Weights => 3,
            TrafficClass::HdnIdList => 4,
            TrafficClass::Output => 5,
            TrafficClass::PartialSums => 6,
        }
    }

    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::LhsSparse => "lhs-sparse",
            TrafficClass::RhsRows => "rhs-rows",
            TrafficClass::RhsPreload => "rhs-preload",
            TrafficClass::Weights => "weights",
            TrafficClass::HdnIdList => "hdn-id-list",
            TrafficClass::Output => "output",
            TrafficClass::PartialSums => "partial-sums",
        }
    }
}

/// Per-class byte and request accounting.
///
/// `fetched` counts what actually crossed the channel (granularity-rounded);
/// `useful` counts the bytes the engine asked for. Their ratio is the
/// effective bandwidth utilization of Figure 6.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    fetched: [u64; 7],
    useful: [u64; 7],
    requests: [u64; 7],
}

impl TrafficStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes transferred over the channel for `class`.
    pub fn fetched_bytes(&self, class: TrafficClass) -> u64 {
        self.fetched[class.index()]
    }

    /// Bytes the engine actually needed for `class`.
    pub fn useful_bytes(&self, class: TrafficClass) -> u64 {
        self.useful[class.index()]
    }

    /// Number of requests issued for `class`.
    pub fn requests(&self, class: TrafficClass) -> u64 {
        self.requests[class.index()]
    }

    /// Total bytes transferred across all classes (reads + writes).
    pub fn total_fetched(&self) -> u64 {
        self.fetched.iter().sum()
    }

    /// Total useful bytes across all classes.
    pub fn total_useful(&self) -> u64 {
        self.useful.iter().sum()
    }

    /// `useful / fetched` for one class; `None` if nothing was fetched.
    pub fn utilization(&self, class: TrafficClass) -> Option<f64> {
        let f = self.fetched_bytes(class);
        if f == 0 {
            None
        } else {
            Some(self.useful_bytes(class) as f64 / f as f64)
        }
    }

    /// Accounts `requests` already-completed transfers of `class` moving
    /// `fetched` bytes over the channel, of which `useful` were asked for.
    /// This is the bulk form the serving layer's result store uses to
    /// reconstruct a report's traffic accounting from its serialized
    /// counters; the channel model itself records through [`Dram`].
    pub fn record_bulk(&mut self, class: TrafficClass, useful: u64, fetched: u64, requests: u64) {
        self.record_n(class, useful, fetched, requests);
    }

    /// Merges another stats block into this one (used by multi-phase runs).
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..7 {
            self.fetched[i] += other.fetched[i];
            self.useful[i] += other.useful[i];
            self.requests[i] += other.requests[i];
        }
    }

    fn record(&mut self, class: TrafficClass, useful: u64, fetched: u64) {
        self.record_n(class, useful, fetched, 1);
    }

    fn record_n(&mut self, class: TrafficClass, useful: u64, fetched: u64, requests: u64) {
        let i = class.index();
        self.useful[i] += useful;
        self.fetched[i] += fetched;
        self.requests[i] += requests;
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "traffic (class: useful/fetched bytes):")?;
        for class in TrafficClass::ALL {
            if self.fetched_bytes(class) > 0 {
                writeln!(
                    f,
                    "  {:<12} {} / {} ({:.1}%)",
                    class.label(),
                    self.useful_bytes(class),
                    self.fetched_bytes(class),
                    100.0 * self.utilization(class).unwrap_or(0.0)
                )?;
            }
        }
        Ok(())
    }
}

/// A FIFO off-chip memory channel.
///
/// Requests occupy the channel back-to-back in issue order (bandwidth
/// model) and complete `latency_cycles` after their transfer finishes.
/// This transaction-level model is what makes multi-million-edge graphs
/// simulable in seconds while preserving the bandwidth/latency behavior
/// the paper's figures measure.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Time at which the channel finishes its last accepted transfer.
    channel_free: f64,
    stats: TrafficStats,
    /// 1-based count of transfer issues, consulted by the `dram` fault
    /// injection site. Per-instance (each cluster simulation owns its own
    /// channel), so serial and parallel legs inject at the same transfer.
    fault_ops: u64,
}

impl Dram {
    /// Creates an idle channel.
    ///
    /// # Panics
    ///
    /// Panics if the config has non-positive bandwidth or zero granularity.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(
            config.access_granularity > 0,
            "granularity must be positive"
        );
        Dram {
            config,
            channel_free: 0.0,
            stats: TrafficStats::new(),
            fault_ops: 0,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Issues a random-access read of `useful_bytes`; the transfer is
    /// rounded up to the access granularity. Returns the completion cycle.
    pub fn read(&mut self, now: Cycle, useful_bytes: u64, class: TrafficClass) -> Cycle {
        let fetched =
            useful_bytes.div_ceil(self.config.access_granularity) * self.config.access_granularity;
        self.transfer_random(now, useful_bytes, fetched, class, true)
    }

    /// Issues a streaming read of `useful_bytes` that continues a
    /// contiguous burst (CSR streams): no per-request granularity rounding.
    /// The caller should account one final [`Dram::round_burst`] per burst.
    pub fn read_stream(&mut self, now: Cycle, useful_bytes: u64, class: TrafficClass) -> Cycle {
        self.transfer(now, useful_bytes, useful_bytes, class, true, 0)
    }

    /// Issues a random-access read of `useful_bytes` of payload plus
    /// `overhead_bytes` of format metadata (e.g. per-tile CSC column
    /// pointers). The whole transfer is granularity-rounded; only the
    /// payload counts as useful — this is how Figure 6's "effective
    /// memory bandwidth utilization" treats compression metadata.
    pub fn read_with_overhead(
        &mut self,
        now: Cycle,
        useful_bytes: u64,
        overhead_bytes: u64,
        class: TrafficClass,
    ) -> Cycle {
        let total = useful_bytes + overhead_bytes;
        let fetched =
            total.div_ceil(self.config.access_granularity) * self.config.access_granularity;
        self.transfer_random(now, useful_bytes, fetched, class, true)
    }

    /// Issues `count` back-to-back random-access reads of `useful_each`
    /// bytes in one call (bulk preloads / uncached row streams). Returns
    /// the completion cycle of the *last* read.
    pub fn read_many(
        &mut self,
        now: Cycle,
        count: u64,
        useful_each: u64,
        class: TrafficClass,
    ) -> Cycle {
        if count == 0 {
            return now;
        }
        self.fault_ops += 1;
        fault::trip_at(FaultSite::DramIssue, self.fault_ops);
        let fetched_each =
            useful_each.div_ceil(self.config.access_granularity) * self.config.access_granularity;
        self.stats
            .record_n(class, useful_each * count, fetched_each * count, count);
        let start = self.channel_free.max(now as f64);
        let end = start
            + (fetched_each * count) as f64 / self.config.bytes_per_cycle
            + (self.config.request_overhead_cycles * count) as f64;
        self.channel_free = end;
        (end + self.config.latency_cycles as f64).ceil() as Cycle
    }

    /// Charges the granularity rounding at the end of a streaming burst of
    /// `burst_useful_bytes` total (at most one extra line).
    pub fn round_burst(&mut self, burst_useful_bytes: u64, class: TrafficClass) {
        let gran = self.config.access_granularity;
        let rounded = burst_useful_bytes.div_ceil(gran) * gran;
        let slack = rounded - burst_useful_bytes;
        if slack > 0 {
            self.stats.record(class, 0, slack);
            self.channel_free += slack as f64 / self.config.bytes_per_cycle;
        }
    }

    /// Issues a (posted) write; returns the cycle at which the channel has
    /// accepted the data. Writes are granularity-rounded like reads.
    pub fn write(&mut self, now: Cycle, useful_bytes: u64, class: TrafficClass) -> Cycle {
        let fetched =
            useful_bytes.div_ceil(self.config.access_granularity) * self.config.access_granularity;
        self.transfer(now, useful_bytes, fetched, class, false, 0)
    }

    fn transfer_random(
        &mut self,
        now: Cycle,
        useful: u64,
        fetched: u64,
        class: TrafficClass,
        is_read: bool,
    ) -> Cycle {
        self.transfer(
            now,
            useful,
            fetched,
            class,
            is_read,
            self.config.request_overhead_cycles,
        )
    }

    fn transfer(
        &mut self,
        now: Cycle,
        useful: u64,
        fetched: u64,
        class: TrafficClass,
        is_read: bool,
        overhead: Cycle,
    ) -> Cycle {
        self.fault_ops += 1;
        fault::trip_at(FaultSite::DramIssue, self.fault_ops);
        self.stats.record(class, useful, fetched);
        let start = self.channel_free.max(now as f64);
        let end = start + fetched as f64 / self.config.bytes_per_cycle + overhead as f64;
        self.channel_free = end;
        let completion = if is_read {
            end + self.config.latency_cycles as f64
        } else {
            end
        };
        completion.ceil() as Cycle
    }

    /// First cycle at which the channel is idle again.
    pub fn busy_until(&self) -> Cycle {
        self.channel_free.ceil() as Cycle
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets time (not statistics), e.g. between independent phases.
    pub fn rewind_clock(&mut self) {
        self.channel_free = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_default_is_the_uniform_pipe() {
        let t = MemTopology::default();
        assert!(t.is_uniform());
        assert_eq!(t, MemTopology::new(1, 1));
        assert!(!MemTopology::new(2, 1).is_uniform());
        assert!(!MemTopology::new(1, 8).is_uniform());
    }

    #[test]
    fn home_channel_interleaves() {
        let t = MemTopology::new(4, 8);
        assert_eq!(t.home_channel(0), 0);
        assert_eq!(t.home_channel(5), 1);
        assert_eq!(t.home_channel(7), 3);
    }

    #[test]
    fn conflict_penalty_amortizes_over_banks() {
        let dram = DramConfig::default(); // 12-cycle overhead, 64 B grain
        let t8 = MemTopology::new(4, 8);
        let t16 = MemTopology::new(4, 16);
        assert_eq!(t8.conflict_penalty_per_byte(&dram, 0), 0.0, "alone: free");
        let p8 = t8.conflict_penalty_per_byte(&dram, 3);
        let p16 = t16.conflict_penalty_per_byte(&dram, 3);
        assert!((p8 - 12.0 * 3.0 / 8.0 / 64.0).abs() < 1e-12, "{p8}");
        assert!((p8 / p16 - 2.0).abs() < 1e-12, "doubling banks halves it");
        // More co-residents, more stall.
        assert!(t8.conflict_penalty_per_byte(&dram, 5) > p8);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_is_rejected() {
        let _ = MemTopology::new(0, 8);
    }

    #[test]
    fn read_rounds_to_granularity() {
        let mut d = Dram::new(DramConfig::default());
        d.read(0, 1, TrafficClass::RhsRows);
        assert_eq!(d.stats().fetched_bytes(TrafficClass::RhsRows), 64);
        assert_eq!(d.stats().useful_bytes(TrafficClass::RhsRows), 1);
        let util = d.stats().utilization(TrafficClass::RhsRows).unwrap();
        assert!((util - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_serializes_transfers() {
        // 128 B/cycle: two 128-byte reads take 1 cycle each on the channel.
        let cfg = DramConfig {
            bytes_per_cycle: 128.0,
            latency_cycles: 10,
            access_granularity: 64,
            request_overhead_cycles: 0,
        };
        let mut d = Dram::new(cfg);
        let c1 = d.read(0, 128, TrafficClass::RhsRows);
        let c2 = d.read(0, 128, TrafficClass::RhsRows);
        assert_eq!(c1, 11);
        assert_eq!(c2, 12, "second read queues behind the first");
    }

    #[test]
    fn idle_channel_starts_at_now() {
        let cfg = DramConfig {
            bytes_per_cycle: 64.0,
            latency_cycles: 5,
            access_granularity: 64,
            request_overhead_cycles: 0,
        };
        let mut d = Dram::new(cfg);
        let c = d.read(100, 64, TrafficClass::LhsSparse);
        assert_eq!(c, 106);
    }

    #[test]
    fn stream_reads_do_not_round() {
        let mut d = Dram::new(DramConfig::default());
        d.read_stream(0, 12, TrafficClass::LhsSparse);
        d.read_stream(0, 12, TrafficClass::LhsSparse);
        assert_eq!(d.stats().fetched_bytes(TrafficClass::LhsSparse), 24);
        d.round_burst(24, TrafficClass::LhsSparse);
        // 24 -> rounded to 64: 40 slack bytes charged.
        assert_eq!(d.stats().fetched_bytes(TrafficClass::LhsSparse), 64);
        assert_eq!(d.stats().useful_bytes(TrafficClass::LhsSparse), 24);
    }

    #[test]
    fn writes_do_not_pay_latency() {
        let cfg = DramConfig {
            bytes_per_cycle: 64.0,
            latency_cycles: 100,
            access_granularity: 64,
            request_overhead_cycles: 0,
        };
        let mut d = Dram::new(cfg);
        let c = d.write(0, 64, TrafficClass::Output);
        assert_eq!(c, 1);
    }

    #[test]
    fn bandwidth_sweep_scales_transfer_time() {
        for (bw, expect) in [(16.0, 4), (64.0, 1)] {
            let cfg = DramConfig {
                bytes_per_cycle: bw,
                latency_cycles: 0,
                access_granularity: 64,
                request_overhead_cycles: 0,
            };
            let mut d = Dram::new(cfg);
            let c = d.read(0, 64, TrafficClass::RhsRows);
            assert_eq!(c, expect, "bw {bw}");
        }
    }

    #[test]
    fn read_with_overhead_counts_metadata_as_waste() {
        // A 12-byte payload + 258 bytes of CSC colptr metadata: the whole
        // 270 bytes round to 320 fetched, but only 12 are useful — the
        // Figure 6 accounting for near-empty GCNAX tiles.
        let mut d = Dram::new(DramConfig::default());
        d.read_with_overhead(0, 12, 258, TrafficClass::LhsSparse);
        assert_eq!(d.stats().fetched_bytes(TrafficClass::LhsSparse), 320);
        assert_eq!(d.stats().useful_bytes(TrafficClass::LhsSparse), 12);
        let util = d.stats().utilization(TrafficClass::LhsSparse).unwrap();
        assert!(util < 0.05, "utilization {util}");
    }

    #[test]
    fn read_many_matches_loop_of_reads() {
        let cfg = DramConfig {
            bytes_per_cycle: 64.0,
            latency_cycles: 10,
            access_granularity: 64,
            request_overhead_cycles: 0,
        };
        let mut bulk = Dram::new(cfg);
        let done_bulk = bulk.read_many(0, 5, 100, TrafficClass::RhsPreload);
        let mut looped = Dram::new(cfg);
        let mut done_loop = 0;
        for _ in 0..5 {
            done_loop = looped.read(0, 100, TrafficClass::RhsPreload);
        }
        assert_eq!(done_bulk, done_loop);
        assert_eq!(bulk.stats(), looped.stats());
    }

    #[test]
    fn read_many_zero_count_is_noop() {
        let mut d = Dram::new(DramConfig::default());
        assert_eq!(d.read_many(42, 0, 100, TrafficClass::Weights), 42);
        assert_eq!(d.stats().total_fetched(), 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Output, 10, 64);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::Output, 5, 64);
        a.merge(&b);
        assert_eq!(a.useful_bytes(TrafficClass::Output), 15);
        assert_eq!(a.fetched_bytes(TrafficClass::Output), 128);
        assert_eq!(a.requests(TrafficClass::Output), 2);
    }

    #[test]
    fn display_lists_active_classes() {
        let mut d = Dram::new(DramConfig::default());
        d.read(0, 64, TrafficClass::Weights);
        let text = format!("{}", d.stats());
        assert!(text.contains("weights"));
        assert!(!text.contains("partial-sums"));
    }
}
