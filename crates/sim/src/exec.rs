//! Deterministic parallel execution of independent simulation tasks.
//!
//! GROW processes graph clusters independently (Section V-C), and the
//! multi-PE model of Figure 24 exploits exactly that independence — so the
//! *simulator* can too: each engine fans per-cluster simulations across
//! threads and merges the partial reports in cluster order, which makes
//! the result bit-identical to a serial run by construction.
//!
//! The environment this workspace builds in has no crates.io access, so
//! the fan-out is built on `std::thread::scope` with an atomic work queue
//! instead of rayon; the API surface is a single [`parallel_map`] that a
//! future rayon backend could replace without touching call sites.
//!
//! Parallelism is on by default and can be disabled three ways:
//!
//! * `GROW_SERIAL=1` in the environment (e.g. for profiling);
//! * [`with_mode`]`(ExecMode::Serial, ..)` around a region of code (used
//!   by the determinism tests);
//! * `GROW_THREADS=n` / [`with_workers`] to set the worker count
//!   explicitly (`1` is equivalent to serial; values above the hardware
//!   thread count oversubscribe, which the determinism tests use to
//!   exercise real interleaving even on single-core machines).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How [`parallel_map`] executes its tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Fan tasks across OS threads (the default).
    Parallel,
    /// Run tasks one by one on the calling thread.
    Serial,
}

thread_local! {
    /// Thread-local mode override: 0 = unset (consult the environment),
    /// 1 = parallel, 2 = serial. Thread-local rather than process-wide so
    /// concurrent callers (e.g. parallel test threads) cannot perturb each
    /// other: [`parallel_map`] always consults the mode on the *calling*
    /// thread, before any fan-out.
    static MODE_OVERRIDE: Cell<u8> = const { Cell::new(0) };
    /// Thread-local worker-count override (0 = unset).
    static WORKERS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

impl ExecMode {
    /// The mode in effect on this thread: an active [`with_mode`] override
    /// wins, then `GROW_SERIAL`, then the parallel default.
    pub fn current() -> ExecMode {
        match MODE_OVERRIDE.get() {
            1 => ExecMode::Parallel,
            2 => ExecMode::Serial,
            _ => match std::env::var_os("GROW_SERIAL") {
                Some(v) if v != "0" && !v.is_empty() => ExecMode::Serial,
                _ => ExecMode::Parallel,
            },
        }
    }

    fn encode(self) -> u8 {
        match self {
            ExecMode::Parallel => 1,
            ExecMode::Serial => 2,
        }
    }
}

/// Restores a thread-local [`Cell`] override on drop (also on panic).
struct Restore<T: Copy + 'static>(&'static std::thread::LocalKey<Cell<T>>, T);

impl<T: Copy + 'static> Drop for Restore<T> {
    fn drop(&mut self) {
        self.0.set(self.1);
    }
}

/// Runs `f` with this thread's execution mode forced to `mode`, restoring
/// the previous override afterwards (also on panic). Scoped to the calling
/// thread; nesting works.
pub fn with_mode<R>(mode: ExecMode, f: impl FnOnce() -> R) -> R {
    let _restore = Restore(&MODE_OVERRIDE, MODE_OVERRIDE.replace(mode.encode()));
    f()
}

/// Runs `f` with this thread's parallel worker count forced to `workers`,
/// restoring the previous override afterwards (also on panic). Scoped to
/// the calling thread like [`with_mode`].
pub fn with_workers<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    let _restore = Restore(&WORKERS_OVERRIDE, WORKERS_OVERRIDE.replace(workers.max(1)));
    f()
}

/// Worker-thread count for `tasks` tasks: an explicit override
/// ([`with_workers`] or `GROW_THREADS`) wins — including oversubscription
/// — otherwise the hardware thread count, never more than the task count.
fn worker_count(tasks: usize) -> usize {
    let explicit = match WORKERS_OVERRIDE.get() {
        0 => std::env::var("GROW_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0),
        n => Some(n),
    };
    let hw = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    explicit.unwrap_or_else(hw).min(tasks)
}

/// Maps `f` over `items`, preserving order in the returned vector.
///
/// Under [`ExecMode::Parallel`] the items are processed by a pool of
/// scoped threads pulling from an atomic queue (dynamic load balancing —
/// cluster sizes are skewed on real graphs); each result is written to its
/// input's slot, so the output order — and therefore any order-dependent
/// merge the caller performs — is identical to the serial path.
///
/// `f` receives the item index alongside the item.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = match ExecMode::current() {
        ExecMode::Serial => 1,
        ExecMode::Parallel => worker_count(n),
    };
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each slot is taken exactly once");
                let r = f(i, item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..1000).collect::<Vec<i64>>(), |i, x| {
            assert_eq!(i as i64, x);
            x * x
        });
        assert_eq!(out, (0..1000).map(|x| x * x).collect::<Vec<i64>>());
    }

    #[test]
    fn serial_mode_matches_parallel() {
        let items: Vec<u64> = (0..257).collect();
        let par = parallel_map(items.clone(), |_, x| x.wrapping_mul(0x9e3779b9) >> 7);
        let ser = with_mode(ExecMode::Serial, || {
            parallel_map(items, |_, x| x.wrapping_mul(0x9e3779b9) >> 7)
        });
        assert_eq!(par, ser);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(parallel_map(Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(parallel_map(vec![7u8], |i, x| x + i as u8), vec![7]);
    }

    #[test]
    fn with_mode_restores_previous_override() {
        with_mode(ExecMode::Serial, || {
            assert_eq!(ExecMode::current(), ExecMode::Serial);
            with_mode(ExecMode::Parallel, || {
                assert_eq!(ExecMode::current(), ExecMode::Parallel);
            });
            assert_eq!(ExecMode::current(), ExecMode::Serial);
        });
    }

    #[test]
    fn oversubscribed_workers_spawn_and_preserve_order() {
        // Forces real thread fan-out even on single-core machines.
        let out = with_workers(8, || {
            parallel_map((0..500).collect::<Vec<u32>>(), |_, x| {
                x.wrapping_mul(31) ^ 5
            })
        });
        assert_eq!(
            out,
            (0..500)
                .map(|x: u32| x.wrapping_mul(31) ^ 5)
                .collect::<Vec<u32>>()
        );
    }

    #[test]
    fn non_copy_items_move_through() {
        let items: Vec<String> = (0..64).map(|i| format!("task-{i}")).collect();
        let out = parallel_map(items, |_, s| s.len());
        assert!(out.iter().all(|&l| (6..=7).contains(&l)));
    }
}
