use std::fmt;

/// Activity counters produced by a simulator run, consumed by
/// [`EnergyModel::estimate`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ActivityCounts {
    /// Multiply-accumulate operations executed.
    pub mac_ops: u64,
    /// Register-file accesses (operand reads/writes around the MAC array).
    pub rf_accesses: u64,
    /// 8-byte on-chip SRAM reads.
    pub sram_reads_8b: u64,
    /// 8-byte on-chip SRAM writes.
    pub sram_writes_8b: u64,
    /// Bytes transferred to/from DRAM (granularity-rounded, i.e. what the
    /// channel actually moved).
    pub dram_bytes: u64,
    /// Execution time in cycles (1 GHz clock), for leakage.
    pub cycles: u64,
    /// PE-cycles the multi-PE fleet spent executing clusters, summed over
    /// every PE (an end-to-end `pes=N` run reports up to `N * cycles`).
    /// Zero for single-PE and post-hoc runs.
    pub pe_busy_cycles: u64,
    /// PE-cycles the fleet sat idle inside phase makespans (powered but
    /// waiting for work or a phase barrier). Together with
    /// [`ActivityCounts::pe_busy_cycles`] this is the fleet's total
    /// powered time, which leakage charges in full: an idle PE leaks for
    /// the whole makespan. Zero for single-PE and post-hoc runs, which
    /// fall back to [`ActivityCounts::cycles`].
    pub pe_idle_cycles: u64,
    /// Total on-chip SRAM capacity in KB, for leakage.
    pub sram_kb: f64,
}

/// Energy broken down into the five categories of Figure 22, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// MAC array dynamic energy.
    pub mac: f64,
    /// Register-file dynamic energy.
    pub rf: f64,
    /// On-chip SRAM dynamic energy.
    pub sram: f64,
    /// Off-chip DRAM dynamic energy.
    pub dram: f64,
    /// Static (leakage) energy over the execution time.
    pub leakage: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.mac + self.rf + self.sram + self.dram + self.leakage
    }

    /// Each category as a fraction of the total.
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total().max(f64::MIN_POSITIVE);
        [
            self.mac / t,
            self.rf / t,
            self.sram / t,
            self.dram / t,
            self.leakage / t,
        ]
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy: mac {:.3e} J, rf {:.3e} J, sram {:.3e} J, dram {:.3e} J, leak {:.3e} J \
             (total {:.3e} J)",
            self.mac,
            self.rf,
            self.sram,
            self.dram,
            self.leakage,
            self.total()
        )
    }
}

/// Per-operation energy constants (Horowitz ISSCC'14-derived, 45 nm-class,
/// matching the paper's methodology in Section VI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per 64-bit multiply-accumulate, picojoules. Horowitz reports
    /// ~20 pJ for a 64-bit FP multiply and ~5 pJ for the add at 45 nm.
    pub mac_pj: f64,
    /// Energy per register-file operand access, picojoules (small
    /// flip-flop-based RF, ~1.5 pJ).
    pub rf_access_pj: f64,
    /// SRAM dynamic energy per 8-byte access: `sram_base_pj +
    /// sram_sqrt_pj * sqrt(capacity_KB)` — a CACTI-style capacity fit
    /// (e.g. ~2.5 pJ at 12 KB, ~35 pJ at 512 KB).
    pub sram_base_pj: f64,
    /// See [`EnergyModel::sram_base_pj`].
    pub sram_sqrt_pj: f64,
    /// Mean SRAM capacity (KB) used for the per-access fit; engines report
    /// aggregate access counts, so the fit uses the weighted buffer size.
    pub sram_fit_kb: f64,
    /// DRAM energy per bit, picojoules (Horowitz: ~1.3–2.6 nJ per 64-bit
    /// access => ~20–40 pJ/bit; we use the low end for modern LPDDR-class
    /// parts).
    pub dram_pj_per_bit: f64,
    /// SRAM leakage power per KB, milliwatts (CACTI 45 nm leakage for the
    /// multi-bank SRAM macros the paper synthesizes, ~0.05 mW/KB).
    pub sram_leak_mw_per_kb: f64,
    /// Fixed logic leakage (MAC array + control), milliwatts.
    pub logic_leak_mw: f64,
    /// Clock frequency in Hz (Table III: 1 GHz).
    pub clock_hz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            mac_pj: 25.0,
            rf_access_pj: 1.5,
            sram_base_pj: 2.0,
            sram_sqrt_pj: 1.45,
            sram_fit_kb: 256.0,
            dram_pj_per_bit: 20.0,
            sram_leak_mw_per_kb: 0.05,
            logic_leak_mw: 5.0,
            clock_hz: 1.0e9,
        }
    }
}

impl EnergyModel {
    /// SRAM dynamic energy per 8-byte access for a buffer of `kb` KB.
    pub fn sram_access_pj(&self, kb: f64) -> f64 {
        self.sram_base_pj + self.sram_sqrt_pj * kb.max(0.0).sqrt()
    }

    /// Estimates the Figure 22 energy breakdown for an activity profile.
    pub fn estimate(&self, counts: &ActivityCounts) -> EnergyBreakdown {
        const PJ: f64 = 1e-12;
        let mac = counts.mac_ops as f64 * self.mac_pj * PJ;
        let rf = counts.rf_accesses as f64 * self.rf_access_pj * PJ;
        let sram_pj = self.sram_access_pj(self.sram_fit_kb);
        let sram = (counts.sram_reads_8b + counts.sram_writes_8b) as f64 * sram_pj * PJ;
        let dram = counts.dram_bytes as f64 * 8.0 * self.dram_pj_per_bit * PJ;
        // Leakage charges the fleet's full powered time when the run
        // reports per-PE accounting (every PE leaks for the whole
        // makespan, idle or not); otherwise the single reference timeline.
        let fleet_cycles = counts.pe_busy_cycles + counts.pe_idle_cycles;
        let leak_cycles = if fleet_cycles > 0 {
            fleet_cycles
        } else {
            counts.cycles
        };
        let seconds = leak_cycles as f64 / self.clock_hz;
        let leak_w = (counts.sram_kb * self.sram_leak_mw_per_kb + self.logic_leak_mw) * 1e-3;
        let leakage = leak_w * seconds;
        EnergyBreakdown {
            mac,
            rf,
            sram,
            dram,
            leakage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> ActivityCounts {
        ActivityCounts {
            mac_ops: 1_000,
            rf_accesses: 3_000,
            sram_reads_8b: 2_000,
            sram_writes_8b: 1_000,
            dram_bytes: 10_000,
            cycles: 1_000_000,
            sram_kb: 538.0,
            ..ActivityCounts::default()
        }
    }

    #[test]
    fn mac_energy_is_count_times_constant() {
        let m = EnergyModel::default();
        let e = m.estimate(&counts());
        assert!((e.mac - 1_000.0 * 25.0e-12).abs() < 1e-18);
    }

    #[test]
    fn dram_energy_per_bit() {
        let m = EnergyModel::default();
        let e = m.estimate(&counts());
        assert!((e.dram - 10_000.0 * 8.0 * 20.0e-12).abs() < 1e-15);
    }

    #[test]
    fn leakage_scales_with_time() {
        let m = EnergyModel::default();
        let mut c = counts();
        let e1 = m.estimate(&c);
        c.cycles *= 2;
        let e2 = m.estimate(&c);
        assert!((e2.leakage / e1.leakage - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sram_fit_grows_with_capacity() {
        let m = EnergyModel::default();
        assert!(m.sram_access_pj(512.0) > m.sram_access_pj(12.0));
        // Sanity band for the 512 KB HDN cache: tens of pJ.
        let pj = m.sram_access_pj(512.0);
        assert!((10.0..80.0).contains(&pj), "512 KB access energy {pj} pJ");
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = EnergyModel::default();
        let e = m.estimate(&counts());
        let sum: f64 = e.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_dominates_compute_for_spdegemm_profiles() {
        // A profile shaped like aggregation: each MAC touches ~1 byte of
        // DRAM on average once caching fails.
        let m = EnergyModel::default();
        let c = ActivityCounts {
            mac_ops: 1_000_000,
            rf_accesses: 3_000_000,
            sram_reads_8b: 1_000_000,
            sram_writes_8b: 100_000,
            dram_bytes: 4_000_000,
            cycles: 2_000_000,
            sram_kb: 538.0,
            ..ActivityCounts::default()
        };
        let e = m.estimate(&c);
        assert!(e.dram > e.mac + e.rf, "{e}");
    }

    #[test]
    fn idle_pes_pay_leakage_for_the_full_makespan() {
        // A 4-PE fleet over a 1M-cycle makespan with 2.5M busy PE-cycles:
        // leakage must charge all 4M powered PE-cycles, not the 1M
        // reference timeline the legacy single-PE accounting saw.
        let m = EnergyModel::default();
        let mut c = counts();
        let single = m.estimate(&c);
        c.pe_busy_cycles = 2_500_000;
        c.pe_idle_cycles = 1_500_000;
        let fleet = m.estimate(&c);
        assert!((fleet.leakage / single.leakage - 4.0).abs() < 1e-12);
        // Dynamic categories are activity-based and unchanged.
        assert_eq!(fleet.mac, single.mac);
        assert_eq!(fleet.dram, single.dram);
    }

    #[test]
    fn zero_fleet_counters_keep_the_legacy_leakage() {
        let m = EnergyModel::default();
        let c = counts();
        assert_eq!(c.pe_busy_cycles, 0);
        assert_eq!(c.pe_idle_cycles, 0);
        let e = m.estimate(&c);
        let leak_w = (c.sram_kb * m.sram_leak_mw_per_kb + m.logic_leak_mw) * 1e-3;
        let expected = leak_w * c.cycles as f64 / m.clock_hz;
        assert!((e.leakage - expected).abs() < 1e-18);
    }
}
