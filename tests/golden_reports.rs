//! Golden-report regression suite: every engine's full [`RunReport`] —
//! cycles, MAC counts, per-class DRAM traffic, cache statistics, SRAM
//! accesses, cluster profiles — on two small fixed-seed workloads,
//! asserted field-by-field against committed snapshots.
//!
//! This locks the modeled numbers down: a refactor that silently shifts
//! any counter of any engine fails here with a readable diff. Snapshots
//! are deterministic by construction (integer counters only, and the
//! parallel cluster path is bit-identical to serial).
//!
//! To re-bless after an *intentional* model change:
//!
//! ```text
//! GROW_BLESS=1 cargo test --test golden_reports
//! ```
//!
//! and commit the updated `tests/golden/*.snap` files together with the
//! change that shifted the numbers.

use std::fmt::Write as _;

use grow::accel::registry::{self, ENGINE_NAMES};
use grow::accel::{prepare, PartitionStrategy};
use grow::model::DatasetSpec;

mod common;
use common::{cases, golden_path, render};

/// Builds the snapshot text for one workload: all four engines on both
/// prepared forms (original order and partitioned).
fn snapshot(spec: DatasetSpec, seed: u64) -> String {
    let workload = spec.instantiate(seed);
    let strategies = [
        PartitionStrategy::None,
        PartitionStrategy::Multilevel { cluster_nodes: 100 },
    ];
    let mut out = String::new();
    for strategy in strategies {
        let prepared = prepare(&workload, strategy, 4096);
        for name in ENGINE_NAMES {
            let report = registry::run_named(name, &prepared).expect("registered engine");
            let _ = writeln!(out, "== engine={} strategy={strategy:?} ==", report.engine);
            render(&report, &mut out);
        }
    }
    out
}

#[test]
fn reports_match_committed_snapshots() {
    let bless = std::env::var_os("GROW_BLESS").is_some_and(|v| !v.is_empty() && v != "0");
    for (case, spec, seed) in cases() {
        let actual = snapshot(spec, seed);
        let path = golden_path(case);
        if bless {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
            std::fs::write(&path, &actual).expect("write snapshot");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {}: {e}\n\
                 run `GROW_BLESS=1 cargo test --test golden_reports` to create it",
                path.display()
            )
        });
        if actual != expected {
            let mismatch = expected
                .lines()
                .zip(actual.lines())
                .enumerate()
                .find(|(_, (e, a))| e != a);
            let detail = match mismatch {
                Some((n, (e, a))) => {
                    format!(
                        "first differing line {}:\n  expected: {e}\n  actual:   {a}",
                        n + 1
                    )
                }
                None => "line counts differ".to_string(),
            };
            panic!(
                "{case}: modeled numbers shifted from the committed snapshot \
                 ({}).\n{detail}\n\
                 If the change is intentional, re-bless with \
                 `GROW_BLESS=1 cargo test --test golden_reports` and commit \
                 the updated snapshot.",
                path.display()
            );
        }
    }
}

#[test]
fn single_pe_e2e_reproduces_committed_snapshots() {
    // The exec-model equivalence at golden strength: rendering the same
    // grid under `exec=e2e` (1 PE) must reproduce the committed snapshot
    // bytes — there is deliberately NO bless path here.
    for (case, spec, seed) in cases() {
        let workload = spec.instantiate(seed);
        let strategies = [
            PartitionStrategy::None,
            PartitionStrategy::Multilevel { cluster_nodes: 100 },
        ];
        let mut out = String::new();
        for strategy in strategies {
            let prepared = prepare(&workload, strategy, 4096);
            for name in ENGINE_NAMES {
                let report = registry::engine_from_overrides(name, &[("exec", "e2e")])
                    .expect("registered engine")
                    .run(&prepared);
                let _ = writeln!(out, "== engine={} strategy={strategy:?} ==", report.engine);
                render(&report, &mut out);
            }
        }
        let expected =
            std::fs::read_to_string(golden_path(case)).expect("committed golden snapshot exists");
        assert_eq!(
            out, expected,
            "{case}: a 1-PE e2e run diverged from the committed post-hoc snapshot"
        );
    }
}

#[test]
fn snapshots_are_execution_mode_invariant() {
    // The golden files are valid under any thread count: the parallel
    // cluster path is bit-identical to serial, so the snapshot rendering
    // must be too.
    use grow::sim::exec::{with_mode, with_workers, ExecMode};
    let (_, spec, seed) = cases()[0];
    let serial = with_mode(ExecMode::Serial, || snapshot(spec, seed));
    let parallel = with_workers(4, || snapshot(spec, seed));
    assert_eq!(serial, parallel);
}

/// Builds the scheduler-grid snapshot for one workload: every engine's
/// multi-PE summary under every scheduler at 1 and 4 PEs, on the
/// partitioned preparation (so there are real clusters to assign). f64
/// fields are rendered with `{}` — Rust's shortest-roundtrip formatting —
/// so the text is exact: any last-ulp drift in the fluid model fails the
/// snapshot.
fn scheduler_snapshot(spec: DatasetSpec, seed: u64) -> String {
    // Pinned to the schedulers this snapshot was committed with; policies
    // added later (`ca`) are locked by the e2e grid snapshots instead, so
    // the historical files stay byte-for-byte valid.
    const LEGACY_SCHEDULERS: [&str; 3] = ["rr", "lpt", "ws"];
    let workload = spec.instantiate(seed);
    let prepared = prepare(
        &workload,
        PartitionStrategy::Multilevel { cluster_nodes: 100 },
        4096,
    );
    let mut out = String::new();
    for name in ENGINE_NAMES {
        for scheduler in LEGACY_SCHEDULERS {
            for pes in ["1", "4"] {
                let report = registry::engine_from_overrides(
                    name,
                    &[("scheduler", scheduler), ("pes", pes)],
                )
                .expect("registered engine and scheduler")
                .run(&prepared);
                let s = report.multi_pe.expect("summary attached");
                let busy: Vec<String> = s.per_pe_busy.iter().map(|b| format!("{b}")).collect();
                let _ = writeln!(
                    out,
                    "engine={} scheduler={} pes={} makespan={} imbalance={} busy=[{}]",
                    report.engine,
                    s.scheduler,
                    s.pes,
                    s.makespan,
                    s.imbalance,
                    busy.join(" ")
                );
            }
        }
    }
    out
}

#[test]
fn scheduler_grid_matches_committed_snapshots() {
    let bless = std::env::var_os("GROW_BLESS").is_some_and(|v| !v.is_empty() && v != "0");
    for (case, spec, seed) in cases() {
        let actual = scheduler_snapshot(spec, seed);
        let path = golden_path(&format!("{case}_sched"));
        if bless {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
            std::fs::write(&path, &actual).expect("write snapshot");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {}: {e}\n\
                 run `GROW_BLESS=1 cargo test --test golden_reports` to create it",
                path.display()
            )
        });
        assert_eq!(
            actual,
            expected,
            "{case}: scheduler-grid summaries shifted from {} — if intentional, \
             re-bless with `GROW_BLESS=1 cargo test --test golden_reports`",
            path.display()
        );
    }
}

/// Builds the end-to-end grid snapshot for one workload: every engine ×
/// every scheduler (`ca` included) at 1 and 4 PEs under `exec=e2e`, with
/// the per-layer multi-PE breakdowns rendered field by field. f64 fields
/// use `{}` — shortest-roundtrip formatting — so any last-ulp drift in
/// the calibrated fluid model fails the snapshot.
fn e2e_snapshot(spec: DatasetSpec, seed: u64) -> String {
    use grow::accel::schedule::SCHEDULER_NAMES;
    let workload = spec.instantiate(seed);
    let prepared = prepare(
        &workload,
        PartitionStrategy::Multilevel { cluster_nodes: 100 },
        4096,
    );
    let mut out = String::new();
    for name in ENGINE_NAMES {
        for scheduler in SCHEDULER_NAMES {
            for pes in ["1", "4"] {
                let report = registry::engine_from_overrides(
                    name,
                    &[("exec", "e2e"), ("scheduler", scheduler), ("pes", pes)],
                )
                .expect("registered engine and scheduler")
                .run(&prepared);
                let _ = writeln!(
                    out,
                    "== engine={} scheduler={scheduler} pes={pes} total={} ==",
                    report.engine,
                    report.total_cycles()
                );
                let breakdown = report.multi_pe_breakdown().expect("e2e breakdown");
                for (li, layer) in report.layers.iter().enumerate() {
                    let pe_layer = &breakdown.layers[li];
                    for (phase, pe) in [
                        (&layer.combination, &pe_layer.combination),
                        (&layer.aggregation, &pe_layer.aggregation),
                    ] {
                        let busy: Vec<String> =
                            pe.per_pe_busy.iter().map(|b| format!("{b}")).collect();
                        let _ = writeln!(
                            out,
                            "layer={li} phase={:?} cycles={} makespan={} cluster_time={} busy=[{}]",
                            phase.kind,
                            phase.cycles,
                            pe.makespan,
                            pe.cluster_time,
                            busy.join(" ")
                        );
                    }
                }
            }
        }
    }
    out
}

#[test]
fn e2e_grid_matches_committed_snapshots() {
    let bless = std::env::var_os("GROW_BLESS").is_some_and(|v| !v.is_empty() && v != "0");
    for (case, spec, seed) in cases() {
        let actual = e2e_snapshot(spec, seed);
        let path = golden_path(&format!("{case}_e2e"));
        if bless {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
            std::fs::write(&path, &actual).expect("write snapshot");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {}: {e}\n\
                 run `GROW_BLESS=1 cargo test --test golden_reports` to create it",
                path.display()
            )
        });
        assert_eq!(
            actual,
            expected,
            "{case}: e2e grid breakdowns shifted from {} — if intentional, \
             re-bless with `GROW_BLESS=1 cargo test --test golden_reports`",
            path.display()
        );
    }
}

#[test]
fn work_stealing_path_is_execution_mode_invariant() {
    // The ws summary is computed from cluster profiles that the parallel
    // cluster fan-out produced; the whole report — summary included —
    // must be bit-identical between a forced-serial run and an
    // oversubscribed parallel run.
    use grow::sim::exec::{with_mode, with_workers, ExecMode};
    let (_, spec, seed) = cases()[1];
    let workload = spec.instantiate(seed);
    let prepared = prepare(
        &workload,
        PartitionStrategy::Multilevel { cluster_nodes: 100 },
        4096,
    );
    for engine in ENGINE_NAMES {
        let run = || {
            registry::engine_from_overrides(engine, &[("scheduler", "ws"), ("pes", "8")])
                .expect("registered engine")
                .run(&prepared)
        };
        let serial = with_mode(ExecMode::Serial, run);
        let parallel = with_workers(8, run);
        assert_eq!(serial, parallel, "{engine}: ws path diverged");
        assert_eq!(serial.multi_pe.as_ref().expect("summary").scheduler, "ws");
    }
}
