use std::fmt;

use grow_sparse::{CooMatrix, CsrPattern};

/// An undirected graph stored as a symmetric CSR adjacency pattern.
///
/// This is the `A` of the GCN layer `X' = sigma(A X W)` before
/// normalization: rows are nodes, and row `i` lists the neighbors of node
/// `i` in ascending order. Self-loops and duplicate edges are removed at
/// construction; both directions of every edge are stored, so
/// [`Graph::directed_edges`] equals `2 * undirected edge count`.
///
/// ```
/// use grow_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.nodes(), 4);
/// assert_eq!(g.undirected_edges(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: CsrPattern,
}

impl Graph {
    /// Builds a graph from an undirected edge list.
    ///
    /// Self-loops are dropped and duplicate edges merged. Each input pair
    /// `(u, v)` is inserted in both directions.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= nodes`.
    pub fn from_edges(nodes: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut coo = CooMatrix::new(nodes, nodes);
        for (u, v) in edges {
            assert!(
                (u as usize) < nodes && (v as usize) < nodes,
                "edge ({u}, {v}) out of bounds for {nodes} nodes"
            );
            if u == v {
                continue;
            }
            coo.push(u as usize, v as usize, 1.0)
                .expect("checked bounds");
            coo.push(v as usize, u as usize, 1.0)
                .expect("checked bounds");
        }
        // to_csr sums duplicates; the values are irrelevant, only structure.
        Graph {
            adj: coo.to_csr().into_pattern(),
        }
    }

    /// Wraps an existing symmetric adjacency pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is not square. Symmetry is the caller's
    /// responsibility (checked in debug builds).
    pub fn from_adjacency(adj: CsrPattern) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
        debug_assert_eq!(adj, adj.transpose(), "adjacency must be symmetric");
        Graph { adj }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.adj.rows()
    }

    /// Number of stored directed edges (`2x` the undirected count).
    ///
    /// This matches the "# of Edges" convention of the paper's Table I,
    /// which counts adjacency-matrix non-zeros.
    pub fn directed_edges(&self) -> usize {
        self.adj.nnz()
    }

    /// Number of undirected edges.
    pub fn undirected_edges(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.nodes()`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj.row_nnz(v)
    }

    /// Neighbors of node `v`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.nodes()`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        self.adj.row_indices(v)
    }

    /// Average node degree (`directed_edges / nodes`).
    pub fn avg_degree(&self) -> f64 {
        if self.nodes() == 0 {
            return 0.0;
        }
        self.directed_edges() as f64 / self.nodes() as f64
    }

    /// Density of the adjacency matrix, as reported in Table I.
    pub fn adjacency_density(&self) -> f64 {
        self.adj.density()
    }

    /// Borrows the adjacency pattern.
    pub fn adjacency(&self) -> &CsrPattern {
        &self.adj
    }

    /// Consumes the graph and returns the adjacency pattern.
    pub fn into_adjacency(self) -> CsrPattern {
        self.adj
    }

    /// Returns the graph with node IDs relabeled by `perm`
    /// (`perm[old] = new`).
    ///
    /// This is the preprocessing step of Figure 13: graph partitioning "only
    /// changes the way a particular node is assigned with its node ID".
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..nodes`.
    pub fn relabel(&self, perm: &[u32]) -> Graph {
        let m = self.adj.clone().with_unit_values().permute_symmetric(perm);
        Graph {
            adj: m.into_pattern(),
        }
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph: {} nodes, {} undirected edges, avg degree {:.2}",
            self.nodes(),
            self.undirected_edges(),
            self.avg_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetrizes() {
        let g = Graph::from_edges(3, [(0, 1)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.directed_edges(), 2);
    }

    #[test]
    fn from_edges_drops_self_loops_and_duplicates() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (2, 2)]);
        assert_eq!(g.undirected_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn degrees_and_density() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.avg_degree(), 1.5);
        assert!((g.adjacency_density() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let r = g.relabel(&[2, 1, 0]);
        assert_eq!(r.degree(1), 2);
        assert_eq!(r.neighbors(2), &[1]);
        assert_eq!(r.undirected_edges(), g.undirected_edges());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_edges_checks_bounds() {
        Graph::from_edges(2, [(0, 5)]);
    }

    #[test]
    fn display_mentions_counts() {
        let g = Graph::from_edges(2, [(0, 1)]);
        assert!(format!("{g}").contains("2 nodes"));
    }
}
