//! The GAMMA baseline (Zhang et al., ASPLOS 2021): a Gustavson-dataflow
//! sparse-sparse GEMM accelerator with a demand-filled fiber cache.
//!
//! GAMMA is the strongest sparse-sparse comparator in Section VII-H (GROW
//! is 1.5x faster and moves 4x less data on average). The model captures
//! why the gap remains: the fiber cache is LRU-managed rather than
//! power-law-aware (no pinning of high-degree nodes, no partitioning-based
//! locality), the RHS is CSR-compressed (+50% bytes per row), and the
//! high-radix merger still occupies the pipeline (at half a MAC op per
//! contribution — it is pipelined, unlike MatRaptor's sorting queues).

use grow_sim::{DramConfig, FaultPlan};

use crate::plan::ShardRows;
use crate::spsp::{run_spsp, spsp_engine, SpSpParams};
use crate::{Accelerator, PreparedWorkload, RunReport};

/// GAMMA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaConfig {
    /// MAC lanes (iso-throughput with GROW, Section VI).
    pub mac_lanes: usize,
    /// Off-chip memory parameters.
    pub dram: DramConfig,
    /// Fiber cache capacity in bytes (sized like GROW's HDN cache for an
    /// iso-SRAM comparison, per Section VI).
    pub fiber_cache_bytes: u64,
    /// Merge occupancy relative to a MAC op (pipelined high-radix merge:
    /// 0.5).
    pub merge_factor: f64,
    /// Intra-cluster sharding of the row-accounting plan pass (the
    /// uniform `shard_rows=` override). Bit-identical at any setting.
    pub shard_rows: ShardRows,
    /// Multi-PE projection (Figure 24): PE count and cluster scheduler.
    pub multi_pe: crate::schedule::MultiPeConfig,
    /// Deterministic fault-injection plan (the uniform `fault=` override;
    /// off by default).
    pub fault: FaultPlan,
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig {
            mac_lanes: 16,
            dram: DramConfig::default(),
            fiber_cache_bytes: 512 * 1024,
            merge_factor: 0.5,
            shard_rows: ShardRows::Off,
            multi_pe: crate::schedule::MultiPeConfig::default(),
            fault: FaultPlan::OFF,
        }
    }
}

/// The GAMMA accelerator timing model.
#[derive(Debug, Clone, Default)]
pub struct GammaEngine {
    config: GammaConfig,
}

impl GammaEngine {
    /// Creates an engine with an explicit configuration.
    pub fn new(config: GammaConfig) -> Self {
        GammaEngine { config }
    }

    /// The engine configuration.
    pub fn config(&self) -> &GammaConfig {
        &self.config
    }

    fn params(&self) -> SpSpParams {
        SpSpParams {
            name: "GAMMA",
            mac_lanes: self.config.mac_lanes,
            dram: self.config.dram,
            fiber_cache_bytes: self.config.fiber_cache_bytes,
            merge_factor: self.config.merge_factor,
            sram_kb: self.config.fiber_cache_bytes as f64 / 1024.0 + 32.0,
            shard_rows: self.config.shard_rows,
            multi_pe: self.config.multi_pe,
            fault: self.config.fault,
        }
    }
}

spsp_engine!(GammaEngine, GammaConfig);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, GrowEngine, MatRaptorEngine, PartitionStrategy};
    use grow_model::DatasetKey;

    fn prepared(nodes: usize) -> PreparedWorkload {
        let w = DatasetKey::Pubmed.spec().scaled_to(nodes).instantiate(3);
        prepare(&w, PartitionStrategy::None, 4096)
    }

    #[test]
    fn fiber_cache_hits_reduce_traffic_vs_matraptor() {
        let p = prepared(1000);
        let gamma = GammaEngine::default().run(&p);
        let mat = MatRaptorEngine::default().run(&p);
        assert!(
            gamma.dram_bytes() < mat.dram_bytes(),
            "gamma {} vs matraptor {}",
            gamma.dram_bytes(),
            mat.dram_bytes()
        );
        let hits = gamma.aggregation_cache().hits;
        assert!(hits > 0, "fiber cache must capture some reuse");
    }

    #[test]
    fn grow_still_beats_gamma() {
        // Section VII-H: GROW is ~1.5x faster and moves ~4x less data.
        let p = prepared(2000);
        let gamma = GammaEngine::default().run(&p);
        let grow = GrowEngine::default().run(&p);
        assert!(grow.total_cycles() < gamma.total_cycles());
        assert!(grow.dram_bytes() < gamma.dram_bytes());
    }

    #[test]
    fn zero_capacity_degenerates_to_matraptor_traffic() {
        let p = prepared(500);
        let gamma = GammaEngine::new(GammaConfig {
            fiber_cache_bytes: 0,
            merge_factor: 1.0,
            ..GammaConfig::default()
        })
        .run(&p);
        let mat = MatRaptorEngine::default().run(&p);
        assert_eq!(gamma.dram_bytes(), mat.dram_bytes());
        assert_eq!(gamma.total_cycles(), mat.total_cycles());
    }

    #[test]
    fn deterministic() {
        let p = prepared(300);
        let e = GammaEngine::default();
        assert_eq!(e.run(&p), e.run(&p));
    }

    #[test]
    fn sharded_rows_are_bit_identical_to_unsharded() {
        // The shard_rows contract on both fiber-cache regimes: the
        // default cache never evicts on this workload (first-touch fast
        // path); a 4 KB cache genuinely evicts (sequential LRU plan).
        // Sharding and execution mode must not perturb either.
        use crate::plan::ShardRows;
        let p = prepared(2000);
        for fiber_cache_bytes in [512 * 1024, 4 * 1024] {
            let cfg = GammaConfig {
                fiber_cache_bytes,
                ..GammaConfig::default()
            };
            let base = GammaEngine::new(cfg).run(&p);
            for shard in [ShardRows::Fixed(64), ShardRows::Fixed(257), ShardRows::Auto] {
                let e = GammaEngine::new(GammaConfig {
                    shard_rows: shard,
                    ..cfg
                });
                let sharded = grow_sim::exec::with_workers(4, || e.run(&p));
                assert_eq!(
                    base, sharded,
                    "cache={fiber_cache_bytes} {shard:?} parallel"
                );
                let serial = grow_sim::exec::with_mode(grow_sim::ExecMode::Serial, || e.run(&p));
                assert_eq!(base, serial, "cache={fiber_cache_bytes} {shard:?} serial");
            }
        }
    }

    #[test]
    fn no_evict_fast_path_matches_lru_walk() {
        // When capacity >= universe the LRU never evicts, so the
        // first-touch stamp walk must agree with a barely-larger LRU
        // configuration probe for probe. Compare against a cache exactly
        // at the eviction boundary: one row fewer of capacity flips the
        // engine onto the real LRU path, so equal reports across the
        // boundary would not be guaranteed — instead check that the
        // boundary capacity (the smallest no-evict cache) and a huge one
        // report identical runs.
        let p = prepared(1500);
        let f = p.layers[0].f_out as u64;
        let boundary = GammaEngine::new(GammaConfig {
            // cache_rows = bytes / (f*12) == cols exactly.
            fiber_cache_bytes: p.adjacency.cols() as u64 * f * 12,
            ..GammaConfig::default()
        })
        .run(&p);
        let huge = GammaEngine::new(GammaConfig {
            fiber_cache_bytes: 1 << 30,
            ..GammaConfig::default()
        })
        .run(&p);
        // Aggregation hit/miss is capacity-independent once nothing
        // evicts: both report pure first-touch statistics.
        for (a, b) in boundary.layers.iter().zip(huge.layers.iter()) {
            assert_eq!(a.aggregation.cache, b.aggregation.cache);
        }
    }
}
