//! Property battery for the end-to-end multi-PE execution model
//! (`exec=e2e`), at the engine level:
//!
//! * with one PE, an end-to-end run is bit-identical to the post-hoc
//!   composition — every counter the golden snapshots render;
//! * per-PE busy cycles and per-cluster in-system cycles are two
//!   groupings of the same time, phase by phase (conservation);
//! * the end-to-end makespan is monotonically non-increasing in the PE
//!   count on seeded engine sweeps, for every engine × scheduler;
//! * `e2e` reports are bit-identical between `GROW_SERIAL=1` and
//!   oversubscribed parallel execution;
//! * the legacy summary attached to an `e2e` report describes the report
//!   itself (makespan == total cycles), and the per-layer breakdown is
//!   complete and well-formed.

use grow::accel::registry::{self, ENGINE_NAMES};
use grow::accel::schedule::SCHEDULER_NAMES;
use grow::accel::{prepare, PartitionStrategy, PreparedWorkload, RunReport};
use grow::sim::exec::{with_mode, with_workers, ExecMode};

mod common;
use common::{cases, render};

fn workloads() -> Vec<(&'static str, PreparedWorkload)> {
    cases()
        .into_iter()
        .map(|(name, spec, seed)| {
            let workload = spec.instantiate(seed);
            let prepared = prepare(
                &workload,
                PartitionStrategy::Multilevel { cluster_nodes: 100 },
                4096,
            );
            (name, prepared)
        })
        .collect()
}

fn run(engine: &str, overrides: &[(&str, &str)], prepared: &PreparedWorkload) -> RunReport {
    registry::engine_from_overrides(engine, overrides)
        .expect("registered engine and overrides")
        .run(prepared)
}

fn rendered(report: &RunReport) -> String {
    let mut out = String::new();
    render(report, &mut out);
    out
}

#[test]
fn single_pe_e2e_is_bit_identical_to_post_hoc() {
    // The tentpole equivalence: `exec=e2e pes=1` renders the exact same
    // counters as the default post-hoc composition, for every engine and
    // scheduler (with one PE nothing contends; the calibrated fluid
    // durations collapse to the detailed sequential timeline).
    for (name, prepared) in workloads() {
        for engine in ENGINE_NAMES {
            let post_hoc = run(engine, &[], &prepared);
            for scheduler in SCHEDULER_NAMES {
                let e2e = run(
                    engine,
                    &[("exec", "e2e"), ("scheduler", scheduler)],
                    &prepared,
                );
                assert_eq!(
                    rendered(&post_hoc),
                    rendered(&e2e),
                    "{name}/{engine}/{scheduler}: 1-PE e2e diverged from post-hoc"
                );
                assert_eq!(e2e.total_cycles(), post_hoc.total_cycles());
                assert_eq!(e2e.exec, "e2e");
                assert_eq!(post_hoc.exec, "post_hoc");
            }
        }
    }
}

#[test]
fn per_pe_busy_cycles_are_conserved_phase_by_phase() {
    for (name, prepared) in workloads() {
        for engine in ENGINE_NAMES {
            for pes in ["2", "4", "8"] {
                let report = run(
                    engine,
                    &[("exec", "e2e"), ("scheduler", "ws"), ("pes", pes)],
                    &prepared,
                );
                let breakdown = report
                    .multi_pe_breakdown()
                    .expect("e2e attaches the breakdown");
                assert_eq!(breakdown.layers.len(), report.layers.len());
                for (li, layer) in breakdown.layers.iter().enumerate() {
                    for (phase, pe) in [
                        ("combination", &layer.combination),
                        ("aggregation", &layer.aggregation),
                    ] {
                        assert_eq!(pe.per_pe_busy.len(), breakdown.pes);
                        let busy: f64 = pe.per_pe_busy.iter().sum();
                        let rel = (busy - pe.cluster_time).abs() / busy.max(1.0);
                        assert!(
                            rel < 1e-9,
                            "{name}/{engine}/pes={pes} layer {li} {phase}: \
                             busy {busy} vs cluster time {}",
                            pe.cluster_time
                        );
                        // No PE can be busy longer than the phase ran.
                        for &b in &pe.per_pe_busy {
                            assert!(b <= pe.makespan * (1.0 + 1e-9));
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn e2e_makespan_is_monotone_in_pes() {
    for (name, prepared) in workloads() {
        for engine in ENGINE_NAMES {
            for scheduler in SCHEDULER_NAMES {
                let mut prev = u64::MAX;
                for pes in ["1", "2", "4", "8", "16"] {
                    let total = run(
                        engine,
                        &[("exec", "e2e"), ("scheduler", scheduler), ("pes", pes)],
                        &prepared,
                    )
                    .total_cycles();
                    assert!(
                        total <= prev,
                        "{name}/{engine}/{scheduler}: pes={pes} slower ({total} > {prev})"
                    );
                    prev = total;
                }
            }
        }
    }
}

#[test]
fn multi_pe_execution_genuinely_changes_phase_counters() {
    // The whole point of the mode: with real concurrency the per-phase
    // cycle counts shrink (these workloads have enough clusters for 4 PEs
    // to matter), while scheduling-invariant counters stay untouched.
    for (name, prepared) in workloads() {
        for engine in ENGINE_NAMES {
            let one = run(engine, &[("exec", "e2e")], &prepared);
            let four = run(engine, &[("exec", "e2e"), ("pes", "4")], &prepared);
            assert!(
                four.total_cycles() < one.total_cycles(),
                "{name}/{engine}: 4 PEs {} vs 1 PE {}",
                four.total_cycles(),
                one.total_cycles()
            );
            assert_eq!(four.mac_ops(), one.mac_ops(), "work is PE-invariant");
            assert_eq!(
                four.dram_bytes(),
                one.dram_bytes(),
                "traffic is PE-invariant"
            );
        }
    }
}

#[test]
fn e2e_summary_describes_the_report() {
    for (_, prepared) in workloads() {
        for engine in ENGINE_NAMES {
            let report = run(
                engine,
                &[("exec", "e2e"), ("scheduler", "ca"), ("pes", "4")],
                &prepared,
            );
            let summary = report.multi_pe.as_ref().expect("summary attached");
            assert_eq!(summary.scheduler, "ca");
            assert_eq!(summary.pes, 4);
            assert_eq!(summary.per_pe_busy.len(), 4);
            assert!(
                (summary.makespan - report.total_cycles() as f64).abs() < 1e-9,
                "the e2e summary makespan is the report's cycle count"
            );
            assert!(summary.imbalance >= 1.0 - 1e-12);
        }
    }
}

#[test]
fn e2e_reports_are_execution_mode_invariant() {
    // The acceptance bar: e2e runs — breakdowns, summaries, every counter
    // — must be bit-identical between forced-serial and oversubscribed
    // parallel execution, for every engine and scheduler.
    for (name, prepared) in workloads().into_iter().take(1) {
        for engine in ENGINE_NAMES {
            for scheduler in SCHEDULER_NAMES {
                let overrides = [("exec", "e2e"), ("scheduler", scheduler), ("pes", "4")];
                let serial = with_mode(ExecMode::Serial, || run(engine, &overrides, &prepared));
                let parallel = with_workers(8, || run(engine, &overrides, &prepared));
                assert_eq!(serial, parallel, "{name}/{engine}/{scheduler}");
            }
        }
    }
}

#[test]
fn e2e_composes_with_sharding_and_the_lru_study() {
    // Orthogonal GROW axes must not interfere: intra-cluster sharding is
    // still report-invariant under e2e, and the serial LRU replacement
    // study still runs (its per-cluster timelines feed the composition).
    let (_, prepared) = workloads().remove(0);
    let base = run("grow", &[("exec", "e2e"), ("pes", "4")], &prepared);
    let sharded = run(
        "grow",
        &[("exec", "e2e"), ("pes", "4"), ("shard_rows", "50")],
        &prepared,
    );
    assert_eq!(base, sharded, "sharding stays a pure throughput knob");
    let auto = run(
        "grow",
        &[("exec", "e2e"), ("pes", "4"), ("shard_rows", "auto")],
        &prepared,
    );
    assert_eq!(base, auto);
    let lru = run(
        "grow",
        &[("exec", "e2e"), ("pes", "4"), ("replacement", "lru")],
        &prepared,
    );
    assert!(lru.total_cycles() > 0);
    assert!(lru.multi_pe_breakdown().is_some());
}
