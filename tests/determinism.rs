//! Reproducibility: every stage of the pipeline is seeded and must be
//! bit-identical across repeated runs — the property that makes the
//! experiment harness's published numbers regenerable.

use grow::accel::{
    experiments::DatasetEval, prepare, Accelerator, GammaEngine, GcnaxEngine, GrowEngine,
    MatRaptorEngine, PartitionStrategy,
};
use grow::model::DatasetKey;

#[test]
fn dataset_generation_is_seed_deterministic() {
    let spec = DatasetKey::Flickr.spec().scaled_to(2000);
    let a = spec.instantiate(123);
    let b = spec.instantiate(123);
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.layers, b.layers);
    let c = spec.instantiate(124);
    assert_ne!(a.graph, c.graph, "different seeds must differ");
}

#[test]
fn preparation_is_deterministic() {
    let w = DatasetKey::Pubmed.spec().scaled_to(1000).instantiate(7);
    let p1 = prepare(&w, PartitionStrategy::multilevel_default(), 4096);
    let p2 = prepare(&w, PartitionStrategy::multilevel_default(), 4096);
    assert_eq!(p1.adjacency, p2.adjacency);
    assert_eq!(p1.clusters, p2.clusters);
    assert_eq!(p1.hdn_lists, p2.hdn_lists);
}

#[test]
fn every_engine_is_deterministic() {
    let w = DatasetKey::Pubmed.spec().scaled_to(800).instantiate(7);
    let p = prepare(&w, PartitionStrategy::multilevel_default(), 4096);
    let engines: Vec<Box<dyn Accelerator>> = vec![
        Box::new(GrowEngine::default()),
        Box::new(GcnaxEngine::default()),
        Box::new(MatRaptorEngine::default()),
        Box::new(GammaEngine::default()),
    ];
    for engine in engines {
        assert_eq!(engine.run(&p), engine.run(&p), "{}", engine.name());
    }
}

#[test]
fn dataset_eval_is_reproducible_end_to_end() {
    let spec = DatasetKey::Cora.spec().scaled_to(500);
    let e1 = DatasetEval::from_spec(spec, 31);
    let e2 = DatasetEval::from_spec(spec, 31);
    let r1 = GrowEngine::default().run(&e1.partitioned);
    let r2 = GrowEngine::default().run(&e2.partitioned);
    assert_eq!(r1, r2);
}
