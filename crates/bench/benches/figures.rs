//! Wall-clock benches: one entry per paper table/figure, exercising the
//! exact code path that regenerates it at a CI-friendly scale.
//!
//! These measure the *simulator's* wall-clock cost; the simulated results
//! themselves (the paper's numbers) come from the `experiments` binary,
//! which runs the same functions at full surrogate scale.
//!
//! The offline build has no crates.io access, so this is a hand-rolled
//! `harness = false` bench instead of Criterion: each entry is warmed up
//! once, then timed over a fixed iteration count, reporting the mean and
//! minimum per-iteration time. Run with `cargo bench -p grow-bench`.
//! Set `BENCH_JSON=path.json` to also write machine-readable results.

use std::hint::black_box;

use grow_bench::timing::{self, Timing};
use grow_core::experiments::{self, DatasetEval};
use grow_core::{Accelerator, GammaEngine, GcnaxEngine, GrowConfig, GrowEngine, MatRaptorEngine};
use grow_model::DatasetKey;
use grow_sparse::analysis::{self, FIG5A_BOUNDS};
use grow_sparse::RowMajorSparse;

struct BenchResult {
    name: &'static str,
    timing: Timing,
}

fn bench(name: &'static str, iters: u32, f: impl FnMut()) -> BenchResult {
    let timing = timing::sample(iters, f);
    println!(
        "{name:<40} {:>12.1} us/iter (min {:>12.1} us, {iters} iters)",
        timing.mean_ns / 1e3,
        timing.min_ns / 1e3
    );
    BenchResult { name, timing }
}

fn bench_eval() -> DatasetEval {
    DatasetEval::from_spec(DatasetKey::Pubmed.spec().scaled_to(4000), 42)
}

fn main() {
    let eval = bench_eval();
    let mut results = Vec::new();

    results.push(bench("table1_dataset_generation", 10, || {
        let spec = DatasetKey::Cora.spec().scaled_to(1000);
        black_box(spec.instantiate(7).graph.directed_edges());
    }));

    results.push(bench("fig2_mac_counts", 20, || {
        let l = &eval.workload.layers[0];
        black_box(analysis::gcn_mac_counts(
            &eval.base.adjacency,
            &l.x.view(),
            l.f_out,
        ));
    }));

    results.push(bench("fig5_tile_histogram", 20, || {
        black_box(analysis::tile_nnz_histogram(
            &RowMajorSparse::Pattern(&eval.base.adjacency),
            128,
            128,
            FIG5A_BOUNDS,
        ));
    }));

    let gcnax = GcnaxEngine::default();
    results.push(bench("fig6_fig7_gcnax_run", 10, || {
        black_box(gcnax.run(&eval.base).total_cycles());
    }));

    let grow = GrowEngine::default();
    results.push(bench("fig17_grow_without_partitioning", 10, || {
        black_box(grow.run(&eval.base).total_cycles());
    }));
    results.push(bench("fig17_grow_with_partitioning", 10, || {
        black_box(grow.run(&eval.partitioned).total_cycles());
    }));

    results.push(bench("fig19_traffic_ablation", 5, || {
        black_box(experiments::traffic_ablation(&eval, &GrowConfig::default()));
    }));

    let profiles = GrowEngine::default()
        .run(&eval.partitioned)
        .cluster_profiles();
    results.push(bench("fig24_multi_pe_fluid", 20, || {
        black_box(grow_core::multi_pe::simulate(&profiles, 16, 128.0));
    }));

    let runahead4 = GrowEngine::new(GrowConfig {
        runahead: 4,
        ldn_entries: 4,
        ..GrowConfig::default()
    });
    results.push(bench("fig25a_runahead_point", 10, || {
        black_box(runahead4.run(&eval.partitioned).total_cycles());
    }));

    let mat = MatRaptorEngine::default();
    let gamma = GammaEngine::default();
    results.push(bench("fig26_matraptor", 10, || {
        black_box(mat.run(&eval.base).total_cycles());
    }));
    results.push(bench("fig26_gamma", 10, || {
        black_box(gamma.run(&eval.base).total_cycles());
    }));

    let w = DatasetKey::Pubmed.spec().scaled_to(4000).instantiate(42);
    results.push(bench("fig13_partition_preprocessing", 5, || {
        black_box(grow_core::prepare(
            &w,
            grow_core::PartitionStrategy::Multilevel { cluster_nodes: 512 },
            4096,
        ));
    }));

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let mut rows = Vec::new();
        for r in &results {
            rows.push(grow_bench::json::object(&[
                ("name", grow_bench::json::string(r.name)),
                ("iters", grow_bench::json::uint(r.timing.iters as u64)),
                ("mean_ns", grow_bench::json::number(r.timing.mean_ns)),
                ("min_ns", grow_bench::json::number(r.timing.min_ns)),
            ]));
        }
        let doc = grow_bench::json::array(rows);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}
