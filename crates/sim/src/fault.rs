//! Deterministic fault injection and cooperative cancellation.
//!
//! The serving layer around the simulator is where real-world failure
//! handling lives — but failure paths that can only be reached by real
//! crashes are failure paths that are never tested. This module makes
//! faults a *configuration input*: a [`FaultPlan`] names injection sites
//! threaded through the hot layers (DRAM transfer issue, plan/replay
//! chunk hand-off, store read/write, the serving worker itself, the
//! multi-PE scheduler dispatch) and
//! describes, per site, the op ordinal at which to inject and whether the
//! site reports an error ([`SimFault`]) or panics outright.
//!
//! # Determinism contract
//!
//! Injection decisions are **count-based, never clock-based**: a site
//! trips when its local operation counter reaches the spec's `nth` value
//! while the current retry attempt is within the spec's `attempts`
//! budget. Counters are owned by deterministic units — a [`Dram`]
//! instance counts its own transfers, a pipeline hand-off uses the chunk
//! index, a store scope counts its own reads/writes — so the serial and
//! parallel execution legs inject at exactly the same operation, and a
//! retried run whose specs have exhausted their `attempts` budget is
//! bit-identical to a fault-free run.
//!
//! The plan, the retry-attempt number, and the [`CancelToken`] are
//! thread-local (armed with [`with_plan`] / [`with_attempt`] /
//! [`with_cancel`]) and are replayed onto [`exec`](crate::exec) worker
//! threads via [`FaultContext`], mirroring
//! [`ExecContext`](crate::exec::ExecContext) — no global mutable state,
//! so concurrent jobs with different plans cannot perturb each other.
//!
//! Cancellation is *cooperative*: [`check_cancel`] is called at cluster
//! and layer boundaries and unwinds with [`SimFault::Cancelled`] when the
//! token has been tripped (or its deadline passed). Completed results are
//! never affected — a job either finishes bit-identically or does not
//! finish.
//!
//! [`Dram`]: crate::Dram

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Maximum number of [`FaultSpec`]s one [`FaultPlan`] can carry. A fixed
/// bound keeps the plan `Copy` (it travels inside engine configs and
/// thread-local cells); four independent sites per job is far more chaos
/// than any scenario needs.
pub const MAX_FAULT_SPECS: usize = 4;

/// A named injection point threaded through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A DRAM transfer issue ([`Dram`](crate::Dram) counts its own
    /// transfers, so cluster-parallel legs inject identically).
    DramIssue,
    /// A plan/replay chunk hand-off in
    /// [`bounded_pipeline`](crate::exec::bounded_pipeline) /
    /// [`bounded_pipeline_seq`](crate::exec::bounded_pipeline_seq): the
    /// ordinal is the chunk index, identical in serial and overlapped
    /// execution.
    ExecHandoff,
    /// A result-store entry read (ordinal counted per armed scope).
    StoreRead,
    /// A result-store entry write, tripped *between* the temporary-file
    /// write and the atomic rename — the torn-write simulator.
    StoreWrite,
    /// The serving worker itself: a supervisor-kill checked before a job
    /// runs. Never retried; exists to prove waiters survive worker death.
    /// The spec's `nth` selects *which* pool worker dies: worker `k` of N
    /// trips on `worker:…:k` when it picks the job up, so a single spec
    /// can target any member of a multi-worker pool.
    Worker,
    /// A multi-PE scheduler dispatch: tripped each time the end-to-end
    /// model hands a cluster to a processing element. The ordinal is the
    /// dispatch count within one simulation, identical in serial and
    /// parallel legs (the whole dispatch loop runs on one thread).
    Sched,
}

impl FaultSite {
    /// Every site, in spec-grammar order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::DramIssue,
        FaultSite::ExecHandoff,
        FaultSite::StoreRead,
        FaultSite::StoreWrite,
        FaultSite::Worker,
        FaultSite::Sched,
    ];

    /// The site's spec-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DramIssue => "dram",
            FaultSite::ExecHandoff => "exec",
            FaultSite::StoreRead => "store_read",
            FaultSite::StoreWrite => "store_write",
            FaultSite::Worker => "worker",
            FaultSite::Sched => "sched",
        }
    }

    /// Parses a spec-grammar name.
    pub fn parse(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|s| s.name() == name)
    }

    fn index(self) -> usize {
        match self {
            FaultSite::DramIssue => 0,
            FaultSite::ExecHandoff => 1,
            FaultSite::StoreRead => 2,
            FaultSite::StoreWrite => 3,
            FaultSite::Worker => 4,
            FaultSite::Sched => 5,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an armed site does when its spec trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// Report a structured [`SimFault`] (sites whose signatures cannot
    /// return errors unwind with the fault as the panic payload, which
    /// the supervisor downcasts back into a structured error).
    Error,
    /// Panic with a plain message — the "arbitrary bug" simulator; the
    /// supervisor can only report it as a caught panic.
    Panic,
}

impl FaultAction {
    /// The action's spec-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Error => "error",
            FaultAction::Panic => "panic",
        }
    }

    /// Parses a spec-grammar name.
    pub fn parse(name: &str) -> Option<FaultAction> {
        match name {
            "error" => Some(FaultAction::Error),
            "panic" => Some(FaultAction::Panic),
            _ => None,
        }
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injection rule: at `site`, on its `nth` operation, while the
/// retry attempt is at most `attempts`, perform `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where to inject.
    pub site: FaultSite,
    /// Error or panic.
    pub action: FaultAction,
    /// 1-based operation ordinal at the site.
    pub nth: u64,
    /// Inject while the current attempt number is `<= attempts`; an
    /// `attempts` below the supervisor's retry budget makes the fault
    /// *transient* — the retried run completes fault-free and
    /// bit-identical to the baseline.
    pub attempts: u64,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}:{}",
            self.site, self.action, self.nth, self.attempts
        )
    }
}

/// A failed [`FaultPlan::parse`], carrying the human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError(String);

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FaultParseError {}

/// A deterministic injection plan: up to [`MAX_FAULT_SPECS`] rules.
///
/// The textual grammar (the `fault=` registry value) is
/// `site:action:nth[:attempts]` specs joined by `+`, or `off`/`none` for
/// the empty plan:
///
/// ```
/// use grow_sim::fault::{FaultAction, FaultPlan, FaultSite};
///
/// let plan = FaultPlan::parse("dram:error:3+store_write:panic:1:2").unwrap();
/// assert!(plan.is_armed());
/// assert_eq!(
///     plan.action_at(FaultSite::DramIssue, 3, 1),
///     Some(FaultAction::Error)
/// );
/// assert_eq!(plan.action_at(FaultSite::DramIssue, 3, 2), None, "transient");
/// assert!(FaultPlan::parse("off").unwrap().is_off());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    specs: [Option<FaultSpec>; MAX_FAULT_SPECS],
}

impl FaultPlan {
    /// The empty (disarmed) plan — the default everywhere; leaves every
    /// report byte-identical to a build without fault support.
    pub const OFF: FaultPlan = FaultPlan {
        specs: [None; MAX_FAULT_SPECS],
    };

    /// A plan holding one spec.
    pub fn single(spec: FaultSpec) -> FaultPlan {
        let mut plan = FaultPlan::OFF;
        plan.specs[0] = Some(spec);
        plan
    }

    /// Appends a spec.
    ///
    /// # Errors
    ///
    /// Fails when the plan already holds [`MAX_FAULT_SPECS`] specs.
    pub fn push(&mut self, spec: FaultSpec) -> Result<(), FaultParseError> {
        match self.specs.iter_mut().find(|s| s.is_none()) {
            Some(slot) => {
                *slot = Some(spec);
                Ok(())
            }
            None => Err(FaultParseError(format!(
                "too many fault specs (max {MAX_FAULT_SPECS})"
            ))),
        }
    }

    /// The plan's specs, in declaration order.
    pub fn specs(&self) -> impl Iterator<Item = FaultSpec> + '_ {
        self.specs.iter().filter_map(|s| *s)
    }

    /// True when the plan holds at least one spec.
    pub fn is_armed(&self) -> bool {
        self.specs.iter().any(|s| s.is_some())
    }

    /// True when the plan holds no specs.
    pub fn is_off(&self) -> bool {
        !self.is_armed()
    }

    /// Parses the `fault=` grammar (see the type docs).
    ///
    /// # Errors
    ///
    /// Reports the first malformed spec, a zero `nth`/`attempts`, or a
    /// spec count over [`MAX_FAULT_SPECS`].
    pub fn parse(value: &str) -> Result<FaultPlan, FaultParseError> {
        let value = value.trim();
        if value.eq_ignore_ascii_case("off") || value.eq_ignore_ascii_case("none") {
            return Ok(FaultPlan::OFF);
        }
        let mut plan = FaultPlan::OFF;
        for spec_text in value.split('+') {
            let mut parts = spec_text.split(':');
            let site = parts
                .next()
                .and_then(FaultSite::parse)
                .ok_or_else(|| bad_spec(spec_text, "unknown site"))?;
            let action = parts
                .next()
                .and_then(FaultAction::parse)
                .ok_or_else(|| bad_spec(spec_text, "unknown action"))?;
            let nth = match parts.next() {
                None => 1,
                Some(n) => parse_positive(spec_text, n)?,
            };
            let attempts = match parts.next() {
                None => 1,
                Some(n) => parse_positive(spec_text, n)?,
            };
            if parts.next().is_some() {
                return Err(bad_spec(spec_text, "trailing fields"));
            }
            plan.push(FaultSpec {
                site,
                action,
                nth,
                attempts,
            })?;
        }
        Ok(plan)
    }

    /// The canonical textual form ([`FaultPlan::parse`] round-trips it).
    pub fn render(&self) -> String {
        if self.is_off() {
            return "off".to_string();
        }
        let parts: Vec<String> = self.specs().map(|s| s.to_string()).collect();
        parts.join("+")
    }

    /// A seeded pseudo-random single-spec plan over `sites` — the chaos
    /// grid generator. Pure in `seed` (splitmix64), so a seeded soak is
    /// reproducible run to run and identical in serial and parallel legs.
    /// `max_attempts` bounds the generated spec's `attempts` field (use a
    /// value below the supervisor's retry budget to generate transient
    /// faults only).
    pub fn seeded(seed: u64, sites: &[FaultSite], max_nth: u64, max_attempts: u64) -> FaultPlan {
        assert!(!sites.is_empty(), "seeded plan needs at least one site");
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let site = sites[(next() % sites.len() as u64) as usize];
        let action = if next() % 2 == 0 {
            FaultAction::Error
        } else {
            FaultAction::Panic
        };
        FaultPlan::single(FaultSpec {
            site,
            action,
            nth: 1 + next() % max_nth.max(1),
            attempts: 1 + next() % max_attempts.max(1),
        })
    }

    /// The action this plan takes at `site`, op `ordinal`, retry attempt
    /// `attempt` — the pure decision function every site consults.
    pub fn action_at(&self, site: FaultSite, ordinal: u64, attempt: u64) -> Option<FaultAction> {
        self.specs()
            .find(|s| s.site == site && s.nth == ordinal && attempt <= s.attempts)
            .map(|s| s.action)
    }
}

fn bad_spec(spec: &str, reason: &str) -> FaultParseError {
    FaultParseError(format!(
        "bad fault spec '{spec}' ({reason}; expected site:action[:nth[:attempts]], \
         sites: dram, exec, store_read, store_write, worker, sched; actions: error, panic)"
    ))
}

fn parse_positive(spec: &str, text: &str) -> Result<u64, FaultParseError> {
    match text.parse::<u64>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(bad_spec(spec, "counts must be positive integers")),
    }
}

/// Why a cancelled job stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Requested,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CancelReason::Requested => "cancellation requested",
            CancelReason::DeadlineExceeded => "deadline exceeded",
        })
    }
}

/// The structured payload an injected or cancelled simulation unwinds
/// with. Supervisors downcast the panic payload to this type to
/// distinguish injected faults and cancellations from genuine bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimFault {
    /// An injected fault from a [`FaultSpec`] with [`FaultAction::Error`].
    Injected {
        /// The site that tripped.
        site: FaultSite,
        /// The op ordinal it tripped at.
        op: u64,
    },
    /// A cooperative cancellation (see [`check_cancel`]).
    Cancelled {
        /// Why the token tripped.
        reason: CancelReason,
    },
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFault::Injected { site, op } => {
                write!(f, "injected fault at site '{site}' (op {op})")
            }
            SimFault::Cancelled {
                reason: CancelReason::Requested,
            } => f.write_str("cancelled by request"),
            SimFault::Cancelled {
                reason: CancelReason::DeadlineExceeded,
            } => f.write_str("cancelled: deadline exceeded"),
        }
    }
}

impl std::error::Error for SimFault {}

/// A shared cancellation flag (plus optional deadline) checked
/// cooperatively at cluster and layer boundaries. Cheap to clone through
/// an `Arc`; the serving layer hands one end to the submitter's ticket
/// and arms the other around the job's execution.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally trips once `deadline` passes. The wall
    /// clock is consulted only when a deadline is set, and only decides
    /// *whether* a job completes — never what a completed report
    /// contains — so the determinism contract is unaffected.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            cancelled: AtomicBool::new(false),
            deadline: Some(deadline),
        }
    }

    /// Trips the token; every subsequent boundary check unwinds.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// True when [`cancel`](Self::cancel) has been called (does not
    /// consult the deadline).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The reason the token has tripped, if it has.
    pub fn state(&self) -> Option<CancelReason> {
        if self.is_cancelled() {
            return Some(CancelReason::Requested);
        }
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }
}

thread_local! {
    /// Fast disarmed check: true iff `PLAN` holds at least one spec. Read
    /// on every site poke; the plan itself is only copied when armed.
    static ARMED: Cell<bool> = const { Cell::new(false) };
    /// The armed plan of the current scope ([`with_plan`]).
    static PLAN: Cell<FaultPlan> = const { Cell::new(FaultPlan::OFF) };
    /// The 1-based retry attempt of the current scope ([`with_attempt`]).
    static ATTEMPT: Cell<u64> = const { Cell::new(1) };
    /// Per-site op counters of the current scope, reset by [`with_plan`]
    /// (used by the single-threaded store sites via [`check_scoped`]).
    static SCOPED_OPS: Cell<[u64; 6]> = const { Cell::new([0; 6]) };
    /// The cancel token of the current scope ([`with_cancel`]).
    static CANCEL: RefCell<Option<Arc<CancelToken>>> = const { RefCell::new(None) };
}

/// Process-wide count of injection decisions taken — telemetry only (the
/// chaos soak asserts a floor on it); never consulted by a decision, so
/// it cannot perturb determinism.
static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Total injections performed by this process so far.
pub fn injected_total() -> u64 {
    INJECTED_TOTAL.load(Ordering::Relaxed)
}

/// Restores a thread-local [`Cell`] on drop (also on panic).
struct Restore<T: Copy + 'static>(&'static std::thread::LocalKey<Cell<T>>, T);

impl<T: Copy + 'static> Drop for Restore<T> {
    fn drop(&mut self) {
        self.0.set(self.1);
    }
}

/// Restores the thread-local cancel token on drop (also on panic).
struct RestoreCancel(Option<Arc<CancelToken>>);

impl Drop for RestoreCancel {
    fn drop(&mut self) {
        CANCEL.with(|c| *c.borrow_mut() = self.0.take());
    }
}

/// Runs `f` with `plan` armed on this thread (scope-local op counters
/// reset), restoring the previous plan and counters afterwards (also on
/// panic). Engines arm their configured plan around the layer loop;
/// the serving layer arms a job's plan around its store operations.
pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    let _armed = Restore(&ARMED, ARMED.replace(plan.is_armed()));
    let _plan = Restore(&PLAN, PLAN.replace(plan));
    let _ops = Restore(&SCOPED_OPS, SCOPED_OPS.replace([0; 6]));
    f()
}

/// The plan armed on this thread ([`FaultPlan::OFF`] when none).
pub fn current_plan() -> FaultPlan {
    PLAN.get()
}

/// Runs `f` with the 1-based retry `attempt` number set on this thread,
/// restoring the previous value afterwards (also on panic).
pub fn with_attempt<R>(attempt: u64, f: impl FnOnce() -> R) -> R {
    let _attempt = Restore(&ATTEMPT, ATTEMPT.replace(attempt.max(1)));
    f()
}

/// The 1-based retry attempt in effect on this thread (1 when unset).
pub fn current_attempt() -> u64 {
    ATTEMPT.get()
}

/// Runs `f` with `token` installed as this thread's cancel token,
/// restoring the previous token afterwards (also on panic).
pub fn with_cancel<R>(token: Option<Arc<CancelToken>>, f: impl FnOnce() -> R) -> R {
    let _restore = RestoreCancel(CANCEL.with(|c| c.replace(token)));
    f()
}

/// The cancel state of this thread's token, if one is armed and tripped.
/// Non-unwinding — supervisors probe this between retry attempts.
pub fn cancel_state() -> Option<CancelReason> {
    CANCEL.with(|c| c.borrow().as_ref().and_then(|t| t.state()))
}

/// Cooperative cancellation point: unwinds with [`SimFault::Cancelled`]
/// when this thread's token has tripped. Called at layer and cluster
/// boundaries by the shared pipeline harness; near-free when no token is
/// armed.
pub fn check_cancel() {
    if let Some(reason) = cancel_state() {
        std::panic::panic_any(SimFault::Cancelled { reason });
    }
}

/// A snapshot of this thread's fault state (plan, attempt, scoped
/// counters, cancel token) for replay on an [`exec`](crate::exec) worker
/// thread — the fault-layer counterpart of
/// [`ExecContext`](crate::exec::ExecContext).
#[derive(Debug, Clone)]
pub struct FaultContext {
    plan: FaultPlan,
    armed: bool,
    attempt: u64,
    scoped: [u64; 6],
    cancel: Option<Arc<CancelToken>>,
}

impl FaultContext {
    /// Captures the calling thread's fault state.
    pub fn capture() -> FaultContext {
        FaultContext {
            plan: PLAN.get(),
            armed: ARMED.get(),
            attempt: ATTEMPT.get(),
            scoped: SCOPED_OPS.get(),
            cancel: CANCEL.with(|c| c.borrow().clone()),
        }
    }

    /// Runs `f` with this snapshot in effect on the current thread,
    /// restoring the previous state afterwards (also on panic).
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        let _armed = Restore(&ARMED, ARMED.replace(self.armed));
        let _plan = Restore(&PLAN, PLAN.replace(self.plan));
        let _attempt = Restore(&ATTEMPT, ATTEMPT.replace(self.attempt));
        let _ops = Restore(&SCOPED_OPS, SCOPED_OPS.replace(self.scoped));
        let _cancel = RestoreCancel(CANCEL.with(|c| c.replace(self.cancel.clone())));
        f()
    }
}

/// The armed decision for (`site`, `ordinal`) on this thread. Counts the
/// injection when one is taken.
fn decide(site: FaultSite, ordinal: u64) -> Option<FaultAction> {
    let action = PLAN.get().action_at(site, ordinal, ATTEMPT.get())?;
    INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
    Some(action)
}

/// Site poke for callers that *can* return errors (the store): checks the
/// plan at the given op `ordinal`. [`FaultAction::Error`] comes back as
/// `Err`; [`FaultAction::Panic`] panics with a plain message.
#[inline]
pub fn check_at(site: FaultSite, ordinal: u64) -> Result<(), SimFault> {
    if !ARMED.get() {
        return Ok(());
    }
    match decide(site, ordinal) {
        None => Ok(()),
        Some(FaultAction::Error) => Err(SimFault::Injected { site, op: ordinal }),
        Some(FaultAction::Panic) => {
            panic!("injected panic at site '{site}' (op {ordinal})")
        }
    }
}

/// Site poke for hot paths whose signatures cannot return errors (DRAM
/// issue, pipeline hand-off): like [`check_at`] but an injected *error*
/// unwinds with the structured [`SimFault`] payload, which the
/// supervisor downcasts back into an error. Near-free when disarmed (one
/// thread-local flag read).
#[inline]
pub fn trip_at(site: FaultSite, ordinal: u64) {
    if !ARMED.get() {
        return;
    }
    match decide(site, ordinal) {
        None => {}
        Some(FaultAction::Error) => std::panic::panic_any(SimFault::Injected { site, op: ordinal }),
        Some(FaultAction::Panic) => {
            panic!("injected panic at site '{site}' (op {ordinal})")
        }
    }
}

/// Like [`check_at`] with the ordinal taken from this scope's per-site
/// counter (incremented per call; reset by [`with_plan`]). For
/// single-threaded sites — the store — where "the job's nth store read"
/// is the natural unit.
pub fn check_scoped(site: FaultSite) -> Result<(), SimFault> {
    if !ARMED.get() {
        return Ok(());
    }
    let mut ops = SCOPED_OPS.get();
    ops[site.index()] += 1;
    let ordinal = ops[site.index()];
    SCOPED_OPS.set(ops);
    check_at(site, ordinal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_and_defaults() {
        let plan = FaultPlan::parse("dram:error:3+store_write:panic:1:2").unwrap();
        assert_eq!(plan.render(), "dram:error:3:1+store_write:panic:1:2");
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
        let sched = FaultPlan::parse("sched:error:2").unwrap();
        assert_eq!(
            sched.action_at(FaultSite::Sched, 2, 1),
            Some(FaultAction::Error)
        );
        let shorthand = FaultPlan::parse("exec:panic").unwrap();
        assert_eq!(
            shorthand.specs().next().unwrap(),
            FaultSpec {
                site: FaultSite::ExecHandoff,
                action: FaultAction::Panic,
                nth: 1,
                attempts: 1
            }
        );
        for off in ["off", "none", "OFF", " none "] {
            assert!(FaultPlan::parse(off).unwrap().is_off(), "{off:?}");
        }
    }

    #[test]
    fn grammar_rejects_malformed_specs() {
        for bad in [
            "",
            "dram",
            "dram:boom",
            "nowhere:error",
            "dram:error:0",
            "dram:error:1:0",
            "dram:error:1:1:1",
            "dram:error:many",
            "dram:error+exec:panic+store_read:error+store_write:error+worker:panic",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn decision_is_count_and_attempt_based() {
        let plan = FaultPlan::parse("dram:error:2:2").unwrap();
        assert_eq!(plan.action_at(FaultSite::DramIssue, 1, 1), None);
        assert_eq!(
            plan.action_at(FaultSite::DramIssue, 2, 1),
            Some(FaultAction::Error)
        );
        assert_eq!(
            plan.action_at(FaultSite::DramIssue, 2, 2),
            Some(FaultAction::Error)
        );
        assert_eq!(plan.action_at(FaultSite::DramIssue, 2, 3), None);
        assert_eq!(plan.action_at(FaultSite::ExecHandoff, 2, 1), None);
    }

    #[test]
    fn disarmed_pokes_are_noops() {
        assert!(check_at(FaultSite::StoreRead, 1).is_ok());
        trip_at(FaultSite::DramIssue, 1);
        assert!(check_scoped(FaultSite::StoreWrite).is_ok());
    }

    #[test]
    fn armed_scope_trips_and_restores() {
        let plan = FaultPlan::parse("store_read:error:2").unwrap();
        with_plan(plan, || {
            assert!(check_scoped(FaultSite::StoreRead).is_ok(), "op 1");
            let fault = check_scoped(FaultSite::StoreRead).unwrap_err();
            assert_eq!(
                fault,
                SimFault::Injected {
                    site: FaultSite::StoreRead,
                    op: 2
                }
            );
            assert!(check_scoped(FaultSite::StoreRead).is_ok(), "op 3");
        });
        // Scope counters reset per arming, and the outer scope is clean.
        with_plan(plan, || {
            assert!(check_scoped(FaultSite::StoreRead).is_ok(), "fresh op 1");
        });
        assert!(check_scoped(FaultSite::StoreRead).is_ok());
    }

    #[test]
    fn attempts_make_faults_transient() {
        let plan = FaultPlan::parse("dram:error:1:2").unwrap();
        with_plan(plan, || {
            for attempt in 1..=2 {
                with_attempt(attempt, || {
                    let hit = std::panic::catch_unwind(|| trip_at(FaultSite::DramIssue, 1));
                    let payload = hit.expect_err("attempt within budget trips");
                    let fault = payload.downcast::<SimFault>().expect("structured payload");
                    assert_eq!(
                        *fault,
                        SimFault::Injected {
                            site: FaultSite::DramIssue,
                            op: 1
                        }
                    );
                });
            }
            with_attempt(3, || trip_at(FaultSite::DramIssue, 1));
        });
    }

    #[test]
    fn panic_action_unwinds_with_a_plain_message() {
        let plan = FaultPlan::parse("exec:panic:1").unwrap();
        let payload = with_plan(plan, || {
            std::panic::catch_unwind(|| trip_at(FaultSite::ExecHandoff, 1))
        })
        .expect_err("must trip");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("injected panic"), "{message}");
    }

    #[test]
    fn cancel_token_trips_checks() {
        let token = Arc::new(CancelToken::new());
        with_cancel(Some(Arc::clone(&token)), || {
            assert_eq!(cancel_state(), None);
            check_cancel();
            token.cancel();
            assert_eq!(cancel_state(), Some(CancelReason::Requested));
            let payload =
                std::panic::catch_unwind(check_cancel).expect_err("tripped token unwinds");
            let fault = payload.downcast::<SimFault>().expect("structured payload");
            assert_eq!(
                *fault,
                SimFault::Cancelled {
                    reason: CancelReason::Requested
                }
            );
        });
        check_cancel(); // token restored away: no unwind
    }

    #[test]
    fn deadline_tokens_report_the_deadline_reason() {
        let token = Arc::new(CancelToken::with_deadline(Instant::now()));
        assert_eq!(token.state(), Some(CancelReason::DeadlineExceeded));
        assert!(!token.is_cancelled(), "flag untouched by deadline");
    }

    #[test]
    fn context_replays_state_onto_another_scope() {
        let plan = FaultPlan::parse("dram:error:1").unwrap();
        let token = Arc::new(CancelToken::new());
        let ctx = with_plan(plan, || {
            with_attempt(2, || {
                with_cancel(Some(Arc::clone(&token)), FaultContext::capture)
            })
        });
        ctx.scope(|| {
            assert_eq!(current_plan(), plan);
            assert_eq!(current_attempt(), 2);
            token.cancel();
            assert_eq!(cancel_state(), Some(CancelReason::Requested));
        });
        assert!(current_plan().is_off(), "state restored");
        assert_eq!(cancel_state(), None);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let sites = [FaultSite::DramIssue, FaultSite::ExecHandoff];
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, &sites, 3, 2);
            assert_eq!(a, FaultPlan::seeded(seed, &sites, 3, 2));
            let spec = a.specs().next().unwrap();
            assert!(sites.contains(&spec.site));
            assert!((1..=3).contains(&spec.nth));
            assert!((1..=2).contains(&spec.attempts));
        }
        // The generator explores both actions and several ordinals.
        let specs: Vec<FaultSpec> = (0..64)
            .map(|s| FaultPlan::seeded(s, &sites, 3, 2).specs().next().unwrap())
            .collect();
        assert!(specs.iter().any(|s| s.action == FaultAction::Error));
        assert!(specs.iter().any(|s| s.action == FaultAction::Panic));
        assert!(specs.iter().any(|s| s.nth > 1));
    }
}
