//! Cross-engine invariants, driven off the registry so engines added
//! later are covered automatically: on the *same* prepared workload,
//! every engine must
//!
//! * execute exactly the same MAC count (the paper's comparison is about
//!   data movement, never about work — Section VI);
//! * report non-zero cycle and busy counts in every phase;
//! * move at least the compulsory traffic (each phase writes its full
//!   `n x f_out` output, each aggregation streams every adjacency
//!   non-zero), and never report more useful bytes than fetched bytes.
//!
//! This generalizes the facade doc-test's single `grow` vs `gcnax`
//! assertion into a registry-driven loop.

use grow::accel::registry::{self, ENGINE_NAMES};
use grow::accel::{prepare, PartitionStrategy, PreparedWorkload, RunReport};
use grow::model::DatasetKey;
use grow::sim::{TrafficClass, ELEMENT_BYTES, INDEX_BYTES};

fn prepared_forms() -> Vec<PreparedWorkload> {
    let workload = DatasetKey::Pubmed.spec().scaled_to(900).instantiate(17);
    vec![
        prepare(&workload, PartitionStrategy::None, 4096),
        prepare(
            &workload,
            PartitionStrategy::Multilevel { cluster_nodes: 200 },
            4096,
        ),
    ]
}

fn all_reports(prepared: &PreparedWorkload) -> Vec<RunReport> {
    ENGINE_NAMES
        .iter()
        .map(|&name| registry::run_named(name, prepared).expect("registered engine"))
        .collect()
}

#[test]
fn mac_ops_are_engine_invariant() {
    for prepared in prepared_forms() {
        let reports = all_reports(&prepared);
        let baseline = reports[0].mac_ops();
        assert!(baseline > 0);
        for r in &reports {
            assert_eq!(
                r.mac_ops(),
                baseline,
                "{}: same workload must mean same work",
                r.engine
            );
        }
    }
}

#[test]
fn every_phase_of_every_engine_makes_progress() {
    for prepared in prepared_forms() {
        for r in all_reports(&prepared) {
            assert!(r.total_cycles() > 0, "{}", r.engine);
            for (li, layer) in r.layers.iter().enumerate() {
                for phase in [&layer.combination, &layer.aggregation] {
                    assert!(phase.cycles > 0, "{} layer {li} {:?}", r.engine, phase.kind);
                    assert!(
                        phase.compute_busy > 0,
                        "{} layer {li} {:?}",
                        r.engine,
                        phase.kind
                    );
                    assert!(
                        phase.mac_ops > 0,
                        "{} layer {li} {:?}",
                        r.engine,
                        phase.kind
                    );
                }
            }
        }
    }
}

#[test]
fn traffic_meets_compulsory_minimum() {
    for prepared in prepared_forms() {
        // Every phase must write its full dense n x f_out output once...
        let output_floor: u64 = prepared
            .layers
            .iter()
            .map(|l| 2 * (prepared.nodes * l.f_out) as u64 * ELEMENT_BYTES)
            .sum();
        // ...and every aggregation phase must stream every adjacency
        // non-zero (value + column index) at least once.
        let adjacency_floor = prepared.layers.len() as u64
            * prepared.adjacency_nnz() as u64
            * (ELEMENT_BYTES + INDEX_BYTES);
        for r in all_reports(&prepared) {
            let traffic = r.total_traffic();
            assert!(
                traffic.useful_bytes(TrafficClass::Output) >= output_floor,
                "{}: output {} < floor {output_floor}",
                r.engine,
                traffic.useful_bytes(TrafficClass::Output)
            );
            let agg_lhs: u64 = r
                .layers
                .iter()
                .map(|l| l.aggregation.traffic.useful_bytes(TrafficClass::LhsSparse))
                .sum();
            assert!(
                agg_lhs >= adjacency_floor,
                "{}: aggregation lhs {agg_lhs} < floor {adjacency_floor}",
                r.engine
            );
            assert!(
                r.dram_bytes() >= output_floor + adjacency_floor,
                "{}: total {} below compulsory minimum",
                r.engine,
                r.dram_bytes()
            );
        }
    }
}

#[test]
fn fetched_bytes_dominate_useful_bytes_per_class() {
    // The channel can over-fetch (granularity rounding, metadata) but
    // never under-fetch what an engine claims to have used.
    for prepared in prepared_forms() {
        for r in all_reports(&prepared) {
            for layer in &r.layers {
                for phase in [&layer.combination, &layer.aggregation] {
                    for class in TrafficClass::ALL {
                        assert!(
                            phase.traffic.fetched_bytes(class) >= phase.traffic.useful_bytes(class),
                            "{} {:?} {}",
                            r.engine,
                            phase.kind,
                            class.label()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn partitioning_never_changes_work_only_movement() {
    let forms = prepared_forms();
    let base = all_reports(&forms[0]);
    let partitioned = all_reports(&forms[1]);
    for (b, p) in base.iter().zip(&partitioned) {
        assert_eq!(b.mac_ops(), p.mac_ops(), "{}", b.engine);
    }
}

#[test]
fn headline_claim_holds_on_a_power_law_social_graph() {
    // The paper's claim — GROW with graph partitioning moves less DRAM
    // data than GCNAX — is about the dense power-law workload class
    // (Yelp/Pokec/Amazon, Section VII-A); a Yelp-like surrogate shows it
    // even at test scale.
    let workload = DatasetKey::Yelp.spec().scaled_to(2500).instantiate(9);
    let base = prepare(&workload, PartitionStrategy::None, 4096);
    let partitioned = prepare(
        &workload,
        PartitionStrategy::Multilevel { cluster_nodes: 400 },
        4096,
    );
    let grow = registry::run_named("grow", &partitioned).expect("registered");
    let gcnax = registry::run_named("gcnax", &base).expect("registered");
    assert_eq!(grow.mac_ops(), gcnax.mac_ops());
    assert!(grow.dram_bytes() < gcnax.dram_bytes());
    assert!(grow.total_cycles() < gcnax.total_cycles());
}
