//! Seeded-sweep property tests for the multi-PE scheduling subsystem,
//! directly over the fluid model on synthetic power-law cluster
//! workloads (`grow::accel::schedule::power_law_profiles`):
//!
//! * work-stealing's makespan never exceeds round-robin's;
//! * every makespan respects the single-cluster lower bound (no cluster
//!   can finish faster than running alone on the full channel);
//! * busy-cycle conservation: per-PE busy cycles and per-cluster
//!   in-system cycles are two groupings of the same time;
//! * with one PE all three schedulers coincide.
//!
//! Bandwidths are powers of two so the fluid arithmetic stays exact where
//! the properties claim exactness.

use grow::accel::multi_pe::{self, MultiPeRun};
use grow::accel::schedule::{power_law_profiles, SchedulerKind};
use grow::accel::ClusterProfile;

const BW: f64 = 4.0;

/// The seeded sweep: heavy-tailed workloads of several sizes and seeds.
///
/// Greedy dispatch is a heuristic, not a theorem — in regimes where every
/// policy balances equally well (very few clusters, or two PEs fighting
/// over the channel), round-robin can win by contention-alignment luck.
/// The sweep samples the regime the scheduler exists for (clusters ≫
/// PEs, heavy tail), where work-stealing's dominance is robust; a model
/// change that flips one of these fixed seeds deserves a human look.
fn sweep() -> Vec<(String, Vec<ClusterProfile>)> {
    let mut out = Vec::new();
    for n in [24usize, 48, 64, 96, 257] {
        for seed in 1..=8u64 {
            out.push((format!("n{n}_s{seed}"), power_law_profiles(n, seed)));
        }
    }
    out
}

fn runs(profiles: &[ClusterProfile], pes: usize) -> [MultiPeRun; 4] {
    SchedulerKind::ALL.map(|kind| multi_pe::simulate_with(profiles, pes, BW, kind))
}

#[test]
fn work_stealing_never_loses_to_round_robin() {
    for (name, profiles) in sweep() {
        for pes in [1, 2, 3, 4, 8, 16] {
            let rr = multi_pe::simulate_with(&profiles, pes, BW, SchedulerKind::RoundRobin);
            let ws = multi_pe::simulate_with(&profiles, pes, BW, SchedulerKind::WorkStealing);
            assert!(
                ws.makespan <= rr.makespan * (1.0 + 1e-9),
                "{name}/pes={pes}: ws {} vs rr {}",
                ws.makespan,
                rr.makespan
            );
        }
    }
}

#[test]
fn makespan_respects_the_single_cluster_lower_bound() {
    for (name, profiles) in sweep() {
        for pes in [1, 4, 16] {
            let total_bw = pes as f64 * BW;
            // A cluster alone on the full channel cannot finish faster
            // than max(compute, transfer); the makespan covers the
            // slowest cluster's full execution at least.
            let bound = profiles
                .iter()
                .map(|p| (p.compute_cycles as f64).max(p.mem_bytes as f64 / total_bw))
                .fold(0.0f64, f64::max);
            for run in runs(&profiles, pes) {
                assert!(
                    run.makespan >= bound * (1.0 - 1e-9),
                    "{name}/{}/pes={pes}: makespan {} below bound {bound}",
                    run.scheduler,
                    run.makespan
                );
            }
        }
    }
}

#[test]
fn busy_cycles_are_conserved() {
    for (name, profiles) in sweep() {
        for pes in [1, 3, 8] {
            for run in runs(&profiles, pes) {
                let busy: f64 = run.per_pe_busy.iter().sum();
                let cluster: f64 = run.cluster_cycles.iter().sum();
                assert_eq!(run.cluster_cycles.len(), profiles.len());
                assert_eq!(run.per_pe_busy.len(), pes);
                let rel = (busy - cluster).abs() / busy.max(1.0);
                assert!(
                    rel < 1e-9,
                    "{name}/{}/pes={pes}: busy {busy} vs cluster {cluster}",
                    run.scheduler
                );
                // Each PE is busy at most the whole makespan; the busiest
                // defines a floor on it.
                for &b in &run.per_pe_busy {
                    assert!(b <= run.makespan * (1.0 + 1e-9));
                }
            }
        }
    }
}

#[test]
fn one_pe_makes_all_schedulers_identical() {
    for (name, profiles) in sweep() {
        let [rr, lpt, ws, ca] = runs(&profiles, 1);
        // One PE serializes the same per-cluster durations under every
        // policy; lpt, ws, and ca visit them in their own orders rather
        // than index order, so sums agree up to float accumulation order.
        let close = |a: f64, b: f64| (a - b).abs() / b.max(1.0) < 1e-9;
        for other in [&lpt, &ws, &ca] {
            assert!(
                close(other.makespan, rr.makespan),
                "{name}: {} makespan {} vs rr {}",
                other.scheduler,
                other.makespan,
                rr.makespan
            );
            for (i, (&a, &b)) in other
                .cluster_cycles
                .iter()
                .zip(&rr.cluster_cycles)
                .enumerate()
            {
                assert!(
                    close(a, b),
                    "{name}/{}: cluster {i} duration diverged",
                    other.scheduler
                );
            }
        }
    }
}

#[test]
fn contention_aware_handles_the_ws_contention_alignment_cases() {
    // The documented greedy-dispatch failure mode: with clusters barely
    // exceeding the PE count, heaviest-first dispatch can line up several
    // memory-bound clusters against each other on the channel, and
    // round-robin wins by contention-alignment luck. These fixed seeds are
    // committed examples of exactly that (ws strictly loses to rr);
    // contention-aware dispatch interleaves the classes and must not lose
    // to either policy here.
    let cases = [(8usize, 36u64, 2usize), (8, 36, 3), (8, 26, 3), (12, 2, 2)];
    for (n, seed, pes) in cases {
        let profiles = power_law_profiles(n, seed);
        let rr = multi_pe::simulate_with(&profiles, pes, BW, SchedulerKind::RoundRobin);
        let ws = multi_pe::simulate_with(&profiles, pes, BW, SchedulerKind::WorkStealing);
        let ca = multi_pe::simulate_with(&profiles, pes, BW, SchedulerKind::ContentionAware);
        assert!(
            ws.makespan > rr.makespan * (1.0 + 1e-9),
            "n{n}_s{seed}/pes={pes}: expected a ws-loses-to-rr case \
             (ws {} vs rr {})",
            ws.makespan,
            rr.makespan
        );
        assert!(
            ca.makespan <= rr.makespan * (1.0 + 1e-9),
            "n{n}_s{seed}/pes={pes}: ca {} vs rr {}",
            ca.makespan,
            rr.makespan
        );
        assert!(
            ca.makespan <= ws.makespan * (1.0 + 1e-9),
            "n{n}_s{seed}/pes={pes}: ca {} vs ws {}",
            ca.makespan,
            ws.makespan
        );
    }
}

#[test]
fn contention_aware_stays_near_round_robin_everywhere() {
    // ca is a heuristic like the rest: no dominance theorem. But across
    // the committed sweep it must never lose to round-robin by more than
    // a percent — the guardrail that keeps the interleaving from
    // regressing into a pathological policy.
    for (name, profiles) in sweep() {
        for pes in [2, 3, 4, 8, 16] {
            let rr = multi_pe::simulate_with(&profiles, pes, BW, SchedulerKind::RoundRobin);
            let ca = multi_pe::simulate_with(&profiles, pes, BW, SchedulerKind::ContentionAware);
            assert!(
                ca.makespan <= rr.makespan * 1.01,
                "{name}/pes={pes}: ca {} vs rr {}",
                ca.makespan,
                rr.makespan
            );
        }
    }
}

#[test]
fn legacy_round_robin_entry_point_is_bit_identical() {
    for (name, profiles) in sweep().into_iter().take(6) {
        for pes in [1, 4, 16] {
            assert_eq!(
                multi_pe::simulate(&profiles, pes, BW),
                multi_pe::simulate_with(&profiles, pes, BW, SchedulerKind::RoundRobin).makespan,
                "{name}/pes={pes}"
            );
        }
    }
}
