//! Reusable scratch-state pools for the parallel cluster fan-out.
//!
//! Every engine needs per-cluster working state — caches, runahead
//! tables, pending counters, probe plans — that used to be allocated
//! fresh for every cluster and dropped at its end. A [`ScratchArena`]
//! turns that into a checkout/return pool: a worker thread checks a
//! scratch value out at cluster start (reusing one returned by an earlier
//! cluster whenever possible), *clears* it rather than reconstructing it,
//! and the guard returns it to the pool on drop — also on panic. Steady
//! state, an engine run allocates one scratch value per concurrently
//! executing worker, no matter how many clusters or layers it simulates.
//!
//! Determinism: a pooled value may have been used by any prior cluster on
//! any thread, so the *user* contract is that all state consulted during
//! simulation is re-initialized at checkout (the cache/table `reset`
//! methods exist for exactly this). Under that contract, results are
//! independent of checkout order and therefore bit-identical between
//! serial and parallel execution.
//!
//! ```
//! use grow_sim::ScratchArena;
//!
//! let arena: ScratchArena<Vec<u32>> = ScratchArena::new();
//! {
//!     let mut buf = arena.checkout();
//!     buf.clear(); // the pooled value may hold a prior cluster's data
//!     buf.push(7);
//! } // returned to the pool here
//! assert_eq!(arena.pooled(), 1);
//! let again = arena.checkout();
//! assert_eq!(*again, vec![7], "recycled, not reconstructed");
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// A pool of reusable scratch values shared across worker threads.
///
/// See the [module docs](self) for the checkout/clear/return discipline.
#[derive(Debug, Default)]
pub struct ScratchArena<T> {
    pool: Mutex<Vec<T>>,
}

impl<T> ScratchArena<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchArena {
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Number of values currently parked in the pool (i.e. not checked
    /// out). After a fully drained run this equals the peak number of
    /// concurrent checkouts.
    pub fn pooled(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
        // A poisoned pool only means some worker panicked mid-cluster;
        // the parked values themselves are still safe to hand out (every
        // checkout re-initializes what it uses).
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Checks a value out of the pool, constructing one with `make` only
    /// when the pool is empty. The value is returned to the pool when the
    /// guard drops.
    pub fn checkout_with(&self, make: impl FnOnce() -> T) -> ScratchGuard<'_, T> {
        let item = self.lock().pop().unwrap_or_else(make);
        ScratchGuard {
            arena: self,
            item: Some(item),
        }
    }
}

impl<T: Default> ScratchArena<T> {
    /// Checks a value out of the pool, default-constructing one when the
    /// pool is empty (see [`ScratchArena::checkout_with`]).
    pub fn checkout(&self) -> ScratchGuard<'_, T> {
        self.checkout_with(T::default)
    }
}

/// A checked-out scratch value; dereferences to `T` and returns the value
/// to its arena on drop.
#[derive(Debug)]
pub struct ScratchGuard<'a, T> {
    arena: &'a ScratchArena<T>,
    item: Option<T>,
}

impl<T> Deref for ScratchGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.item.as_ref().expect("present until drop")
    }
}

impl<T> DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("present until drop")
    }
}

impl<T> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.arena.lock().push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_values() {
        let arena: ScratchArena<Vec<u8>> = ScratchArena::new();
        {
            let mut a = arena.checkout();
            a.push(1);
        }
        assert_eq!(arena.pooled(), 1);
        let b = arena.checkout();
        assert_eq!(*b, vec![1], "same backing value");
        assert_eq!(arena.pooled(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_values() {
        let arena: ScratchArena<Vec<u8>> = ScratchArena::new();
        let mut a = arena.checkout();
        let mut b = arena.checkout();
        a.push(1);
        b.push(2);
        assert_ne!(*a, *b);
        drop(a);
        drop(b);
        assert_eq!(arena.pooled(), 2);
    }

    #[test]
    fn checkout_with_constructs_lazily() {
        let arena: ScratchArena<Vec<u8>> = ScratchArena::new();
        {
            let _a = arena.checkout_with(|| vec![9]);
        }
        let b = arena.checkout_with(|| panic!("pool should serve this"));
        assert_eq!(*b, vec![9]);
    }

    #[test]
    fn pool_survives_worker_panics() {
        let arena: ScratchArena<Vec<u8>> = ScratchArena::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut g = arena.checkout();
            g.push(3);
            panic!("worker dies mid-cluster");
        }));
        assert!(result.is_err());
        // The guard's value was still returned, and the pool still works.
        assert_eq!(arena.pooled(), 1);
        assert_eq!(*arena.checkout(), vec![3]);
    }

    #[test]
    fn arena_is_shareable_across_threads() {
        let arena: ScratchArena<u64> = ScratchArena::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let mut g = arena.checkout();
                        *g += 1;
                    }
                });
            }
        });
        // All increments landed in pooled values, none lost.
        let total: u64 = {
            let mut sum = 0;
            while arena.pooled() > 0 {
                let g = arena.checkout();
                sum += *g;
                // Keep it out of the pool for good.
                std::mem::forget(g);
            }
            sum
        };
        assert_eq!(total, 400);
    }
}
