use std::ops::Range;

use grow_model::{GcnWorkload, LayerWorkload};
use grow_partition::{
    hdn_lists, label_propagation_partition, multilevel_partition, ClusterLayout,
    LabelPropagationConfig, MultilevelConfig, Partitioning,
};
use grow_sparse::CsrPattern;

/// How to preprocess the adjacency matrix before simulation.
///
/// Partitioning is GROW's software preprocessing (Section V-C): a one-time
/// cost amortized over all inference runs, so it is not charged to the
/// simulated execution time. Baseline engines always run with
/// [`PartitionStrategy::None`] (original node order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionStrategy {
    /// No partitioning: original node order, one cluster spanning the whole
    /// graph ("GROW w/o G.P." and all baselines).
    None,
    /// METIS-class multilevel partitioning into clusters of about
    /// `cluster_nodes` nodes, then cluster-sorted relabeling (Figure 13).
    Multilevel {
        /// Target nodes per cluster.
        cluster_nodes: usize,
    },
    /// Label-propagation clustering (faster preprocessing, slightly lower
    /// locality).
    LabelPropagation {
        /// Target nodes per cluster.
        cluster_nodes: usize,
    },
}

impl PartitionStrategy {
    /// The default clustering granularity used throughout the evaluation:
    /// clusters of ~4096 nodes, matching the 4096-entry HDN ID list of
    /// Table III.
    pub fn multilevel_default() -> Self {
        PartitionStrategy::Multilevel {
            cluster_nodes: 4096,
        }
    }
}

/// A workload after software preprocessing, ready for any engine.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// Dataset name (for reports).
    pub name: &'static str,
    /// Number of graph nodes.
    pub nodes: usize,
    /// Pattern of the normalized adjacency matrix `A + I` (self-loops
    /// included, per the GCN normalization), relabeled by the partitioning
    /// permutation when one is used.
    pub adjacency: CsrPattern,
    /// Contiguous row ranges of the clusters (a single full-range cluster
    /// when unpartitioned).
    pub clusters: Vec<Range<usize>>,
    /// Per-cluster HDN ID lists, ranked by intra-cluster reference count,
    /// up to `hdn_id_entries` long. Engines take the prefix their cache
    /// capacity allows.
    pub hdn_lists: Vec<Vec<u32>>,
    /// The two GCN layers (feature patterns + shapes).
    pub layers: Vec<LayerWorkload>,
    /// Intra-cluster edge fraction achieved by the preprocessing (1.0 when
    /// unpartitioned).
    pub intra_edge_fraction: f64,
    /// Cross-job plan-cache handle, scoped to this preparation's
    /// (dataset, partition) identity. `None` outside a serving session
    /// pool ([`prepare`] leaves it unset): engines then fall back to
    /// their per-run plan retention. The cache only shortcuts the plan
    /// pass — replay consumes identical plan data either way, so reports
    /// are bit-identical with or without it.
    pub plan_cache: Option<crate::PlanCacheScope>,
}

impl PreparedWorkload {
    /// Non-zeros of the (normalized) adjacency.
    pub fn adjacency_nnz(&self) -> usize {
        self.adjacency.nnz()
    }

    /// The intra-cluster sharding threshold `shard_rows=auto` resolves to,
    /// derived from this preparation's cluster-size statistics (0 =
    /// sharding off):
    ///
    /// * fine-grained preparations (largest cluster ≤ 512 rows) leave
    ///   sharding off — the cluster fan-out alone already saturates the
    ///   worker threads, and per-shard overhead would only cost;
    /// * coarse-grained ones shard at an eighth of the largest cluster,
    ///   clamped to `[256, 4096]`, so even a single whole-graph cluster
    ///   (`PartitionStrategy::None`) splits into enough ranges to keep
    ///   every worker busy.
    ///
    /// Purely a simulator-throughput decision: any threshold produces
    /// bit-identical reports (the `shard_rows` contract).
    pub fn auto_shard_rows(&self) -> usize {
        let largest = self.clusters.iter().map(|r| r.len()).max().unwrap_or(0);
        if largest <= 512 {
            0
        } else {
            (largest / 8).clamp(256, 4096)
        }
    }
}

/// Builds the adjacency pattern `A + I` (neighbors plus a self-loop per
/// node) without materializing normalization values, which the timing
/// models do not need.
fn adjacency_with_self_loops(graph: &grow_graph::Graph) -> CsrPattern {
    let n = graph.nodes();
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::with_capacity(graph.directed_edges() + n);
    indptr.push(0usize);
    for v in 0..n {
        let row = graph.neighbors(v);
        let self_id = v as u32;
        let pos = row.partition_point(|&c| c < self_id);
        indices.extend_from_slice(&row[..pos]);
        indices.push(self_id);
        indices.extend_from_slice(&row[pos..]);
        indptr.push(indices.len());
    }
    CsrPattern::from_raw(n, n, indptr, indices)
        .expect("adjacency with self-loops is structurally valid")
}

/// Runs the software preprocessing stack: (optionally) partition the graph,
/// relabel nodes cluster-by-cluster, and extract per-cluster HDN ID lists.
///
/// `hdn_id_entries` bounds the per-cluster list length (Table III: a 12 KB
/// list buffer = 4096 entries of 3 bytes).
pub fn prepare(
    workload: &GcnWorkload,
    strategy: PartitionStrategy,
    hdn_id_entries: usize,
) -> PreparedWorkload {
    let graph = &workload.graph;
    let n = graph.nodes();
    let (layout, partitioning) = match strategy {
        PartitionStrategy::None => (ClusterLayout::single(n), None),
        PartitionStrategy::Multilevel { cluster_nodes } => {
            let parts = n.div_ceil(cluster_nodes.max(1)).max(1);
            let p = multilevel_partition(graph, parts, &MultilevelConfig::default());
            (ClusterLayout::from_partitioning(&p), Some(p))
        }
        PartitionStrategy::LabelPropagation { cluster_nodes } => {
            let parts = n.div_ceil(cluster_nodes.max(1)).max(1);
            let p = label_propagation_partition(graph, parts, &LabelPropagationConfig::default());
            (ClusterLayout::from_partitioning(&p), Some(p))
        }
    };
    let intra = partitioning
        .as_ref()
        .map(|p: &Partitioning| p.intra_edge_fraction(graph))
        .unwrap_or(1.0);
    let relabeled;
    let graph_ref = if matches!(strategy, PartitionStrategy::None) {
        graph
    } else {
        relabeled = layout.relabel(graph);
        &relabeled
    };
    let adjacency = adjacency_with_self_loops(graph_ref);
    let clusters: Vec<Range<usize>> = layout.ranges().to_vec();
    let lists = hdn_lists(&adjacency, &clusters, hdn_id_entries);
    PreparedWorkload {
        name: workload.spec.key.name(),
        nodes: n,
        adjacency,
        clusters,
        hdn_lists: lists,
        layers: workload.layers.clone(),
        intra_edge_fraction: intra,
        plan_cache: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grow_model::DatasetKey;

    fn small() -> GcnWorkload {
        DatasetKey::Cora.spec().scaled_to(400).instantiate(11)
    }

    #[test]
    fn unpartitioned_has_single_cluster() {
        let p = prepare(&small(), PartitionStrategy::None, 4096);
        assert_eq!(p.clusters.len(), 1);
        assert_eq!(p.clusters[0], 0..400);
        assert_eq!(p.intra_edge_fraction, 1.0);
        assert_eq!(p.hdn_lists.len(), 1);
    }

    #[test]
    fn adjacency_includes_self_loops() {
        let w = small();
        let p = prepare(&w, PartitionStrategy::None, 4096);
        assert_eq!(
            p.adjacency.nnz(),
            w.graph.directed_edges() + w.graph.nodes()
        );
        for v in 0..10 {
            assert!(
                p.adjacency.row_indices(v).contains(&(v as u32)),
                "row {v} self-loop"
            );
        }
    }

    #[test]
    fn partitioned_clusters_cover_all_rows() {
        let p = prepare(
            &small(),
            PartitionStrategy::Multilevel { cluster_nodes: 100 },
            4096,
        );
        assert!(p.clusters.len() >= 3);
        let covered: usize = p.clusters.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 400);
        // Ranges are contiguous and ascending.
        let mut expect = 0;
        for r in &p.clusters {
            assert_eq!(r.start, expect);
            expect = r.end;
        }
    }

    #[test]
    fn partitioning_improves_locality_metric() {
        let spec = DatasetKey::Pubmed.spec().scaled_to(3000);
        let w = spec.instantiate(13);
        let p = prepare(
            &w,
            PartitionStrategy::Multilevel { cluster_nodes: 400 },
            4096,
        );
        assert!(
            p.intra_edge_fraction > 0.4,
            "intra fraction {}",
            p.intra_edge_fraction
        );
    }

    #[test]
    fn hdn_lists_bounded_by_entry_count() {
        let p = prepare(&small(), PartitionStrategy::None, 16);
        assert!(p.hdn_lists[0].len() <= 16);
    }

    #[test]
    fn auto_shard_rows_follows_cluster_grain() {
        let fine = prepare(
            &small(),
            PartitionStrategy::Multilevel { cluster_nodes: 100 },
            4096,
        );
        assert_eq!(fine.auto_shard_rows(), 0, "fine clusters: sharding off");
        let coarse = prepare(
            &DatasetKey::Pubmed.spec().scaled_to(2000).instantiate(3),
            PartitionStrategy::None,
            4096,
        );
        assert_eq!(coarse.auto_shard_rows(), 256, "2000/8 clamps up to 256");
        let huge = prepare(
            &DatasetKey::Pubmed.spec().scaled_to(6000).instantiate(3),
            PartitionStrategy::None,
            4096,
        );
        assert_eq!(huge.auto_shard_rows(), 750, "6000/8 within the clamp");
    }

    #[test]
    fn relabeling_preserves_nnz() {
        let w = small();
        let a = prepare(&w, PartitionStrategy::None, 64);
        let b = prepare(&w, PartitionStrategy::Multilevel { cluster_nodes: 100 }, 64);
        assert_eq!(a.adjacency.nnz(), b.adjacency.nnz());
    }
}
