//! Graph substrate for the GROW reproduction: adjacency structures,
//! synthetic dataset generators, degree statistics, and GCN normalization.
//!
//! The paper evaluates on eight graph datasets from PyTorch Geometric, SNAP
//! and OGB (Table I). Those datasets are not available offline, so this
//! crate provides seeded synthetic generators that reproduce the properties
//! GROW's evaluation actually depends on:
//!
//! * **power-law degree distributions** (Figure 11) — the basis of GROW's
//!   high-degree-node (HDN) caching;
//! * **community structure** (Figures 13/14) — the structure METIS-class
//!   graph partitioning discovers and GROW's HDN cache exploits;
//! * **node/edge counts and densities** matching Table I (scaled variants
//!   for the largest graphs; see `DESIGN.md` §3–4).
//!
//! # Example
//!
//! ```
//! use grow_graph::{CommunityGraphSpec, Graph};
//!
//! let spec = CommunityGraphSpec {
//!     nodes: 500,
//!     avg_degree: 8.0,
//!     communities: 10,
//!     intra_fraction: 0.8,
//!     power_law_exponent: 2.3,
//!     shuffle_fraction: 1.0,
//! };
//! let graph = spec.generate(42);
//! assert_eq!(graph.nodes(), 500);
//! assert!(graph.avg_degree() > 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod graph;
mod normalize;
pub mod stats;

pub use generate::{CommunityGraphSpec, RmatGraphSpec};
pub use graph::Graph;
pub use normalize::normalized_adjacency;
