//! GCN workload model: the paper's Table I dataset registry (synthetic
//! surrogates), feature-matrix synthesis, layer specifications, and a
//! functional reference executor.
//!
//! A GCN layer computes `X' = sigma(A X W)` (Equation 1). The paper runs
//! two-layer GCNs over eight graph datasets whose shapes, densities, and
//! feature dimensions are listed in Table I. This crate reproduces those
//! workloads:
//!
//! * [`DatasetKey`] / [`DatasetSpec`] — the eight Table I rows, including
//!   feature dimensions and the per-layer input densities (`X(0)` measured
//!   per dataset, `X(1)` the post-ReLU density the paper reports);
//! * [`FeatureMatrix`] — synthesized feature sparsity patterns;
//! * [`GcnWorkload`] — a fully instantiated 2-layer inference workload
//!   (graph + per-layer LHS patterns + shapes) consumed by the accelerator
//!   models in `grow-core`;
//! * [`reference`] — functional execution for correctness checks.
//!
//! # Example
//!
//! ```
//! use grow_model::DatasetKey;
//!
//! let spec = DatasetKey::Cora.spec();
//! assert_eq!(spec.feature_dims, [1433, 16, 7]);
//! let workload = spec.instantiate(42);
//! assert_eq!(workload.graph.nodes(), 2708);
//! assert_eq!(workload.layers.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod features;
mod workload;

pub mod reference;

pub use dataset::{DatasetKey, DatasetSpec};
pub use features::FeatureMatrix;
pub use workload::{GcnWorkload, LayerWorkload};
