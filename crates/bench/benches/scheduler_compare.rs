//! Scheduler-comparison bench (the Figure 24 scheduler axis): runs the
//! fluid multi-PE model under round-robin, LPT, and work-stealing cluster
//! scheduling across PE counts on synthetic power-law workloads, timing
//! each cell and recording its makespan and load-imbalance ratio.
//!
//! Like the other benches this is a hand-rolled `harness = false` binary
//! (no crates.io access for Criterion). Run with
//! `cargo bench -p grow-bench --bench scheduler_compare`; a
//! machine-readable summary is written to `results/BENCH_figure24.json`
//! (override the directory with `BENCH_OUT=dir`).

use std::hint::black_box;

use grow_bench::{json, timing};
use grow_core::schedule::{power_law_profiles, SchedulerKind};
use grow_core::{multi_pe, ClusterProfile};

struct Cell {
    workload: &'static str,
    scheduler: &'static str,
    pes: usize,
    makespan: f64,
    imbalance: f64,
    speedup_vs_rr: f64,
    mean_ns: f64,
}

fn bench_workload(name: &'static str, profiles: &[ClusterProfile], rows: &mut Vec<Cell>) {
    for pes in [2usize, 4, 8, 16] {
        // RoundRobin is first in `ALL`, so the speedup baseline falls out
        // of the same loop.
        let mut rr_makespan = f64::NAN;
        for kind in SchedulerKind::ALL {
            let run = multi_pe::simulate_with(profiles, pes, 4.0, kind);
            if kind == SchedulerKind::RoundRobin {
                rr_makespan = run.makespan;
            }
            let t = timing::sample(10, || {
                black_box(multi_pe::simulate_with(profiles, pes, 4.0, kind).makespan);
            });
            println!(
                "{name:<18} {:<4} pes={pes:<3} makespan={:>14.0} imbalance={:>5.2} \
                 {:>10.1} us/iter",
                kind.name(),
                run.makespan,
                run.imbalance(),
                t.mean_ns / 1e3,
            );
            rows.push(Cell {
                workload: name,
                scheduler: kind.name(),
                pes,
                makespan: run.makespan,
                imbalance: run.imbalance(),
                speedup_vs_rr: rr_makespan / run.makespan,
                mean_ns: t.mean_ns,
            });
        }
    }
}

fn main() {
    let mut rows = Vec::new();
    // Two heavy-tailed cluster populations: many small clusters (fine
    // partitioning) and few coarse ones (where imbalance bites hardest).
    bench_workload("powerlaw_512_s42", &power_law_profiles(512, 42), &mut rows);
    bench_workload("powerlaw_48_s7", &power_law_profiles(48, 7), &mut rows);

    // Same row schema as the `figure24` experiment (which writes this
    // file from real dataset runs — `source` tells the two apart; the
    // bench rows additionally carry per-cell timing and name synthetic
    // workloads instead of datasets).
    let out_dir = std::env::var("BENCH_OUT").unwrap_or_else(|_| "results".into());
    let entries: Vec<String> = rows
        .iter()
        .map(|c| {
            json::object(&[
                ("workload", json::string(c.workload)),
                ("scheduler", json::string(c.scheduler)),
                ("pes", json::uint(c.pes as u64)),
                ("makespan", json::number(c.makespan)),
                ("imbalance", json::number(c.imbalance)),
                ("speedup_vs_rr", json::number(c.speedup_vs_rr)),
                ("mean_ns", json::number(c.mean_ns)),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("source", json::string("bench")),
        ("rows", json::array(entries)),
    ]);
    let path = std::path::Path::new(&out_dir).join("BENCH_figure24.json");
    match std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&path, doc)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
