use std::fmt;

/// Hit/miss counters for a row cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probe hits.
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Rows installed by preloading (pinned fills) or demand insertion.
    pub fills: u64,
}

impl CacheStats {
    /// Hit rate over all probes; `None` before the first probe.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Merges another stats block into this one. Saturating: merged
    /// counters from many long runs clamp at `u64::MAX` instead of
    /// wrapping (a wrapped counter would silently report a *small* number).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.fills = self.fills.saturating_add(other.fills);
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {} / misses {} (hit rate {:.1}%)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate().unwrap_or(0.0)
        )
    }
}

/// GROW's HDN cache: a scratchpad that pins a fixed set of row IDs.
///
/// The paper statically pins the per-cluster top-N high-degree nodes and
/// found this beats demand-based replacement ("statically pinning the
/// high-degree nodes within the cache yielded the most robust speedups",
/// Section VIII). Misses stream to the processing engine directly from
/// DRAM and are *not* installed.
///
/// Residency is a dense epoch-stamped table: `probe` is one array load and
/// compare, and [`PinnedRowCache::reset`] recycles the cache for the next
/// cluster in O(1) by bumping the epoch — no per-cluster reallocation, no
/// O(universe) clear. Engines keep one cache per worker for a whole run
/// and reset it at every cluster boundary.
///
/// ```
/// use grow_sim::PinnedRowCache;
///
/// let mut cache = PinnedRowCache::new(2, 10);
/// cache.load(&[3, 7, 9]); // capacity 2: only 3 and 7 fit
/// assert!(cache.probe(3));
/// assert!(!cache.probe(9));
/// assert_eq!(cache.stats().hits, 1);
///
/// // Recycle for the next cluster: stale residency from the previous
/// // epoch must miss.
/// cache.reset(2, 10);
/// assert!(!cache.probe(3));
/// ```
#[derive(Debug, Clone)]
pub struct PinnedRowCache {
    capacity_rows: usize,
    /// Current epoch; entries of `resident` are live only when they match.
    /// Always >= 1, so a zeroed table is empty.
    epoch: u32,
    /// id -> epoch stamp of the load that pinned it.
    resident: Vec<u32>,
    loaded: Vec<u32>,
    stats: CacheStats,
}

impl Default for PinnedRowCache {
    /// An empty zero-capacity cache over an empty universe; call
    /// [`PinnedRowCache::reset`] to size it before use.
    fn default() -> Self {
        PinnedRowCache::new(0, 0)
    }
}

impl PinnedRowCache {
    /// Creates a cache holding up to `capacity_rows` rows out of a universe
    /// of `universe` row IDs.
    pub fn new(capacity_rows: usize, universe: usize) -> Self {
        PinnedRowCache {
            capacity_rows,
            epoch: 1,
            resident: vec![0; universe],
            loaded: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Recycles the cache: as if freshly constructed with
    /// `new(capacity_rows, universe)`, but reusing the residency table.
    /// All prior residency and statistics are discarded in O(1) (the epoch
    /// advances, stale stamps stop matching); the table only reallocates
    /// when the universe grows.
    pub fn reset(&mut self, capacity_rows: usize, universe: usize) {
        self.capacity_rows = capacity_rows;
        if self.resident.len() != universe {
            self.resident.clear();
            self.resident.resize(universe, 0);
            self.epoch = 1;
        } else if self.epoch == u32::MAX {
            // Epoch exhausted: one O(universe) clear every 2^32 - 1 resets.
            self.resident.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.loaded.clear();
        self.stats = CacheStats::default();
    }

    /// Row capacity.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Replaces the pinned set with the first `capacity_rows` *distinct*
    /// IDs of `ids`, as happens at each cluster boundary. Returns how many
    /// rows were actually pinned — the number of preload fills the DMA
    /// must fetch.
    ///
    /// Duplicate IDs are pinned (and counted as fills) once, and do not
    /// consume capacity: the hardware list holds row IDs, and a repeated
    /// ID names the same cached row. (HDN lists produced by the
    /// preprocessing are already duplicate-free; this makes hand-built
    /// lists behave identically.)
    ///
    /// # Panics
    ///
    /// Panics if an ID is outside the universe.
    pub fn load(&mut self, ids: &[u32]) -> usize {
        for &id in &self.loaded {
            self.resident[id as usize] = 0;
        }
        self.loaded.clear();
        for &id in ids {
            if self.loaded.len() >= self.capacity_rows {
                break;
            }
            if self.resident[id as usize] != self.epoch {
                self.resident[id as usize] = self.epoch;
                self.loaded.push(id);
            }
        }
        self.stats.fills += self.loaded.len() as u64;
        self.loaded.len()
    }

    /// Number of rows currently pinned.
    pub fn resident_rows(&self) -> usize {
        self.loaded.len()
    }

    /// Probes for `id`, recording a hit or miss.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn probe(&mut self, id: u32) -> bool {
        let hit = self.resident[id as usize] == self.epoch;
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Checks residency without touching statistics.
    pub fn peek(&self, id: u32) -> bool {
        self.resident[id as usize] == self.epoch
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// A demand-filled LRU row cache.
///
/// Models GAMMA's fiber cache (Section VII-H: "GAMMA's fiber cache is not
/// optimized for the power-law distribution of graphs") and the
/// alternative eviction policies of the Section VIII discussion.
///
/// Lookup is a dense epoch-stamped slot table indexed by row ID — one
/// array load per probe instead of a `HashMap` walk — and
/// [`LruRowCache::reset`] recycles the cache for the next cluster without
/// reallocating (the epoch advances, stale table entries stop matching).
///
/// ```
/// use grow_sim::LruRowCache;
///
/// let mut cache = LruRowCache::new(2, 10);
/// assert!(!cache.probe(1));
/// cache.insert(1);
/// cache.insert(2);
/// cache.probe(1);      // touch 1 so 2 becomes LRU
/// cache.insert(3);     // evicts 2
/// assert!(cache.peek(1) && !cache.peek(2) && cache.peek(3));
/// ```
#[derive(Debug, Clone)]
pub struct LruRowCache {
    capacity_rows: usize,
    /// Current epoch; `table` entries are live only when they match.
    /// Always >= 1, so a zeroed table is empty.
    epoch: u32,
    /// id -> (epoch stamp, slot index in the intrusive list).
    table: Vec<(u32, u32)>,
    /// Slot storage: (id, prev, next); u32::MAX is the null link.
    slots: Vec<(u32, u32, u32)>,
    head: u32, // most recent
    tail: u32, // least recent
    stats: CacheStats,
}

const NIL: u32 = u32::MAX;

impl Default for LruRowCache {
    /// An empty zero-capacity cache over an empty universe; call
    /// [`LruRowCache::reset`] to size it before use.
    fn default() -> Self {
        LruRowCache::new(0, 0)
    }
}

impl LruRowCache {
    /// Creates an empty cache holding up to `capacity_rows` rows out of a
    /// universe of `universe` row IDs.
    pub fn new(capacity_rows: usize, universe: usize) -> Self {
        LruRowCache {
            capacity_rows,
            epoch: 1,
            table: vec![(0, 0); universe],
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Recycles the cache: as if freshly constructed with
    /// `new(capacity_rows, universe)`, but reusing the lookup table and
    /// slot storage. Prior residency and statistics are discarded in O(1)
    /// unless the universe changed or the epoch space is exhausted.
    pub fn reset(&mut self, capacity_rows: usize, universe: usize) {
        self.capacity_rows = capacity_rows;
        if self.table.len() != universe {
            self.table.clear();
            self.table.resize(universe, (0, 0));
            self.epoch = 1;
        } else if self.epoch == u32::MAX {
            self.table.fill((0, 0));
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
        self.stats = CacheStats::default();
    }

    /// Row capacity.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Number of resident rows.
    pub fn resident_rows(&self) -> usize {
        self.slots.len()
    }

    /// The live slot index for `id`, if resident in the current epoch.
    #[inline]
    fn lookup(&self, id: u32) -> Option<u32> {
        let (epoch, slot) = self.table[id as usize];
        (epoch == self.epoch).then_some(slot)
    }

    /// Probes for `id`, recording a hit (and touching the entry) or a miss.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn probe(&mut self, id: u32) -> bool {
        if let Some(slot) = self.lookup(id) {
            self.stats.hits += 1;
            self.unlink(slot);
            self.push_front(slot);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Checks residency without touching statistics or recency.
    pub fn peek(&self, id: u32) -> bool {
        self.lookup(id).is_some()
    }

    /// Installs `id` as most-recently-used, evicting the LRU row if full.
    /// No-op if already resident (the entry is just touched).
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn insert(&mut self, id: u32) {
        if self.capacity_rows == 0 {
            return;
        }
        if let Some(slot) = self.lookup(id) {
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        self.stats.fills += 1;
        let slot = if self.slots.len() >= self.capacity_rows {
            let victim = self.tail;
            let old_id = self.slots[victim as usize].0;
            self.table[old_id as usize].0 = 0; // dead epoch: never matches
            self.unlink(victim);
            self.slots[victim as usize].0 = id;
            victim
        } else {
            self.slots.push((id, NIL, NIL));
            (self.slots.len() - 1) as u32
        };
        self.table[id as usize] = (self.epoch, slot);
        self.push_front(slot);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn unlink(&mut self, slot: u32) {
        let (_, prev, next) = self.slots[slot as usize];
        if prev != NIL {
            self.slots[prev as usize].2 = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].1 = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot as usize].1 = NIL;
        self.slots[slot as usize].2 = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        self.slots[slot as usize].1 = NIL;
        self.slots[slot as usize].2 = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].1 = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_cache_respects_capacity() {
        let mut c = PinnedRowCache::new(3, 100);
        assert_eq!(c.load(&[1, 2, 3, 4, 5]), 3);
        assert!(c.peek(3));
        assert!(!c.peek(4));
    }

    #[test]
    fn pinned_cache_reload_swaps_cluster_sets() {
        // Figure 13: cluster 0 pins {0,1,2}, cluster 1 pins {3,4,5}.
        let mut c = PinnedRowCache::new(3, 6);
        c.load(&[0, 1, 2]);
        assert!(c.probe(0) && c.probe(1) && c.probe(2));
        c.load(&[3, 4, 5]);
        assert!(!c.peek(0));
        assert!(c.probe(3) && c.probe(4) && c.probe(5));
        assert_eq!(c.stats().hits, 6);
        assert_eq!(c.stats().fills, 6);
    }

    #[test]
    fn pinned_cache_misses_are_not_installed() {
        let mut c = PinnedRowCache::new(2, 10);
        c.load(&[1]);
        assert!(!c.probe(5));
        assert!(!c.probe(5), "miss twice: streaming, not caching");
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn pinned_cache_dedups_load_list() {
        let mut c = PinnedRowCache::new(4, 10);
        assert_eq!(c.load(&[7, 7, 8]), 2);
    }

    #[test]
    fn pinned_load_duplicates_fill_once_and_do_not_consume_capacity() {
        // Regression (load audit): a duplicate ID names the same cached
        // row, so it must neither double-count `fills` nor burn a
        // capacity slot that a later distinct ID could use.
        let mut c = PinnedRowCache::new(2, 10);
        assert_eq!(c.load(&[7, 7, 8, 9]), 2, "capacity counts distinct rows");
        assert!(
            c.peek(7) && c.peek(8),
            "8 gets the slot the duplicate freed"
        );
        assert!(!c.peek(9), "capacity still bounds the pinned set");
        assert_eq!(c.stats().fills, 2, "one DMA fill per distinct row");
    }

    #[test]
    fn pinned_reset_discards_prior_epoch_residency() {
        // The epoch-reset contract: residency pinned before a reset must
        // miss afterwards, even though the table was not rewritten.
        let mut c = PinnedRowCache::new(2, 8);
        c.load(&[3, 5]);
        assert!(c.probe(3));
        c.reset(2, 8);
        assert!(!c.probe(3), "stale residency from the prior epoch");
        assert!(!c.peek(5));
        assert_eq!(c.resident_rows(), 0);
        assert_eq!(
            *c.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                fills: 0
            },
            "reset clears statistics"
        );
        // And the recycled cache behaves exactly like a fresh one.
        assert_eq!(c.load(&[1, 2, 3]), 2);
        assert!(c.probe(1) && c.probe(2) && !c.peek(3));
    }

    #[test]
    fn pinned_reset_resizes_universe_and_capacity() {
        let mut c = PinnedRowCache::new(1, 4);
        c.load(&[2]);
        c.reset(3, 16);
        assert_eq!(c.capacity_rows(), 3);
        assert_eq!(c.load(&[15, 14, 2, 1]), 3);
        assert!(c.peek(15) && c.peek(2) && !c.peek(1));
    }

    #[test]
    fn figure12_hit_count() {
        // Figure 12 of the paper: node degrees (column counts) are
        // [5, 3, 3, 4, 4, 3]; pinning the top-3 nodes {0, 3, 4} yields
        // exactly 5 + 4 + 4 = 13 HDN cache hits over the six output rows.
        let rows: [&[u32]; 6] = [
            &[0, 2, 3, 4, 5],
            &[0, 1, 3, 4],
            &[0, 1, 3, 4],
            &[0, 2, 4, 5],
            &[0, 1, 3, 5],
            &[2],
        ];
        let mut c = PinnedRowCache::new(3, 6);
        c.load(&[0, 3, 4]);
        for row in rows {
            for &col in row {
                c.probe(col);
            }
        }
        assert_eq!(c.stats().hits, 13, "Figure 12 promises 13 hits");
    }

    #[test]
    fn figure13_hit_count_with_partitioning() {
        // Figure 13: after graph partitioning, pinning each cluster's own
        // nodes {0,1,2} then {3,4,5} yields 18 hits on the clustered
        // adjacency.
        let rows: [&[u32]; 6] = [
            &[0, 1, 2, 5],
            &[0, 1, 2, 3, 4],
            &[0, 1, 2, 5],
            &[1, 3, 4, 5],
            &[1, 3, 4, 5],
            &[0, 2, 3, 4, 5],
        ];
        let mut c = PinnedRowCache::new(3, 6);
        c.load(&[0, 1, 2]);
        for row in rows.iter().take(3) {
            for &col in *row {
                c.probe(col);
            }
        }
        c.load(&[3, 4, 5]);
        for row in rows.iter().skip(3) {
            for &col in *row {
                c.probe(col);
            }
        }
        assert_eq!(c.stats().hits, 18, "Figure 13 promises 18 hits");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruRowCache::new(2, 16);
        c.insert(1);
        c.insert(2);
        c.probe(1);
        c.insert(3);
        assert!(c.peek(1));
        assert!(!c.peek(2));
        assert!(c.peek(3));
        assert_eq!(c.resident_rows(), 2);
    }

    #[test]
    fn lru_insert_existing_is_touch() {
        let mut c = LruRowCache::new(2, 16);
        c.insert(1);
        c.insert(2);
        c.insert(1); // touch, no fill
        c.insert(3); // evicts 2
        assert!(c.peek(1) && c.peek(3) && !c.peek(2));
        assert_eq!(c.stats().fills, 3);
    }

    #[test]
    fn lru_zero_capacity_never_hits() {
        let mut c = LruRowCache::new(0, 16);
        c.insert(1);
        assert!(!c.probe(1));
        assert_eq!(c.resident_rows(), 0);
    }

    #[test]
    fn lru_heavy_churn_is_consistent() {
        let mut c = LruRowCache::new(8, 16);
        for i in 0..1000u32 {
            c.probe(i % 16);
            c.insert(i % 16);
        }
        assert_eq!(c.resident_rows(), 8);
        let resident: Vec<u32> = (0..16).filter(|&i| c.peek(i)).collect();
        assert_eq!(resident.len(), 8);
    }

    #[test]
    fn lru_reset_discards_prior_epoch_residency() {
        let mut c = LruRowCache::new(4, 16);
        c.insert(3);
        c.insert(9);
        assert!(c.probe(3));
        c.reset(4, 16);
        assert!(!c.peek(3) && !c.peek(9), "stale epoch must miss");
        assert!(!c.probe(9));
        assert_eq!(c.resident_rows(), 0);
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 1);
        // Evicting after a reset must not resurrect pre-reset entries.
        for i in 0..6 {
            c.insert(i);
        }
        assert_eq!(c.resident_rows(), 4);
        assert!(c.peek(5) && c.peek(2) && !c.peek(1));
    }

    #[test]
    fn lru_reset_resizes_universe() {
        let mut c = LruRowCache::new(2, 4);
        c.insert(3);
        c.reset(2, 32);
        assert!(!c.peek(3));
        c.insert(31);
        assert!(c.probe(31));
    }

    #[test]
    fn lru_matches_reference_model_under_churn() {
        // The dense-table implementation must agree probe-for-probe with a
        // straightforward vector-based LRU reference.
        let mut c = LruRowCache::new(5, 64);
        let mut reference: Vec<u32> = Vec::new(); // front = MRU
        let mut state = 0x2545f4914f6cdd1du64;
        for _ in 0..4000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let id = (state % 64) as u32;
            let expect_hit = reference.contains(&id);
            assert_eq!(c.probe(id), expect_hit, "probe {id}");
            if expect_hit {
                reference.retain(|&x| x != id);
                reference.insert(0, id);
            } else {
                c.insert(id);
                if reference.len() == 5 {
                    reference.pop();
                }
                reference.insert(0, id);
            }
        }
        for id in 0..64 {
            assert_eq!(c.peek(id), reference.contains(&id), "peek {id}");
        }
    }

    #[test]
    fn hit_rate_reporting() {
        let mut c = LruRowCache::new(4, 16);
        assert!(c.stats().hit_rate().is_none());
        c.insert(9);
        c.probe(9);
        c.probe(10);
        assert_eq!(c.stats().hit_rate(), Some(0.5));
    }

    #[test]
    fn stats_hit_rate_edge_cases() {
        // Zero probes: undefined, not 0/0.
        assert!(CacheStats::default().hit_rate().is_none());
        // Fills alone do not constitute probes.
        let fills_only = CacheStats {
            fills: 10,
            ..CacheStats::default()
        };
        assert!(fills_only.hit_rate().is_none());
        // All-miss and all-hit extremes.
        let misses = CacheStats {
            misses: 4,
            ..CacheStats::default()
        };
        assert_eq!(misses.hit_rate(), Some(0.0));
        let hits = CacheStats {
            hits: 4,
            ..CacheStats::default()
        };
        assert_eq!(hits.hit_rate(), Some(1.0));
    }

    #[test]
    fn stats_merge_saturates_instead_of_wrapping() {
        let mut a = CacheStats {
            hits: u64::MAX - 1,
            misses: 5,
            fills: u64::MAX,
        };
        let b = CacheStats {
            hits: 10,
            misses: 7,
            fills: 1,
        };
        a.merge(&b);
        assert_eq!(a.hits, u64::MAX, "saturated, not wrapped");
        assert_eq!(a.misses, 12, "in-range counters still add exactly");
        assert_eq!(a.fills, u64::MAX);
    }
}
