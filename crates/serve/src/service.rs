//! [`AsyncService`] — the always-on, asynchronous front end of the
//! serving layer.
//!
//! [`BatchService`] is synchronous and batch-scoped: callers assemble a
//! job list, block through `run_batch`, and get every result at once. An
//! always-on deployment needs the opposite shape — submissions arriving
//! at any time, an immediate [`Ticket`] per submission, and each
//! [`JobResult`] delivered the moment its job completes. `AsyncService`
//! provides that shape on plain `std` (threads + `mpsc` + `Condvar`; the
//! workspace builds without crates.io, so there is no tokio), layered on
//! the same `BatchService` internals:
//!
//! * **Priority classes + admission control.** Submissions enter one of
//!   three FIFO queues ([`Priority::High`]/[`Priority::Normal`]/
//!   [`Priority::Low`]); workers always drain the highest non-empty
//!   class. The pending set is bounded by
//!   [`AsyncConfig::queue_capacity`]; a submission over the bound is
//!   rejected immediately with [`SubmitError::QueueFull`] — back-pressure
//!   by refusal, never by blocking the submitter.
//! * **A supervised worker pool.** [`AsyncConfig::workers`] threads
//!   drain the queues concurrently. Jobs sharing a cache key never run
//!   at once (the second becomes a cache hit when the first commits —
//!   still exactly one computation per key), same-workload preparation
//!   is claimed by one worker and awaited by the rest, and simulations
//!   run outside the service lock, so distinct jobs overlap end to end.
//!   The [`governor`](crate::governor) arbitrates the two parallelism
//!   levels per picked-up job: a contended queue forces the job's inner
//!   cluster fan-out serial (the `run_batch` one-level rule, applied
//!   dynamically), a lone job keeps the machine to itself. One killed
//!   worker (the injected `worker` fault site, whose `nth` selects which
//!   pool worker dies) records its casualty and the pool degrades to
//!   N−1; the service only dies with its last worker.
//! * **Bounded session pool.** [`AsyncConfig::session_capacity`] forwards
//!   to [`BatchService::with_session_capacity`]'s LRU bound, so an
//!   always-on process does not accumulate one pooled workload per
//!   distinct recipe it ever saw.
//! * **Persistent results.** Attach a
//!   [`ResultStore`](crate::ResultStore) to the inner `BatchService` and
//!   repeated queries are served across process restarts without running
//!   a simulation.
//!
//! **Bit-identity contract.** Every engine is bit-identical between its
//! serial and parallel paths, and the governor only narrows execution
//! (it widens nothing past an enclosing override), so each job's report
//! is independent of which worker ran it, what else was in flight, and
//! the inner budget it was granted. Draining an `AsyncService` therefore
//! yields reports byte-for-byte equal to `BatchService::run_batch` over
//! the same jobs — at any worker count, under both `GROW_SERIAL=1` and
//! any thread count. Worker threads replay the spawning thread's
//! `with_mode`/`with_workers` overrides via [`ExecContext`], so scoped
//! test overrides apply to async runs too. Only completion *order* is
//! schedule-dependent; every per-ticket result is deterministic.

use std::cell::{Cell, RefCell};
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use grow_core::PreparedWorkload;
use grow_sim::exec::{self, ExecContext};
use grow_sim::fault::{self, CancelToken, FaultSite};

use crate::batch::{
    compute_supervised, job_fault_plan, BatchService, ComputeTask, JobKey, JobResult, JobSpec,
    ServiceStats, Staged,
};
use crate::governor::{self, InnerBudget, QueueSnapshot};
use crate::session::SimSession;

/// Scheduling class of a submission: workers always serve the highest
/// non-empty class, FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Served before everything else (interactive queries).
    High,
    /// The default class.
    #[default]
    Normal,
    /// Served only when nothing else waits (background sweeps).
    Low,
}

impl Priority {
    /// Queue slot of this class (0 = served first).
    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Configuration of an [`AsyncService`].
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Maximum number of admitted-but-uncompleted jobs (queued plus in
    /// flight); a submission over the bound is rejected with
    /// [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// LRU bound for the inner session pool (`None` keeps whatever the
    /// wrapped [`BatchService`] was configured with).
    pub session_capacity: Option<usize>,
    /// Supervised worker threads draining the queues concurrently
    /// (clamped to >= 1; the default is 1, the historical single-worker
    /// drain). Reports are bit-identical at every worker count — the
    /// count only changes wall time and completion order.
    pub workers: usize,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            queue_capacity: 1024,
            session_capacity: None,
            workers: 1,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending set is at capacity; resubmit after draining tickets.
    QueueFull {
        /// The configured [`AsyncConfig::queue_capacity`].
        capacity: usize,
        /// Admitted-but-uncompleted jobs at rejection time.
        pending: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// Every pool worker died (injected worker kills or supervision
    /// escapes); no new work can run. Call
    /// [`finish_report`](AsyncService::finish_report) for the casualty
    /// list. While at least one worker survives, the service keeps
    /// accepting work on the degraded pool.
    ServiceDead,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, pending } => write!(
                f,
                "pending queue full ({pending} of {capacity} slots in use)"
            ),
            SubmitError::ShuttingDown => f.write_str("service is shutting down"),
            SubmitError::ServiceDead => f.write_str("service worker died"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a [`Ticket`] will never deliver a result: the worker processing
/// the job died (or the service was dropped) with the job still
/// outstanding. Surfaced as an error — never a panic or a hang — so
/// submitters always observe a worker death as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The result channel disconnected with no result delivered.
    ServiceDead,
}

impl fmt::Display for WaitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitError::ServiceDead => {
                f.write_str("service died before delivering this job's result")
            }
        }
    }
}

impl std::error::Error for WaitError {}

/// Shutdown summary returned by [`AsyncService::finish_report`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FinishReport {
    /// True when at least one pool worker exited by panic rather than by
    /// draining its queues.
    pub worker_panicked: bool,
    /// Submission ids whose results were never delivered because their
    /// worker died: each dead worker's in-flight job, plus — only once
    /// the *last* worker dies — everything still queued.
    pub casualties: Vec<u64>,
}

/// A claim on one submitted job's eventual [`JobResult`], returned
/// immediately by [`AsyncService::submit`]. The result is delivered the
/// moment the job completes, independent of every other submission.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<JobResult>,
    cancel: Arc<CancelToken>,
}

impl Ticket {
    /// The submission id (also stamped into the delivered
    /// [`JobResult::index`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation of this job. The engine checks
    /// the token at cluster and layer boundaries; a job caught in flight
    /// completes as [`JobError::Cancelled`](crate::JobError::Cancelled).
    /// A job that already completed (or is served from cache) still
    /// delivers its report — cancellation never corrupts a finished
    /// result, it only stops future work.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the job completes and returns its result.
    ///
    /// # Errors
    ///
    /// [`WaitError::ServiceDead`] when the processing worker died (or
    /// the service was dropped) before delivering this job's result —
    /// never a panic, never a hang.
    pub fn wait(self) -> Result<JobResult, WaitError> {
        self.rx.recv().map_err(|_| WaitError::ServiceDead)
    }

    /// Returns the result if the job has already completed, without
    /// blocking. At most one result is ever delivered per ticket: after
    /// this returns `Ok(Some(..))`, [`wait`](Self::wait) would error.
    ///
    /// # Errors
    ///
    /// [`WaitError::ServiceDead`] when the channel disconnected with no
    /// result delivered.
    pub fn try_wait(&self) -> Result<Option<JobResult>, WaitError> {
        match self.rx.try_recv() {
            Ok(result) => Ok(Some(result)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(WaitError::ServiceDead),
        }
    }
}

/// One admitted submission parked in the priority queues.
struct Submission {
    id: u64,
    job: JobSpec,
    /// The job's canonical cache key, computed once at admission — the
    /// worker pool's same-key exclusion set and the delivered
    /// [`JobResult::key`] both use it.
    key: JobKey,
    tx: Sender<JobResult>,
    cancel: Arc<CancelToken>,
}

/// The queues and lifecycle flags shared between submitters and the
/// worker pool.
struct QueueState {
    /// One FIFO per [`Priority`], indexed by [`Priority::index`].
    queues: [VecDeque<Submission>; 3],
    /// Admitted-but-uncompleted jobs (queued plus in flight).
    pending: usize,
    /// Set by [`AsyncService::finish`]: stop after draining the queues.
    stopping: bool,
    /// Set by `Drop`: stop now, discarding queued submissions.
    abort: bool,
    /// Workers still serving. Decremented only by a worker's death
    /// guard; the service is dead when it reaches zero.
    workers_alive: usize,
    /// Submission ids orphaned by worker deaths (each dead worker's
    /// in-flight job; plus the whole queue once the last worker dies).
    casualties: Vec<u64>,
    /// Cache keys being computed right now. A queued duplicate of a
    /// running key is not runnable — it waits and becomes a cache hit
    /// when the computation commits, preserving exactly-one-computation
    /// -per-key at any worker count.
    running: HashSet<JobKey>,
    /// Session keys being prepared right now. One worker claims a
    /// workload's preparation; same-session workers wait on the claim
    /// instead of preparing twice.
    preparing: HashSet<String>,
}

impl QueueState {
    /// Pops the oldest submission of the highest non-empty class.
    fn pop(&mut self) -> Option<Submission> {
        self.queues.iter_mut().find_map(VecDeque::pop_front)
    }

    /// Pops the oldest *runnable* submission of the highest non-empty
    /// class: priority order, skipping submissions whose cache key is
    /// computing on another worker right now.
    fn pop_runnable(&mut self) -> Option<Submission> {
        let running = &self.running;
        for queue in self.queues.iter_mut() {
            if let Some(at) = queue.iter().position(|s| !running.contains(&s.key)) {
                return queue.remove(at);
            }
        }
        None
    }

    /// Submissions still parked in the queues.
    fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl Shared {
    /// Locks the queue state, recovering from poison: a worker that died
    /// mid-update leaves consistent-enough state (counters are fixed up
    /// by the death guard), and submitters must keep observing the death
    /// as data ([`SubmitError::ServiceDead`]), never as a propagated
    /// panic.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The always-on asynchronous serving front end. See the
/// [module docs](self) for the design and the bit-identity contract.
///
/// ```
/// use grow_model::DatasetKey;
/// use grow_serve::{AsyncConfig, AsyncService, BatchService, JobSpec};
///
/// let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
/// let spec = DatasetKey::Cora.spec().scaled_to(300);
/// let ticket = service.submit(JobSpec::new(spec, 42, "grow")).unwrap();
/// let result = ticket.wait().expect("worker alive");
/// assert!(result.report().is_some());
/// let batch = service.finish(); // drain + recover the inner BatchService
/// assert_eq!(batch.stats().simulations_run, 1);
/// ```
pub struct AsyncService {
    shared: Arc<Shared>,
    service: Option<Arc<Mutex<BatchService>>>,
    completions: Arc<Mutex<Vec<u64>>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    capacity: usize,
}

impl fmt::Debug for AsyncService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncService")
            .field("capacity", &self.capacity)
            .field("workers", &self.workers.len())
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

impl AsyncService {
    /// Spawns the worker pool and starts accepting submissions. The
    /// wrapped `service` brings its caches, counters, and any attached
    /// [`ResultStore`](crate::ResultStore) with it.
    pub fn start(mut service: BatchService, config: AsyncConfig) -> Self {
        if config.session_capacity.is_some() {
            service.set_session_capacity(config.session_capacity);
        }
        let worker_total = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                pending: 0,
                stopping: false,
                abort: false,
                workers_alive: worker_total,
                casualties: Vec::new(),
                running: HashSet::new(),
                preparing: HashSet::new(),
            }),
            cv: Condvar::new(),
        });
        let service = Arc::new(Mutex::new(service));
        let completions = Arc::new(Mutex::new(Vec::new()));
        // Every worker replays this thread's execution overrides, so a
        // `with_mode(ExecMode::Serial, ..)` scope around the service
        // applies to async runs exactly as it would to `run_batch`.
        let ctx = ExecContext::capture();
        let workers = (1..=worker_total)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let service = Arc::clone(&service);
                let completions = Arc::clone(&completions);
                std::thread::Builder::new()
                    .name(format!("grow-serve-worker-{index}"))
                    .spawn(move || {
                        ctx.scope(|| worker_loop(index, &shared, &service, &completions))
                    })
                    .expect("spawn serving worker")
            })
            .collect();
        AsyncService {
            shared,
            service: Some(service),
            completions,
            workers,
            next_id: AtomicU64::new(0),
            capacity: config.queue_capacity.max(1),
        }
    }

    /// Submits one job at [`Priority::Normal`]; returns its [`Ticket`]
    /// immediately (never blocks on compute).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] over the admission bound,
    /// [`SubmitError::ShuttingDown`] after [`finish`](Self::finish) began.
    pub fn submit(&self, job: JobSpec) -> Result<Ticket, SubmitError> {
        self.submit_with(job, Priority::Normal)
    }

    /// [`submit`](Self::submit) with an explicit [`Priority`] class.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_with(&self, job: JobSpec, priority: Priority) -> Result<Ticket, SubmitError> {
        self.submit_inner(job, priority, CancelToken::new())
    }

    /// [`submit_with`](Self::submit_with) plus a per-job deadline: a job
    /// still running `timeout` after submission cancels cooperatively at
    /// its next cluster/layer boundary and completes as
    /// [`JobError::Cancelled`](crate::JobError::Cancelled). The deadline
    /// only decides *whether* a job completes, never what a completed
    /// report contains, so determinism of delivered reports is untouched.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        job: JobSpec,
        priority: Priority,
        timeout: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(
            job,
            priority,
            CancelToken::with_deadline(Instant::now() + timeout),
        )
    }

    fn submit_inner(
        &self,
        job: JobSpec,
        priority: Priority,
        cancel: CancelToken,
    ) -> Result<Ticket, SubmitError> {
        let cancel = Arc::new(cancel);
        let key = job.key();
        let mut st = self.shared.lock();
        if st.workers_alive == 0 {
            return Err(SubmitError::ServiceDead);
        }
        if st.stopping {
            return Err(SubmitError::ShuttingDown);
        }
        if st.pending >= self.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
                pending: st.pending,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        st.queues[priority.index()].push_back(Submission {
            id,
            job,
            key,
            tx,
            cancel: Arc::clone(&cancel),
        });
        st.pending += 1;
        drop(st);
        self.shared.cv.notify_all();
        Ok(Ticket { id, rx, cancel })
    }

    /// Admitted-but-uncompleted jobs right now (queued plus in flight).
    pub fn pending(&self) -> usize {
        self.shared.lock().pending
    }

    /// The admission bound ([`AsyncConfig::queue_capacity`]).
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Pool workers still serving (the spawned count minus deaths).
    pub fn workers_alive(&self) -> usize {
        self.shared.lock().workers_alive
    }

    /// Submission ids in completion order — the service's observable
    /// processing sequence (priority classes reorder it relative to
    /// submission order; with several workers it interleaves by
    /// completion time).
    pub fn completed_ids(&self) -> Vec<u64> {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// True when every pool worker died; every outstanding ticket will
    /// resolve to [`WaitError::ServiceDead`] and new submissions are
    /// rejected with [`SubmitError::ServiceDead`]. A partially-degraded
    /// pool (some deaths, at least one survivor) reports `false` and
    /// keeps serving.
    pub fn worker_dead(&self) -> bool {
        self.shared.lock().workers_alive == 0
    }

    /// Submission ids orphaned by worker deaths so far (empty while the
    /// pool is healthy). The authoritative list at shutdown is
    /// [`finish_report`](Self::finish_report)'s.
    pub fn casualties(&self) -> Vec<u64> {
        self.shared.lock().casualties.clone()
    }

    /// Cumulative counters of the inner [`BatchService`]. May block
    /// briefly while a worker holds the service for staging or commit
    /// bookkeeping (simulations themselves run outside the lock).
    pub fn stats(&self) -> ServiceStats {
        self.inner()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats()
    }

    /// Drains every queued submission, stops the worker pool, and
    /// returns the inner [`BatchService`] — with its warmed caches and
    /// counters — for inspection or synchronous reuse. Worker deaths are
    /// absorbed, not propagated (see
    /// [`finish_report`](Self::finish_report) for the casualty list).
    pub fn finish(self) -> BatchService {
        self.finish_report().0
    }

    /// [`finish`](Self::finish) plus the shutdown summary: whether any
    /// worker exited by panic, and which submission ids lost their
    /// results to it. A clean shutdown reports `worker_panicked: false`
    /// and no casualties.
    pub fn finish_report(mut self) -> (BatchService, FinishReport) {
        {
            let mut st = self.shared.lock();
            st.stopping = true;
        }
        self.shared.cv.notify_all();
        let mut worker_panicked = false;
        for worker in self.workers.drain(..) {
            worker_panicked |= worker.join().is_err();
        }
        let casualties = self.shared.lock().casualties.clone();
        let service = self.service.take().expect("finish runs once");
        let Ok(service) = Arc::try_unwrap(service) else {
            unreachable!("workers have exited, so the service has one owner");
        };
        let service = service.into_inner().unwrap_or_else(PoisonError::into_inner);
        (
            service,
            FinishReport {
                worker_panicked,
                casualties,
            },
        )
    }

    fn inner(&self) -> &Mutex<BatchService> {
        self.service.as_ref().expect("service present until finish")
    }
}

impl Drop for AsyncService {
    fn drop(&mut self) {
        // `finish` already joined the pool; otherwise stop it promptly,
        // discarding queued submissions (their tickets' senders drop, so
        // a blocked `Ticket::wait` errors rather than hanging forever).
        if self.workers.is_empty() {
            return;
        }
        {
            let mut st = self.shared.lock();
            st.stopping = true;
            st.abort = true;
        }
        self.shared.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Arms a pool worker against its own death: dropped during an unwind,
/// it decrements the live-worker count, records the in-flight job as a
/// casualty (dropping its sender so the waiter observes a disconnect,
/// never a hang), releases any preparation claim so same-session workers
/// do not wait forever, and — when it was the *last* worker — drains the
/// whole queue as casualties. Disarmed on the worker's clean exits.
struct WorkerGuard<'a> {
    shared: &'a Shared,
    /// The submission being processed right now, if any. The guard
    /// *owns* it so that during an unwind its sender cannot drop before
    /// the death is recorded below — a waiter woken by the disconnect
    /// must already observe the degraded pool state.
    current: RefCell<Option<Submission>>,
    /// The session key whose preparation this worker has claimed, if any.
    preparing: RefCell<Option<String>>,
    armed: Cell<bool>,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if !self.armed.get() {
            return;
        }
        // Collect the casualties' submissions and drop them only after
        // the lock is released and the death is visible: their senders
        // dropping is what wakes the waiters.
        let mut dead: Vec<Submission> = Vec::new();
        let mut st = self.shared.lock();
        st.workers_alive = st.workers_alive.saturating_sub(1);
        if let Some(submission) = self.current.borrow_mut().take() {
            st.running.remove(&submission.key);
            st.casualties.push(submission.id);
            st.pending = st.pending.saturating_sub(1);
            dead.push(submission);
        }
        if let Some(session_key) = self.preparing.borrow_mut().take() {
            st.preparing.remove(&session_key);
        }
        if st.workers_alive == 0 {
            while let Some(submission) = st.pop() {
                st.casualties.push(submission.id);
                st.pending = st.pending.saturating_sub(1);
                dead.push(submission);
            }
        }
        drop(st);
        self.shared.cv.notify_all();
        drop(dead);
    }
}

/// One pool worker (1-based `index` of N): pop the highest-priority
/// runnable submission, stage it under the service lock, prepare and
/// simulate outside it under the governor's budget, commit, deliver,
/// repeat until stopped. Staging and compute are supervised, so a job
/// panic — injected or genuine — becomes a
/// [`JobError`](crate::JobError), never a worker death; the only
/// deliberate hole is the `worker` fault site below, which kills worker
/// `index` itself (the spec's `nth` selects the victim) to exercise the
/// death guard and the pool's N−1 degradation.
fn worker_loop(
    index: usize,
    shared: &Shared,
    service: &Mutex<BatchService>,
    completions: &Mutex<Vec<u64>>,
) {
    let guard = WorkerGuard {
        shared,
        current: RefCell::new(None),
        preparing: RefCell::new(None),
        armed: Cell::new(true),
    };
    loop {
        let (submission, snapshot) = {
            let mut st = shared.lock();
            loop {
                if st.abort {
                    guard.armed.set(false);
                    return;
                }
                if let Some(submission) = st.pop_runnable() {
                    st.running.insert(submission.key.clone());
                    let snapshot = QueueSnapshot {
                        queued: st.queued(),
                        running: st.running.len(),
                    };
                    break (submission, snapshot);
                }
                // Drain-to-empty before a clean stop: queued duplicates
                // of a running key are not runnable *yet*, so the queue
                // length — not pop_runnable — decides whether work
                // remains.
                if st.stopping && st.queued() == 0 {
                    guard.armed.set(false);
                    return;
                }
                st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Park the submission in the guard: on an unwind the guard — not
        // the unwinding stack frame — drops it, after recording the death.
        guard.current.replace(Some(submission));
        let current = guard.current.borrow();
        let submission = current.as_ref().expect("parked above");
        // The 'worker' fault site: a supervisor kill that escapes the
        // per-job supervision on purpose. The spec's `nth` picks the
        // victim — worker `index` dies when *it* picks the job up; every
        // other worker serves the same job unharmed.
        if job_fault_plan(&submission.job)
            .action_at(FaultSite::Worker, index as u64, 1)
            .is_some()
        {
            panic!("injected worker kill (fault site 'worker', worker {index})");
        }
        let staged = {
            let mut svc = service.lock().unwrap_or_else(PoisonError::into_inner);
            svc.note_in_flight(snapshot.running as u64);
            fault::with_cancel(Some(Arc::clone(&submission.cancel)), || {
                svc.stage(&submission.job, &submission.key)
            })
        };
        let (outcome, cache_hit, wall_ms) = match staged {
            Staged::Done { outcome, cache_hit } => {
                let mut svc = service.lock().unwrap_or_else(PoisonError::into_inner);
                svc.touch_session(&submission.job);
                (outcome, cache_hit, None)
            }
            Staged::NeedsCompute {
                engine,
                max_attempts,
            } => {
                let budget = governor::inner_budget(
                    snapshot,
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1),
                    exec::configured_workers(),
                );
                let prepared = prepare_for(&guard, shared, service, &submission.job, budget);
                let task = ComputeTask {
                    engine,
                    prepared,
                    max_attempts,
                };
                let run = fault::with_cancel(Some(Arc::clone(&submission.cancel)), || {
                    budget.apply(|| compute_supervised(&task))
                });
                let mut svc = service.lock().unwrap_or_else(PoisonError::into_inner);
                let (outcome, wall_ms) = svc.commit(&submission.job, &submission.key, run);
                svc.touch_session(&submission.job);
                (outcome, false, wall_ms)
            }
        };
        let result = JobResult {
            // Workers number nothing themselves; the submission id is
            // the meaningful index at this layer.
            index: submission.id as usize,
            key: submission.key.clone(),
            dataset: submission.job.dataset.key.name(),
            engine: submission.job.engine.clone(),
            outcome,
            cache_hit,
            wall_ms,
        };
        completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(submission.id);
        {
            let mut st = shared.lock();
            st.running.remove(&submission.key);
            st.pending -= 1;
        }
        shared.cv.notify_all();
        // The ticket may be gone (dropped without waiting); fine.
        let _ = submission.tx.send(result);
        drop(current);
        guard.current.replace(None);
    }
}

/// Gets the job's prepared workload, running the expensive preparation
/// *outside* the service lock so distinct workloads prepare while other
/// workers simulate. One worker claims a workload's preparation through
/// the shared `preparing` set; same-session workers wait on the claim
/// (the session itself leaves the pool for the duration), so each
/// (workload, strategy) pair is still prepared exactly once. The claim
/// is parked in the death guard: a worker dying mid-preparation releases
/// it instead of wedging its peers.
fn prepare_for(
    guard: &WorkerGuard<'_>,
    shared: &Shared,
    service: &Mutex<BatchService>,
    job: &JobSpec,
    budget: InnerBudget,
) -> Arc<PreparedWorkload> {
    let session_key = job.session_key();
    {
        let mut st = shared.lock();
        while st.preparing.contains(&session_key) {
            st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.preparing.insert(session_key.clone());
    }
    guard.preparing.replace(Some(session_key.clone()));
    let (mut session, created) = {
        let mut svc = service.lock().unwrap_or_else(PoisonError::into_inner);
        match svc.take_session(&session_key) {
            Some(session) => (session, false),
            None => {
                let mut session = SimSession::from_spec(job.dataset, job.seed);
                session.set_hdn_id_entries(job.hdn_id_entries);
                session.set_plan_cache(svc.plan_cache_arc(), session_key.clone());
                (session, true)
            }
        }
    };
    // The expensive part — partitioning, relabeling, HDN lists — runs
    // with no lock held, under the same inner budget as the compute
    // (memoized strategies make this a no-op lookup).
    let newly_prepared = budget.apply(|| session.prepare_all(std::slice::from_ref(&job.strategy)));
    let prepared = session
        .get_prepared_arc(job.strategy)
        .expect("just prepared");
    {
        let mut svc = service.lock().unwrap_or_else(PoisonError::into_inner);
        svc.adopt_session(session_key.clone(), session, created, newly_prepared);
    }
    {
        let mut st = shared.lock();
        st.preparing.remove(&session_key);
    }
    guard.preparing.replace(None);
    shared.cv.notify_all();
    prepared
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission(id: u64) -> Submission {
        let (tx, _rx) = mpsc::channel();
        let job = JobSpec::new(
            grow_model::DatasetKey::Cora.spec().scaled_to(300),
            id,
            "grow",
        );
        Submission {
            id,
            key: job.key(),
            job,
            tx,
            cancel: Arc::new(CancelToken::new()),
        }
    }

    fn empty_state() -> QueueState {
        QueueState {
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            pending: 0,
            stopping: false,
            abort: false,
            workers_alive: 1,
            casualties: Vec::new(),
            running: HashSet::new(),
            preparing: HashSet::new(),
        }
    }

    #[test]
    fn queue_pops_priority_classes_in_order() {
        let mut state = empty_state();
        state.queues[Priority::Low.index()].push_back(submission(0));
        state.queues[Priority::Normal.index()].push_back(submission(1));
        state.queues[Priority::High.index()].push_back(submission(2));
        state.queues[Priority::High.index()].push_back(submission(3));
        state.queues[Priority::Normal.index()].push_back(submission(4));
        let order: Vec<u64> = std::iter::from_fn(|| state.pop()).map(|s| s.id).collect();
        assert_eq!(order, [2, 3, 1, 4, 0], "High FIFO, then Normal, then Low");
    }

    #[test]
    fn pop_runnable_skips_keys_already_computing() {
        let mut state = empty_state();
        let first = submission(0);
        let duplicate_key = first.key.clone();
        state.running.insert(first.key.clone());
        // A queued duplicate of the running key parks; a distinct key
        // behind it runs.
        let twin = {
            let (tx, _rx) = mpsc::channel();
            Submission {
                id: 1,
                job: first.job.clone(),
                key: duplicate_key.clone(),
                tx,
                cancel: Arc::new(CancelToken::new()),
            }
        };
        state.queues[Priority::Normal.index()].push_back(twin);
        state.queues[Priority::Normal.index()].push_back(submission(2));
        assert_eq!(state.queued(), 2);
        let popped = state.pop_runnable().expect("distinct key is runnable");
        assert_eq!(popped.id, 2, "duplicate of the running key is skipped");
        assert!(
            state.pop_runnable().is_none(),
            "nothing runnable while the twin's key computes"
        );
        // Once the computation commits, the parked twin runs.
        state.running.remove(&duplicate_key);
        assert_eq!(state.pop_runnable().expect("now runnable").id, 1);
    }

    #[test]
    fn submit_after_finish_flag_is_rejected() {
        let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
        {
            let mut st = service.shared.lock();
            st.stopping = true;
        }
        let spec = grow_model::DatasetKey::Cora.spec().scaled_to(300);
        assert_eq!(
            service.submit(JobSpec::new(spec, 1, "grow")).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn submit_error_messages_name_the_bound() {
        let e = SubmitError::QueueFull {
            capacity: 4,
            pending: 4,
        };
        assert_eq!(e.to_string(), "pending queue full (4 of 4 slots in use)");
        assert_eq!(
            SubmitError::ShuttingDown.to_string(),
            "service is shutting down"
        );
    }
}
