use crate::Cycle;

/// The MAC vector unit of Table III: 16 lanes of 64-bit multiply-accumulate.
///
/// The key primitive of GROW's row-wise product is a scalar x vector
/// operation (Section VII-H): one LHS non-zero times an F-wide RHS row,
/// which occupies the array for `ceil(F / lanes)` cycles. The unit
/// serializes operations (one scalar x vector at a time) and tracks both
/// total MAC count (for the energy model) and busy cycles (for utilization).
///
/// ```
/// use grow_sim::MacArray;
///
/// let mut mac = MacArray::new(16);
/// let done = mac.scalar_vector(0, 64); // 64-wide row: 4 cycles
/// assert_eq!(done, 4);
/// assert_eq!(mac.mac_ops(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct MacArray {
    lanes: usize,
    busy_until: Cycle,
    busy_cycles: u64,
    mac_ops: u64,
}

impl MacArray {
    /// Creates an idle MAC array with `lanes` parallel MAC units.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "at least one MAC lane required");
        MacArray {
            lanes,
            busy_until: 0,
            busy_cycles: 0,
            mac_ops: 0,
        }
    }

    /// Number of MAC lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles needed for one scalar x vector operation of `width` elements.
    pub fn cycles_for(&self, width: usize) -> Cycle {
        width.div_ceil(self.lanes) as Cycle
    }

    /// Executes one scalar x vector operation of `width` elements, starting
    /// no earlier than `ready`. Returns the completion cycle.
    pub fn scalar_vector(&mut self, ready: Cycle, width: usize) -> Cycle {
        let cycles = self.cycles_for(width);
        let start = self.busy_until.max(ready);
        self.busy_until = start + cycles;
        self.busy_cycles += cycles;
        self.mac_ops += width as u64;
        self.busy_until
    }

    /// Executes `count` back-to-back scalar x vector operations of `width`
    /// elements in one call (bulk accounting for rows whose operands are
    /// all on-chip). Returns the completion cycle of the last one.
    pub fn scalar_vector_bulk(&mut self, ready: Cycle, width: usize, count: u64) -> Cycle {
        if count == 0 {
            return self.busy_until.max(ready);
        }
        let cycles = self.cycles_for(width) * count;
        let start = self.busy_until.max(ready);
        self.busy_until = start + cycles;
        self.busy_cycles += cycles;
        self.mac_ops += width as u64 * count;
        self.busy_until
    }

    /// Occupies the array for `cycles` of non-MAC work (e.g. the
    /// partial-sum merging of the sparse-sparse baselines). Returns the
    /// completion cycle.
    pub fn occupy(&mut self, ready: Cycle, cycles: Cycle) -> Cycle {
        let start = self.busy_until.max(ready);
        self.busy_until = start + cycles;
        self.busy_cycles += cycles;
        self.busy_until
    }

    /// First cycle at which the array is free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Total multiply-accumulate operations executed.
    pub fn mac_ops(&self) -> u64 {
        self.mac_ops
    }

    /// Total cycles the array was occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Resets time (not op counters), e.g. between independent phases.
    pub fn rewind_clock(&mut self) {
        self.busy_until = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_rounds_up_to_lane_multiples() {
        let mac = MacArray::new(16);
        assert_eq!(mac.cycles_for(16), 1);
        assert_eq!(mac.cycles_for(17), 2);
        assert_eq!(mac.cycles_for(41), 3); // Reddit's f_out = 41 (Table I)
        assert_eq!(mac.cycles_for(1), 1);
    }

    #[test]
    fn operations_serialize() {
        let mut mac = MacArray::new(16);
        assert_eq!(mac.scalar_vector(0, 32), 2);
        assert_eq!(mac.scalar_vector(0, 32), 4, "second op queues");
        assert_eq!(mac.scalar_vector(10, 16), 11, "idle gap respected");
    }

    #[test]
    fn counters_accumulate() {
        let mut mac = MacArray::new(8);
        mac.scalar_vector(0, 8);
        mac.scalar_vector(0, 24);
        assert_eq!(mac.mac_ops(), 32);
        assert_eq!(mac.busy_cycles(), 4);
    }

    #[test]
    fn bulk_matches_loop() {
        let mut a = MacArray::new(16);
        a.scalar_vector_bulk(3, 41, 7);
        let mut b = MacArray::new(16);
        let mut done = 0;
        for _ in 0..7 {
            done = b.scalar_vector(3, 41);
        }
        assert_eq!(a.busy_until(), done);
        assert_eq!(a.mac_ops(), b.mac_ops());
        assert_eq!(a.busy_cycles(), b.busy_cycles());
    }

    #[test]
    fn occupy_adds_non_mac_cycles() {
        let mut mac = MacArray::new(4);
        mac.occupy(0, 7);
        assert_eq!(mac.busy_cycles(), 7);
        assert_eq!(mac.mac_ops(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one MAC lane")]
    fn zero_lanes_rejected() {
        MacArray::new(0);
    }
}
