//! Degenerate- and extreme-configuration tests: the substrate must stay
//! well-defined (no panics, sane monotonic behavior) at the corners of the
//! design space that sweeps and ablations can reach.

use grow_sim::{
    Dram, DramConfig, IssueOutcome, LruRowCache, MacArray, PinnedRowCache, RunaheadTables,
    TrafficClass, Waiter,
};

#[test]
fn one_byte_per_cycle_channel_works() {
    let cfg = DramConfig {
        bytes_per_cycle: 1.0,
        latency_cycles: 0,
        access_granularity: 64,
        request_overhead_cycles: 0,
    };
    let mut d = Dram::new(cfg);
    let done = d.read(0, 64, TrafficClass::RhsRows);
    assert_eq!(done, 64);
}

#[test]
fn fractional_bandwidth_accumulates_exactly() {
    // 3 bytes/cycle with 64-byte lines: 10 lines = 640 bytes = 213.3 cycles.
    let cfg = DramConfig {
        bytes_per_cycle: 3.0,
        latency_cycles: 0,
        access_granularity: 64,
        request_overhead_cycles: 0,
    };
    let mut d = Dram::new(cfg);
    let mut last = 0;
    for _ in 0..10 {
        last = d.read(0, 64, TrafficClass::RhsRows);
    }
    assert_eq!(last, (640.0f64 / 3.0).ceil() as u64);
}

#[test]
fn request_overhead_dominates_tiny_requests() {
    let base = DramConfig {
        bytes_per_cycle: 128.0,
        latency_cycles: 0,
        access_granularity: 64,
        request_overhead_cycles: 0,
    };
    let with_overhead = DramConfig {
        request_overhead_cycles: 20,
        ..base
    };
    let mut fast = Dram::new(base);
    let mut slow = Dram::new(with_overhead);
    for _ in 0..100 {
        fast.read(0, 64, TrafficClass::RhsRows);
        slow.read(0, 64, TrafficClass::RhsRows);
    }
    // Same bytes, very different channel occupancy.
    assert_eq!(fast.stats().total_fetched(), slow.stats().total_fetched());
    assert!(slow.busy_until() >= fast.busy_until() + 100 * 20);
}

#[test]
fn streams_are_exempt_from_request_overhead() {
    let cfg = DramConfig {
        bytes_per_cycle: 64.0,
        latency_cycles: 0,
        access_granularity: 64,
        request_overhead_cycles: 50,
    };
    let mut d = Dram::new(cfg);
    for _ in 0..10 {
        d.read_stream(0, 64, TrafficClass::LhsSparse);
    }
    assert_eq!(d.busy_until(), 10, "streaming pays pure bandwidth only");
}

#[test]
#[should_panic(expected = "bandwidth must be positive")]
fn zero_bandwidth_rejected() {
    Dram::new(DramConfig {
        bytes_per_cycle: 0.0,
        latency_cycles: 0,
        access_granularity: 64,
        request_overhead_cycles: 0,
    });
}

#[test]
fn single_lane_mac_is_serial() {
    let mut mac = MacArray::new(1);
    let done = mac.scalar_vector_bulk(0, 64, 10);
    assert_eq!(done, 640);
}

#[test]
fn zero_capacity_pinned_cache_only_misses() {
    let mut c = PinnedRowCache::new(0, 100);
    assert_eq!(c.load(&[1, 2, 3]), 0);
    assert!(!c.probe(1));
    assert_eq!(c.stats().misses, 1);
    assert_eq!(c.stats().fills, 0);
}

#[test]
fn lru_capacity_one_behaves() {
    let mut c = LruRowCache::new(1, 16);
    c.insert(5);
    assert!(c.probe(5));
    c.insert(6);
    assert!(!c.peek(5));
    assert!(c.probe(6));
}

#[test]
fn runahead_tables_minimum_capacity() {
    let mut t = RunaheadTables::new(1, 1);
    let w = Waiter {
        output_row: 0,
        lhs_value: 1.0,
    };
    assert_eq!(t.issue(9, w), IssueOutcome::Allocated);
    t.set_completion(9, 5);
    // Both tables full now.
    assert_eq!(t.issue(9, w), IssueOutcome::LhsFull);
    assert_eq!(t.issue(8, w), IssueOutcome::LhsFull);
    let (done, row, waiters) = t.pop_earliest().expect("one entry");
    assert_eq!((done, row, waiters.len()), (5, 9, 1));
    assert_eq!(t.issue(8, w), IssueOutcome::Allocated);
}

#[test]
fn huge_request_counts_do_not_overflow_cycle_math() {
    let mut d = Dram::new(DramConfig::default());
    let done = d.read_many(0, 50_000_000, 512, TrafficClass::RhsRows);
    assert!(done > 0);
    assert_eq!(d.stats().requests(TrafficClass::RhsRows), 50_000_000);
    assert_eq!(
        d.stats().fetched_bytes(TrafficClass::RhsRows),
        50_000_000 * 512
    );
}

#[test]
fn zero_latency_reads_complete_at_transfer_end() {
    let cfg = DramConfig {
        bytes_per_cycle: 64.0,
        latency_cycles: 0,
        access_granularity: 64,
        request_overhead_cycles: 0,
    };
    let mut d = Dram::new(cfg);
    assert_eq!(d.read(0, 64, TrafficClass::Weights), 1);
}
