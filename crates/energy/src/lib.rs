//! Energy and area models for the GROW reproduction.
//!
//! The paper's methodology (Section VI):
//!
//! * **Energy** — "the energy model from [15]" (Horowitz, ISSCC 2014) for
//!   arithmetic and DRAM accesses, and CACTI [16] at 45 nm for on-chip
//!   SRAM dynamic energy and leakage. Synopsys/CACTI are not runnable
//!   offline, so [`EnergyModel`] encodes the published per-operation
//!   constants and a CACTI-style capacity fit (documented on each field);
//!   Figure 22's breakdown categories (MAC / register file / SRAM / DRAM
//!   dynamic / leakage static) map 1:1 onto [`EnergyBreakdown`].
//! * **Area** — the paper reports RTL synthesis results in Table IV
//!   (65 nm measured, 40 nm estimated via quadratic technology scaling).
//!   [`AreaModel`] reproduces that table and derives per-unit densities so
//!   non-default configurations (e.g. the comparator array of the
//!   Section VIII discussion) can be sized too.
//!
//! # Example
//!
//! ```
//! use grow_energy::{ActivityCounts, EnergyModel};
//!
//! let model = EnergyModel::default();
//! let counts = ActivityCounts {
//!     mac_ops: 1_000_000,
//!     rf_accesses: 3_000_000,
//!     sram_reads_8b: 2_000_000,
//!     sram_writes_8b: 500_000,
//!     dram_bytes: 64_000_000,
//!     cycles: 1_000_000,
//!     sram_kb: 538.0,
//!     ..ActivityCounts::default()
//! };
//! let e = model.estimate(&counts);
//! assert!(e.dram > e.mac, "SpDeGEMM is memory-dominated");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod energy;

pub use area::{AreaBreakdown, AreaModel, GCNAX_AREA_40NM, GROW_AREA_65NM, TECH_SCALE_65_TO_40};
pub use energy::{ActivityCounts, EnergyBreakdown, EnergyModel};
