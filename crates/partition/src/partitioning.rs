use std::fmt;

use grow_graph::Graph;

/// A node-to-part assignment produced by a partitioner.
///
/// Quality is characterized by the classic partitioning metrics the paper's
/// preprocessing relies on: edge cut (equivalently, the intra-cluster edge
/// fraction — "intra-cluster nodes have much larger number of edges than
/// inter-cluster nodes", Section V-C) and balance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<u32>,
    parts: usize,
}

impl Partitioning {
    /// Creates a partitioning from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if any part ID is `>= parts` or `parts == 0`.
    pub fn new(assignment: Vec<u32>, parts: usize) -> Self {
        assert!(parts > 0, "at least one part required");
        assert!(
            assignment.iter().all(|&p| (p as usize) < parts),
            "assignment references a part >= parts"
        );
        Partitioning { assignment, parts }
    }

    /// The trivial single-part partitioning (used by "GROW w/o G.P.").
    pub fn single(nodes: usize) -> Self {
        Partitioning {
            assignment: vec![0; nodes],
            parts: 1,
        }
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Part of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn part_of(&self, v: usize) -> u32 {
        self.assignment[v]
    }

    /// The full node-to-part assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Node count of every part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Number of undirected edges crossing part boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the graph's node count differs from the assignment length.
    pub fn edge_cut(&self, graph: &Graph) -> usize {
        assert_eq!(graph.nodes(), self.assignment.len());
        let mut cut = 0usize;
        for v in 0..graph.nodes() {
            for &u in graph.neighbors(v) {
                if self.assignment[v] != self.assignment[u as usize] {
                    cut += 1;
                }
            }
        }
        cut / 2
    }

    /// Fraction of directed adjacency entries that stay within a part.
    pub fn intra_edge_fraction(&self, graph: &Graph) -> f64 {
        if graph.directed_edges() == 0 {
            return 1.0;
        }
        1.0 - (2 * self.edge_cut(graph)) as f64 / graph.directed_edges() as f64
    }

    /// Balance factor: largest part size over the ideal (`nodes / parts`).
    /// `1.0` is perfect; METIS-quality partitioners stay below ~1.05.
    pub fn balance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.assignment.len() as f64 / self.parts as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Partitioning: {} nodes into {} parts (balance {:.3})",
            self.assignment.len(),
            self.parts,
            self.balance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|v| (v, v + 1)))
    }

    #[test]
    fn new_validates_part_ids() {
        assert!(std::panic::catch_unwind(|| Partitioning::new(vec![0, 3], 2)).is_err());
    }

    #[test]
    fn edge_cut_of_split_path() {
        let g = path_graph(4);
        // parts {0,1} and {2,3}: exactly one edge (1,2) crosses.
        let p = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.edge_cut(&g), 1);
        assert!((p.intra_edge_fraction(&g) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_part_has_no_cut() {
        let g = path_graph(5);
        let p = Partitioning::single(5);
        assert_eq!(p.edge_cut(&g), 0);
        assert_eq!(p.intra_edge_fraction(&g), 1.0);
    }

    #[test]
    fn balance_detects_skew() {
        let p = Partitioning::new(vec![0, 0, 0, 1], 2);
        assert_eq!(p.balance(), 1.5);
        let q = Partitioning::new(vec![0, 0, 1, 1], 2);
        assert_eq!(q.balance(), 1.0);
    }

    #[test]
    fn part_sizes_sum_to_nodes() {
        let p = Partitioning::new(vec![0, 2, 1, 2, 2], 3);
        assert_eq!(p.part_sizes(), vec![1, 1, 3]);
    }
}
