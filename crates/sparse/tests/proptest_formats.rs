//! Randomized-input tests for format conversions and kernel equivalence.
//!
//! (Formerly proptest-based; the offline build has no crates.io access, so
//! cases are drawn from the workspace's own seeded PRNG instead — same
//! properties, deterministic case set.)

use grow_sparse::{analysis, ops, CooMatrix, CsrMatrix, DenseMatrix, RowMajorSparse};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random sparse matrix built from up to 40 uniformly placed triplets.
fn sparse_matrix(rng: &mut StdRng) -> CsrMatrix {
    let rows = rng.random_range(1usize..12);
    let cols = rng.random_range(1usize..12);
    let count = rng.random_range(0usize..40);
    let mut coo = CooMatrix::new(rows, cols);
    for _ in 0..count {
        let r = rng.random_range(0..rows);
        let c = rng.random_range(0..cols);
        let v = rng.random_range(-4.0f64..4.0);
        coo.push(r, c, v).expect("triplet within bounds");
    }
    coo.to_csr()
}

fn dense_matrix(rng: &mut StdRng, rows: usize) -> DenseMatrix {
    let cols = rng.random_range(1usize..10);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.random_range(-4.0f64..4.0))
        .collect();
    DenseMatrix::from_row_major(rows, cols, data).expect("sized")
}

const CASES: usize = 48;

#[test]
fn csr_csc_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x5a01);
    for case in 0..CASES {
        let m = sparse_matrix(&mut rng);
        let back = m.to_csc().to_csr();
        assert_eq!(m, back, "case {case}");
    }
}

#[test]
fn csr_dense_round_trip_preserves_values() {
    let mut rng = StdRng::seed_from_u64(0x5a02);
    for case in 0..CASES {
        let m = sparse_matrix(&mut rng);
        // from_dense drops explicit zeros, so compare dense images instead
        // of the structures.
        let back = CsrMatrix::from_dense(&m.to_dense());
        assert!(back.to_dense().approx_eq(&m.to_dense(), 0.0), "case {case}");
        assert!(back.nnz() <= m.nnz(), "case {case}");
    }
}

#[test]
fn transpose_is_involution() {
    let mut rng = StdRng::seed_from_u64(0x5a03);
    for case in 0..CASES {
        let m = sparse_matrix(&mut rng);
        assert_eq!(m, m.transpose().transpose(), "case {case}");
    }
}

#[test]
fn transpose_preserves_nnz_and_flips_shape() {
    let mut rng = StdRng::seed_from_u64(0x5a04);
    for case in 0..CASES {
        let m = sparse_matrix(&mut rng);
        let t = m.transpose();
        assert_eq!(t.nnz(), m.nnz(), "case {case}");
        assert_eq!(t.shape(), (m.cols(), m.rows()), "case {case}");
    }
}

#[test]
fn spmm_agrees_with_dense_gemm() {
    let mut rng = StdRng::seed_from_u64(0x5a05);
    for case in 0..CASES {
        let a = sparse_matrix(&mut rng);
        let b = dense_matrix(&mut rng, a.cols());
        let sparse = ops::spmm(&a, &b).expect("shapes agree");
        let dense = ops::gemm(&a.to_dense(), &b).expect("shapes agree");
        assert!(sparse.approx_eq(&dense, 1e-9), "case {case}");
    }
}

#[test]
fn row_wise_and_outer_product_dataflows_agree() {
    let mut rng = StdRng::seed_from_u64(0x5a06);
    for case in 0..CASES {
        // Figure 9 of the paper: both dataflows compute the same GEMM.
        let a = sparse_matrix(&mut rng);
        let b = dense_matrix(&mut rng, a.cols());
        let row_wise = ops::spmm(&a, &b).expect("shapes agree");
        let outer = ops::spmm_outer(&a, &b).expect("shapes agree");
        assert!(row_wise.approx_eq(&outer, 1e-9), "case {case}");
    }
}

#[test]
fn permute_symmetric_preserves_spectrum_sample() {
    let mut rng = StdRng::seed_from_u64(0x5a07);
    for case in 0..CASES {
        // Use a square submatrix; permuting rows+cols by the same
        // permutation preserves nnz and the multiset of values.
        let m = sparse_matrix(&mut rng);
        let n = m.rows().min(m.cols());
        let dense = m.to_dense();
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for c in 0..n {
                let v = dense.get(r, c);
                if v != 0.0 {
                    coo.push(r, c, v).expect("in bounds");
                }
            }
        }
        let sq = coo.to_csr();
        let perm: Vec<u32> = (0..n as u32).rev().collect();
        let p = sq.permute_symmetric(&perm);
        assert_eq!(p.nnz(), sq.nnz(), "case {case}");
        let mut orig: Vec<u64> = sq.values().iter().map(|v| v.to_bits()).collect();
        let mut permuted: Vec<u64> = p.values().iter().map(|v| v.to_bits()).collect();
        orig.sort_unstable();
        permuted.sort_unstable();
        assert_eq!(orig, permuted, "case {case}");
    }
}

#[test]
fn tile_histogram_conserves_nnz_lower_bound() {
    let mut rng = StdRng::seed_from_u64(0x5a08);
    for case in 0..CASES {
        // Non-empty tiles can hold at most tile_rows*tile_cols nnz, so the
        // tile count must be >= nnz / tile_area and the histogram fractions
        // sum to 1.
        let m = sparse_matrix(&mut rng);
        let p = m.pattern();
        let view = RowMajorSparse::from(p);
        let h = analysis::tile_nnz_histogram(&view, 2, 2, &[1, 2]);
        let total: u64 = h.counts.iter().sum();
        assert_eq!(total, h.nonempty_tiles, "case {case}");
        if p.nnz() > 0 {
            assert!(
                h.nonempty_tiles as usize >= p.nnz().div_ceil(4),
                "case {case}"
            );
            assert!(h.nonempty_tiles as usize <= p.nnz(), "case {case}");
        } else {
            assert_eq!(h.nonempty_tiles, 0, "case {case}");
        }
    }
}

#[test]
fn mac_counts_a_xw_is_exact() {
    let mut rng = StdRng::seed_from_u64(0x5a09);
    for case in 0..CASES {
        // nnz-based count for A*(X*W) must equal (nnz(A) + nnz(X)) * f_out.
        let m = sparse_matrix(&mut rng);
        let n = m.cols();
        let x = RowMajorSparse::Dense { rows: n, cols: 7 };
        let counts = analysis::gcn_mac_counts(m.pattern(), &x, 3);
        assert_eq!(
            counts.a_xw,
            ((n * 7) as u64 + m.nnz() as u64) * 3,
            "case {case}"
        );
    }
}
