use std::ops::Range;

use grow_sparse::CsrPattern;

/// Extracts the per-cluster high-degree-node (HDN) ID lists.
///
/// For every cluster (a contiguous row range of the — already relabeled —
/// adjacency matrix), this counts how often each column is referenced by
/// the cluster's rows and returns the `top_n` most-referenced column IDs.
/// Those are exactly the RHS dense-matrix rows GROW pins in its HDN cache
/// while computing the cluster (Section V-C: "choose the top-N high-degree
/// nodes subject for HDN caching only within the cluster"). Counting
/// *references from the cluster* rather than global degree also captures
/// global hubs that a cluster touches across its boundary.
///
/// The returned lists are ordered by descending reference count (ties by
/// ascending ID) and contain at most `top_n` entries each.
///
/// # Panics
///
/// Panics if a range exceeds the matrix bounds.
///
/// ```
/// use grow_sparse::{CooMatrix, CsrPattern};
/// use grow_partition::hdn_lists;
///
/// // Rows 0-1 reference column 3 twice and column 0 once.
/// let mut coo = CooMatrix::new(4, 4);
/// for (r, c) in [(0, 3), (1, 3), (1, 0)] { coo.push(r, c, 1.0).unwrap(); }
/// let adj = coo.to_csr().into_pattern();
/// let lists = hdn_lists(&adj, &[0..2], 1);
/// assert_eq!(lists, vec![vec![3]]);
/// ```
pub fn hdn_lists(
    adjacency: &CsrPattern,
    cluster_ranges: &[Range<usize>],
    top_n: usize,
) -> Vec<Vec<u32>> {
    let n_cols = adjacency.cols();
    let mut counts: Vec<u32> = vec![0; n_cols];
    let mut touched: Vec<u32> = Vec::new();
    let mut lists = Vec::with_capacity(cluster_ranges.len());
    for range in cluster_ranges {
        assert!(
            range.end <= adjacency.rows(),
            "cluster range exceeds matrix"
        );
        for r in range.clone() {
            for &c in adjacency.row_indices(r) {
                if counts[c as usize] == 0 {
                    touched.push(c);
                }
                counts[c as usize] += 1;
            }
        }
        // Top-N by (count desc, id asc).
        touched.sort_unstable_by_key(|&c| (std::cmp::Reverse(counts[c as usize]), c));
        let take = touched.len().min(top_n);
        let list: Vec<u32> = touched[..take].to_vec();
        for &c in &touched {
            counts[c as usize] = 0;
        }
        touched.clear();
        lists.push(list);
    }
    lists
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // single-cluster range lists are intentional
mod tests {
    use super::*;
    use grow_sparse::CooMatrix;

    fn pattern(rows: usize, cols: usize, entries: &[(usize, usize)]) -> CsrPattern {
        let mut coo = CooMatrix::new(rows, cols);
        for &(r, c) in entries {
            coo.push(r, c, 1.0).unwrap();
        }
        coo.to_csr().into_pattern()
    }

    #[test]
    fn figure12_example_top3() {
        // Figure 12 of the paper: a 6x6 adjacency where nodes 0, 3, 4 are
        // the top-3 referenced columns. Reference counts (column sums):
        // node 0: 5, node 3: 4, node 4: 4 per Figure 12(a)'s degree table.
        let entries = [
            (0, 0),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 0),
            (1, 1),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 0),
            (2, 3),
            (2, 4),
            (2, 1),
            (3, 0),
            (3, 1),
            (3, 4),
            (3, 5),
            (4, 0),
            (4, 1),
            (4, 3),
            (4, 5),
            (5, 2),
            (5, 3),
            (5, 4),
        ];
        let adj = pattern(6, 6, &entries);
        let lists = hdn_lists(&adj, &[0..6], 3);
        assert_eq!(lists.len(), 1);
        assert_eq!(lists[0][0], 0, "node 0 has the highest reference count");
        let mut rest = lists[0][1..].to_vec();
        rest.sort_unstable();
        assert_eq!(rest, vec![3, 4]);
    }

    #[test]
    fn per_cluster_lists_differ() {
        // Cluster 0 (rows 0-1) hammers column 1; cluster 1 (rows 2-3)
        // hammers column 2.
        let adj = pattern(4, 4, &[(0, 1), (1, 1), (0, 3), (2, 2), (3, 2), (3, 0)]);
        let lists = hdn_lists(&adj, &[0..2, 2..4], 1);
        assert_eq!(lists, vec![vec![1], vec![2]]);
    }

    #[test]
    fn cross_cluster_hubs_are_captured() {
        // Rows 0-1 mostly reference column 5, which lies outside any
        // 0..2-style "own" range — the list must still include it.
        let adj = pattern(4, 8, &[(0, 5), (1, 5), (1, 0)]);
        let lists = hdn_lists(&adj, &[0..2], 2);
        assert_eq!(lists[0][0], 5);
    }

    #[test]
    fn top_n_truncates() {
        let adj = pattern(1, 6, &[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let lists = hdn_lists(&adj, &[0..1], 2);
        assert_eq!(lists[0].len(), 2);
    }

    #[test]
    fn empty_cluster_yields_empty_list() {
        let adj = pattern(3, 3, &[(0, 1)]);
        let lists = hdn_lists(&adj, &[1..1, 1..3], 4);
        assert!(lists[0].is_empty());
        assert_eq!(lists[1], Vec::<u32>::new());
    }

    #[test]
    fn ties_break_by_ascending_id() {
        let adj = pattern(2, 4, &[(0, 2), (1, 3)]);
        let lists = hdn_lists(&adj, &[0..2], 1);
        assert_eq!(lists[0], vec![2]);
    }
}
