//! The fault-injection battery: every engine × injection site yields a
//! clean [`JobError`] or a successfully retried result — never a hung
//! ticket, never a dead batch, never a divergent report.
//!
//! The properties under test:
//!
//! * a *transient* fault (its `attempts` bound below the retry budget)
//!   retries to a report **bit-identical** to the fault-free baseline,
//!   on every engine, at both hot sites (`dram`, `exec`), with both
//!   actions (`error`, `panic`);
//! * a *permanent* fault fails alone with the structured error matching
//!   its action ([`JobError::Injected`] / [`JobError::Panicked`]);
//! * injection is deterministic: a faulted fleet is bit-identical
//!   between `GROW_SERIAL=1`-style forced-serial and oversubscribed
//!   parallel execution;
//! * the store sites degrade gracefully: a torn write (`store_write`
//!   fault) orphans a tmp file that [`ResultStore::scrub`] reclaims, a
//!   `store_read` error quarantines and recomputes, a `store_read`
//!   panic fails that job as [`JobError::StoreCorrupt`];
//! * cancellation is cooperative and clean: a pre-cancelled scope or an
//!   expired deadline yields [`JobError::Cancelled`], cached results
//!   still deliver, and nothing is retried;
//! * a worker kill (the `worker` site) never surfaces as a panic to
//!   submitters: waiters get [`WaitError::ServiceDead`], later submits
//!   get [`SubmitError::ServiceDead`], and the shutdown report lists
//!   the casualties.

use std::sync::Arc;
use std::time::Duration;

use grow::accel::registry;
use grow::model::DatasetKey;
use grow::serve::{
    AsyncConfig, AsyncService, BatchService, JobError, JobSpec, ResultStore, SubmitError, WaitError,
};
use grow::sim::exec::{with_mode, with_workers, ExecMode};
use grow::sim::fault::{self, CancelReason, CancelToken, FaultSite};

fn spec() -> grow::model::DatasetSpec {
    DatasetKey::Cora.spec().scaled_to(300)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "grow_fault_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Installs (once, process-wide) a panic hook that silences *injected*
/// panics only — they are caught and retried by the supervisor, and
/// their backtraces would otherwise flood the test output. Genuine
/// panics (including test assertion failures) still print normally.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload.downcast_ref::<fault::SimFault>().is_some()
                || payload
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.starts_with("injected "))
                || payload
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.starts_with("injected "));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

#[test]
fn every_engine_and_site_retries_transient_faults_to_the_baseline() {
    quiet_injected_panics();
    let mut service = BatchService::new();
    for engine in registry::ENGINE_NAMES {
        let baseline = service
            .run_one(&JobSpec::new(spec(), 7, engine))
            .outcome
            .expect("fault-free baseline");
        for site in ["dram", "exec"] {
            for action in ["error", "panic"] {
                // attempts=2 < the default retry budget of 3: the
                // fault fires on attempts 1 and 2, attempt 3 runs
                // fault-free and must reproduce the baseline.
                let fault = format!("{site}:{action}:1:2");
                let result = service.run_one(&JobSpec::new(spec(), 7, engine).with_fault(&fault));
                let report = result
                    .outcome
                    .unwrap_or_else(|e| panic!("{engine} {fault}: {e}"));
                assert_eq!(report, baseline, "{engine} {fault}");
                assert!(!result.cache_hit, "{engine} {fault} genuinely re-ran");
            }
        }
    }
    let stats = service.stats();
    assert_eq!(stats.jobs_failed, 0);
    assert!(stats.retries >= 32, "2 retries x 16 faulted jobs");
    assert!(stats.panics_caught >= 16, "panic actions were caught");
}

#[test]
fn permanent_faults_fail_alone_with_the_matching_error() {
    quiet_injected_panics();
    let mut service = BatchService::new();
    for engine in registry::ENGINE_NAMES {
        // attempts=99 >= the budget: every attempt fires, the job
        // fails cleanly after exhausting its 3 attempts.
        let injected =
            service.run_one(&JobSpec::new(spec(), 7, engine).with_fault("dram:error:1:99"));
        assert_eq!(
            injected.outcome,
            Err(JobError::Injected {
                site: FaultSite::DramIssue,
                attempts: 3,
            }),
            "{engine}"
        );
        let panicked =
            service.run_one(&JobSpec::new(spec(), 7, engine).with_fault("exec:panic:1:99"));
        match panicked.outcome {
            Err(JobError::Panicked { attempts: 3, .. }) => {}
            other => panic!("{engine}: expected a caught panic, got {other:?}"),
        }
    }
    // A failing job is never cached: the same spec re-fails afresh.
    let before = service.stats().simulations_run;
    let again = service.run_one(&JobSpec::new(spec(), 7, "grow").with_fault("dram:error:1:99"));
    assert!(again.outcome.is_err());
    assert!(service.stats().simulations_run > before);
}

#[test]
fn faulted_fleets_are_bit_identical_serial_vs_parallel() {
    quiet_injected_panics();
    // A mixed fleet where most jobs carry a transient fault; the
    // retried outcomes (and the one permanent failure) must not
    // depend on the execution mode.
    let mut jobs = Vec::new();
    for (i, engine) in registry::ENGINE_NAMES.iter().enumerate() {
        jobs.push(JobSpec::new(spec(), 7, engine));
        jobs.push(JobSpec::new(spec(), 7, engine).with_fault("dram:error:1:2"));
        jobs.push(
            JobSpec::new(spec(), 7, engine)
                .with_fault(["exec:panic:1:2", "dram:panic:2:1", "exec:error:2:2"][i % 3]),
        );
    }
    jobs.push(JobSpec::new(spec(), 7, "grow").with_fault("exec:error:1:99"));

    let serial = with_mode(ExecMode::Serial, || BatchService::new().run_batch(&jobs));
    let parallel = with_workers(8, || BatchService::new().run_batch(&jobs));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.outcome, p.outcome, "job {} diverged", s.index);
    }
    // The faulted copies converged to their fault-free twins.
    for chunk in serial.chunks(3).take(4) {
        let base = chunk[0].outcome.as_ref().expect("fault-free job");
        assert_eq!(chunk[1].outcome.as_ref().expect("transient"), base);
        assert_eq!(chunk[2].outcome.as_ref().expect("transient"), base);
    }
    assert!(serial.last().unwrap().outcome.is_err(), "permanent fault");
}

#[test]
fn torn_writes_orphan_a_tmp_file_that_scrub_reclaims() {
    let dir = temp_dir("torn");
    let store = ResultStore::open(&dir).expect("open store");
    let mut service = BatchService::new().with_store(store);
    // The store_write fault fires between the tmp write and the atomic
    // rename — exactly a crash mid-persist. The job itself succeeds.
    let result =
        service.run_one(&JobSpec::new(spec(), 7, "grow").with_fault("store_write:error:1"));
    assert!(
        result.outcome.is_ok(),
        "a torn write is a warning, not a failure"
    );

    let tmp_files = |dir: &std::path::Path| -> usize {
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| {
                        e.path()
                            .extension()
                            .and_then(|x| x.to_str())
                            .is_some_and(|x| x.starts_with("tmp"))
                    })
                    .count()
            })
            .unwrap_or(0)
    };
    assert_eq!(tmp_files(&dir), 1, "the torn write left its tmp behind");

    let mut store = ResultStore::open(&dir).expect("reopen store");
    let scrub = store.scrub().expect("scrub");
    assert_eq!(scrub.tmp_removed, 1);
    assert_eq!(scrub.quarantined, 0);
    assert_eq!(tmp_files(&dir), 0, "scrub reclaimed the orphan");
    // A second scrub is a no-op: the store is healthy.
    assert_eq!(store.scrub().expect("rescrub").tmp_removed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_read_faults_quarantine_gracefully_or_fail_as_corrupt() {
    quiet_injected_panics();
    let dir = temp_dir("read");
    // First lifetime persists the entry under the faulted job's own
    // key (the fault override participates in the key, and a
    // store_read fault cannot fire on a cache miss).
    let job = JobSpec::new(spec(), 7, "gcnax").with_fault("store_read:error:1:99");
    let store = ResultStore::open(&dir).expect("open store");
    let baseline = BatchService::new()
        .with_store(store)
        .run_one(&job)
        .outcome
        .expect("first run computes");

    // Second lifetime hits the entry; the read fault degrades it to
    // a quarantine + miss and the job recomputes bit-identically.
    let store = ResultStore::open(&dir).expect("reopen store");
    let mut service = BatchService::new().with_store(store);
    let retried = service.run_one(&job);
    assert_eq!(retried.outcome.as_ref(), Ok(&baseline));
    assert!(
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .any(|e| e
                .path()
                .extension()
                .and_then(|x| x.to_str())
                .is_some_and(|x| x.starts_with("corrupt"))),
        "the unreadable entry was quarantined, not deleted"
    );

    // A store_read *panic* is the unrecoverable shape: the probe
    // panics, the supervisor catches it, and that job alone fails
    // as StoreCorrupt.
    let panic_job = JobSpec::new(spec(), 7, "gcnax").with_fault("store_read:panic:1:99");
    let store = ResultStore::open(&dir).expect("reopen store");
    let mut service = BatchService::new().with_store(store);
    assert!(
        service.run_one(&panic_job).outcome.is_ok(),
        "miss: computes"
    );
    let store = ResultStore::open(&dir).expect("reopen store");
    let mut service = BatchService::new().with_store(store);
    match service.run_one(&panic_job).outcome {
        Err(JobError::StoreCorrupt { .. }) => {}
        other => panic!("expected StoreCorrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancellation_is_cooperative_and_never_retried() {
    // A pre-cancelled scope: the supervisor refuses to even start the
    // attempt, and the job reports Cancelled with zero retries.
    let token = Arc::new(CancelToken::new());
    token.cancel();
    let mut service = BatchService::new();
    let result = fault::with_cancel(Some(Arc::clone(&token)), || {
        service.run_one(&JobSpec::new(spec(), 7, "grow"))
    });
    assert_eq!(
        result.outcome,
        Err(JobError::Cancelled {
            reason: CancelReason::Requested,
        })
    );
    let stats = service.stats();
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.retries, 0, "cancellation is not a transient fault");

    // End to end: an already-expired deadline cancels deterministically
    // before the worker starts the attempt.
    let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
    let expired = service
        .submit_with_deadline(
            JobSpec::new(spec(), 7, "gamma"),
            grow::serve::Priority::Normal,
            Duration::ZERO,
        )
        .expect("admitted");
    let result = expired.wait().expect("worker alive");
    assert_eq!(
        result.outcome,
        Err(JobError::Cancelled {
            reason: CancelReason::DeadlineExceeded,
        })
    );

    // A completed result still delivers to a cancelled submitter: the
    // cache (warmed by a prior run) wins over the expired deadline.
    let warm = service
        .submit(JobSpec::new(spec(), 7, "grow"))
        .expect("admitted");
    let baseline = warm.wait().expect("worker alive").outcome.expect("runs");
    let cached = service
        .submit_with_deadline(
            JobSpec::new(spec(), 7, "grow"),
            grow::serve::Priority::Normal,
            Duration::ZERO,
        )
        .expect("admitted");
    let result = cached.wait().expect("worker alive");
    assert_eq!(
        result.outcome,
        Ok(baseline),
        "cancellation never un-completes"
    );
    assert!(result.cache_hit);
    service.finish();
}

#[test]
fn ticket_cancel_is_race_free_and_clean() {
    // Ticket::cancel races the worker by design; the property is that
    // the outcome is always one of exactly two clean shapes — a
    // completed report or a Cancelled error — never a hang or a panic.
    let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            service
                .submit(JobSpec::new(spec(), 7, registry::ENGINE_NAMES[i % 4]))
                .expect("admitted")
        })
        .collect();
    for ticket in &tickets[1..] {
        ticket.cancel();
    }
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.wait().expect("worker alive");
        match (i, result.outcome) {
            (0, Ok(_)) => {}
            (0, other) => panic!("uncancelled job failed: {other:?}"),
            (
                _,
                Ok(_)
                | Err(JobError::Cancelled {
                    reason: CancelReason::Requested,
                }),
            ) => {}
            (_, other) => panic!("cancelled job {i}: unexpected {other:?}"),
        }
    }
    service.finish();
}

#[test]
fn worker_kill_surfaces_as_service_dead_never_a_panic() {
    quiet_injected_panics();
    let service = AsyncService::start(
        BatchService::new(),
        AsyncConfig {
            queue_capacity: 16,
            session_capacity: None,
            workers: 1,
        },
    );
    // One healthy job, then the kill, then a bystander that may be
    // queued behind it (or rejected outright if the worker is
    // already dead — both are clean).
    let healthy = service
        .submit(JobSpec::new(spec(), 7, "grow"))
        .expect("admitted");
    let victim = service
        .submit(JobSpec::new(spec(), 7, "gcnax").with_fault("worker:panic:1"))
        .expect("admitted");
    let victim_id = victim.id();
    let bystander = service.submit(JobSpec::new(spec(), 7, "gamma"));

    assert_eq!(victim.wait().err(), Some(WaitError::ServiceDead));
    match bystander {
        Ok(ticket) => {
            // try_wait is a non-blocking snapshot: "still pending" is
            // legal for the instant the dying worker is still unwinding,
            // but it must never panic — and the blocking wait must then
            // observe the death.
            match ticket.try_wait() {
                Ok(None) | Err(WaitError::ServiceDead) => {}
                other => panic!("bystander try_wait: unexpected {other:?}"),
            }
            assert_eq!(ticket.wait().err(), Some(WaitError::ServiceDead));
        }
        Err(SubmitError::ServiceDead) => {}
        Err(other) => panic!("unexpected submit error: {other}"),
    }
    // The healthy job either completed before the kill or died with
    // the worker — never a poisoned panic out of wait().
    match healthy.wait() {
        Ok(result) => assert!(result.outcome.is_ok()),
        Err(WaitError::ServiceDead) => {}
    }

    // The dead service stays inert and non-panicking.
    assert!(service.worker_dead());
    assert_eq!(
        service.submit(JobSpec::new(spec(), 7, "grow")).err(),
        Some(SubmitError::ServiceDead)
    );
    let _ = service.completed_ids();
    let _ = service.stats();
    assert!(service.casualties().contains(&victim_id));

    let (_, report) = service.finish_report();
    assert!(report.worker_panicked);
    assert!(report.casualties.contains(&victim_id));
}

#[test]
fn sched_faults_on_e2e_jobs_retry_to_the_baseline() {
    quiet_injected_panics();
    let mut service = BatchService::new();
    let e2e = |fault: Option<&str>| {
        let job = JobSpec::new(spec(), 13, "grow")
            .with_override("exec", "e2e")
            .with_override("pes", "4");
        match fault {
            Some(f) => job.with_fault(f),
            None => job,
        }
    };
    let baseline = service
        .run_one(&e2e(None))
        .outcome
        .expect("fault-free baseline");
    // Transient faults at the scheduler's dispatch hand-offs retry to
    // the exact baseline, with both actions.
    for action in ["error", "panic"] {
        let fault = format!("sched:{action}:1:2");
        let result = service.run_one(&e2e(Some(&fault)));
        let report = result.outcome.unwrap_or_else(|e| panic!("{fault}: {e}"));
        assert_eq!(report, baseline, "{fault}");
        assert!(!result.cache_hit, "{fault} genuinely re-ran");
    }
    // A permanent sched fault (attempts >= the budget) fails the e2e
    // job alone.
    let permanent = service.run_one(&e2e(Some("sched:error:1:99")));
    assert!(
        matches!(permanent.outcome, Err(JobError::Injected { .. })),
        "permanent sched fault surfaces structurally: {:?}",
        permanent.outcome
    );
    // Off the e2e path the sched site has no trip points: the fault
    // arms but never fires, and the report matches the fault-free run.
    let analytic = JobSpec::new(spec(), 13, "grow");
    let clean = service.run_one(&analytic).outcome.expect("clean");
    let armed = service
        .run_one(&analytic.clone().with_fault("sched:panic:1"))
        .outcome
        .expect("site never reached in analytic mode");
    assert_eq!(clean, armed);
}

#[test]
fn one_worker_death_degrades_the_pool_but_not_the_service() {
    quiet_injected_panics();
    let workers = 3usize;
    let service = AsyncService::start(
        BatchService::new(),
        AsyncConfig {
            queue_capacity: 64,
            session_capacity: None,
            workers,
        },
    );
    assert_eq!(service.workers_alive(), workers);
    // `worker:panic:2` kills pool worker 2 and only worker 2 — every
    // other worker serves the same spec unharmed. Feed poisoned jobs
    // until the victim picks one up and dies with it (bounded; in
    // practice the first couple of submissions suffice).
    let mut orphaned = 0usize;
    let mut attempts = 0u64;
    while service.workers_alive() == workers && attempts < 100 {
        attempts += 1;
        let bait = JobSpec::new(spec(), 30 + attempts, "gcnax").with_fault("worker:panic:2");
        if service.submit(bait).expect("admitted").wait().is_err() {
            orphaned += 1;
        }
    }
    assert_eq!(
        service.workers_alive(),
        workers - 1,
        "exactly the victim died"
    );
    assert!(
        !service.worker_dead(),
        "a degraded pool is not a dead service"
    );
    assert_eq!(service.casualties().len(), orphaned);
    // The degraded pool keeps serving — including the poisoned spec
    // itself, now that its designated victim is gone.
    let after = service
        .submit(JobSpec::new(spec(), 29, "gcnax").with_fault("worker:panic:2"))
        .expect("degraded pool still admits")
        .wait()
        .expect("a survivor serves it");
    assert!(after.outcome.is_ok());

    let (_, report) = service.finish_report();
    assert!(report.worker_panicked, "the death is reported at shutdown");
    assert_eq!(report.casualties.len(), orphaned);
}

#[test]
fn seeded_plans_are_reproducible() {
    // The chaos generator is pure in its seed: the same seed yields the
    // same plan, different seeds explore different shapes.
    let sites = [FaultSite::DramIssue, FaultSite::ExecHandoff];
    let a = fault::FaultPlan::seeded(9, &sites, 4, 2);
    let b = fault::FaultPlan::seeded(9, &sites, 4, 2);
    assert_eq!(a.render(), b.render());
    let distinct: std::collections::HashSet<String> = (0..32)
        .map(|s| fault::FaultPlan::seeded(s, &sites, 4, 2).render())
        .collect();
    assert!(distinct.len() > 4, "seeds explore the grid");
    // And every generated plan round-trips through the spec grammar.
    for seed in 0..32 {
        let plan = fault::FaultPlan::seeded(seed, &sites, 4, 2);
        assert_eq!(
            fault::FaultPlan::parse(&plan.render())
                .expect("round-trip")
                .render(),
            plan.render()
        );
    }
}
