//! Cycle-level simulation substrate shared by the GROW engine and all
//! baseline accelerator models (GCNAX, MatRaptor, GAMMA).
//!
//! The paper evaluates every design with a C++ cycle-level simulator
//! (Section VI). This crate is the Rust equivalent of that simulator's
//! common infrastructure:
//!
//! * [`Dram`] — a FIFO off-chip memory channel with configurable bandwidth,
//!   fixed access latency, and a 64-byte minimum access granularity; it
//!   accounts *useful* vs *fetched* bytes per [`TrafficClass`], which is
//!   exactly the "effective memory bandwidth utilization" metric of
//!   Figure 6 and the traffic totals of Figures 18/19;
//! * [`MacArray`] — the 16-lane 64-bit MAC vector unit of Table III;
//! * [`PinnedRowCache`] — GROW's HDN cache (a scratchpad pinning the
//!   per-cluster top-N high-degree nodes, Section V-C);
//! * [`LruRowCache`] — a demand-filled LRU row cache, used by the GAMMA
//!   baseline's fiber cache and by the pinned-vs-LRU replacement ablation
//!   of Section VIII;
//! * [`RunaheadTables`] — the LDN table + LHS-ID table (MSHR-like)
//!   microarchitecture enabling multi-row-stationary runahead execution
//!   (Section V-D, Figures 15/16);
//! * [`exec`] — the deterministic parallel execution harness the engines
//!   use to fan independent per-cluster simulations across threads;
//! * [`fault`] — deterministic, count-based fault injection and
//!   cooperative cancellation threaded through the hot layers, so the
//!   serving stack's failure paths are testable without real crashes;
//! * [`scratch`] — checkout/return pools ([`ScratchArena`]) that let those
//!   workers recycle per-cluster state (caches, tables, plan buffers)
//!   instead of reallocating it for every cluster.
//!
//! # Example
//!
//! ```
//! use grow_sim::{Dram, DramConfig, TrafficClass};
//!
//! let mut dram = Dram::new(DramConfig::default());
//! // A 12-byte useful read still transfers one 64-byte line.
//! let done = dram.read(0, 12, TrafficClass::LhsSparse);
//! assert!(done >= DramConfig::default().latency_cycles);
//! let stats = dram.stats();
//! assert_eq!(stats.fetched_bytes(TrafficClass::LhsSparse), 64);
//! assert_eq!(stats.useful_bytes(TrafficClass::LhsSparse), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod compute;
mod dram;
mod runahead;

pub mod exec;
pub mod fault;
pub mod scratch;

pub use cache::{CacheStats, LruRowCache, PinnedRowCache};
pub use compute::MacArray;
pub use dram::{Dram, DramConfig, MemTopology, TrafficClass, TrafficStats};
pub use exec::{bounded_pipeline, bounded_pipeline_seq, parallel_map, ExecMode};
pub use fault::{
    CancelReason, CancelToken, FaultAction, FaultPlan, FaultSite, FaultSpec, SimFault,
};
pub use runahead::{IssueOutcome, RunaheadTables, Waiter};
pub use scratch::{ScratchArena, ScratchGuard};

/// Simulation time, in accelerator clock cycles (1 GHz per Section VI).
pub type Cycle = u64;

/// Size of one matrix element in bytes (64-bit MACs per Table III).
pub const ELEMENT_BYTES: u64 = 8;

/// Size of one column/row index in bytes (32-bit indices; a 3-byte packed
/// variant is used only for the HDN ID list, per Section V-C).
pub const INDEX_BYTES: u64 = 4;

/// Bytes per HDN ID list entry (the paper stores 4096 IDs in 12 KB = 3 B/ID).
pub const HDN_ID_BYTES: u64 = 3;
