//! Randomized-input tests for feature synthesis and workload invariants.
//!
//! (Formerly proptest-based; the offline build has no crates.io access, so
//! cases are drawn from the workspace's own seeded PRNG instead — same
//! properties, deterministic case set.)

use grow_model::{DatasetKey, FeatureMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn synthesized_density_tracks_target() {
    let mut rng = StdRng::seed_from_u64(0x30d1);
    for case in 0..32 {
        let rows = rng.random_range(20usize..300);
        let cols = rng.random_range(4usize..128);
        let density = rng.random_range(0.0f64..1.0);
        let seed = rng.random_range(0u64..10_000);
        let fm = FeatureMatrix::synthesize(rows, cols, density, seed);
        assert_eq!(fm.rows(), rows, "case {case}");
        assert_eq!(fm.cols(), cols, "case {case}");
        let got = fm.density();
        // Expected absolute deviation shrinks with the cell count; use a
        // generous 3-sigma-ish band plus quantization slack.
        let cells = (rows * cols) as f64;
        let sigma = (density * (1.0 - density) / cells).sqrt();
        let tol = 3.0 * sigma + 1.5 / cols as f64;
        assert!(
            (got - density).abs() <= tol,
            "case {case}: target {density}, measured {got}, tol {tol}"
        );
    }
}

#[test]
fn synthesized_rows_are_sorted_and_unique() {
    let mut rng = StdRng::seed_from_u64(0x30d2);
    for case in 0..32 {
        let rows = rng.random_range(5usize..100);
        let cols = rng.random_range(4usize..64);
        let density = rng.random_range(0.05f64..0.95);
        let seed = rng.random_range(0u64..1000);
        if let FeatureMatrix::Sparse(p) = FeatureMatrix::synthesize(rows, cols, density, seed) {
            for r in 0..p.rows() {
                let row = p.row_indices(r);
                assert!(
                    row.windows(2).all(|w| w[0] < w[1]),
                    "case {case} row {r} unsorted"
                );
                assert!(
                    row.iter().all(|&c| (c as usize) < cols),
                    "case {case} row {r}"
                );
            }
        }
    }
}

#[test]
fn materialize_matches_pattern() {
    let mut rng = StdRng::seed_from_u64(0x30d3);
    for case in 0..32 {
        let rows = rng.random_range(5usize..60);
        let cols = rng.random_range(4usize..32);
        let density = rng.random_range(0.0f64..1.0);
        let seed = rng.random_range(0u64..1000);
        let fm = FeatureMatrix::synthesize(rows, cols, density, seed);
        let m = fm.materialize(seed ^ 99);
        assert_eq!(m.nnz(), fm.nnz(), "case {case}");
        assert_eq!(m.shape(), (rows, cols), "case {case}");
    }
}

#[test]
fn workload_scaling_preserves_shape_ratios() {
    let mut rng = StdRng::seed_from_u64(0x30d4);
    for case in 0..8 {
        let scale = rng.random_range(200usize..2000);
        let seed = rng.random_range(0u64..100);
        let spec = DatasetKey::Flickr.spec().scaled_to(scale);
        let w = spec.instantiate(seed);
        assert_eq!(w.graph.nodes(), scale, "case {case}");
        assert_eq!(w.layers[0].f_in, 500, "case {case}");
        assert_eq!(w.layers[0].f_out, 64, "case {case}");
        assert_eq!(w.layers[1].f_out, 7, "case {case}");
        // Densities stay near the Table I row regardless of scale.
        let d0 = w.layers[0].x.density();
        assert!((d0 - 0.464).abs() < 0.1, "case {case}: X0 density {d0}");
    }
}
