use std::ops::Range;

use grow_graph::Graph;

use crate::Partitioning;

/// The cluster-sorted node relabeling of Figure 13.
///
/// Graph partitioning "only changes the way a particular node is assigned
/// with its node ID": nodes of cluster 0 receive the lowest IDs, cluster 1
/// the next block, and so on. The layout records both the permutation
/// (`perm[old] = new`) and the resulting contiguous row range of every
/// cluster, which the GROW engine uses to schedule per-cluster execution
/// and HDN-cache refills.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterLayout {
    perm: Vec<u32>,
    ranges: Vec<Range<usize>>,
}

impl ClusterLayout {
    /// Builds the layout from a partitioning. Relative node order inside a
    /// cluster follows the original IDs (stable), so the permutation is
    /// deterministic.
    pub fn from_partitioning(partitioning: &Partitioning) -> Self {
        let n = partitioning.nodes();
        let parts = partitioning.parts();
        let sizes = partitioning.part_sizes();
        let mut starts = vec![0usize; parts + 1];
        for p in 0..parts {
            starts[p + 1] = starts[p] + sizes[p];
        }
        let mut cursor = starts.clone();
        let mut perm = vec![0u32; n];
        for (v, slot) in perm.iter_mut().enumerate() {
            let p = partitioning.part_of(v) as usize;
            *slot = cursor[p] as u32;
            cursor[p] += 1;
        }
        let ranges = (0..parts)
            .map(|p| starts[p]..starts[p + 1])
            .filter(|r| !r.is_empty())
            .collect();
        ClusterLayout { perm, ranges }
    }

    /// The identity layout: a single cluster spanning all nodes (the
    /// "GROW w/o G.P." configuration of Figures 17–22).
    pub fn single(nodes: usize) -> Self {
        ClusterLayout {
            perm: (0..nodes as u32).collect(),
            ranges: if nodes == 0 {
                Vec::new()
            } else {
                std::iter::once(0..nodes).collect()
            },
        }
    }

    /// The node relabeling, `perm[old] = new`.
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }

    /// Row ranges of the clusters in the relabeled matrix, ascending and
    /// contiguous. Empty clusters are dropped.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of (non-empty) clusters.
    pub fn clusters(&self) -> usize {
        self.ranges.len()
    }

    /// Applies the relabeling to a graph.
    pub fn relabel(&self, graph: &Graph) -> Graph {
        graph.relabel(&self.perm)
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // single-cluster range lists are intentional
mod tests {
    use super::*;

    #[test]
    fn layout_groups_clusters_contiguously() {
        let p = Partitioning::new(vec![1, 0, 1, 0], 2);
        let layout = ClusterLayout::from_partitioning(&p);
        // Cluster 0 = old nodes {1,3} -> new IDs {0,1}; cluster 1 = {0,2} -> {2,3}.
        assert_eq!(layout.permutation(), &[2, 0, 3, 1]);
        assert_eq!(layout.ranges(), &[0..2, 2..4]);
    }

    #[test]
    fn empty_clusters_are_dropped() {
        let p = Partitioning::new(vec![0, 0, 2], 4);
        let layout = ClusterLayout::from_partitioning(&p);
        assert_eq!(layout.clusters(), 2);
        assert_eq!(layout.ranges(), &[0..2, 2..3]);
    }

    #[test]
    fn relabel_moves_cluster_edges_to_diagonal_blocks() {
        // Figure 13: after relabeling, intra-cluster edges form diagonal
        // blocks of the adjacency matrix.
        let g = Graph::from_edges(4, [(0, 2), (1, 3)]);
        let p = Partitioning::new(vec![0, 1, 0, 1], 2);
        let layout = ClusterLayout::from_partitioning(&p);
        let r = layout.relabel(&g);
        // New IDs: 0->0, 2->1 (cluster 0); 1->2, 3->3 (cluster 1).
        assert_eq!(r.neighbors(0), &[1]);
        assert_eq!(r.neighbors(2), &[3]);
    }

    #[test]
    fn single_layout_covers_everything() {
        let layout = ClusterLayout::single(5);
        assert_eq!(layout.clusters(), 1);
        assert_eq!(layout.ranges(), &[0..5]);
        assert_eq!(layout.permutation(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn permutation_is_bijective() {
        let p = Partitioning::new(vec![2, 0, 1, 2, 1, 0], 3);
        let layout = ClusterLayout::from_partitioning(&p);
        let mut seen = [false; 6];
        for &x in layout.permutation() {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }
}
