//! [`SimSession`] — the one-stop driver for simulating workloads on the
//! registered engines.
//!
//! A session owns one instantiated GCN workload and memoizes its prepared
//! (partitioned/relabeled) forms, which are by far the most expensive part
//! of an evaluation; engines are then dispatched by name through the
//! [`grow_core::registry`], so callers — benches, examples, services —
//! never touch engine types directly. The [`crate::batch`] service pools
//! sessions by workload key and shares them across jobs.
//!
//! ```
//! use grow_core::PartitionStrategy;
//! use grow_model::DatasetKey;
//! use grow_serve::session::SimSession;
//!
//! let mut session = SimSession::from_spec(DatasetKey::Cora.spec().scaled_to(400), 42);
//! let grow = session.run("grow", PartitionStrategy::multilevel_default()).unwrap();
//! let gcnax = session.run("gcnax", PartitionStrategy::None).unwrap();
//! assert_eq!(grow.mac_ops(), gcnax.mac_ops(), "same work, different movement");
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use grow_core::registry::{self, RegistryError};
use grow_core::{
    prepare, PartitionStrategy, PlanCache, PlanCacheScope, PreparedWorkload, RunReport,
};
use grow_model::{DatasetSpec, GcnWorkload};
use grow_sim::exec::parallel_map;

/// Default HDN ID list length (Table III: 12 KB at 3 B/entry).
pub const DEFAULT_HDN_ID_ENTRIES: usize = 4096;

/// A simulation session: one workload, memoized preprocessing, and
/// name-based engine dispatch.
#[derive(Debug)]
pub struct SimSession {
    workload: GcnWorkload,
    hdn_id_entries: usize,
    prepared: HashMap<PartitionStrategy, Arc<PreparedWorkload>>,
    plan_cache: Option<(Arc<PlanCache>, String)>,
}

impl SimSession {
    /// Creates a session over an already instantiated workload.
    pub fn new(workload: GcnWorkload) -> Self {
        SimSession {
            workload,
            hdn_id_entries: DEFAULT_HDN_ID_ENTRIES,
            prepared: HashMap::new(),
            plan_cache: None,
        }
    }

    /// Instantiates `spec` with `seed` and wraps it in a session.
    pub fn from_spec(spec: DatasetSpec, seed: u64) -> Self {
        Self::new(spec.instantiate(seed))
    }

    /// Overrides the per-cluster HDN ID list length (Table III: 4096).
    /// Clears any workloads already prepared with the previous value.
    pub fn set_hdn_id_entries(&mut self, entries: usize) {
        if entries != self.hdn_id_entries {
            self.hdn_id_entries = entries;
            self.prepared.clear();
        }
    }

    /// The per-cluster HDN ID list length in effect.
    pub fn hdn_id_entries(&self) -> usize {
        self.hdn_id_entries
    }

    /// Attaches a shared cross-job [`PlanCache`]: every workload this
    /// session prepares from now on carries a [`PlanCacheScope`] keyed
    /// `"{scope_prefix}|{strategy:?}"`, so engines share layer-invariant
    /// aggregation plans across jobs hitting the same prepared form.
    /// Clears any already-prepared workloads so stamps stay consistent.
    pub fn set_plan_cache(&mut self, cache: Arc<PlanCache>, scope_prefix: String) {
        self.prepared.clear();
        self.plan_cache = Some((cache, scope_prefix));
    }

    /// Stamps the session's plan-cache scope (if any) onto a freshly
    /// prepared workload and shares it behind an `Arc`, so in-flight
    /// jobs keep their prepared form alive across session eviction.
    fn stamp(&self, strategy: PartitionStrategy, mut p: PreparedWorkload) -> Arc<PreparedWorkload> {
        if let Some((cache, prefix)) = &self.plan_cache {
            p.plan_cache = Some(PlanCacheScope::new(
                Arc::clone(cache),
                format!("{prefix}|{strategy:?}"),
            ));
        }
        Arc::new(p)
    }

    /// The underlying workload.
    pub fn workload(&self) -> &GcnWorkload {
        &self.workload
    }

    /// Number of prepared forms currently memoized.
    pub fn prepared_count(&self) -> usize {
        self.prepared.len()
    }

    /// The prepared form of the workload under `strategy`, running the
    /// software preprocessing stack on first use and memoizing it.
    pub fn prepared(&mut self, strategy: PartitionStrategy) -> &PreparedWorkload {
        if !self.prepared.contains_key(&strategy) {
            let p = prepare(&self.workload, strategy, self.hdn_id_entries);
            self.prepared.insert(strategy, self.stamp(strategy, p));
        }
        self.prepared.get(&strategy).expect("just inserted")
    }

    /// The already-memoized prepared form for `strategy`, if any — the
    /// read-only lookup the batch service uses after [`Self::prepare_all`].
    pub fn get_prepared(&self, strategy: PartitionStrategy) -> Option<&PreparedWorkload> {
        self.prepared.get(&strategy).map(Arc::as_ref)
    }

    /// Like [`Self::get_prepared`] but returning the shared handle — the
    /// serving layer clones it so a job can compute outside the session
    /// lock (and survive eviction of the session mid-flight).
    pub fn get_prepared_arc(&self, strategy: PartitionStrategy) -> Option<Arc<PreparedWorkload>> {
        self.prepared.get(&strategy).map(Arc::clone)
    }

    /// Prepares every listed strategy that is not memoized yet, fanning
    /// the preparations across worker threads (each runs the full
    /// partition/relabel/HDN stack independently). Returns how many
    /// strategies were newly prepared.
    pub fn prepare_all(&mut self, strategies: &[PartitionStrategy]) -> usize {
        let mut missing: Vec<PartitionStrategy> = Vec::new();
        for &s in strategies {
            if !self.prepared.contains_key(&s) && !missing.contains(&s) {
                missing.push(s);
            }
        }
        let workload = &self.workload;
        let entries = self.hdn_id_entries;
        let prepared = parallel_map(missing.clone(), |_, s| prepare(workload, s, entries));
        let count = missing.len();
        for (s, p) in missing.into_iter().zip(prepared) {
            let p = self.stamp(s, p);
            self.prepared.insert(s, p);
        }
        count
    }

    /// Runs the named engine (default configuration) on the workload
    /// prepared with `strategy`.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] if the engine name is unknown.
    pub fn run(
        &mut self,
        engine: &str,
        strategy: PartitionStrategy,
    ) -> Result<RunReport, RegistryError> {
        // Resolve the engine before preparing, so an unknown name fails
        // fast instead of after seconds of partitioning.
        let engine = registry::engine_by_name(engine)?;
        Ok(engine.run(self.prepared(strategy)))
    }

    /// Runs the named engine with key-value configuration overrides (see
    /// [`grow_core::registry::engine_from_overrides`] for the key set).
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError`] for unknown names/keys or unparsable
    /// values.
    pub fn run_with(
        &mut self,
        engine: &str,
        overrides: &[(&str, &str)],
        strategy: PartitionStrategy,
    ) -> Result<RunReport, RegistryError> {
        let engine = registry::engine_from_overrides(engine, overrides)?;
        Ok(engine.run(self.prepared(strategy)))
    }

    /// Runs every registered engine in its paper-default configuration:
    /// GROW on the partitioned workload, the baselines on the original
    /// node order (Section VI's comparison setup). Reports come back in
    /// [`registry::ENGINE_NAMES`] order.
    pub fn compare_all(&mut self) -> Vec<RunReport> {
        registry::ENGINE_NAMES
            .iter()
            .map(|&name| {
                let strategy = if name == "grow" {
                    PartitionStrategy::multilevel_default()
                } else {
                    PartitionStrategy::None
                };
                self.run(name, strategy).expect("registry names resolve")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grow_model::DatasetKey;

    fn session() -> SimSession {
        SimSession::from_spec(DatasetKey::Pubmed.spec().scaled_to(500), 7)
    }

    #[test]
    fn run_matches_direct_engine_use() {
        use grow_core::{Accelerator, GrowEngine};
        let mut s = session();
        let via_session = s.run("grow", PartitionStrategy::None).unwrap();
        let direct = GrowEngine::default().run(&prepare(
            s.workload(),
            PartitionStrategy::None,
            DEFAULT_HDN_ID_ENTRIES,
        ));
        assert_eq!(via_session, direct);
    }

    #[test]
    fn preparation_is_memoized() {
        let mut s = session();
        let strategy = PartitionStrategy::Multilevel { cluster_nodes: 100 };
        let a = s.prepared(strategy).clusters.clone();
        let b = s.prepared(strategy).clusters.clone();
        assert_eq!(a, b);
        assert_eq!(s.prepared.len(), 1);
    }

    #[test]
    fn unknown_engine_fails_fast() {
        let mut s = session();
        assert!(s.run("npu", PartitionStrategy::None).is_err());
        assert!(s.prepared.is_empty(), "no preparation for unknown engines");
    }

    #[test]
    fn compare_all_covers_every_engine() {
        let mut s = session();
        let reports = s.compare_all();
        assert_eq!(reports.len(), 4);
        let names: Vec<&str> = reports.iter().map(|r| r.engine).collect();
        assert_eq!(names, ["GROW", "GCNAX", "MatRaptor", "GAMMA"]);
        // Iso-computation across the board.
        assert!(reports.windows(2).all(|w| w[0].mac_ops() == w[1].mac_ops()));
    }

    #[test]
    fn overrides_flow_through() {
        let mut s = session();
        let narrow = s
            .run_with("grow", &[("runahead", "1")], PartitionStrategy::None)
            .unwrap();
        let wide = s.run("grow", PartitionStrategy::None).unwrap();
        assert_eq!(narrow.mac_ops(), wide.mac_ops());
    }

    #[test]
    fn hdn_entries_change_invalidates_cache() {
        let mut s = session();
        s.prepared(PartitionStrategy::None);
        s.set_hdn_id_entries(16);
        assert!(s.prepared.is_empty());
        assert!(s.prepared(PartitionStrategy::None).hdn_lists[0].len() <= 16);
    }

    #[test]
    fn prepare_all_matches_lazy_preparation() {
        let mut batch = session();
        let strategies = [
            PartitionStrategy::None,
            PartitionStrategy::Multilevel { cluster_nodes: 120 },
            PartitionStrategy::None, // duplicate in the request list
        ];
        assert_eq!(batch.prepare_all(&strategies), 2);
        assert_eq!(batch.prepare_all(&strategies), 0, "all memoized now");

        let mut lazy = session();
        for &s in &strategies {
            lazy.prepared(s);
        }
        for &s in &strategies {
            assert_eq!(
                batch.get_prepared(s).unwrap().clusters,
                lazy.get_prepared(s).unwrap().clusters,
                "{s:?}"
            );
        }
    }

    #[test]
    fn plan_cache_scope_is_stamped_on_prepared_workloads() {
        let mut s = session();
        assert!(s.prepared(PartitionStrategy::None).plan_cache.is_none());
        s.set_plan_cache(Arc::new(PlanCache::new(4)), "key".into());
        assert!(s.prepared.is_empty(), "attachment clears memoized forms");
        s.prepare_all(&[PartitionStrategy::None]);
        assert!(s.prepared(PartitionStrategy::None).plan_cache.is_some());
        let arc = s.get_prepared_arc(PartitionStrategy::None).unwrap();
        assert!(Arc::ptr_eq(
            &arc,
            &s.get_prepared_arc(PartitionStrategy::None).unwrap()
        ));
    }

    #[test]
    fn get_prepared_is_read_only() {
        let mut s = session();
        assert!(s.get_prepared(PartitionStrategy::None).is_none());
        s.prepared(PartitionStrategy::None);
        assert!(s.get_prepared(PartitionStrategy::None).is_some());
        assert_eq!(s.prepared_count(), 1);
    }
}
