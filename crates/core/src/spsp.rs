//! Shared model of the row-wise-product sparse-*sparse* GEMM accelerators
//! (MatRaptor and GAMMA, compared against GROW in Section VII-H).
//!
//! Both use Gustavson's algorithm like GROW, but as generic sparse-sparse
//! engines they differ in exactly the three ways the paper identifies:
//!
//! 1. the RHS matrix is CSR-compressed, adding index metadata to every RHS
//!    row fetch ("additional indexing overheads as well as more memory
//!    traffic to fetch metadata associated with CSR");
//! 2. partial-sum merging hardware occupies the pipeline for every
//!    contribution ("a complicated and costly partial-sum merging process,
//!    which is entirely redundant for SpDeGEMM");
//! 3. caching: MatRaptor has none; GAMMA has a demand-filled LRU
//!    fiber cache "not optimized for the power-law distribution of graphs".

use grow_sim::{Dram, DramConfig, LruRowCache, MacArray, TrafficClass, INDEX_BYTES};
use grow_sparse::RowMajorSparse;

use crate::{LayerReport, PhaseKind, PhaseReport, PreparedWorkload, RunReport};

/// Bytes per element of a CSR-compressed row: value + column index.
const CSR_ELEM_BYTES: u64 = 8 + INDEX_BYTES;

/// Parameters of a row-wise sparse-sparse engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SpSpParams {
    pub name: &'static str,
    pub mac_lanes: usize,
    pub dram: DramConfig,
    /// Fiber-cache capacity in bytes (0 = no cache, i.e. MatRaptor).
    pub fiber_cache_bytes: u64,
    /// Merge occupancy per scalar x vector contribution, as a multiple of
    /// the MAC occupancy (MatRaptor's sorting queues ~1.0; GAMMA's
    /// high-radix pipelined merger ~0.5).
    pub merge_factor: f64,
    /// Total on-chip SRAM in KB (for energy accounting).
    pub sram_kb: f64,
}

pub(crate) fn run_spsp(params: &SpSpParams, workload: &PreparedWorkload) -> RunReport {
    let adjacency = RowMajorSparse::Pattern(&workload.adjacency);
    let layers = workload
        .layers
        .iter()
        .map(|layer| LayerReport {
            combination: run_phase(params, PhaseKind::Combination, &layer.x.view(), layer.f_out),
            aggregation: run_phase(params, PhaseKind::Aggregation, &adjacency, layer.f_out),
        })
        .collect();
    RunReport { engine: params.name, layers }
}

/// One SpDeGEMM phase executed as if both operands were sparse.
fn run_phase(
    params: &SpSpParams,
    kind: PhaseKind,
    lhs: &RowMajorSparse<'_>,
    f: usize,
) -> PhaseReport {
    let mut report = PhaseReport::new(kind);
    let mut dram = Dram::new(params.dram);
    let mut mac = MacArray::new(params.mac_lanes);

    // The RHS (dense in reality) is stored and fetched as CSR by these
    // engines: f elements of 12 bytes per row.
    let rhs_row_bytes = f as u64 * CSR_ELEM_BYTES;
    let cache_rows = (params.fiber_cache_bytes / rhs_row_bytes) as usize;
    let mut cache = LruRowCache::new(cache_rows);
    let merge_cycles = ((f as f64 * params.merge_factor).ceil() as u64)
        .div_ceil(params.mac_lanes as u64);

    let rhs_class = match kind {
        PhaseKind::Combination => TrafficClass::Weights,
        PhaseKind::Aggregation => TrafficClass::RhsRows,
    };

    let n = lhs.rows();
    let k_dim = lhs.cols();
    let mut lhs_burst = 0u64;
    match *lhs {
        RowMajorSparse::Dense { rows, cols } => {
            // Dense LHS rows touch RHS rows 0..cols sequentially. Under LRU
            // a cyclic sequential scan either fits entirely (all hits after
            // the first row) or thrashes (all misses) — handled in bulk.
            let fits = cache_rows >= cols;
            for row in 0..rows {
                let nnz = cols as u64;
                lhs_burst += nnz * CSR_ELEM_BYTES + INDEX_BYTES as u64;
                let (hits, misses) = if cache_rows == 0 {
                    (0, nnz)
                } else if fits {
                    if row == 0 {
                        (0, nnz)
                    } else {
                        (nnz, 0)
                    }
                } else {
                    (0, nnz)
                };
                record_row(
                    &mut report, &mut dram, &mut mac, rhs_class, f, rhs_row_bytes,
                    merge_cycles, hits, misses,
                );
            }
            report.cache.hits += if fits && rows > 1 { (rows as u64 - 1) * cols as u64 } else { 0 };
            report.cache.misses += if fits { cols as u64 } else { rows as u64 * cols as u64 };
            if cache_rows == 0 {
                report.cache.hits = 0;
                report.cache.misses = (rows * cols) as u64;
            }
        }
        RowMajorSparse::Pattern(p) => {
            for row in 0..n {
                let mut hits = 0u64;
                let mut misses = 0u64;
                for &c in p.row_indices(row) {
                    if cache_rows > 0 && cache.probe(c) {
                        hits += 1;
                    } else if cache_rows > 0 {
                        cache.insert(c);
                        misses += 1;
                    } else {
                        misses += 1;
                    }
                }
                lhs_burst += p.row_nnz(row) as u64 * CSR_ELEM_BYTES + INDEX_BYTES as u64;
                record_row(
                    &mut report, &mut dram, &mut mac, rhs_class, f, rhs_row_bytes,
                    merge_cycles, hits, misses,
                );
            }
            report.cache.merge(cache.stats());
        }
    }
    let _ = k_dim;
    // The LHS CSR stream (C2SR in MatRaptor's terms) is contiguous.
    dram.read_stream(0, lhs_burst, TrafficClass::LhsSparse);
    dram.round_burst(lhs_burst, TrafficClass::LhsSparse);
    report.sram_reads_8b += lhs_burst.div_ceil(8);
    report.sram_writes_8b += lhs_burst.div_ceil(8);

    // Output written in compressed form (12 B/element) — these engines
    // produce sparse outputs even when the result is dense.
    let out_bytes = n as u64 * f as u64 * CSR_ELEM_BYTES;
    dram.write(mac.busy_until(), out_bytes, TrafficClass::Output);
    report.sram_reads_8b += out_bytes.div_ceil(8);

    report.cycles = mac.busy_until().max(dram.busy_until()) + params.dram.latency_cycles;
    report.compute_busy = mac.busy_cycles();
    report.mac_ops = mac.mac_ops();
    report.traffic = dram.stats().clone();
    report
}

/// Accounts one LHS row's worth of RHS fetches, MACs, and merge occupancy.
#[allow(clippy::too_many_arguments)]
fn record_row(
    report: &mut PhaseReport,
    dram: &mut Dram,
    mac: &mut MacArray,
    rhs_class: TrafficClass,
    f: usize,
    rhs_row_bytes: u64,
    merge_cycles: u64,
    hits: u64,
    misses: u64,
) {
    if misses > 0 {
        dram.read_many(0, misses, rhs_row_bytes, rhs_class);
        report.sram_writes_8b += misses * rhs_row_bytes.div_ceil(8);
    }
    let contributions = hits + misses;
    if contributions > 0 {
        mac.scalar_vector_bulk(0, f, contributions);
        mac.occupy(0, merge_cycles * contributions);
        report.sram_reads_8b += contributions * (1 + rhs_row_bytes.div_ceil(8));
        report.sram_writes_8b += contributions * f as u64;
    }
}

/// Implements [`Accelerator`] for a thin wrapper around [`SpSpParams`].
macro_rules! spsp_engine {
    ($engine:ident, $config:ident) => {
        impl Accelerator for $engine {
            fn name(&self) -> &'static str {
                self.params().name
            }

            fn run(&self, workload: &PreparedWorkload) -> RunReport {
                run_spsp(&self.params(), workload)
            }

            fn sram_kb(&self) -> f64 {
                self.params().sram_kb
            }
        }
    };
}
pub(crate) use spsp_engine;
