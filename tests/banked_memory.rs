//! Property battery for the banked memory-channel model under `exec=e2e`
//! (the `channels=` / `banks=` registry keys).
//!
//! The load-bearing properties:
//!
//! * the uniform topology (`channels=1 banks=1`, explicitly spelled out)
//!   reproduces every committed `tests/golden/*_e2e.snap` byte-for-byte —
//!   the banked model is a strict generalization of the fluid pipe;
//! * at a fixed aggregate bandwidth, makespan is monotone non-increasing
//!   in both channel count and bank count (more conflict domains or more
//!   banks never slow a workload down);
//! * busy-cycle conservation survives banking: each phase's per-PE busy
//!   cycles sum to its total in-system cluster time;
//! * banked runs are bit-identical between forced-serial and
//!   oversubscribed-parallel execution scopes;
//! * under contention (4 PEs on a banked topology), the channel-affinity
//!   `ca` scheduler beats round-robin on at least one golden workload.

use std::fmt::Write as _;

use grow::accel::registry::{self, ENGINE_NAMES};
use grow::accel::schedule::SCHEDULER_NAMES;
use grow::accel::{prepare, PartitionStrategy, PreparedWorkload, RunReport};
use grow::model::DatasetSpec;

mod common;
use common::{cases, golden_path};

fn prepared(spec: DatasetSpec, seed: u64) -> PreparedWorkload {
    let workload = spec.instantiate(seed);
    prepare(
        &workload,
        PartitionStrategy::Multilevel { cluster_nodes: 100 },
        4096,
    )
}

fn run_banked(
    engine: &str,
    prepared: &PreparedWorkload,
    scheduler: &str,
    pes: usize,
    channels: usize,
    banks: usize,
) -> RunReport {
    registry::engine_from_overrides(
        engine,
        &[
            ("exec", "e2e"),
            ("scheduler", scheduler),
            ("pes", &pes.to_string()),
            ("channels", &channels.to_string()),
            ("banks", &banks.to_string()),
        ],
    )
    .expect("registered engine, scheduler, and topology")
    .run(prepared)
}

#[test]
fn uniform_topology_reproduces_committed_e2e_snapshots() {
    // The same grid `golden_reports.rs` renders, but with the topology
    // keys explicitly set to the uniform pipe. There is deliberately NO
    // bless path: `channels=1 banks=1` must be the fluid model, bit for
    // bit, against the bytes already committed.
    for (case, spec, seed) in cases() {
        let prepared = prepared(spec, seed);
        let mut out = String::new();
        for name in ENGINE_NAMES {
            for scheduler in SCHEDULER_NAMES {
                for pes in ["1", "4"] {
                    let report = registry::engine_from_overrides(
                        name,
                        &[
                            ("exec", "e2e"),
                            ("scheduler", scheduler),
                            ("pes", pes),
                            ("channels", "1"),
                            ("banks", "1"),
                        ],
                    )
                    .expect("registered engine and scheduler")
                    .run(&prepared);
                    let _ = writeln!(
                        out,
                        "== engine={} scheduler={scheduler} pes={pes} total={} ==",
                        report.engine,
                        report.total_cycles()
                    );
                    let breakdown = report.multi_pe_breakdown().expect("e2e breakdown");
                    for (li, layer) in report.layers.iter().enumerate() {
                        let pe_layer = &breakdown.layers[li];
                        for (phase, pe) in [
                            (&layer.combination, &pe_layer.combination),
                            (&layer.aggregation, &pe_layer.aggregation),
                        ] {
                            let busy: Vec<String> =
                                pe.per_pe_busy.iter().map(|b| format!("{b}")).collect();
                            let _ = writeln!(
                                out,
                                "layer={li} phase={:?} cycles={} makespan={} cluster_time={} \
                                 busy=[{}]",
                                phase.kind,
                                phase.cycles,
                                pe.makespan,
                                pe.cluster_time,
                                busy.join(" ")
                            );
                        }
                    }
                }
            }
        }
        let expected = std::fs::read_to_string(golden_path(&format!("{case}_e2e")))
            .expect("committed golden snapshot exists");
        assert_eq!(
            out, expected,
            "{case}: channels=1 banks=1 diverged from the committed fluid-model snapshot"
        );
    }
}

#[test]
fn makespan_is_monotone_in_channels_and_banks() {
    let (_, spec, seed) = cases()[1];
    let prepared = prepared(spec, seed);
    for scheduler in ["rr", "ca"] {
        // Doubling channels at fixed banks never slows the run down...
        let mut prev = u64::MAX;
        for channels in [1usize, 2, 4, 8, 16] {
            let total = run_banked("grow", &prepared, scheduler, 4, channels, 8).total_cycles();
            assert!(
                total <= prev,
                "{scheduler}: channels={channels} regressed ({total} > {prev})"
            );
            prev = total;
        }
        // ...and neither does doubling banks at fixed channels.
        let mut prev = u64::MAX;
        for banks in [1usize, 2, 4, 8] {
            let total = run_banked("grow", &prepared, scheduler, 4, 4, banks).total_cycles();
            assert!(
                total <= prev,
                "{scheduler}: banks={banks} regressed ({total} > {prev})"
            );
            prev = total;
        }
    }
}

#[test]
fn busy_cycle_conservation_holds_under_banking() {
    // Every cluster occupies exactly one PE while executing, stalls
    // included: each phase's per-PE busy cycles must sum to its total
    // in-system cluster time.
    for (case, spec, seed) in cases() {
        let prepared = prepared(spec, seed);
        for engine in ENGINE_NAMES {
            let report = run_banked(engine, &prepared, "ca", 4, 4, 8);
            let breakdown = report.multi_pe_breakdown().expect("e2e breakdown");
            for layer in &breakdown.layers {
                for pe in [&layer.combination, &layer.aggregation] {
                    let busy: f64 = pe.per_pe_busy.iter().sum();
                    let rel = (busy - pe.cluster_time).abs() / pe.cluster_time.max(1.0);
                    assert!(
                        rel < 1e-9,
                        "{case}/{engine}: busy {} != cluster_time {}",
                        busy,
                        pe.cluster_time
                    );
                    let bound = pe.makespan * pe.per_pe_busy.len() as f64 * (1.0 + 1e-12);
                    assert!(
                        busy <= bound,
                        "{case}/{engine}: busy exceeds the fleet time"
                    );
                }
            }
        }
    }
}

#[test]
fn banked_runs_are_execution_mode_invariant() {
    use grow::sim::exec::{with_mode, with_workers, ExecMode};
    let (_, spec, seed) = cases()[0];
    let prepared = prepared(spec, seed);
    for engine in ENGINE_NAMES {
        let run = || run_banked(engine, &prepared, "ca", 4, 4, 8);
        let serial = with_mode(ExecMode::Serial, run);
        let parallel = with_workers(8, run);
        assert_eq!(
            serial, parallel,
            "{engine}: banked run diverged across scopes"
        );
    }
}

#[test]
fn channel_affinity_beats_round_robin_under_contention() {
    // The tentpole's payoff: on a banked topology with real contention
    // (4 PEs sharing 4 channels x 8 banks), steering memory-bound
    // clusters away from each other's home channels must win on at least
    // one committed golden workload.
    let mut wins = 0usize;
    for (case, spec, seed) in cases() {
        let prepared = prepared(spec, seed);
        let rr = run_banked("grow", &prepared, "rr", 4, 4, 8).total_cycles();
        let ca = run_banked("grow", &prepared, "ca", 4, 4, 8).total_cycles();
        if ca < rr {
            wins += 1;
        }
        // ca must never lose outright to rr on these workloads.
        assert!(
            ca <= rr,
            "{case}: ca ({ca}) lost to rr ({rr}) under contention"
        );
    }
    assert!(
        wins >= 1,
        "ca never strictly beat rr on any golden workload"
    );
}
