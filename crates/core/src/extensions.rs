//! Advanced aggregation functions (the Section VIII discussion).
//!
//! The paper argues GROW's row-stationary dataflow extends beyond the
//! plain GCN sum-aggregator and sizes the extra hardware each variant
//! needs:
//!
//! * **SAGEConv** (mean / pool over sampled neighbors): the sampled node
//!   ID list drives the same row-wise fetches; mean runs on the MAC array
//!   as-is, pooling needs a vector *comparator* array (+1.4% area);
//! * **GIN**: "refactored into multiple consecutive W matrices so GROW is
//!   fully capable of supporting GIN as-is" — an extra dense combination
//!   pass (the MLP's second layer);
//! * **GAT**: attention adds per-edge MLP work on the MAC array plus a
//!   softmax unit (~16% of the MAC array => ~1.7% chip-wide area).

use grow_sim::{Dram, MacArray, TrafficClass, ELEMENT_BYTES, INDEX_BYTES};
use grow_sparse::CsrPattern;

use crate::{
    Accelerator, GrowEngine, LayerReport, PhaseKind, PhaseReport, PreparedWorkload, RunReport,
};

/// Which aggregation function the GCN layers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregationKind {
    /// The paper's default: normalized-sum aggregation (Equation 1).
    GcnSum,
    /// GraphSAGE mean aggregator over up to `sample` neighbors per node
    /// (`None` = all neighbors).
    SageMean {
        /// Neighbor sample size (GraphSAGE uses e.g. 25/10).
        sample: Option<usize>,
    },
    /// GraphSAGE max-pool aggregator (vector comparator array instead of
    /// MACs for the aggregation phase).
    SagePool {
        /// Neighbor sample size.
        sample: Option<usize>,
    },
    /// Graph Isomorphism Network: sum aggregation plus a 2-layer MLP.
    Gin,
    /// Graph attention: per-edge attention coefficients + softmax.
    Gat,
}

impl AggregationKind {
    /// Extra die area this aggregator needs, as a fraction of the default
    /// GROW design (Section VIII's estimates: pooling comparator array
    /// +1.4%, GAT softmax unit +1.7%, others none).
    pub fn area_overhead_fraction(&self) -> f64 {
        match self {
            AggregationKind::SagePool { .. } => 0.014,
            AggregationKind::Gat => 0.017,
            _ => 0.0,
        }
    }
}

/// Caps every adjacency row at `sample` entries (neighbor sampling:
/// GraphSAGE processes a fixed-size sampled neighborhood).
fn sample_adjacency(adjacency: &CsrPattern, sample: usize) -> CsrPattern {
    let mut indptr = Vec::with_capacity(adjacency.rows() + 1);
    let mut indices = Vec::new();
    indptr.push(0usize);
    for r in 0..adjacency.rows() {
        let row = adjacency.row_indices(r);
        let take = row.len().min(sample);
        // Deterministic prefix sample: for timing purposes only the count
        // and locality class matter, and the prefix preserves both.
        indices.extend_from_slice(&row[..take]);
        indptr.push(indices.len());
    }
    CsrPattern::from_raw(adjacency.rows(), adjacency.cols(), indptr, indices)
        .expect("sampled pattern is structurally valid")
}

/// Runs GROW with an advanced aggregation function and returns the full
/// report (plus any extra phases the aggregator needs).
///
/// The underlying dataflow is unchanged — that is the Section VIII claim
/// being modeled: sampling shrinks the aggregation phase, GIN appends a
/// dense combination pass, and GAT prepends a per-edge attention pass.
pub fn run_with_aggregation(
    engine: &GrowEngine,
    workload: &PreparedWorkload,
    kind: AggregationKind,
) -> RunReport {
    let sampled;
    let effective: &PreparedWorkload = match kind {
        AggregationKind::SageMean { sample: Some(s) }
        | AggregationKind::SagePool { sample: Some(s) } => {
            let mut w = workload.clone();
            w.adjacency = sample_adjacency(&workload.adjacency, s);
            sampled = w;
            &sampled
        }
        _ => workload,
    };
    let mut report = engine.run(effective);

    match kind {
        AggregationKind::Gin => {
            // The GIN MLP's second layer: one extra dense GEMM
            // (n x f_out) * (f_out x f_out) per GCN layer, executed as a
            // combination pass on the same engine.
            for layer in &mut report.layers {
                let extra = gin_mlp_phase(engine, effective.nodes, layer_f_out(layer));
                merge_extra_phase(&mut layer.combination, extra);
            }
        }
        AggregationKind::Gat => {
            // Attention coefficients: per edge, two dot products of width
            // f_out on the MAC array plus a softmax pass per row on the
            // dedicated unit (off the critical MAC path).
            for layer in &mut report.layers {
                let extra = gat_attention_phase(engine, &effective.adjacency, layer_f_out(layer));
                merge_extra_phase(&mut layer.aggregation, extra);
            }
        }
        _ => {}
    }
    // GIN/GAT added phase work above; re-finalize through the engine's
    // execution model so the summary always describes the report it is
    // attached to (under either exec model).
    crate::exec_model::ExecModel::with_dram(engine.config().multi_pe, engine.config().dram)
        .finalize(&mut report);
    report
}

fn layer_f_out(layer: &LayerReport) -> usize {
    // Recover f_out from the exact output-write accounting: useful output
    // bytes = rows * f_out * 8 per phase; mac ops per nnz = f_out. The
    // aggregation phase's MAC count / probe count gives it directly.
    let probes = layer.aggregation.cache.hits + layer.aggregation.cache.misses;
    layer
        .aggregation
        .mac_ops
        .checked_div(probes)
        .map_or(16, |f| f as usize)
}

fn gin_mlp_phase(engine: &GrowEngine, nodes: usize, f_out: usize) -> PhaseReport {
    let mut phase = PhaseReport::new(PhaseKind::Combination);
    let mut dram = Dram::new(engine.config().dram);
    let mut mac = MacArray::new(engine.config().mac_lanes);
    // Read the n x f_out intermediate back, multiply by the (on-chip)
    // f_out x f_out MLP weight, write the result.
    let bytes = nodes as u64 * f_out as u64 * ELEMENT_BYTES;
    dram.read_stream(0, bytes, TrafficClass::LhsSparse);
    dram.round_burst(bytes, TrafficClass::LhsSparse);
    dram.read_stream(
        0,
        (f_out * f_out) as u64 * ELEMENT_BYTES,
        TrafficClass::Weights,
    );
    mac.scalar_vector_bulk(0, f_out, nodes as u64 * f_out as u64);
    dram.write(mac.busy_until(), bytes, TrafficClass::Output);
    phase.cycles = mac.busy_until().max(dram.busy_until());
    phase.compute_busy = mac.busy_cycles();
    phase.mac_ops = mac.mac_ops();
    phase.traffic = dram.stats().clone();
    phase
}

fn gat_attention_phase(engine: &GrowEngine, adjacency: &CsrPattern, f_out: usize) -> PhaseReport {
    let mut phase = PhaseReport::new(PhaseKind::Aggregation);
    let mut dram = Dram::new(engine.config().dram);
    let mut mac = MacArray::new(engine.config().mac_lanes);
    let nnz = adjacency.nnz() as u64;
    // Per edge: a^T [W h_i || W h_j] — two f_out-wide dot products. The
    // h vectors are the same rows the aggregation pass streams, so no
    // extra RHS traffic beyond re-reading the edge list.
    let stream = nnz * (ELEMENT_BYTES + INDEX_BYTES);
    dram.read_stream(0, stream, TrafficClass::LhsSparse);
    dram.round_burst(stream, TrafficClass::LhsSparse);
    mac.scalar_vector_bulk(0, f_out, 2 * nnz);
    // Softmax normalization runs on the dedicated unit (Section VIII's
    // +16%-of-MAC-array block), pipelined with the MACs — it adds area,
    // not MAC-array cycles.
    phase.cycles = mac.busy_until().max(dram.busy_until());
    phase.compute_busy = mac.busy_cycles();
    phase.mac_ops = mac.mac_ops();
    phase.traffic = dram.stats().clone();
    phase
}

fn merge_extra_phase(into: &mut PhaseReport, extra: PhaseReport) {
    into.cycles += extra.cycles;
    into.compute_busy += extra.compute_busy;
    into.mac_ops += extra.mac_ops;
    into.traffic.merge(&extra.traffic);
    into.sram_reads_8b += extra.sram_reads_8b;
    into.sram_writes_8b += extra.sram_writes_8b;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, PartitionStrategy};
    use grow_model::DatasetKey;

    fn prepared() -> PreparedWorkload {
        let w = DatasetKey::Pubmed.spec().scaled_to(800).instantiate(3);
        prepare(&w, PartitionStrategy::None, 4096)
    }

    #[test]
    fn area_overheads_match_section8() {
        assert_eq!(AggregationKind::GcnSum.area_overhead_fraction(), 0.0);
        assert_eq!(
            AggregationKind::SagePool { sample: None }.area_overhead_fraction(),
            0.014
        );
        assert_eq!(AggregationKind::Gat.area_overhead_fraction(), 0.017);
        assert_eq!(AggregationKind::Gin.area_overhead_fraction(), 0.0);
    }

    #[test]
    fn sage_sampling_caps_row_degree() {
        let p = prepared();
        let sampled = sample_adjacency(&p.adjacency, 5);
        assert!(
            (0..sampled.rows()).all(|r| sampled.row_nnz(r) <= 5),
            "sampling must cap neighborhood size"
        );
        assert!(sampled.nnz() < p.adjacency.nnz());
    }

    #[test]
    fn sage_mean_with_sampling_is_cheaper_than_full_gcn() {
        let p = prepared();
        let engine = GrowEngine::default();
        let full = run_with_aggregation(&engine, &p, AggregationKind::GcnSum);
        let sage = run_with_aggregation(&engine, &p, AggregationKind::SageMean { sample: Some(3) });
        assert!(sage.total_cycles() <= full.total_cycles());
        assert!(sage.mac_ops() < full.mac_ops());
    }

    #[test]
    fn gcn_sum_matches_plain_engine() {
        let p = prepared();
        let engine = GrowEngine::default();
        assert_eq!(
            run_with_aggregation(&engine, &p, AggregationKind::GcnSum),
            engine.run(&p)
        );
    }

    #[test]
    fn gin_adds_mlp_work() {
        let p = prepared();
        let engine = GrowEngine::default();
        let gcn = engine.run(&p);
        let gin = run_with_aggregation(&engine, &p, AggregationKind::Gin);
        assert!(gin.mac_ops() > gcn.mac_ops());
        assert!(gin.total_cycles() > gcn.total_cycles());
    }

    #[test]
    fn gat_adds_two_dot_products_per_edge() {
        let p = prepared();
        let engine = GrowEngine::default();
        let gcn = engine.run(&p);
        let gat = run_with_aggregation(&engine, &p, AggregationKind::Gat);
        let extra = gat.mac_ops() - gcn.mac_ops();
        // Two f_out-wide dot products per adjacency non-zero per layer.
        let expected: u64 = gcn
            .layers
            .iter()
            .map(|l| {
                let probes = l.aggregation.cache.hits + l.aggregation.cache.misses;
                2 * probes * (l.aggregation.mac_ops / probes.max(1))
            })
            .sum();
        assert_eq!(extra, expected);
    }
}
