//! The shared per-phase simulation harness all four engines run on.
//!
//! Every engine model used to hand-roll the same scaffolding: construct a
//! DRAM channel and a MAC array, walk the workload phase by phase, and
//! fold timing/traffic/cache counters into a [`PhaseReport`]. This module
//! centralizes that scaffolding and adds the cluster-parallel execution
//! path:
//!
//! * [`PhaseCtx`] — one simulation context (DRAM channel + MAC array +
//!   report under construction) for a phase prologue or a single cluster;
//! * [`run_clusters`] — fans independent per-cluster simulations across
//!   threads via [`grow_sim::exec`] and hands the partial reports, in
//!   cluster order, to the run's [`ExecModel`] for composition, so the
//!   result is bit-identical to a serial run (`GROW_SERIAL=1` /
//!   [`grow_sim::ExecMode::Serial`]);
//! * [`run_layers`] — the per-layer combination/aggregation loop shared by
//!   every engine's [`Accelerator::run`](crate::Accelerator::run).
//!
//! # Simulated-time semantics
//!
//! Clusters are simulated in isolated contexts whose clocks start at zero.
//! How the per-cluster timelines compose into a phase cycle count is the
//! [`ExecModel`]'s decision (see [`crate::exec_model`]): under the
//! default post-hoc model they compose *sequentially* — a phase's cycle
//! count is the sum of its prologue and per-cluster makespans, matching a
//! single PE processing clusters back to back through one FIFO memory
//! channel; under the end-to-end model (`exec=e2e`) the configured
//! scheduler dispatches the clusters onto N virtual PEs contending for
//! the shared channel, and the fluid makespan is the phase's cycle count.
//! Either way the cluster simulations are independent and therefore
//! parallelizable, and composition happens over the deterministic
//! cluster-ordered fragment list.

use std::ops::Range;

use grow_sim::{exec, fault, Cycle, Dram, DramConfig, FaultPlan, MacArray};
pub use grow_sim::{ScratchArena, ScratchGuard};

pub use crate::exec_model::{ExecModel, ExecModelKind};
use crate::{ClusterProfile, LayerReport, PhaseKind, PhaseReport, PreparedWorkload, RunReport};

/// One isolated simulation context: a DRAM channel, a MAC array, a local
/// clock, and the report being accumulated.
///
/// Engines drive the channel and the array directly (their access patterns
/// are what distinguishes them); the context owns construction and the
/// report-finalization bookkeeping that used to be duplicated per engine.
#[derive(Debug)]
pub struct PhaseCtx {
    /// The off-chip channel of this context.
    pub dram: Dram,
    /// The MAC vector unit of this context.
    pub mac: MacArray,
    /// The engine's local clock (the furthest completion event it has
    /// observed); folded into the final cycle count alongside the channel
    /// and array busy times.
    pub now: Cycle,
    /// The report under construction. `cycles`, `compute_busy`, `mac_ops`,
    /// and `traffic` are filled in by [`PhaseCtx::finish`]; engines add
    /// SRAM access counts and cache statistics as they go.
    pub report: PhaseReport,
}

impl PhaseCtx {
    /// Creates an idle context for one phase (or phase fragment).
    pub fn new(kind: PhaseKind, dram: DramConfig, mac_lanes: usize) -> Self {
        PhaseCtx {
            dram: Dram::new(dram),
            mac: MacArray::new(mac_lanes),
            now: 0,
            report: PhaseReport::new(kind),
        }
    }

    /// Makespan of this context so far: the local clock, the channel, and
    /// the MAC array, whichever finishes last.
    pub fn makespan(&self) -> Cycle {
        self.now
            .max(self.mac.busy_until())
            .max(self.dram.busy_until())
    }

    /// Finalizes the context into its report (cycles, compute busy time,
    /// MAC count, traffic).
    pub fn finish(mut self) -> PhaseReport {
        self.report.cycles = self.makespan();
        self.report.compute_busy = self.mac.busy_cycles();
        self.report.mac_ops = self.mac.mac_ops();
        self.report.traffic = self.dram.stats().clone();
        self.report
    }

    /// Like [`PhaseCtx::finish`], additionally recording this context as
    /// one cluster's execution profile (the input of the multi-PE fluid
    /// model, Figure 24).
    pub fn finish_cluster(mut self) -> PhaseReport {
        self.report.cluster_profiles.push(ClusterProfile {
            compute_cycles: self.mac.busy_cycles(),
            mem_bytes: self.dram.stats().total_fetched(),
            // The detailed fragment makespan is stamped when the exec
            // model composes the fragments (`finish` runs after this).
            cycles: 0,
        });
        self.finish()
    }
}

/// Simulates `clusters` independently — in parallel when the execution
/// mode allows — and composes the per-cluster reports, in cluster order,
/// through `model` (sequential sum under post-hoc, scheduled multi-PE
/// fluid makespan under end-to-end). `sim` receives the cluster index and
/// row range and returns that cluster's finished [`PhaseReport`] (usually
/// via [`PhaseCtx::finish_cluster`]).
pub fn run_clusters<F>(
    model: &ExecModel,
    kind: PhaseKind,
    clusters: &[Range<usize>],
    sim: F,
) -> PhaseReport
where
    F: Fn(usize, Range<usize>) -> PhaseReport + Sync,
{
    let partials = exec::parallel_map(clusters.to_vec(), |ci, cluster| {
        // Cooperative cancellation point: cheap, and placed at the cluster
        // boundary so a cancelled job never produces a partial report.
        fault::check_cancel();
        sim(ci, cluster)
    });
    model.compose(kind, partials)
}

/// Like [`run_clusters`], but hands each cluster simulation a reusable
/// scratch value checked out of `arena` — the zero-allocation cluster
/// path. The scratch a cluster receives may have been used by *any*
/// earlier cluster (on any thread), so `sim` must re-initialize every
/// piece of scratch state it consults (the `reset` methods on the caches
/// and tables exist for this); under that contract the merged report is
/// bit-identical to [`run_clusters`] with per-cluster construction, in
/// both serial and parallel execution.
///
/// Engines create one arena per `run()` call, so scratch state — cache
/// residency tables, runahead slots, plan buffers — is built once per
/// worker and recycled across every cluster of every layer.
pub fn run_clusters_scratched<S, F>(
    model: &ExecModel,
    kind: PhaseKind,
    clusters: &[Range<usize>],
    arena: &ScratchArena<S>,
    sim: F,
) -> PhaseReport
where
    S: Default + Send,
    F: Fn(&mut S, usize, Range<usize>) -> PhaseReport + Sync,
{
    let partials = exec::parallel_map(clusters.to_vec(), |ci, cluster| {
        fault::check_cancel();
        let mut scratch = arena.checkout();
        sim(&mut scratch, ci, cluster)
    });
    model.compose(kind, partials)
}

/// The per-layer loop shared by every engine: maps each GCN layer to its
/// combination + aggregation reports and assembles the [`RunReport`].
///
/// Arms `fault_plan` (the engine config's `fault=` plan) on the calling
/// thread for the duration of the run — [`grow_sim::fault`] sites inside
/// the simulation consult it — and checks for cooperative cancellation at
/// every layer boundary. The default [`FaultPlan::OFF`] makes both a
/// no-op, leaving reports bit-identical to a build without fault support.
pub fn run_layers<F>(
    engine: &'static str,
    workload: &PreparedWorkload,
    fault_plan: FaultPlan,
    mut layer_fn: F,
) -> RunReport
where
    F: FnMut(&grow_model::LayerWorkload) -> LayerReport,
{
    fault::with_plan(fault_plan, || RunReport {
        engine,
        layers: workload
            .layers
            .iter()
            .map(|layer| {
                fault::check_cancel();
                layer_fn(layer)
            })
            .collect(),
        // Engines finalize the report through their ExecModel afterwards
        // (see `crate::exec_model::ExecModel::finalize`), which attaches
        // the multi-PE summary and records the model that ran.
        multi_pe: None,
        exec: ExecModelKind::PostHoc.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grow_sim::TrafficClass;

    fn post_hoc() -> ExecModel {
        ExecModel::new(crate::schedule::MultiPeConfig::default(), 32.0)
    }

    #[test]
    fn finish_folds_clock_channel_and_array() {
        let mut ctx = PhaseCtx::new(PhaseKind::Aggregation, DramConfig::default(), 16);
        let done = ctx.dram.read(0, 64, TrafficClass::RhsRows);
        ctx.now = ctx.now.max(done);
        ctx.mac.scalar_vector(done, 64);
        let report = ctx.finish();
        assert!(report.cycles >= done, "latency tail retained");
        assert_eq!(report.mac_ops, 64);
        assert_eq!(report.traffic.fetched_bytes(TrafficClass::RhsRows), 64);
    }

    #[test]
    fn finish_cluster_records_profile() {
        let mut ctx = PhaseCtx::new(PhaseKind::Combination, DramConfig::default(), 16);
        ctx.dram.read(0, 100, TrafficClass::Weights);
        ctx.mac.scalar_vector(0, 32);
        let report = ctx.finish_cluster();
        assert_eq!(report.cluster_profiles.len(), 1);
        let p = report.cluster_profiles[0];
        assert_eq!(p.compute_cycles, 2);
        assert_eq!(p.mem_bytes, 128, "granularity-rounded");
    }

    #[test]
    fn run_clusters_merges_in_order() {
        let clusters = vec![0..10, 10..30, 30..35];
        let report = run_clusters(
            &post_hoc(),
            PhaseKind::Aggregation,
            &clusters,
            |ci, cluster| {
                let mut ctx = PhaseCtx::new(PhaseKind::Aggregation, DramConfig::default(), 16);
                ctx.dram
                    .read(0, cluster.len() as u64 * 8, TrafficClass::RhsRows);
                ctx.report.sram_reads_8b = ci as u64;
                ctx.finish_cluster()
            },
        );
        assert_eq!(report.cluster_profiles.len(), 3);
        // Sequential composition: the cluster indices 0, 1, 2 sum up.
        assert_eq!(report.sram_reads_8b, 3);
        assert!(report.cluster_profiles[1].mem_bytes > report.cluster_profiles[2].mem_bytes);
    }

    #[test]
    fn parallel_and_serial_merges_are_identical() {
        let clusters: Vec<Range<usize>> = (0..32).map(|i| i * 10..(i + 1) * 10).collect();
        let sim = |_ci: usize, cluster: Range<usize>| {
            let mut ctx = PhaseCtx::new(PhaseKind::Aggregation, DramConfig::default(), 16);
            for row in cluster {
                ctx.dram
                    .read(ctx.now, row as u64 % 200 + 1, TrafficClass::RhsRows);
                ctx.now = ctx.mac.scalar_vector(ctx.now, 16);
            }
            ctx.finish_cluster()
        };
        // Oversubscribe so threads really interleave, even on one core.
        let par = grow_sim::exec::with_workers(8, || {
            run_clusters(&post_hoc(), PhaseKind::Aggregation, &clusters, sim)
        });
        let ser = grow_sim::exec::with_mode(grow_sim::ExecMode::Serial, || {
            run_clusters(&post_hoc(), PhaseKind::Aggregation, &clusters, sim)
        });
        assert_eq!(par, ser);
    }
}
