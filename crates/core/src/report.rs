use std::fmt;

use grow_energy::ActivityCounts;
use grow_sim::{CacheStats, Cycle, TrafficStats};

/// Which of the two GCN SpDeGEMM phases a report covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// `X * W` — the dense-ish combination GEMM.
    Combination,
    /// `A * (XW)` — the sparse aggregation GEMM that dominates runtime
    /// (Figure 7).
    Aggregation,
}

/// Per-cluster execution profile, used by the multi-PE fluid model of
/// Figure 24.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterProfile {
    /// MAC-array busy cycles contributed by this cluster.
    pub compute_cycles: u64,
    /// DRAM bytes moved by this cluster (granularity-rounded).
    pub mem_bytes: u64,
}

/// Summary of the multi-PE projection attached to every run: the fluid
/// model of Figure 24 replayed over the run's per-cluster profiles with
/// the configured PE count and scheduler (see [`crate::schedule`]).
///
/// Everything here is *assignment-dependent* — derived from, never feeding
/// back into, the per-phase counters. Two runs that differ only in
/// scheduler have bit-identical [`RunReport::layers`] and differ at most
/// in this summary (the scheduler-invariance suite asserts exactly that).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPeSummary {
    /// Canonical scheduler name (`rr`, `lpt`, or `ws`).
    pub scheduler: &'static str,
    /// Number of PEs projected onto (1 = the paper's base configuration).
    pub pes: usize,
    /// Multi-PE makespan in cycles under the fluid model.
    pub makespan: f64,
    /// Load-imbalance ratio: busiest PE's busy cycles over the mean
    /// (1.0 = perfectly balanced, `pes` = one PE did everything).
    pub imbalance: f64,
    /// Cycles each PE spent executing clusters.
    pub per_pe_busy: Vec<f64>,
}

/// Timing/traffic/cache statistics of one SpDeGEMM phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Which phase this is.
    pub kind: PhaseKind,
    /// End-to-end cycles of the phase.
    pub cycles: Cycle,
    /// Cycles the MAC array was busy.
    pub compute_busy: u64,
    /// Multiply-accumulate operations executed.
    pub mac_ops: u64,
    /// Off-chip traffic, by class.
    pub traffic: TrafficStats,
    /// Row-cache statistics (zeros for engines without a cache).
    pub cache: CacheStats,
    /// 8-byte on-chip SRAM reads.
    pub sram_reads_8b: u64,
    /// 8-byte on-chip SRAM writes.
    pub sram_writes_8b: u64,
    /// Per-cluster profiles (every engine emits one per simulated
    /// cluster; the multi-PE model schedules over them).
    pub cluster_profiles: Vec<ClusterProfile>,
}

impl PhaseReport {
    /// An empty report for `kind`.
    pub fn new(kind: PhaseKind) -> Self {
        PhaseReport {
            kind,
            cycles: 0,
            compute_busy: 0,
            mac_ops: 0,
            traffic: TrafficStats::new(),
            cache: CacheStats::default(),
            sram_reads_8b: 0,
            sram_writes_8b: 0,
            cluster_profiles: Vec::new(),
        }
    }

    /// Total DRAM bytes moved (granularity-rounded).
    pub fn dram_bytes(&self) -> u64 {
        self.traffic.total_fetched()
    }

    /// Absorbs a phase fragment that executes *after* everything already
    /// accumulated: cycle counts add (the single PE processes fragments
    /// back to back), traffic/cache/SRAM counters sum, and cluster
    /// profiles append in order. This is the merge step of the parallel
    /// cluster path — folding per-cluster reports in cluster order makes
    /// the parallel result bit-identical to a serial run.
    pub fn absorb_sequential(&mut self, fragment: PhaseReport) {
        debug_assert_eq!(self.kind, fragment.kind, "fragments belong to one phase");
        self.cycles += fragment.cycles;
        self.compute_busy += fragment.compute_busy;
        self.mac_ops += fragment.mac_ops;
        self.traffic.merge(&fragment.traffic);
        self.cache.merge(&fragment.cache);
        self.sram_reads_8b += fragment.sram_reads_8b;
        self.sram_writes_8b += fragment.sram_writes_8b;
        self.cluster_profiles.extend(fragment.cluster_profiles);
    }
}

/// Reports for the two phases of one GCN layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Combination (`X*W`) phase.
    pub combination: PhaseReport,
    /// Aggregation (`A*XW`) phase.
    pub aggregation: PhaseReport,
}

impl LayerReport {
    /// Cycles of both phases.
    pub fn cycles(&self) -> Cycle {
        self.combination.cycles + self.aggregation.cycles
    }
}

/// Full report of a 2-layer GCN inference run on one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Engine name (paper figure labels).
    pub engine: &'static str,
    /// Per-layer reports.
    pub layers: Vec<LayerReport>,
    /// Multi-PE projection of this run (`None` only for hand-built
    /// reports; every engine attaches its configured summary).
    pub multi_pe: Option<MultiPeSummary>,
}

impl RunReport {
    /// End-to-end inference cycles.
    pub fn total_cycles(&self) -> Cycle {
        self.layers.iter().map(LayerReport::cycles).sum()
    }

    /// Cycles spent in aggregation across layers (Figure 7/20(b)).
    pub fn aggregation_cycles(&self) -> Cycle {
        self.layers.iter().map(|l| l.aggregation.cycles).sum()
    }

    /// Cycles spent in combination across layers (Figure 7/20(b)).
    pub fn combination_cycles(&self) -> Cycle {
        self.layers.iter().map(|l| l.combination.cycles).sum()
    }

    /// Merged traffic statistics across phases and layers.
    pub fn total_traffic(&self) -> TrafficStats {
        let mut t = TrafficStats::new();
        for l in &self.layers {
            t.merge(&l.combination.traffic);
            t.merge(&l.aggregation.traffic);
        }
        t
    }

    /// Total DRAM bytes moved (Figure 18's metric).
    pub fn dram_bytes(&self) -> u64 {
        self.total_traffic().total_fetched()
    }

    /// Total MAC operations (must be engine-invariant for a workload).
    pub fn mac_ops(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.combination.mac_ops + l.aggregation.mac_ops)
            .sum()
    }

    /// Merged cache statistics (aggregation phases only, where the HDN
    /// cache operates — Figure 17's metric).
    pub fn aggregation_cache(&self) -> CacheStats {
        let mut c = CacheStats::default();
        for l in &self.layers {
            c.merge(&l.aggregation.cache);
        }
        c
    }

    /// Activity counts for the energy model (Figure 22), with the engine's
    /// total SRAM capacity supplied by the caller.
    pub fn activity(&self, sram_kb: f64) -> ActivityCounts {
        let mut a = ActivityCounts {
            sram_kb,
            ..ActivityCounts::default()
        };
        for l in &self.layers {
            for p in [&l.combination, &l.aggregation] {
                a.mac_ops += p.mac_ops;
                a.sram_reads_8b += p.sram_reads_8b;
                a.sram_writes_8b += p.sram_writes_8b;
                a.dram_bytes += p.traffic.total_fetched();
            }
        }
        // Three register-file touches per MAC (two operand reads, one
        // accumulator write), the usual vector-MAC bookkeeping.
        a.rf_accesses = 3 * a.mac_ops;
        a.cycles = self.total_cycles();
        a
    }

    /// Per-cluster profiles concatenated across layers (multi-PE model).
    pub fn cluster_profiles(&self) -> Vec<ClusterProfile> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend(l.combination.cluster_profiles.iter().copied());
            out.extend(l.aggregation.cluster_profiles.iter().copied());
        }
        out
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} cycles ({} aggregation / {} combination), {} DRAM bytes, {} MACs",
            self.engine,
            self.total_cycles(),
            self.aggregation_cycles(),
            self.combination_cycles(),
            self.dram_bytes(),
            self.mac_ops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(kind: PhaseKind, cycles: Cycle, macs: u64) -> PhaseReport {
        PhaseReport {
            cycles,
            mac_ops: macs,
            ..PhaseReport::new(kind)
        }
    }

    fn report() -> RunReport {
        RunReport {
            engine: "test",
            multi_pe: None,
            layers: vec![
                LayerReport {
                    combination: phase(PhaseKind::Combination, 10, 100),
                    aggregation: phase(PhaseKind::Aggregation, 40, 200),
                },
                LayerReport {
                    combination: phase(PhaseKind::Combination, 5, 50),
                    aggregation: phase(PhaseKind::Aggregation, 20, 80),
                },
            ],
        }
    }

    #[test]
    fn totals_sum_over_layers_and_phases() {
        let r = report();
        assert_eq!(r.total_cycles(), 75);
        assert_eq!(r.aggregation_cycles(), 60);
        assert_eq!(r.combination_cycles(), 15);
        assert_eq!(r.mac_ops(), 430);
    }

    #[test]
    fn activity_derives_rf_from_macs() {
        let a = report().activity(538.0);
        assert_eq!(a.mac_ops, 430);
        assert_eq!(a.rf_accesses, 3 * 430);
        assert_eq!(a.cycles, 75);
        assert_eq!(a.sram_kb, 538.0);
    }

    #[test]
    fn display_contains_engine_name() {
        assert!(format!("{}", report()).contains("test"));
    }
}
