use std::collections::{BinaryHeap, HashMap};

use crate::Cycle;

/// One pending LHS non-zero waiting for an in-flight RHS row (an entry of
/// the LHS-ID table of Figure 16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waiter {
    /// The O-BUF output row this non-zero accumulates into.
    pub output_row: u32,
    /// The LHS sparse value to multiply with the returning RHS row.
    pub lhs_value: f64,
}

/// Outcome of trying to issue an HDN-cache-missed RHS row request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueOutcome {
    /// A new LDN-table entry was allocated; the caller must start the DRAM
    /// fetch and then call [`RunaheadTables::set_completion`].
    Allocated,
    /// The row was already in flight; the waiter piggy-backs on the
    /// existing LDN entry (MSHR-style coalescing).
    Coalesced,
    /// The LDN table is full: runahead must stall until a fetch returns.
    LdnFull,
    /// The LHS-ID table is full: runahead must stall until a fetch returns.
    LhsFull,
}

/// The runahead-execution bookkeeping of Section V-D: an `M`-entry LDN
/// table tracking HDN-cache-missed RHS rows in flight, and an `N`-entry
/// LHS-ID table holding the sparse values waiting on them (Figure 16;
/// defaults `M = 16`, `N = 64`).
///
/// ```
/// use grow_sim::{IssueOutcome, RunaheadTables, Waiter};
///
/// let mut t = RunaheadTables::new(16, 64);
/// let w = Waiter { output_row: 0, lhs_value: 1.5 };
/// assert_eq!(t.issue(7, w), IssueOutcome::Allocated);
/// t.set_completion(7, 120);
/// // Same row again from another output row: coalesced, no new fetch.
/// assert_eq!(t.issue(7, Waiter { output_row: 2, lhs_value: -0.5 }), IssueOutcome::Coalesced);
/// let (done, row, waiters) = t.pop_earliest().unwrap();
/// assert_eq!((done, row, waiters.len()), (120, 7, 2));
/// ```
#[derive(Debug, Clone)]
pub struct RunaheadTables {
    ldn_capacity: usize,
    lhs_capacity: usize,
    in_flight: HashMap<u32, Entry>,
    lhs_used: usize,
    /// Min-heap of (completion, rhs row) for entries whose completion is known.
    completions: BinaryHeap<std::cmp::Reverse<(Cycle, u32)>>,
    peak_ldn: usize,
    peak_lhs: usize,
}

#[derive(Debug, Clone)]
struct Entry {
    complete_at: Option<Cycle>,
    waiters: Vec<Waiter>,
}

impl RunaheadTables {
    /// Creates empty tables with the given capacities (Table III defaults
    /// are 16 and 64).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(ldn_capacity: usize, lhs_capacity: usize) -> Self {
        assert!(
            ldn_capacity > 0 && lhs_capacity > 0,
            "table capacities must be positive"
        );
        RunaheadTables {
            ldn_capacity,
            lhs_capacity,
            in_flight: HashMap::new(),
            lhs_used: 0,
            completions: BinaryHeap::new(),
            peak_ldn: 0,
            peak_lhs: 0,
        }
    }

    /// LDN-table entries currently allocated.
    pub fn ldn_used(&self) -> usize {
        self.in_flight.len()
    }

    /// LHS-ID-table entries currently allocated.
    pub fn lhs_used(&self) -> usize {
        self.lhs_used
    }

    /// Largest simultaneous LDN occupancy observed.
    pub fn peak_ldn(&self) -> usize {
        self.peak_ldn
    }

    /// Largest simultaneous LHS occupancy observed.
    pub fn peak_lhs(&self) -> usize {
        self.peak_lhs
    }

    /// True if no fetches are in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Attempts to register `waiter` for RHS row `rhs_row`.
    ///
    /// On [`IssueOutcome::Allocated`] the caller must perform the DRAM read
    /// and report its completion via [`RunaheadTables::set_completion`].
    /// On `LdnFull`/`LhsFull` nothing is recorded; the caller should drain
    /// one completion ([`RunaheadTables::pop_earliest`]) and retry.
    pub fn issue(&mut self, rhs_row: u32, waiter: Waiter) -> IssueOutcome {
        if self.lhs_used >= self.lhs_capacity {
            return IssueOutcome::LhsFull;
        }
        if let Some(entry) = self.in_flight.get_mut(&rhs_row) {
            entry.waiters.push(waiter);
            self.lhs_used += 1;
            self.peak_lhs = self.peak_lhs.max(self.lhs_used);
            return IssueOutcome::Coalesced;
        }
        if self.in_flight.len() >= self.ldn_capacity {
            return IssueOutcome::LdnFull;
        }
        self.in_flight.insert(
            rhs_row,
            Entry {
                complete_at: None,
                waiters: vec![waiter],
            },
        );
        self.lhs_used += 1;
        self.peak_ldn = self.peak_ldn.max(self.in_flight.len());
        self.peak_lhs = self.peak_lhs.max(self.lhs_used);
        IssueOutcome::Allocated
    }

    /// Records the DRAM completion cycle of a newly allocated entry.
    ///
    /// # Panics
    ///
    /// Panics if `rhs_row` has no allocated entry or already has a
    /// completion time.
    pub fn set_completion(&mut self, rhs_row: u32, complete_at: Cycle) {
        let entry = self
            .in_flight
            .get_mut(&rhs_row)
            .expect("entry must be allocated");
        assert!(entry.complete_at.is_none(), "completion already set");
        entry.complete_at = Some(complete_at);
        self.completions
            .push(std::cmp::Reverse((complete_at, rhs_row)));
    }

    /// Removes and returns the in-flight row with the earliest completion:
    /// `(completion cycle, rhs row, waiters)`. Returns `None` when nothing
    /// is in flight.
    pub fn pop_earliest(&mut self) -> Option<(Cycle, u32, Vec<Waiter>)> {
        let std::cmp::Reverse((done, row)) = self.completions.pop()?;
        let entry = self.in_flight.remove(&row).expect("heap and map in sync");
        self.lhs_used -= entry.waiters.len();
        Some((done, row, entry.waiters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(row: u32) -> Waiter {
        Waiter {
            output_row: row,
            lhs_value: 1.0,
        }
    }

    #[test]
    fn allocate_then_drain() {
        let mut t = RunaheadTables::new(4, 8);
        assert_eq!(t.issue(10, w(0)), IssueOutcome::Allocated);
        t.set_completion(10, 50);
        assert_eq!(t.ldn_used(), 1);
        let (done, row, waiters) = t.pop_earliest().unwrap();
        assert_eq!((done, row), (50, 10));
        assert_eq!(waiters.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.lhs_used(), 0);
    }

    #[test]
    fn coalescing_shares_one_fetch() {
        // Figure 16's example: LDN nodes 1 and 2 miss; output rows 0, 2, 3
        // wait on them via three LHS-ID entries but only two LDN entries.
        let mut t = RunaheadTables::new(16, 64);
        assert_eq!(t.issue(1, w(0)), IssueOutcome::Allocated);
        t.set_completion(1, 100);
        assert_eq!(t.issue(2, w(2)), IssueOutcome::Allocated);
        t.set_completion(2, 110);
        assert_eq!(t.issue(1, w(3)), IssueOutcome::Coalesced);
        assert_eq!(t.ldn_used(), 2, "two LDN entries as in Figure 16");
        assert_eq!(t.lhs_used(), 3, "three LHS-ID entries as in Figure 16");
    }

    #[test]
    fn completions_drain_in_time_order() {
        let mut t = RunaheadTables::new(4, 8);
        t.issue(1, w(0));
        t.set_completion(1, 200);
        t.issue(2, w(1));
        t.set_completion(2, 150);
        assert_eq!(t.pop_earliest().unwrap().1, 2);
        assert_eq!(t.pop_earliest().unwrap().1, 1);
        assert!(t.pop_earliest().is_none());
    }

    #[test]
    fn ldn_capacity_blocks_new_rows() {
        let mut t = RunaheadTables::new(2, 8);
        t.issue(1, w(0));
        t.issue(2, w(0));
        assert_eq!(t.issue(3, w(0)), IssueOutcome::LdnFull);
        // Existing rows can still coalesce.
        assert_eq!(t.issue(1, w(1)), IssueOutcome::Coalesced);
    }

    #[test]
    fn lhs_capacity_blocks_everything() {
        let mut t = RunaheadTables::new(4, 2);
        t.issue(1, w(0));
        t.issue(1, w(1));
        assert_eq!(t.issue(1, w(2)), IssueOutcome::LhsFull);
        assert_eq!(t.issue(9, w(2)), IssueOutcome::LhsFull);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut t = RunaheadTables::new(4, 8);
        t.issue(1, w(0));
        t.issue(2, w(0));
        t.issue(2, w(1));
        t.set_completion(1, 10);
        t.set_completion(2, 20);
        while t.pop_earliest().is_some() {}
        assert_eq!(t.peak_ldn(), 2);
        assert_eq!(t.peak_lhs(), 3);
    }

    #[test]
    #[should_panic(expected = "entry must be allocated")]
    fn completion_requires_allocation() {
        let mut t = RunaheadTables::new(2, 2);
        t.set_completion(5, 10);
    }
}
