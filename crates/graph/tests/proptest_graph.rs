//! Property-based tests for graph construction, generation, and
//! normalization invariants.

use grow_graph::{normalized_adjacency, CommunityGraphSpec, Graph, RmatGraphSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = (CommunityGraphSpec, u64)> {
    (
        50usize..400,
        2.0f64..14.0,
        2usize..8,
        0.5f64..0.95,
        2.05f64..3.0,
        0.0f64..=1.0,
        0u64..10_000,
    )
        .prop_map(|(nodes, deg, comms, intra, gamma, shuffle, seed)| {
            (
                CommunityGraphSpec {
                    nodes,
                    avg_degree: deg,
                    communities: comms,
                    intra_fraction: intra,
                    power_law_exponent: gamma,
                    shuffle_fraction: shuffle,
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_graphs_are_simple_and_symmetric((spec, seed) in arb_spec()) {
        let g = spec.generate(seed);
        prop_assert_eq!(g.nodes(), spec.nodes);
        for v in 0..g.nodes() {
            let row = g.neighbors(v);
            // No self-loops, strictly sorted (implies no duplicates).
            prop_assert!(row.iter().all(|&u| u as usize != v));
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]));
            // Symmetry.
            for &u in row {
                prop_assert!(
                    g.neighbors(u as usize).contains(&(v as u32)),
                    "edge ({v}, {u}) missing its reverse"
                );
            }
        }
    }

    #[test]
    fn degree_sums_are_consistent((spec, seed) in arb_spec()) {
        let g = spec.generate(seed);
        let sum: usize = (0..g.nodes()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, g.directed_edges());
        prop_assert_eq!(g.directed_edges(), 2 * g.undirected_edges());
    }

    #[test]
    fn relabeling_is_an_isomorphism((spec, seed) in arb_spec()) {
        let g = spec.generate(seed);
        let n = g.nodes();
        // Rotate node IDs by one.
        let perm: Vec<u32> = (0..n as u32).map(|v| (v + 1) % n as u32).collect();
        let r = g.relabel(&perm);
        prop_assert_eq!(r.undirected_edges(), g.undirected_edges());
        let mut degrees_a: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        let mut degrees_b: Vec<usize> = (0..n).map(|v| r.degree(v)).collect();
        degrees_a.sort_unstable();
        degrees_b.sort_unstable();
        prop_assert_eq!(degrees_a, degrees_b);
    }

    #[test]
    fn normalization_is_symmetric_and_bounded((spec, seed) in arb_spec()) {
        let g = spec.generate(seed);
        let a = normalized_adjacency(&g);
        prop_assert_eq!(a.nnz(), g.directed_edges() + g.nodes());
        // Every value is in (0, 1] — each entry is 1/sqrt((d_u+1)(d_v+1)).
        prop_assert!(a.values().iter().all(|&v| v > 0.0 && v <= 1.0));
        // Symmetric values.
        let t = a.transpose();
        prop_assert!(a.to_dense().approx_eq(&t.to_dense(), 1e-12));
    }

    #[test]
    fn rmat_respects_node_count((scale, deg, seed) in (6u32..11, 2.0f64..10.0, 0u64..1000)) {
        let g = RmatGraphSpec::graph500(scale, deg).generate(seed);
        prop_assert_eq!(g.nodes(), 1usize << scale);
        prop_assert!(g.undirected_edges() > 0);
    }

    #[test]
    fn from_edges_is_idempotent_under_duplication(
        (n, edges) in (4usize..40).prop_flat_map(|n| {
            let e = proptest::collection::vec((0..n as u32, 0..n as u32), 0..80);
            (Just(n), e)
        })
    ) {
        let once = Graph::from_edges(n, edges.iter().copied());
        let doubled = Graph::from_edges(n, edges.iter().chain(edges.iter()).copied());
        prop_assert_eq!(once, doubled);
    }
}
