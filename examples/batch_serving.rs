//! The batch serving layer end to end: a mixed fleet of jobs — every
//! engine, two partition strategies, configuration overrides, and one
//! deliberately broken job — submitted as one queue and returned in
//! submission order with per-job status, timing, and cache provenance.
//!
//! Things to watch in the output:
//!
//! * the two datasets are instantiated and partitioned once each, shared
//!   by all jobs that reference them (the session pool);
//! * the duplicated GROW job is served from the result cache — exactly
//!   one computation per distinct job key;
//! * the `npu` job fails with a registry error while the rest of the
//!   batch completes;
//! * resubmitting the whole batch is pure cache (0 new simulations).
//!
//! ```text
//! cargo run --release --example batch_serving
//! ```

use grow::accel::PartitionStrategy;
use grow::model::DatasetKey;
use grow::serve::{BatchService, JobSpec};

fn main() {
    let cora = DatasetKey::Cora.spec().scaled_to(2_000);
    let pubmed = DatasetKey::Pubmed.spec().scaled_to(4_000);
    let seed = 42;
    let partitioned = PartitionStrategy::multilevel_default();

    let mut jobs = Vec::new();
    for spec in [cora, pubmed] {
        // The paper's comparison setup: GROW on its partitioned workload,
        // the baselines on the original node order.
        jobs.push(JobSpec::new(spec, seed, "grow").with_strategy(partitioned));
        jobs.push(JobSpec::new(spec, seed, "gcnax"));
        jobs.push(JobSpec::new(spec, seed, "matraptor"));
        jobs.push(JobSpec::new(spec, seed, "gamma"));
        // A configuration variant: small cache, narrow runahead.
        jobs.push(
            JobSpec::new(spec, seed, "grow")
                .with_strategy(partitioned)
                .with_override("hdn_cache_kb", "64")
                .with_override("runahead", "1"),
        );
    }
    // A duplicate of job 0 — served from cache, not recomputed.
    jobs.push(jobs[0].clone());
    // A job that cannot run; it fails alone, the batch proceeds.
    jobs.push(JobSpec::new(cora, seed, "npu"));

    let mut service = BatchService::new();
    let results = service.run_batch(&jobs);

    println!(
        "{:>3}  {:<8} {:<10} {:>14} {:>10} {:>9}  status",
        "#", "dataset", "engine", "cycles", "DRAM MiB", "sim ms"
    );
    for r in &results {
        match &r.outcome {
            Ok(report) => println!(
                "{:>3}  {:<8} {:<10} {:>14} {:>10.1} {:>9}  {}",
                r.index,
                r.dataset,
                r.engine,
                report.total_cycles(),
                report.dram_bytes() as f64 / (1 << 20) as f64,
                // None = no simulation ran (a cache hit is not a 0.0 ms run).
                r.wall_ms
                    .map_or_else(|| "-".to_string(), |ms| format!("{ms:.1}")),
                if r.cache_hit { "ok (cached)" } else { "ok" },
            ),
            Err(e) => println!(
                "{:>3}  {:<8} {:<10} {:>14} {:>10} {:>9}  failed: {e}",
                r.index, r.dataset, r.engine, "-", "-", "-"
            ),
        }
    }

    let stats = service.stats();
    println!(
        "\nservice: {} jobs -> {} simulations, {} cache hits, {} failed; \
         {} pooled sessions, {} preparations",
        stats.jobs_submitted,
        stats.simulations_run,
        stats.cache_hits,
        stats.jobs_failed,
        service.pooled_sessions(),
        stats.preparations_run,
    );

    // Resubmit everything: the service answers from its report cache.
    let before = service.stats().simulations_run;
    let rerun = service.run_batch(&jobs);
    assert_eq!(service.stats().simulations_run, before);
    println!(
        "resubmitted {} jobs: 0 new simulations, all served from cache",
        rerun.len()
    );
}
