use grow_graph::CommunityGraphSpec;

use crate::workload::GcnWorkload;

/// The eight graph datasets of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKey {
    /// Cora citation network (2,708 nodes).
    Cora,
    /// Citeseer citation network (3,327 nodes).
    Citeseer,
    /// Pubmed citation network (19,717 nodes).
    Pubmed,
    /// Flickr image-relationship graph (89,250 nodes).
    Flickr,
    /// Reddit post-interaction graph (232,965 nodes, avg degree 493).
    Reddit,
    /// Yelp review graph (716,847 nodes).
    Yelp,
    /// Pokec social network (1,632,803 nodes).
    Pokec,
    /// Amazon co-purchase graph (2,449,029 nodes).
    Amazon,
}

impl DatasetKey {
    /// All datasets in Table I order (sorted by node count).
    pub const ALL: [DatasetKey; 8] = [
        DatasetKey::Cora,
        DatasetKey::Citeseer,
        DatasetKey::Pubmed,
        DatasetKey::Flickr,
        DatasetKey::Reddit,
        DatasetKey::Yelp,
        DatasetKey::Pokec,
        DatasetKey::Amazon,
    ];

    /// The small-scale datasets (the paper's "even mix" split).
    pub const SMALL: [DatasetKey; 4] = [
        DatasetKey::Cora,
        DatasetKey::Citeseer,
        DatasetKey::Pubmed,
        DatasetKey::Flickr,
    ];

    /// The large-scale datasets.
    pub const LARGE: [DatasetKey; 4] = [
        DatasetKey::Reddit,
        DatasetKey::Yelp,
        DatasetKey::Pokec,
        DatasetKey::Amazon,
    ];

    /// Lower-case dataset name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKey::Cora => "cora",
            DatasetKey::Citeseer => "citeseer",
            DatasetKey::Pubmed => "pubmed",
            DatasetKey::Flickr => "flickr",
            DatasetKey::Reddit => "reddit",
            DatasetKey::Yelp => "yelp",
            DatasetKey::Pokec => "pokec",
            DatasetKey::Amazon => "amazon",
        }
    }

    /// Parses a dataset name (case-insensitive).
    pub fn parse(name: &str) -> Option<DatasetKey> {
        DatasetKey::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// The default (simulation-scale) specification; see
    /// [`DatasetSpec::paper_scale`] for the unscaled variant.
    pub fn spec(self) -> DatasetSpec {
        // Table I rows. Large graphs are node-scaled (16x/8x/16x/16x, see
        // DESIGN.md §3-4) with average degree preserved; X(0)/X(1)
        // densities and feature dims are the paper's exactly.
        match self {
            DatasetKey::Cora => DatasetSpec {
                key: self,
                paper_nodes: 2_708,
                paper_edges: 13_264,
                nodes: 2_708,
                avg_degree: 4.90,
                feature_dims: [1433, 16, 7],
                x0_density: 0.0127,
                x1_density: 0.780,
                communities: 4,
                intra_fraction: 0.80,
                power_law_exponent: 2.6,
                shuffle_fraction: 1.0,
            },
            DatasetKey::Citeseer => DatasetSpec {
                key: self,
                paper_nodes: 3_327,
                paper_edges: 12_431,
                nodes: 3_327,
                avg_degree: 3.74,
                feature_dims: [3703, 16, 6],
                x0_density: 0.0085,
                x1_density: 0.891,
                communities: 4,
                intra_fraction: 0.80,
                power_law_exponent: 2.7,
                shuffle_fraction: 1.0,
            },
            DatasetKey::Pubmed => DatasetSpec {
                key: self,
                paper_nodes: 19_717,
                paper_edges: 108_365,
                nodes: 19_717,
                avg_degree: 5.50,
                feature_dims: [500, 16, 3],
                x0_density: 0.100,
                x1_density: 0.776,
                communities: 8,
                intra_fraction: 0.80,
                power_law_exponent: 2.5,
                shuffle_fraction: 1.0,
            },
            DatasetKey::Flickr => DatasetSpec {
                key: self,
                paper_nodes: 89_250,
                paper_edges: 989_006,
                nodes: 89_250,
                avg_degree: 11.1,
                feature_dims: [500, 64, 7],
                x0_density: 0.464,
                x1_density: 0.772,
                communities: 24,
                intra_fraction: 0.80,
                power_law_exponent: 2.4,
                shuffle_fraction: 1.0,
            },
            DatasetKey::Reddit => DatasetSpec {
                key: self,
                paper_nodes: 232_965,
                paper_edges: 114_848_857,
                nodes: 14_560,
                avg_degree: 493.0,
                feature_dims: [602, 64, 41],
                x0_density: 1.0,
                x1_density: 0.639,
                communities: 4,
                intra_fraction: 0.82,
                power_law_exponent: 2.2,
                // Real Reddit ships with a locality-correlated node
                // ordering (Figure 14(a) shows visible block structure
                // before any partitioning); a mostly-unshuffled ordering
                // preserves the 2D-tile locality that lets GCNAX win on
                // Reddit (Section VII-A).
                shuffle_fraction: 0.25,
            },
            DatasetKey::Yelp => DatasetSpec {
                key: self,
                paper_nodes: 716_847,
                paper_edges: 13_954_819,
                nodes: 89_605,
                avg_degree: 19.5,
                feature_dims: [300, 64, 100],
                x0_density: 1.0,
                x1_density: 0.772,
                communities: 36,
                intra_fraction: 0.86,
                power_law_exponent: 2.1,
                shuffle_fraction: 1.0,
            },
            DatasetKey::Pokec => DatasetSpec {
                key: self,
                paper_nodes: 1_632_803,
                paper_edges: 46_236_731,
                nodes: 102_050,
                avg_degree: 28.3,
                feature_dims: [60, 64, 48],
                x0_density: 0.399,
                x1_density: 0.772,
                communities: 40,
                intra_fraction: 0.86,
                power_law_exponent: 2.1,
                shuffle_fraction: 1.0,
            },
            DatasetKey::Amazon => DatasetSpec {
                key: self,
                paper_nodes: 2_449_029,
                paper_edges: 126_167_309,
                nodes: 153_064,
                avg_degree: 51.5,
                feature_dims: [100, 64, 47],
                x0_density: 0.990,
                x1_density: 0.772,
                communities: 48,
                intra_fraction: 0.86,
                power_law_exponent: 2.1,
                shuffle_fraction: 1.0,
            },
        }
    }
}

/// One Table I row: graph shape, GCN feature dimensions, and input
/// densities, plus the synthetic-generator parameters of the surrogate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub key: DatasetKey,
    /// Node count reported in the paper.
    pub paper_nodes: usize,
    /// Edge count (directed adjacency non-zeros) reported in the paper.
    pub paper_edges: usize,
    /// Node count of the synthetic surrogate (scaled for the large graphs).
    pub nodes: usize,
    /// Average degree (Table I).
    pub avg_degree: f64,
    /// Feature dimensions `[input, hidden, output]` (Table I "Feature
    /// length", e.g. 1433-16-7 for Cora).
    pub feature_dims: [usize; 3],
    /// Density of the input feature matrix `X(0)` (Table I).
    pub x0_density: f64,
    /// Density of the layer-2 feature matrix `X(1)` (Table I).
    pub x1_density: f64,
    /// Planted community count of the surrogate generator.
    pub communities: usize,
    /// Intra-community edge-endpoint fraction of the surrogate generator.
    pub intra_fraction: f64,
    /// Power-law exponent of the surrogate degree distribution.
    pub power_law_exponent: f64,
    /// Fraction of node IDs shuffled (1.0 = ordering carries no locality).
    pub shuffle_fraction: f64,
}

impl DatasetSpec {
    /// Returns the spec with the paper's unscaled node count (`--full`
    /// runs; needs tens of GB of RAM and hours on the largest graphs).
    pub fn paper_scale(mut self) -> DatasetSpec {
        self.nodes = self.paper_nodes;
        self
    }

    /// Returns the spec scaled to approximately `nodes` nodes (community
    /// count scales along to keep cluster sizes stable).
    pub fn scaled_to(mut self, nodes: usize) -> DatasetSpec {
        let ratio = nodes as f64 / self.nodes as f64;
        self.nodes = nodes.max(16);
        self.communities = ((self.communities as f64 * ratio).round() as usize).max(2);
        self
    }

    /// Adjacency density `avg_degree / nodes` of the surrogate.
    pub fn adjacency_density(&self) -> f64 {
        self.avg_degree / self.nodes as f64
    }

    /// The generator specification for this dataset's graph.
    pub fn graph_spec(&self) -> CommunityGraphSpec {
        CommunityGraphSpec {
            nodes: self.nodes,
            avg_degree: self.avg_degree,
            communities: self.communities,
            intra_fraction: self.intra_fraction,
            power_law_exponent: self.power_law_exponent,
            shuffle_fraction: self.shuffle_fraction,
        }
    }

    /// Generates the full 2-layer GCN workload (graph + feature patterns).
    pub fn instantiate(&self, seed: u64) -> GcnWorkload {
        GcnWorkload::from_spec(self, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_datasets_present() {
        assert_eq!(DatasetKey::ALL.len(), 8);
        let names: Vec<&str> = DatasetKey::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["cora", "citeseer", "pubmed", "flickr", "reddit", "yelp", "pokec", "amazon"]
        );
    }

    #[test]
    fn parse_round_trips() {
        for key in DatasetKey::ALL {
            assert_eq!(DatasetKey::parse(key.name()), Some(key));
        }
        assert_eq!(DatasetKey::parse("REDDIT"), Some(DatasetKey::Reddit));
        assert_eq!(DatasetKey::parse("imagenet"), None);
    }

    #[test]
    fn small_graphs_run_at_paper_scale() {
        for key in DatasetKey::SMALL {
            let s = key.spec();
            assert_eq!(s.nodes, s.paper_nodes, "{}", key.name());
        }
    }

    #[test]
    fn large_graphs_are_scaled_with_degree_preserved() {
        for key in DatasetKey::LARGE {
            let s = key.spec();
            assert!(s.nodes < s.paper_nodes, "{}", key.name());
            let paper_degree = s.paper_edges as f64 / s.paper_nodes as f64;
            assert!(
                (s.avg_degree - paper_degree).abs() / paper_degree < 0.02,
                "{}: spec degree {} vs paper {}",
                key.name(),
                s.avg_degree,
                paper_degree
            );
        }
    }

    #[test]
    fn table1_feature_dims() {
        assert_eq!(DatasetKey::Reddit.spec().feature_dims, [602, 64, 41]);
        assert_eq!(DatasetKey::Yelp.spec().feature_dims, [300, 64, 100]);
        assert_eq!(DatasetKey::Pokec.spec().feature_dims, [60, 64, 48]);
    }

    #[test]
    fn paper_scale_restores_counts() {
        let s = DatasetKey::Amazon.spec().paper_scale();
        assert_eq!(s.nodes, 2_449_029);
    }

    #[test]
    fn scaled_to_adjusts_communities() {
        let s = DatasetKey::Yelp.spec();
        let t = s.scaled_to(s.nodes / 4);
        assert!(t.communities < s.communities);
        assert!(t.communities >= 2);
    }

    #[test]
    fn density_ordering_matches_paper() {
        // Table I: A is orders of magnitude sparser than X for most
        // datasets; Reddit has the densest adjacency of the large graphs.
        let reddit = DatasetKey::Reddit.spec();
        let amazon = DatasetKey::Amazon.spec();
        assert!(reddit.adjacency_density() > amazon.adjacency_density());
        for key in DatasetKey::ALL {
            let s = key.spec();
            assert!(s.adjacency_density() < s.x1_density);
        }
    }
}
