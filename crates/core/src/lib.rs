//! The GROW accelerator model and its baselines — the primary contribution
//! of the paper, plus every comparator its evaluation uses.
//!
//! * [`GrowEngine`] — GROW itself (Section V): a unified row-stationary
//!   SpDeGEMM engine with HDN caching, graph-partitioned cluster
//!   scheduling, and multi-row-stationary runahead execution;
//! * [`GcnaxEngine`] — the state-of-the-art baseline (Li et al., HPCA'21):
//!   outer-product dataflow over 2D tiles with CSC-compressed sparse
//!   operands (Section IV's characterization target);
//! * [`MatRaptorEngine`] / [`GammaEngine`] — the row-wise-product
//!   sparse-*sparse* accelerators compared in Section VII-H;
//! * [`prepare`] / [`PreparedWorkload`] — the software preprocessing stack
//!   (partitioning, relabeling, HDN list extraction);
//! * [`multi_pe`] / [`schedule`] / [`exec_model`] — the multi-PE scaling
//!   model of Figure 24, its pluggable cluster-to-PE schedulers
//!   (round-robin / LPT / work-stealing / contention-aware), and the
//!   execution-model layer that makes `pes=N` a real execution mode
//!   (`exec=post_hoc|e2e`);
//! * [`experiments`] — drivers that regenerate each figure/table of the
//!   evaluation (Section VII).
//!
//! # Example
//!
//! ```
//! use grow_core::{prepare, Accelerator, GrowEngine, PartitionStrategy};
//! use grow_model::DatasetKey;
//!
//! let workload = DatasetKey::Cora.spec().scaled_to(300).instantiate(7);
//! let prepared = prepare(&workload, PartitionStrategy::None, 4096);
//! let report = GrowEngine::default().run(&prepared);
//! assert!(report.total_cycles() > 0);
//! assert_eq!(report.layers.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gamma;
mod gcnax;
mod grow;
mod matraptor;
mod plan;
mod prepare;
mod report;
mod spsp;

pub mod exec_model;
pub mod experiments;
pub mod extensions;
pub mod multi_pe;
pub mod pipeline;
pub mod registry;
pub mod schedule;

pub use exec_model::{ExecModel, ExecModelKind};
pub use gamma::{GammaConfig, GammaEngine};
pub use gcnax::{GcnaxConfig, GcnaxEngine};
pub use grow::{GrowConfig, GrowEngine, ReplacementPolicy};
pub use matraptor::{MatRaptorConfig, MatRaptorEngine};
pub use plan::{PlanCache, PlanCacheScope, ShardRows, ShardSpec};
pub use prepare::{prepare, PartitionStrategy, PreparedWorkload};
pub use report::{
    ClusterProfile, LayerPeBusy, LayerReport, MultiPeBreakdown, MultiPeSummary, PhaseKind,
    PhasePeBusy, PhaseReport, RunReport,
};
pub use schedule::{MultiPeConfig, SchedulerKind};

/// Common interface of all four accelerator models.
///
/// Engines are timing models: given a prepared workload they return cycle,
/// traffic, cache, and activity statistics. All engines execute the same
/// `A*(X*W)` dataflow and therefore the same number of MAC operations —
/// the paper's comparison is entirely about data movement.
///
/// `Send + Sync` is part of the contract: engines are plain configuration
/// holders with no interior mutability, and the serving layer fans boxed
/// engines across worker threads.
pub trait Accelerator: Send + Sync {
    /// Engine name as used in the paper's figures (e.g. `"GROW"`).
    fn name(&self) -> &'static str;

    /// Simulates 2-layer GCN inference and returns the full report.
    fn run(&self, workload: &PreparedWorkload) -> RunReport;

    /// Total on-chip SRAM capacity in KB (for leakage/energy accounting).
    fn sram_kb(&self) -> f64;
}
