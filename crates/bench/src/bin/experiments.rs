//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section VII) plus the Section IV characterization.
//!
//! Usage:
//!
//! ```text
//! experiments [--seed N] [--datasets a,b,c] [--max-nodes N] [--full]
//!             [--channels N] [--banks N] [--workers N] [--out DIR] <ids...>
//! experiments all
//! ```
//!
//! `--channels`/`--banks` select the banked memory topology for the
//! end-to-end experiments (`figure24`); the default `1 1` is the uniform
//! fluid pipe.
//!
//! Experiment ids: `table1 fig2 fig3 fig5 fig6 fig7 fig11 fig14 fig17
//! fig18 fig19 fig20 fig21 fig22 table4 fig24 figure24 fig25a fig25b
//! fig26 replacement nonpowerlaw preprocessing extensions engines sweep
//! serve_demo chaos`
//! (`figure24` is the scheduler-axis extension of `fig24`, executed in
//! the end-to-end multi-PE mode: all four engines × rr/lpt/ws/ca cluster
//! scheduling × 1–16 PEs with `exec=e2e`, dispatched through the batch
//! service and summarized — per-layer multi-PE breakdowns included —
//! into `results/BENCH_figure24.json`). Each
//! prints an aligned table and writes `results/<id>.csv` plus a
//! machine-readable `results/<id>.json`; a run summary with per-experiment
//! wall-clock times lands in `results/BENCH_experiments.json` for
//! cross-PR perf tracking.
//!
//! The registry-driven experiments (`engines`, `sweep`) are defined as
//! *data* — lists of `grow_serve::JobSpec`s dispatched through one
//! `BatchService` call, which deduplicates workload preparation and fans
//! the simulations across worker threads.

use std::path::PathBuf;

use grow_bench::{cell, Context, Table};
use grow_core::experiments::{self, geomean, SpeedupRow, TrafficAblation};
use grow_core::{Accelerator, GcnaxEngine, GrowConfig, GrowEngine};
use grow_energy::{ActivityCounts, AreaModel, EnergyModel, GCNAX_AREA_40NM, TECH_SCALE_65_TO_40};
use grow_graph::stats;
use grow_model::DatasetKey;
use grow_partition::{multilevel_partition, ClusterLayout, MultilevelConfig};
use grow_serve::BatchService;
use grow_sparse::analysis::{self, FIG5A_BOUNDS, FIG5B_BOUNDS};
use grow_sparse::RowMajorSparse;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut keys: Vec<DatasetKey> = DatasetKey::ALL.to_vec();
    let mut max_nodes: Option<usize> = None;
    let mut full = false;
    let mut channels = 1usize;
    let mut banks = 1usize;
    let mut workers = 1usize;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--datasets" => {
                let list = it.next().expect("--datasets a,b,c");
                keys = list
                    .split(',')
                    .map(|name| {
                        DatasetKey::parse(name).unwrap_or_else(|| {
                            eprintln!("unknown dataset '{name}'");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--max-nodes" => {
                max_nodes = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-nodes N"),
                )
            }
            "--full" => full = true,
            "--channels" => {
                channels = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--channels N")
            }
            "--banks" => banks = it.next().and_then(|v| v.parse().ok()).expect("--banks N"),
            "--workers" => workers = it.next().and_then(|v| v.parse().ok()).expect("--workers N"),
            "--out" => out_dir = PathBuf::from(it.next().expect("--out DIR")),
            "--help" | "-h" => {
                eprintln!("see crate docs: experiments [flags] <ids...> | all");
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiment ids given; try `all`");
        std::process::exit(2);
    }
    let all_ids = [
        "table1",
        "fig2",
        "fig3",
        "fig5",
        "fig6",
        "fig7",
        "fig11",
        "fig14",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "fig21",
        "fig22",
        "table4",
        "fig24",
        "figure24",
        "fig25a",
        "fig25b",
        "fig26",
        "replacement",
        "nonpowerlaw",
        "preprocessing",
        "extensions",
        "engines",
        "sweep",
        "serve_demo",
        "chaos",
    ];
    if ids.len() == 1 && ids[0] == "all" {
        ids = all_ids.iter().map(|s| s.to_string()).collect();
    }

    let mut ctx = Context::new(keys, seed);
    ctx.max_nodes = max_nodes;
    ctx.full_scale = full;
    ctx.channels = channels.max(1);
    ctx.banks = banks.max(1);
    ctx.workers = workers.max(1);
    // One batch service for the whole invocation: the registry-driven
    // experiments share pooled sessions and cached reports (running
    // `engines sweep` prepares each workload once, not twice).
    let mut service = BatchService::new();

    let mut timings: Vec<(String, f64)> = Vec::new();
    for id in &ids {
        let started = std::time::Instant::now();
        let table = match id.as_str() {
            "table1" => table1(&mut ctx),
            "fig2" => fig2(&mut ctx),
            "fig3" => fig3(&mut ctx),
            "fig5" => fig5(&mut ctx),
            "fig6" => fig6(&mut ctx),
            "fig7" => fig7(&mut ctx),
            "fig11" => fig11(&mut ctx),
            "fig14" => fig14(&mut ctx),
            "fig17" => fig17(&mut ctx),
            "fig18" => fig18(&mut ctx),
            "fig19" => fig19(&mut ctx),
            "fig20" => fig20(&mut ctx),
            "fig21" => fig21(&mut ctx),
            "fig22" => fig22(&mut ctx),
            "table4" => table4(),
            "fig24" => fig24(&mut ctx),
            "figure24" => figure24(&ctx, &mut service, &out_dir),
            "fig25a" => fig25a(&mut ctx),
            "fig25b" => fig25b(&mut ctx),
            "fig26" => fig26(&mut ctx),
            "replacement" => replacement(&mut ctx),
            "nonpowerlaw" => nonpowerlaw(),
            "preprocessing" => preprocessing(&mut ctx),
            "extensions" => extensions(&mut ctx),
            "engines" => engines(&ctx, &mut service),
            "sweep" => sweep(&ctx, &mut service),
            "serve_demo" => serve_demo(&ctx, &out_dir),
            "chaos" => chaos(&ctx, &out_dir),
            other => {
                eprintln!(
                    "unknown experiment '{other}' (known: {})",
                    all_ids.join(" ")
                );
                std::process::exit(2);
            }
        };
        timings.push((id.clone(), started.elapsed().as_secs_f64() * 1e3));
        println!("{}", table.render());
        if let Err(e) = table.write_csv(&out_dir) {
            eprintln!("warning: could not write {}: {e}", table.name());
        }
        if let Err(e) = table.write_json(&out_dir) {
            eprintln!("warning: could not write {} json: {e}", table.name());
        }
    }
    write_bench_summary(&out_dir, seed, &timings);
}

/// Writes `BENCH_experiments.json`: per-experiment wall-clock times of this
/// run, so successive PRs accumulate a perf trajectory of the simulator
/// itself.
fn write_bench_summary(out_dir: &std::path::Path, seed: u64, timings: &[(String, f64)]) {
    use grow_bench::json;
    let entries: Vec<String> = timings
        .iter()
        .map(|(id, ms)| json::object(&[("id", json::string(id)), ("wall_ms", json::number(*ms))]))
        .collect();
    let total_ms: f64 = timings.iter().map(|(_, ms)| ms).sum();
    let doc = json::object(&[
        ("seed", json::uint(seed)),
        (
            "threads",
            json::string(&std::env::var("GROW_THREADS").unwrap_or_default()),
        ),
        (
            "serial",
            json::string(&std::env::var("GROW_SERIAL").unwrap_or_default()),
        ),
        ("total_wall_ms", json::number(total_ms)),
        ("experiments", json::array(entries)),
    ]);
    if let Err(e) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("BENCH_experiments.json"), doc))
    {
        eprintln!("warning: could not write BENCH_experiments.json: {e}");
    }
}

/// All four registry engines on every selected dataset, dispatched as one
/// `grow_serve` batch: the sweep definition is a job list, preparation is
/// shared per dataset through the session pool, and the fleet fans across
/// worker threads.
fn engines(ctx: &Context, service: &mut BatchService) -> Table {
    use grow_core::registry::ENGINE_NAMES;
    use grow_core::PartitionStrategy;
    use grow_serve::JobSpec;
    let mut t = Table::new(
        "engines",
        &[
            "dataset",
            "engine",
            "cycles",
            "DRAM MiB",
            "MACs",
            "agg hit rate",
        ],
    );
    let mut jobs = Vec::new();
    for i in 0..ctx.len() {
        let spec = ctx.spec(i);
        for name in ENGINE_NAMES {
            // GROW runs on its partitioned workload, baselines on the
            // original node order (Section VI's setup).
            let strategy = if name == "grow" {
                PartitionStrategy::multilevel_default()
            } else {
                PartitionStrategy::None
            };
            jobs.push(JobSpec::new(spec, ctx.seed, name).with_strategy(strategy));
        }
    }
    eprintln!("[run] engines: one batch of {} jobs", jobs.len());
    for result in service.run_batch(&jobs) {
        let r = result
            .outcome
            .expect("registered engines with default configs");
        t.row(&[
            result.dataset.into(),
            r.engine.into(),
            cell::count(r.total_cycles()),
            cell::mib(r.dram_bytes()),
            cell::count(r.mac_ops()),
            cell::percent(r.aggregation_cache().hit_rate().unwrap_or(0.0)),
        ]);
    }
    t
}

/// The full dataset × engine × partition grid through the batch service
/// in one call: results come back in submission order with per-job
/// status, simulation wall-clock, and cache provenance.
fn sweep(ctx: &Context, service: &mut BatchService) -> Table {
    use grow_core::registry::ENGINE_NAMES;
    use grow_core::PartitionStrategy;
    use grow_serve::grid_jobs;
    let strategies = [
        PartitionStrategy::None,
        PartitionStrategy::multilevel_default(),
        PartitionStrategy::LabelPropagation {
            cluster_nodes: 4096,
        },
    ];
    let partition_label = |s: PartitionStrategy| match s {
        PartitionStrategy::None => "none".to_string(),
        PartitionStrategy::Multilevel { cluster_nodes } => format!("multilevel/{cluster_nodes}"),
        PartitionStrategy::LabelPropagation { cluster_nodes } => {
            format!("label-prop/{cluster_nodes}")
        }
    };
    let specs: Vec<_> = (0..ctx.len()).map(|i| ctx.spec(i)).collect();
    let jobs = grid_jobs(&specs, ctx.seed, &ENGINE_NAMES, &strategies);
    eprintln!(
        "[run] sweep: {} datasets x {} engines x {} partitions = {} jobs",
        specs.len(),
        ENGINE_NAMES.len(),
        strategies.len(),
        jobs.len()
    );
    let results = service.run_batch(&jobs);
    let mut t = Table::new(
        "sweep",
        &[
            "dataset",
            "engine",
            "partition",
            "status",
            "cycles",
            "DRAM MiB",
            "sim ms",
        ],
    );
    for result in &results {
        let partition = partition_label(jobs[result.index].strategy);
        match &result.outcome {
            Ok(r) => t.row(&[
                result.dataset.into(),
                result.engine.clone(),
                partition,
                if result.cache_hit {
                    "ok (cached)"
                } else {
                    "ok"
                }
                .into(),
                cell::count(r.total_cycles()),
                cell::mib(r.dram_bytes()),
                result
                    .wall_ms
                    .map_or_else(|| "-".to_string(), |ms| format!("{ms:.1}")),
            ]),
            Err(e) => t.row(&[
                result.dataset.into(),
                result.engine.clone(),
                partition,
                format!("error: {e}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    let stats = service.stats();
    eprintln!(
        "[run] sweep: {} simulations, {} preparations, {} pooled sessions",
        stats.simulations_run,
        stats.preparations_run,
        service.pooled_sessions()
    );
    t
}

/// The always-on serving demo: drives an `AsyncService` (worker-pool
/// size from `--workers`) over a small mixed fleet — priority classes,
/// a repeated query, a failing job — through **two service lifetimes**
/// sharing one on-disk `ResultStore` under `<out>/store`. The first
/// lifetime computes and persists and must record at least one
/// cross-job plan-cache hit (two grow configurations share a session,
/// so the second skips its plan pass); the second lifetime must run
/// **zero** simulations, serving every report from disk bit-identically
/// (the process exits non-zero otherwise, which makes this the CI smoke
/// assertion for the store and the plan cache).
fn serve_demo(ctx: &Context, out_dir: &std::path::Path) -> Table {
    use grow_core::registry::ENGINE_NAMES;
    use grow_core::PartitionStrategy;
    use grow_serve::{AsyncConfig, AsyncService, JobSpec, Priority, ResultStore, Ticket};

    let spec = ctx.spec(0);
    let mut jobs: Vec<(JobSpec, Priority)> = Vec::new();
    for name in ENGINE_NAMES {
        let strategy = if name == "grow" {
            PartitionStrategy::multilevel_default()
        } else {
            PartitionStrategy::None
        };
        jobs.push((
            JobSpec::new(spec, ctx.seed, name).with_strategy(strategy),
            Priority::Normal,
        ));
    }
    // A repeated query (a cache hit within the lifetime), an interactive
    // high-priority configuration, and a bad job that must fail alone.
    jobs.push((jobs[0].0.clone(), Priority::Low));
    jobs.push((
        JobSpec::new(spec, ctx.seed, "grow")
            .with_strategy(PartitionStrategy::multilevel_default())
            .with_override("runahead", "8"),
        Priority::High,
    ));
    jobs.push((JobSpec::new(spec, ctx.seed, "npu"), Priority::Normal));

    // A fresh store every invocation: a stale store from a previous run
    // would serve lifetime 1 entirely from disk and starve the
    // plan-cache assertion below (the two-lifetime persistence contract
    // lives within one invocation).
    let store_dir = out_dir.join("store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut t = Table::new(
        "serve_demo",
        &["lifetime", "engine", "priority", "status", "sim ms"],
    );
    let mut first_reports: Vec<Option<grow_core::RunReport>> = Vec::new();
    for lifetime in 1..=2u32 {
        let store = ResultStore::open(&store_dir).expect("open result store");
        let service = AsyncService::start(
            grow_serve::BatchService::new().with_store(store),
            AsyncConfig {
                queue_capacity: 64,
                session_capacity: Some(4),
                workers: ctx.workers,
            },
        );
        let started = std::time::Instant::now();
        let tickets: Vec<Ticket> = jobs
            .iter()
            .map(|(job, priority)| {
                service
                    .submit_with(job.clone(), *priority)
                    .expect("fleet fits the admission bound")
            })
            .collect();
        let results: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("serving worker alive"))
            .collect();
        let fleet_ms = started.elapsed().as_secs_f64() * 1e3;
        let batch = service.finish();
        let stats = batch.stats();
        eprintln!(
            "[run] serve_demo lifetime {lifetime}: {} simulations, {} store hits, \
             {} cache hits, {} plan-cache hits, {} failed, peak {} in flight, \
             fleet {fleet_ms:.1} ms",
            stats.simulations_run,
            stats.store_hits,
            stats.cache_hits,
            stats.plan_cache_hits,
            stats.jobs_failed,
            stats.jobs_in_flight_peak
        );
        for ((job, priority), r) in jobs.iter().zip(&results) {
            let status = match (&r.outcome, r.cache_hit) {
                (Err(e), _) => format!("error: {e}"),
                (Ok(_), true) => "ok (served)".into(),
                (Ok(_), false) => "ok (computed)".into(),
            };
            t.row(&[
                lifetime.to_string(),
                job.engine.clone(),
                format!("{priority:?}"),
                status,
                r.wall_ms
                    .map_or_else(|| "-".to_string(), |ms| format!("{ms:.1}")),
            ]);
        }
        if lifetime == 1 {
            first_reports = results.iter().map(|r| r.report().cloned()).collect();
            // The cross-job plan cache, asserted end to end: the two
            // distinct grow configurations share one session and one
            // engine family, so the second simulation must have skipped
            // its plan pass.
            if stats.plan_cache_hits == 0 {
                eprintln!(
                    "error: serve_demo lifetime 1 recorded no plan-cache hits; the \
                     cross-job plan cache is not being shared"
                );
                std::process::exit(1);
            }
        } else {
            // The store contract, asserted end to end: a fresh process
            // lifetime serves the whole fleet from disk, bit-identically.
            if stats.simulations_run != 0 {
                eprintln!(
                    "error: serve_demo lifetime 2 ran {} simulations; every job \
                     should have been served from the on-disk store",
                    stats.simulations_run
                );
                std::process::exit(1);
            }
            let identical = results
                .iter()
                .zip(&first_reports)
                .all(|(r, first)| r.report() == first.as_ref());
            if !identical {
                eprintln!("error: serve_demo store round-trip was not bit-identical");
                std::process::exit(1);
            }
        }
    }
    t
}

/// The supervised-serving chaos soak (the robustness CI smoke): an
/// 18-job mixed fleet runs once fault-free as the baseline, then three
/// more rounds under a cycling grid of transient `fault=` injections
/// (DRAM issue, plan/replay hand-off, scheduler dispatch, store
/// read/write — both `error` and `panic` actions). Every ticket must
/// resolve, no pool worker may die, every post-retry report must be
/// bit-identical to the fault-free baseline, at least 50 faults must
/// actually have fired, and the store scrubber must reclaim the torn
/// writes the `store_write` faults left behind. With `--workers` >= 2
/// the soak adds a pool-degradation phase: a `worker:panic:k` kill
/// takes out exactly one worker mid-fleet, the service must keep
/// serving on the survivors, record the casualty, and the re-served
/// fleet must still match the baseline bit for bit. Any violation
/// exits non-zero.
fn chaos(ctx: &Context, out_dir: &std::path::Path) -> Table {
    use grow_core::registry::ENGINE_NAMES;
    use grow_core::PartitionStrategy;
    use grow_serve::{AsyncConfig, AsyncService, JobSpec, Priority, ResultStore, Ticket};
    use grow_sim::fault;

    // Transient specs only: every `attempts` bound sits below the
    // default retry budget (3), `store_write` faults are warning-only,
    // and a `store_read` fault degrades to a cache miss — so each
    // faulted job still retries to a fault-free final attempt. The
    // `sched` site only has trip points in the e2e dispatch loop, so it
    // fires on the two `exec=e2e` jobs and arms harmlessly elsewhere.
    // The permanent shapes (`store_read:panic`) are covered by
    // `tests/fault_injection.rs`, not the identity soak; the `worker`
    // kill site gets its own degradation phase below.
    const FAULT_GRID: [&str; 11] = [
        "dram:error:1:2",
        "dram:panic:1:2",
        "exec:error:1:2",
        "exec:panic:1:2",
        "sched:error:1:2",
        "sched:panic:1:2",
        "dram:error:2:2",
        "exec:error:2:2",
        "dram:panic:2:2+store_write:error:1",
        "store_write:panic:1",
        "store_read:error:1+store_write:error:1",
    ];
    const ROUNDS: u32 = 3;

    let spec = ctx.spec(0);
    let multilevel = PartitionStrategy::multilevel_default();
    let mut jobs: Vec<(JobSpec, Priority)> = Vec::new();
    for name in ENGINE_NAMES {
        for strategy in [PartitionStrategy::None, multilevel] {
            jobs.push((
                JobSpec::new(spec, ctx.seed, name).with_strategy(strategy),
                Priority::Normal,
            ));
        }
        jobs.push((
            JobSpec::new(spec, ctx.seed, name).with_override("shard_rows", "64"),
            Priority::Low,
        ));
    }
    jobs.push((
        JobSpec::new(spec, ctx.seed, "grow")
            .with_strategy(multilevel)
            .with_scheduler(grow_core::SchedulerKind::WorkStealing)
            .with_pes(8),
        Priority::High,
    ));
    jobs.push((
        JobSpec::new(spec, ctx.seed, "grow")
            .with_strategy(multilevel)
            .with_override("runahead", "8"),
        Priority::High,
    ));
    jobs.push((
        JobSpec::new(spec, ctx.seed, "grow")
            .with_strategy(multilevel)
            .with_override("hdn_cache_kb", "64"),
        Priority::Normal,
    ));
    jobs.push((
        JobSpec::new(spec, ctx.seed, "grow").with_override("exec", "e2e"),
        Priority::Normal,
    ));
    jobs.push((
        JobSpec::new(spec, ctx.seed, "gcnax").with_override("exec", "e2e"),
        Priority::Low,
    ));
    jobs.push((
        JobSpec::new(spec, ctx.seed, "gamma").with_pes(4),
        Priority::Normal,
    ));
    assert_eq!(jobs.len(), 18, "the chaos fleet is 18 jobs");

    // A fresh store every invocation: stale entries from a previous run
    // would turn injection rounds into store hits and starve the soak.
    let store_dir = out_dir.join("chaos_store");
    let _ = std::fs::remove_dir_all(&store_dir);

    let mut t = Table::new(
        "chaos",
        &[
            "round",
            "faults",
            "ok",
            "retries",
            "panics",
            "injected",
            "identical",
        ],
    );
    // Dozens of injected panics are caught and retried below; the
    // default hook would flood stderr with a backtrace for each one, so
    // filter them out — genuine panics still print through the saved
    // hook.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let injected = payload.downcast_ref::<fault::SimFault>().is_some()
            || payload
                .downcast_ref::<&str>()
                .is_some_and(|m| m.starts_with("injected "))
            || payload
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("injected "));
        if !injected {
            default_hook(info);
        }
    }));
    let injected_before = fault::injected_total();
    let mut baseline: Vec<Option<grow_core::RunReport>> = Vec::new();
    for round in 0..=ROUNDS {
        // Round 0 is the fault-free baseline; later rounds cycle each
        // job through the grid (offset by round, so every job sees
        // three different fault shapes across the soak).
        let round_jobs: Vec<(JobSpec, Priority)> = jobs
            .iter()
            .enumerate()
            .map(|(i, (job, priority))| {
                let job = if round == 0 {
                    job.clone()
                } else {
                    let spec_text = FAULT_GRID[(i + round as usize - 1) % FAULT_GRID.len()];
                    job.clone().with_fault(spec_text)
                };
                (job, *priority)
            })
            .collect();

        let store = ResultStore::open(&store_dir).expect("open chaos store");
        let service = AsyncService::start(
            grow_serve::BatchService::new().with_store(store),
            AsyncConfig {
                queue_capacity: 64,
                session_capacity: Some(4),
                workers: ctx.workers,
            },
        );
        let tickets: Vec<Ticket> = round_jobs
            .iter()
            .map(|(job, priority)| {
                service
                    .submit_with(job.clone(), *priority)
                    .expect("fleet fits the admission bound")
            })
            .collect();
        let mut results = Vec::new();
        for ticket in tickets {
            match ticket.wait() {
                Ok(result) => results.push(result),
                Err(e) => {
                    eprintln!("error: chaos round {round}: wedged ticket ({e})");
                    std::process::exit(1);
                }
            }
        }
        let (batch, report) = service.finish_report();
        if report.worker_panicked || !report.casualties.is_empty() {
            eprintln!(
                "error: chaos round {round}: worker died ({} casualties)",
                report.casualties.len()
            );
            std::process::exit(1);
        }
        let stats = batch.stats();
        let ok = results.iter().filter(|r| r.outcome.is_ok()).count();
        if ok != results.len() {
            for r in &results {
                if let Err(e) = &r.outcome {
                    eprintln!(
                        "error: chaos round {round}: job {} ({}) failed: {e}",
                        r.index, r.engine,
                    );
                }
            }
            std::process::exit(1);
        }
        let identical = if round == 0 {
            baseline = results.iter().map(|r| r.report().cloned()).collect();
            true
        } else {
            results
                .iter()
                .zip(&baseline)
                .all(|(r, first)| r.report() == first.as_ref())
        };
        if !identical {
            eprintln!("error: chaos round {round}: post-retry reports diverged from baseline");
            std::process::exit(1);
        }
        t.row(&[
            round.to_string(),
            if round == 0 {
                "off".into()
            } else {
                "grid".into()
            },
            format!("{ok}/{}", results.len()),
            stats.retries.to_string(),
            stats.panics_caught.to_string(),
            (fault::injected_total() - injected_before).to_string(),
            "yes".into(),
        ]);
    }

    // Pool-degradation phase (multi-worker runs only): every fleet job
    // is poisoned with `worker:panic:k`, which kills exactly pool worker
    // `k` the moment *it* picks any of them up — every other worker
    // serves the same jobs unharmed. The service must degrade to the
    // survivors, record the orphaned submissions as casualties, re-serve
    // them on resubmission, and still match the fault-free baseline bit
    // for bit.
    if ctx.workers >= 2 {
        let victim = 2usize;
        let kill_spec = format!("worker:panic:{victim}");
        let store = ResultStore::open(&store_dir).expect("open chaos store");
        let service = AsyncService::start(
            grow_serve::BatchService::new().with_store(store),
            AsyncConfig {
                queue_capacity: 64,
                session_capacity: Some(4),
                workers: ctx.workers,
            },
        );
        let poisoned: Vec<(JobSpec, Priority)> = jobs
            .iter()
            .map(|(job, priority)| (job.clone().with_fault(&kill_spec), *priority))
            .collect();
        let tickets: Vec<Ticket> = poisoned
            .iter()
            .map(|(job, priority)| {
                service
                    .submit_with(job.clone(), *priority)
                    .expect("fleet fits the admission bound")
            })
            .collect();
        let mut results: Vec<Option<grow_serve::JobResult>> =
            tickets.into_iter().map(|t| t.wait().ok()).collect();
        let orphaned = results.iter().filter(|r| r.is_none()).count();
        // The victim may have sat out the whole drain; feed it poisoned
        // work until it bites (bounded — this resolves in one or two
        // pickups in practice).
        let mut baits = 0usize;
        let mut bait_casualties = 0usize;
        while service.workers_alive() == ctx.workers && baits < 100 {
            baits += 1;
            let bait = jobs[baits % jobs.len()].0.clone().with_fault(&kill_spec);
            if service.submit(bait).expect("admitted").wait().is_err() {
                bait_casualties += 1;
            }
        }
        if service.workers_alive() != ctx.workers - 1 {
            eprintln!(
                "error: chaos degradation: expected {} of {} workers alive, saw {}",
                ctx.workers - 1,
                ctx.workers,
                service.workers_alive()
            );
            std::process::exit(1);
        }
        // Re-serve the orphans on the degraded pool; the victim is dead,
        // so the kill spec is now inert.
        for (slot, (job, priority)) in results.iter_mut().zip(&poisoned) {
            if slot.is_none() {
                let result = service
                    .submit_with(job.clone(), *priority)
                    .expect("degraded pool still admits")
                    .wait()
                    .expect("survivors keep serving");
                *slot = Some(result);
            }
        }
        let (_, report) = service.finish_report();
        let casualties = orphaned + bait_casualties;
        if !report.worker_panicked || report.casualties.len() != casualties {
            eprintln!(
                "error: chaos degradation: expected a panicked worker with {} casualties, \
                 saw panicked={} casualties={}",
                casualties,
                report.worker_panicked,
                report.casualties.len()
            );
            std::process::exit(1);
        }
        let identical = results
            .iter()
            .zip(&baseline)
            .all(|(r, first)| r.as_ref().and_then(|r| r.report()) == first.as_ref());
        if !identical {
            eprintln!("error: chaos degradation: degraded-pool reports diverged from baseline");
            std::process::exit(1);
        }
        t.row(&[
            "degrade".into(),
            kill_spec,
            format!("{}/{}", results.len(), results.len()),
            "-".into(),
            "-".into(),
            format!("{casualties} casualties"),
            "yes".into(),
        ]);
        eprintln!(
            "[run] chaos degradation: worker {victim} of {} killed, {casualties} casualties \
             re-served on the survivors, reports identical",
            ctx.workers
        );
    }

    let _ = std::panic::take_hook();

    let injected = fault::injected_total() - injected_before;
    if injected < 50 {
        eprintln!("error: chaos soak injected only {injected} faults (floor: 50)");
        std::process::exit(1);
    }

    // The scrubber reclaims what the torn writes left behind: every
    // `store_write` fault orphaned a `*.tmp<pid>` file next to the
    // entries. After the scrub the store is all live entries again.
    let mut store = ResultStore::open(&store_dir).expect("reopen chaos store");
    let scrub = store.scrub().expect("scrub chaos store");
    eprintln!(
        "[run] chaos scrub: {} live, {} quarantined, {} tmp removed, {} skipped \
         ({injected} faults injected over {ROUNDS} rounds)",
        scrub.live, scrub.quarantined, scrub.tmp_removed, scrub.skipped
    );
    if scrub.tmp_removed == 0 {
        eprintln!("error: chaos scrub found no orphaned tmp files; store_write faults misfired");
        std::process::exit(1);
    }
    t.row(&[
        "scrub".into(),
        "-".into(),
        format!("{} live", scrub.live),
        "-".into(),
        "-".into(),
        format!("{} tmp", scrub.tmp_removed),
        "yes".into(),
    ]);
    t
}

/// Runs the three-configuration comparison once per dataset, memoized
/// across the figures that share it.
struct SpeedupCache {
    rows: Vec<Option<SpeedupRow>>,
}

impl SpeedupCache {
    fn new(n: usize) -> Self {
        SpeedupCache {
            rows: vec![None; n],
        }
    }

    fn row(&mut self, ctx: &mut Context, i: usize) -> &SpeedupRow {
        if self.rows[i].is_none() {
            let eval = ctx.eval(i);
            eprintln!(
                "[run] {}: GCNAX / GROW w-o G.P. / GROW with G.P.",
                eval.key.name()
            );
            self.rows[i] = Some(experiments::speedup_row(
                eval,
                &GrowConfig::default(),
                &GcnaxEngine::default(),
            ));
        }
        self.rows[i].as_ref().expect("just computed")
    }
}

fn table1(ctx: &mut Context) -> Table {
    let mut t = Table::new(
        "table1",
        &[
            "dataset",
            "nodes",
            "edges",
            "avg-deg",
            "deg(paper)",
            "density-A",
            "X0-density",
            "X1-density",
            "alpha",
        ],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        let g = &eval.workload.graph;
        let spec = &eval.workload.spec;
        let alpha = stats::power_law_alpha(g, (g.avg_degree() as usize).max(2))
            .map(|a| format!("{a:.2}"))
            .unwrap_or_else(|| "-".into());
        t.row(&[
            eval.key.name().into(),
            g.nodes().to_string(),
            cell::count(g.directed_edges() as u64),
            format!("{:.1}", g.avg_degree()),
            format!("{:.1}", spec.avg_degree),
            format!("{:.2e}", g.adjacency_density()),
            cell::percent(eval.workload.layers[0].x.density()),
            cell::percent(eval.workload.layers[1].x.density()),
            alpha,
        ]);
    }
    t
}

fn fig2(ctx: &mut Context) -> Table {
    let mut t = Table::new(
        "fig2",
        &["dataset", "MACs A(XW)", "MACs (AX)W", "(AX)W / A(XW)"],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        let l = &eval.workload.layers[0];
        let counts = analysis::gcn_mac_counts(&eval.base.adjacency, &l.x.view(), l.f_out);
        t.row(&[
            eval.key.name().into(),
            cell::count(counts.a_xw),
            cell::count(counts.ax_w),
            cell::ratio(counts.ratio()),
        ]);
    }
    t
}

fn fig3(ctx: &mut Context) -> Table {
    let mut t = Table::new(
        "fig3",
        &[
            "dataset",
            "density-A",
            "density-X0",
            "density-X1",
            "density-XW",
            "density-W",
        ],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        t.row(&[
            eval.key.name().into(),
            format!("{:.2e}", eval.base.adjacency.density()),
            cell::percent(eval.workload.layers[0].x.density()),
            cell::percent(eval.workload.layers[1].x.density()),
            cell::percent(1.0), // XW is dense (Figure 3(b))
            cell::percent(1.0), // W is dense (Table I)
        ]);
    }
    t
}

fn fig5(ctx: &mut Context) -> Table {
    let mut t = Table::new(
        "fig5",
        &["dataset", "matrix", "1", "2", "3~8", "bucket4", ">last"],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        let a_hist = analysis::tile_nnz_histogram(
            &RowMajorSparse::Pattern(&eval.base.adjacency),
            128,
            128,
            FIG5A_BOUNDS,
        );
        let x_hist =
            analysis::tile_nnz_histogram(&eval.workload.layers[0].x.view(), 128, 128, FIG5B_BOUNDS);
        for (label, hist) in [("A", a_hist), ("X", x_hist)] {
            let f = hist.fractions();
            t.row(&[
                eval.key.name().into(),
                label.into(),
                cell::percent(f[0]),
                cell::percent(f[1]),
                cell::percent(f[2]),
                format!("{} {}", hist.bucket_label(3), cell::percent(f[3])),
                cell::percent(f[4]),
            ]);
        }
    }
    t
}

fn fig6(ctx: &mut Context) -> Table {
    let mut t = Table::new("fig6", &["dataset", "util-A (agg)", "util-X (comb)"]);
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        let r = GcnaxEngine::default().run(&eval.base);
        let agg_util: Vec<f64> = r
            .layers
            .iter()
            .filter_map(|l| {
                l.aggregation
                    .traffic
                    .utilization(grow_sim::TrafficClass::LhsSparse)
            })
            .collect();
        let comb_util: Vec<f64> = r
            .layers
            .iter()
            .filter_map(|l| {
                l.combination
                    .traffic
                    .utilization(grow_sim::TrafficClass::LhsSparse)
            })
            .collect();
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        t.row(&[
            eval.key.name().into(),
            cell::percent(avg(&agg_util)),
            cell::percent(avg(&comb_util)),
        ]);
    }
    t
}

fn fig7(ctx: &mut Context) -> Table {
    let mut t = Table::new("fig7", &["dataset", "aggregation", "combination"]);
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        let r = GcnaxEngine::default().run(&eval.base);
        let agg = r.aggregation_cycles() as f64;
        let total = r.total_cycles() as f64;
        t.row(&[
            eval.key.name().into(),
            cell::percent(agg / total),
            cell::percent(1.0 - agg / total),
        ]);
    }
    t
}

fn fig11(ctx: &mut Context) -> Table {
    let mut t = Table::new(
        "fig11",
        &["dataset", "deg>=bin", "nodes", "top4096-coverage"],
    );
    for i in 0..ctx.len() {
        if ctx.keys[i] != DatasetKey::Reddit && ctx.len() > 1 {
            continue;
        }
        let eval = ctx.eval(i);
        let coverage = stats::top_k_edge_coverage(&eval.workload.graph, 4096);
        for (bin, count) in stats::degree_histogram_log2(&eval.workload.graph) {
            t.row(&[
                eval.key.name().into(),
                bin.to_string(),
                count.to_string(),
                cell::percent(coverage),
            ]);
        }
    }
    t
}

fn fig14(ctx: &mut Context) -> Table {
    // Block-density map after 8-way partitioning (the paper's
    // visualization grain), printed as per-block densities.
    let mut t = Table::new(
        "fig14",
        &["dataset", "block-row", "densities (x1e-3, 8 cols)"],
    );
    for i in 0..ctx.len() {
        if !matches!(
            ctx.keys[i],
            DatasetKey::Reddit | DatasetKey::Yelp | DatasetKey::Pokec | DatasetKey::Amazon
        ) && ctx.len() > 1
        {
            continue;
        }
        let eval = ctx.eval(i);
        let g = &eval.workload.graph;
        let p = multilevel_partition(g, 8, &MultilevelConfig::default());
        let layout = ClusterLayout::from_partitioning(&p);
        let rg = layout.relabel(g);
        let ranges = layout.ranges().to_vec();
        let adj = rg.into_adjacency();
        // Count nnz per block.
        let k = ranges.len();
        let mut counts = vec![vec![0u64; k]; k];
        let block_of = |node: usize| ranges.iter().position(|r| r.contains(&node)).unwrap_or(0);
        for (bi, range) in ranges.iter().enumerate() {
            for r in range.clone() {
                for &c in adj.row_indices(r) {
                    counts[bi][block_of(c as usize)] += 1;
                }
            }
        }
        for (bi, row) in counts.iter().enumerate() {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(bj, &nnz)| {
                    let area = (ranges[bi].len() * ranges[bj].len()) as f64;
                    format!("{:5.2}", 1e3 * nnz as f64 / area)
                })
                .collect();
            t.row(&[eval.key.name().into(), bi.to_string(), cells.join(" ")]);
        }
    }
    t
}

fn fig17(ctx: &mut Context) -> Table {
    let mut cache = SpeedupCache::new(ctx.len());
    let mut t = Table::new(
        "fig17",
        &["dataset", "hit-rate w/o G.P.", "hit-rate with G.P."],
    );
    for i in 0..ctx.len() {
        let row = cache.row(ctx, i);
        let (no_gp, gp) = row.hit_rates();
        t.row(&[row.dataset.into(), cell::percent(no_gp), cell::percent(gp)]);
    }
    t
}

fn fig18(ctx: &mut Context) -> Table {
    let mut cache = SpeedupCache::new(ctx.len());
    let mut t = Table::new(
        "fig18",
        &[
            "dataset",
            "GCNAX",
            "GROW w/o G.P.",
            "GROW with G.P.",
            "GCNAX MiB",
            "GROW MiB",
        ],
    );
    let mut ratios = Vec::new();
    for i in 0..ctx.len() {
        let row = cache.row(ctx, i);
        ratios.push(1.0 / row.traffic_ratio_gp());
        t.row(&[
            row.dataset.into(),
            "1.00".into(),
            cell::ratio(row.traffic_ratio_no_gp()),
            cell::ratio(row.traffic_ratio_gp()),
            cell::mib(row.gcnax.dram_bytes()),
            cell::mib(row.grow_gp.dram_bytes()),
        ]);
    }
    t.row(&[
        "geomean-reduction".into(),
        "".into(),
        "".into(),
        cell::ratio(geomean(ratios)),
        "".into(),
        "".into(),
    ]);
    t
}

fn fig19(ctx: &mut Context) -> Table {
    let mut t = Table::new(
        "fig19",
        &[
            "dataset",
            "no-cache",
            "w/ HDN caching",
            "w/ HDN caching + G.P.",
        ],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        eprintln!("[run] {}: traffic ablation", eval.key.name());
        let TrafficAblation {
            no_cache,
            cache,
            cache_gp,
        } = experiments::traffic_ablation(eval, &GrowConfig::default());
        // Normalized to no-cache, reported as reduction factors (higher is
        // better, as in Figure 19).
        t.row(&[
            eval.key.name().into(),
            "1.00".into(),
            cell::ratio(no_cache as f64 / cache as f64),
            cell::ratio(no_cache as f64 / cache_gp as f64),
        ]);
    }
    t
}

fn fig20(ctx: &mut Context) -> Table {
    let mut cache = SpeedupCache::new(ctx.len());
    let mut t = Table::new(
        "fig20",
        &[
            "dataset",
            "speedup w/o G.P.",
            "speedup with G.P.",
            "GCNAX agg%",
            "GROW agg%",
        ],
    );
    let mut speedups = Vec::new();
    for i in 0..ctx.len() {
        let row = cache.row(ctx, i);
        speedups.push(row.speedup_gp());
        let gcnax_agg = row.gcnax.aggregation_cycles() as f64 / row.gcnax.total_cycles() as f64;
        let grow_agg = row.grow_gp.aggregation_cycles() as f64 / row.grow_gp.total_cycles() as f64;
        t.row(&[
            row.dataset.into(),
            cell::ratio(row.speedup_no_gp()),
            cell::ratio(row.speedup_gp()),
            cell::percent(gcnax_agg),
            cell::percent(grow_agg),
        ]);
    }
    t.row(&[
        "geomean".into(),
        "".into(),
        cell::ratio(geomean(speedups)),
        "".into(),
        "".into(),
    ]);
    t
}

fn fig21(ctx: &mut Context) -> Table {
    let mut t = Table::new(
        "fig21",
        &[
            "dataset",
            "HDN cache only",
            "+ runahead",
            "+ graph partition",
        ],
    );
    let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        eprintln!("[run] {}: cumulative ablation", eval.key.name());
        let abl = experiments::speedup_ablation(eval, &GrowConfig::default());
        a.push(abl.hdn_only);
        b.push(abl.plus_runahead);
        c.push(abl.plus_partitioning);
        t.row(&[
            eval.key.name().into(),
            cell::ratio(abl.hdn_only),
            cell::ratio(abl.plus_runahead),
            cell::ratio(abl.plus_partitioning),
        ]);
    }
    t.row(&[
        "geomean".into(),
        cell::ratio(geomean(a)),
        cell::ratio(geomean(b)),
        cell::ratio(geomean(c)),
    ]);
    t
}

fn fig22(ctx: &mut Context) -> Table {
    let mut cache = SpeedupCache::new(ctx.len());
    let model = EnergyModel::default();
    let mut t = Table::new(
        "fig22",
        &[
            "dataset",
            "config",
            "MAC",
            "RF",
            "SRAM",
            "DRAM",
            "leak",
            "total (norm GCNAX)",
        ],
    );
    let mut effs = Vec::new();
    for i in 0..ctx.len() {
        let row = cache.row(ctx, i).clone();
        let gcnax_sram = GcnaxEngine::default().sram_kb();
        let grow_sram = GrowEngine::default().sram_kb();
        let base = model.estimate(&row.gcnax.activity(gcnax_sram)).total();
        for (config, report, sram) in [
            ("GCNAX", &row.gcnax, gcnax_sram),
            ("GROW w/o G.P.", &row.grow_no_gp, grow_sram),
            ("GROW with G.P.", &row.grow_gp, grow_sram),
        ] {
            let counts: ActivityCounts = report.activity(sram);
            let e = model.estimate(&counts);
            let frac = e.fractions();
            t.row(&[
                row.dataset.into(),
                config.into(),
                cell::percent(frac[0]),
                cell::percent(frac[1]),
                cell::percent(frac[2]),
                cell::percent(frac[3]),
                cell::percent(frac[4]),
                cell::ratio(e.total() / base),
            ]);
            if config == "GROW with G.P." {
                effs.push(base / e.total());
            }
        }
    }
    t.row(&[
        "geomean-efficiency".into(),
        "GROW vs GCNAX".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        "".into(),
        cell::ratio(geomean(effs)),
    ]);
    t
}

fn table4() -> Table {
    let model = AreaModel::default();
    let grow65 = model.grow_default_65nm();
    let grow40 = grow65.scaled(TECH_SCALE_65_TO_40);
    let mut t = Table::new(
        "table4",
        &["component", "40nm est (mm2)", "65nm meas (mm2)"],
    );
    for ((name, a65), (_, a40)) in grow65.components.iter().zip(&grow40.components) {
        t.row(&[(*name).into(), format!("{a40:.3}"), format!("{a65:.3}")]);
    }
    t.row(&[
        "Total".into(),
        format!("{:.3}", grow40.total()),
        format!("{:.3}", grow65.total()),
    ]);
    t.row(&[
        "GCNAX total".into(),
        format!("{GCNAX_AREA_40NM:.2}"),
        "-".into(),
    ]);
    t
}

/// The scheduler-axis extension of Figure 24, executed *end-to-end*: all
/// four engines × every scheduler (`rr`/`lpt`/`ws`/`ca`) × 1–16 PEs,
/// dispatched through the batch service with `exec=e2e` so the multi-PE
/// contention model runs inside the execution loop and the reported cycle
/// counts are the multi-PE truth. Each cell reports the end-to-end
/// cycles, the speedup over round-robin at the same PE count, and the
/// load-imbalance ratio; the machine-readable summary in
/// `<out>/BENCH_figure24.json` additionally carries every cell's
/// per-layer multi-PE breakdown (per-phase makespan and per-PE busy
/// cycles).
fn figure24(ctx: &Context, service: &mut BatchService, out_dir: &std::path::Path) -> Table {
    use grow_core::registry::ENGINE_NAMES;
    use grow_core::{ExecModelKind, PartitionStrategy};
    use grow_serve::scheduler_grid_jobs;
    let pe_counts = [1usize, 2, 4, 8, 16];
    let specs: Vec<_> = (0..ctx.len()).map(|i| ctx.spec(i)).collect();
    // Finer clusters than the Table III default so every dataset has
    // real scheduling freedom (the default 4096-node grain leaves small
    // surrogates as a handful of clusters that any policy assigns alike).
    let strategy = PartitionStrategy::Multilevel { cluster_nodes: 256 };
    let mut jobs = Vec::new();
    for engine in ENGINE_NAMES {
        jobs.extend(
            scheduler_grid_jobs(
                &specs,
                ctx.seed,
                engine,
                strategy,
                &grow_core::SchedulerKind::ALL,
                &pe_counts,
            )
            .into_iter()
            .map(|job| {
                job.with_exec_model(ExecModelKind::EndToEnd)
                    .with_channels(ctx.channels)
                    .with_banks(ctx.banks)
            }),
        );
    }
    eprintln!(
        "[run] figure24 (exec=e2e, channels={} banks={}): {} datasets x {} engines x {} PE counts x {} schedulers = {} jobs",
        ctx.channels,
        ctx.banks,
        specs.len(),
        ENGINE_NAMES.len(),
        pe_counts.len(),
        grow_core::SchedulerKind::ALL.len(),
        jobs.len()
    );
    let results = service.run_batch(&jobs);

    // Round-robin baselines per (dataset, engine, pes) for the speedup
    // column — under e2e the makespan IS the end-to-end cycle count.
    let mut rr_cycles: std::collections::HashMap<(&str, &str, usize), f64> =
        std::collections::HashMap::new();
    for result in &results {
        let report = result.report().expect("registered engines and schedulers");
        let summary = report.multi_pe.as_ref().expect("summary attached");
        if summary.scheduler == "rr" {
            rr_cycles.insert(
                (result.dataset, report.engine, summary.pes),
                summary.makespan,
            );
        }
    }

    let mut t = Table::new(
        "figure24",
        &[
            "dataset",
            "engine",
            "pes",
            "scheduler",
            "cycles",
            "speedup-vs-rr",
            "imbalance",
        ],
    );
    let mut json_rows = Vec::new();
    for result in &results {
        let report = result.report().expect("validated jobs");
        let summary = report.multi_pe.as_ref().expect("summary attached");
        let breakdown = report
            .multi_pe_breakdown()
            .expect("e2e runs carry per-layer breakdowns");
        let rr = rr_cycles[&(result.dataset, report.engine, summary.pes)];
        let speedup = if summary.makespan > 0.0 {
            rr / summary.makespan
        } else {
            1.0
        };
        t.row(&[
            result.dataset.into(),
            report.engine.into(),
            summary.pes.to_string(),
            summary.scheduler.into(),
            cell::count(report.total_cycles()),
            cell::ratio(speedup),
            cell::ratio(summary.imbalance),
        ]);
        let layers: Vec<String> = breakdown
            .layers
            .iter()
            .enumerate()
            .map(|(li, layer)| {
                let phase = |name: &str, pe: &grow_core::PhasePeBusy| {
                    grow_bench::json::object(&[
                        ("phase", grow_bench::json::string(name)),
                        ("makespan", grow_bench::json::number(pe.makespan)),
                        ("cluster_time", grow_bench::json::number(pe.cluster_time)),
                        (
                            "per_pe_busy",
                            grow_bench::json::array(
                                pe.per_pe_busy
                                    .iter()
                                    .map(|&b| grow_bench::json::number(b))
                                    .collect(),
                            ),
                        ),
                    ])
                };
                grow_bench::json::object(&[
                    ("layer", grow_bench::json::uint(li as u64)),
                    ("combination", phase("combination", &layer.combination)),
                    ("aggregation", phase("aggregation", &layer.aggregation)),
                ])
            })
            .collect();
        json_rows.push(grow_bench::json::object(&[
            ("dataset", grow_bench::json::string(result.dataset)),
            ("engine", grow_bench::json::string(report.engine)),
            ("pes", grow_bench::json::uint(summary.pes as u64)),
            ("scheduler", grow_bench::json::string(summary.scheduler)),
            ("exec", grow_bench::json::string(report.exec)),
            ("cycles", grow_bench::json::uint(report.total_cycles())),
            ("imbalance", grow_bench::json::number(summary.imbalance)),
            ("speedup_vs_rr", grow_bench::json::number(speedup)),
            ("layers", grow_bench::json::array(layers)),
        ]));
    }
    let doc = grow_bench::json::object(&[
        ("source", grow_bench::json::string("experiments")),
        ("exec", grow_bench::json::string("e2e")),
        ("seed", grow_bench::json::uint(ctx.seed)),
        ("channels", grow_bench::json::uint(ctx.channels as u64)),
        ("banks", grow_bench::json::uint(ctx.banks as u64)),
        ("rows", grow_bench::json::array(json_rows)),
    ]);
    if let Err(e) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("BENCH_figure24.json"), doc))
    {
        eprintln!("warning: could not write BENCH_figure24.json: {e}");
    }
    t
}

fn fig24(ctx: &mut Context) -> Table {
    let pes = [1usize, 2, 4, 8, 16];
    let mut t = Table::new(
        "fig24",
        &["dataset", "1 PE", "2 PE", "4 PE", "8 PE", "16 PE"],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        eprintln!("[run] {}: PE scaling", eval.key.name());
        let curve = experiments::pe_scaling(eval, &pes);
        let mut cells = vec![eval.key.name().to_string()];
        cells.extend(curve.iter().map(|p| cell::ratio(p.normalized_throughput)));
        t.row(&cells);
    }
    t
}

fn fig25a(ctx: &mut Context) -> Table {
    let degrees = [1usize, 2, 4, 8, 16, 32];
    let mut t = Table::new(
        "fig25a",
        &[
            "dataset", "1-way", "2-way", "4-way", "8-way", "16-way", "32-way",
        ],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        eprintln!("[run] {}: runahead sweep", eval.key.name());
        let sweep = experiments::runahead_sweep(eval, &degrees);
        let base = sweep[0].1 as f64;
        let mut cells = vec![eval.key.name().to_string()];
        cells.extend(sweep.iter().map(|&(_, cyc)| cell::ratio(base / cyc as f64)));
        t.row(&cells);
    }
    t
}

fn fig25b(ctx: &mut Context) -> Table {
    let bws = [16.0, 32.0, 64.0, 128.0, 256.0];
    let mut t = Table::new(
        "fig25b",
        &[
            "dataset", "engine", "16GB/s", "32GB/s", "64GB/s", "128GB/s", "256GB/s",
        ],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        eprintln!("[run] {}: bandwidth sweep", eval.key.name());
        let pts = experiments::bandwidth_sweep(eval, &bws);
        // Normalized to each engine's own 64 GB/s point (the paper's
        // presentation).
        let grow_base = pts[2].grow_cycles as f64;
        let gcnax_base = pts[2].gcnax_cycles as f64;
        let mut grow_cells = vec![eval.key.name().to_string(), "GROW".into()];
        grow_cells.extend(
            pts.iter()
                .map(|p| cell::ratio(grow_base / p.grow_cycles as f64)),
        );
        t.row(&grow_cells);
        let mut gcnax_cells = vec![eval.key.name().to_string(), "GCNAX".into()];
        gcnax_cells.extend(
            pts.iter()
                .map(|p| cell::ratio(gcnax_base / p.gcnax_cycles as f64)),
        );
        t.row(&gcnax_cells);
    }
    t
}

fn fig26(ctx: &mut Context) -> Table {
    let mut t = Table::new(
        "fig26",
        &[
            "dataset",
            "GCNAX",
            "MatRaptor",
            "GAMMA",
            "GROW",
            "traffic vs MatRaptor",
            "traffic vs GAMMA",
        ],
    );
    let (mut s_mat, mut s_gam, mut t_mat, mut t_gam) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        eprintln!("[run] {}: MatRaptor/GAMMA comparison", eval.key.name());
        let c = experiments::spsp_comparison(eval);
        let grow = c.grow.total_cycles() as f64;
        let speedup = |r: &grow_core::RunReport| r.total_cycles() as f64 / grow;
        let traffic = |r: &grow_core::RunReport| r.dram_bytes() as f64 / c.grow.dram_bytes() as f64;
        s_mat.push(speedup(&c.matraptor));
        s_gam.push(speedup(&c.gamma));
        t_mat.push(traffic(&c.matraptor));
        t_gam.push(traffic(&c.gamma));
        t.row(&[
            eval.key.name().into(),
            cell::ratio(speedup(&c.gcnax)),
            cell::ratio(speedup(&c.matraptor)),
            cell::ratio(speedup(&c.gamma)),
            "1.00".into(),
            cell::ratio(traffic(&c.matraptor)),
            cell::ratio(traffic(&c.gamma)),
        ]);
    }
    t.row(&[
        "geomean (GROW speedup over)".into(),
        "".into(),
        cell::ratio(geomean(s_mat)),
        cell::ratio(geomean(s_gam)),
        "".into(),
        cell::ratio(geomean(t_mat)),
        cell::ratio(geomean(t_gam)),
    ]);
    t
}

fn extensions(ctx: &mut Context) -> Table {
    // Section VIII: advanced aggregation functions on the same dataflow.
    use grow_core::extensions::{run_with_aggregation, AggregationKind};
    let variants: [(&str, AggregationKind); 5] = [
        ("gcn-sum", AggregationKind::GcnSum),
        (
            "sage-mean-25",
            AggregationKind::SageMean { sample: Some(25) },
        ),
        (
            "sage-pool-25",
            AggregationKind::SagePool { sample: Some(25) },
        ),
        ("gin", AggregationKind::Gin),
        ("gat", AggregationKind::Gat),
    ];
    let engine = GrowEngine::default();
    let mut t = Table::new(
        "extensions",
        &[
            "dataset",
            "aggregator",
            "cycles",
            "vs gcn-sum",
            "area overhead",
        ],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        eprintln!("[run] {}: aggregator variants", eval.key.name());
        let base = run_with_aggregation(&engine, &eval.partitioned, AggregationKind::GcnSum);
        for (name, kind) in variants {
            let r = run_with_aggregation(&engine, &eval.partitioned, kind);
            t.row(&[
                eval.key.name().into(),
                name.into(),
                cell::count(r.total_cycles()),
                cell::ratio(r.total_cycles() as f64 / base.total_cycles() as f64),
                cell::percent(kind.area_overhead_fraction()),
            ]);
        }
    }
    t
}

fn nonpowerlaw() -> Table {
    // Section VIII discussion: uniform R-MAT graphs at a few scales.
    let mut t = Table::new(
        "nonpowerlaw",
        &["nodes", "avg-deg", "hit-rate", "speedup vs GCNAX"],
    );
    for (scale, deg) in [(13u32, 8.0f64), (15, 12.0), (16, 20.0)] {
        eprintln!("[run] non-power-law R-MAT scale {scale}");
        let s = experiments::non_power_law_study(scale, deg, 77);
        t.row(&[
            (1usize << scale).to_string(),
            format!("{deg:.0}"),
            cell::percent(s.hit_rate),
            cell::ratio(s.speedup),
        ]);
    }
    t
}

fn preprocessing(ctx: &mut Context) -> Table {
    // Section V-C: one-time graph preprocessing cost, amortized over all
    // future inference runs.
    let mut t = Table::new(
        "preprocessing",
        &["dataset", "nodes", "edges", "partition-time"],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        let d = experiments::preprocessing_cost(&eval.workload);
        t.row(&[
            eval.key.name().into(),
            eval.workload.graph.nodes().to_string(),
            cell::count(eval.workload.graph.directed_edges() as u64),
            format!("{:.2?}", d),
        ]);
    }
    t
}

fn replacement(ctx: &mut Context) -> Table {
    let mut t = Table::new(
        "replacement",
        &[
            "dataset",
            "pinned cycles",
            "LRU cycles",
            "pinned hit",
            "LRU hit",
            "pinned speedup",
        ],
    );
    for i in 0..ctx.len() {
        let eval = ctx.eval(i);
        eprintln!("[run] {}: replacement policy study", eval.key.name());
        let s = experiments::replacement_study(eval);
        t.row(&[
            eval.key.name().into(),
            cell::count(s.pinned_cycles),
            cell::count(s.lru_cycles),
            cell::percent(s.pinned_hit_rate),
            cell::percent(s.lru_hit_rate),
            cell::ratio(s.lru_cycles as f64 / s.pinned_cycles as f64),
        ]);
    }
    t
}
