//! [`ResultStore`] — the cross-process, on-disk report cache of the
//! serving layer.
//!
//! Completed [`RunReport`]s are persisted under a store directory
//! (`results/store/` by convention), one file per canonical
//! [`JobKey`](crate::JobKey), so repeated fleet-wide queries are cache
//! hits *across service restarts*: a fresh
//! [`BatchService`](crate::BatchService) or
//! [`AsyncService`](crate::AsyncService) pointed at the same directory
//! serves the whole fleet without running a single simulation.
//!
//! The format is the same std-only machinery the golden snapshots use — a
//! versioned, line-oriented text rendering of every report field, one
//! counter per token. `u64` counters render exactly; `f64` fields use
//! Rust's shortest round-trip formatting, so a parsed report is
//! **bit-identical** to the one persisted. Files are written to a
//! temporary name and renamed into place, so concurrent processes never
//! observe a half-written entry.
//!
//! Trust boundary: files that fail to parse — truncated writes, foreign
//! bytes, stale formats — are *quarantined* (renamed to `*.corrupt`) and
//! reported as misses, never served. Only successful reports are ever
//! persisted; failed jobs have no representation here.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use grow_core::registry;
use grow_core::{
    ClusterProfile, LayerReport, MultiPeSummary, PhaseKind, PhasePeBusy, PhaseReport, RunReport,
    SchedulerKind,
};
use grow_sim::fault::{self, FaultSite};
use grow_sim::{CacheStats, TrafficClass, TrafficStats};

use crate::batch::JobKey;

/// Format tag of the current store layout; bump on incompatible changes
/// (old entries then quarantine on first touch and are recomputed).
const FORMAT_HEADER: &str = "grow-store v1";

/// Extension of live entries.
const ENTRY_EXT: &str = "report";

/// Counters of one store's lifetime (per process; the directory itself is
/// shared across processes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries served (parsed and key-verified).
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Reports written.
    pub persisted: u64,
    /// Unreadable/corrupt entries renamed to `*.corrupt` and skipped.
    pub quarantined: u64,
}

/// Outcome of a full-store audit — see [`ResultStore::scrub`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Entries that parsed, named this build's registry, and live at the
    /// path their embedded key hashes to.
    pub live: u64,
    /// Entries quarantined by this scrub (renamed to `*.corrupt`).
    pub quarantined: u64,
    /// Orphaned temporary files removed — the residue of a writer that
    /// died between `write` and `rename`.
    pub tmp_removed: u64,
    /// Other files left untouched (earlier `*.corrupt` evidence,
    /// subdirectories, foreign files).
    pub skipped: u64,
}

/// An on-disk [`RunReport`] cache keyed by canonical [`JobKey`]. See the
/// [module docs](self) for the format and trust model.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    stats: StoreStats,
}

impl ResultStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error from creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            stats: StoreStats::default(),
        })
    }

    /// The conventional store location, `results/store/`, relative to the
    /// working directory.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results").join("store")
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This process's lifetime counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Number of live entries currently on disk (quarantined files are not
    /// counted).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == ENTRY_EXT))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True when the store holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// File path an entry for `key` lives at: a 128-bit FNV-1a content
    /// hash of the canonical key string (two independent 64-bit streams),
    /// stable across processes and sessions. The full key is embedded in
    /// the entry and verified on load.
    pub fn entry_path(&self, key: &JobKey) -> PathBuf {
        let bytes = key.as_str().as_bytes();
        self.dir.join(format!(
            "{:016x}{:016x}.{ENTRY_EXT}",
            fnv1a64(bytes, 0xcbf2_9ce4_8422_2325),
            fnv1a64(bytes, 0x6c62_272e_07bb_0142)
        ))
    }

    /// Loads the report persisted for `key`, if a valid entry exists.
    /// Entries that fail to parse or that belong to a different key are
    /// quarantined (renamed to `*.corrupt`) and reported as a miss.
    pub fn load(&mut self, key: &JobKey) -> Option<RunReport> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.stats.misses += 1;
                return None;
            }
        };
        // The 'store_read' fault injection site: an injected error makes
        // this entry read as corrupt (quarantine + miss, the job simply
        // recomputes); an injected panic unwinds into the caller's
        // supervisor, which fails the job as StoreCorrupt.
        if fault::check_scoped(FaultSite::StoreRead).is_err() {
            self.quarantine(&path);
            self.stats.misses += 1;
            return None;
        }
        match parse_entry(&text, key) {
            Ok(report) => {
                self.stats.hits += 1;
                Some(report)
            }
            Err(_) => {
                self.quarantine(&path);
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Persists `report` as the entry for `key` (overwriting any previous
    /// entry). The write goes to a temporary file first and is renamed
    /// into place, so a concurrent reader sees either the old entry or the
    /// new one, never a torn write.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error; the store is left without a partial
    /// entry.
    pub fn persist(&mut self, key: &JobKey, report: &RunReport) -> io::Result<()> {
        let path = self.entry_path(key);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        fs::write(&tmp, render_entry(key, report))?;
        // The 'store_write' fault injection site, deliberately placed
        // between write and rename: both the injected error and the
        // injected panic leave the temporary file orphaned — the exact
        // residue of a writer crashing mid-persist, which scrub() removes.
        if let Err(e) = fault::check_scoped(FaultSite::StoreWrite) {
            return Err(io::Error::other(e.to_string()));
        }
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                self.stats.persisted += 1;
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Removes every live entry (quarantined files are kept for
    /// inspection).
    ///
    /// # Errors
    ///
    /// Returns the first filesystem error encountered.
    pub fn clear(&mut self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|x| x == ENTRY_EXT) {
                fs::remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// Audits the whole store directory and repairs what it can:
    ///
    /// * every live `*.report` entry is parsed and its embedded key is
    ///   re-hashed — an entry that is unreadable, malformed, or filed
    ///   under the wrong name (bit rot, a foreign tool, a hash mismatch)
    ///   is quarantined exactly like a failed load;
    /// * orphaned `*.tmpNNN` files — the residue of a writer that died
    ///   between `write` and `rename` — are deleted;
    /// * everything else (earlier `*.corrupt` evidence, subdirectories)
    ///   is left untouched and counted as skipped.
    ///
    /// Deliberately *not* a fault injection point: scrub is the recovery
    /// protocol, so it must work on a store whose jobs are configured to
    /// fail. Directory order is sorted, so repeated scrubs of the same
    /// tree report identically.
    ///
    /// # Errors
    ///
    /// Returns the first filesystem error from listing the directory or
    /// removing a temporary file; quarantine failures are not errors (the
    /// entry is simply counted and retried on the next scrub).
    pub fn scrub(&mut self) -> io::Result<ScrubReport> {
        let mut report = ScrubReport::default();
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        paths.sort();
        for path in paths {
            if !path.is_file() {
                report.skipped += 1;
                continue;
            }
            let ext = path.extension().and_then(|x| x.to_str()).unwrap_or("");
            if ext.starts_with("tmp") {
                fs::remove_file(&path)?;
                report.tmp_removed += 1;
            } else if ext == ENTRY_EXT {
                let verified = fs::read_to_string(&path)
                    .ok()
                    .and_then(|text| parse_entry_any(&text).ok())
                    .is_some_and(|(key, _)| self.entry_path(&key) == path);
                if verified {
                    report.live += 1;
                } else {
                    self.quarantine(&path);
                    report.quarantined += 1;
                }
            } else {
                report.skipped += 1;
            }
        }
        Ok(report)
    }

    fn quarantine(&mut self, path: &Path) {
        // Each corruption of the same key gets its own quarantine file
        // (`.corrupt`, `.corrupt.1`, ...): renaming over an earlier
        // quarantine would silently destroy the evidence it preserves.
        let mut target = {
            let mut t = path.as_os_str().to_owned();
            t.push(".corrupt");
            PathBuf::from(t)
        };
        let mut suffix = 0u32;
        while target.exists() {
            suffix += 1;
            let mut t = path.as_os_str().to_owned();
            t.push(format!(".corrupt.{suffix}"));
            target = PathBuf::from(t);
        }
        if fs::rename(path, &target).is_ok() {
            self.stats.quarantined += 1;
        }
    }
}

/// 64-bit FNV-1a over `bytes` from the given basis (two bases give two
/// independent streams — a cheap, dependency-free 128-bit content hash).
fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Renders the full entry: header, key, and every report field, one
/// counter per token (the golden-snapshot discipline — a diff points at
/// the exact field that moved).
fn render_entry(key: &JobKey, report: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{FORMAT_HEADER}");
    let _ = writeln!(out, "key {}", key.as_str());
    let _ = writeln!(out, "engine {}", report.engine);
    let _ = writeln!(out, "exec {}", report.exec);
    match &report.multi_pe {
        Some(s) => {
            let _ = writeln!(
                out,
                "multi_pe {} {} {} {} {}",
                s.scheduler,
                s.pes,
                f64_token(s.makespan),
                f64_token(s.imbalance),
                f64_list(&s.per_pe_busy)
            );
        }
        None => {
            let _ = writeln!(out, "multi_pe none");
        }
    }
    let _ = writeln!(out, "layers {}", report.layers.len());
    for layer in &report.layers {
        render_phase(&mut out, &layer.combination);
        render_phase(&mut out, &layer.aggregation);
    }
    out
}

fn render_phase(out: &mut String, phase: &PhaseReport) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "phase {:?} {} {} {} {} {}",
        phase.kind,
        phase.cycles,
        phase.compute_busy,
        phase.mac_ops,
        phase.sram_reads_8b,
        phase.sram_writes_8b
    );
    let traffic: Vec<String> = TrafficClass::ALL
        .iter()
        .flat_map(|&class| {
            [
                phase.traffic.useful_bytes(class).to_string(),
                phase.traffic.fetched_bytes(class).to_string(),
                phase.traffic.requests(class).to_string(),
            ]
        })
        .collect();
    let _ = writeln!(out, "traffic {}", traffic.join(" "));
    let _ = writeln!(
        out,
        "cache {} {} {}",
        phase.cache.hits, phase.cache.misses, phase.cache.fills
    );
    let profiles: Vec<String> = phase
        .cluster_profiles
        .iter()
        .flat_map(|p| {
            [
                p.compute_cycles.to_string(),
                p.mem_bytes.to_string(),
                p.cycles.to_string(),
            ]
        })
        .collect();
    let _ = writeln!(out, "profiles {}", profiles.join(" "));
    match &phase.pe {
        Some(pe) => {
            let _ = writeln!(
                out,
                "pe {} {} {}",
                f64_token(pe.makespan),
                f64_token(pe.cluster_time),
                f64_list(&pe.per_pe_busy)
            );
        }
        None => {
            let _ = writeln!(out, "pe none");
        }
    }
}

/// `f64` as a single token. Rust's default formatting is the shortest
/// string that parses back to the exact same bits, so the store
/// round-trips floating-point fields losslessly.
fn f64_token(v: f64) -> String {
    format!("{v}")
}

fn f64_list(vs: &[f64]) -> String {
    let body: Vec<String> = vs.iter().map(|&v| f64_token(v)).collect();
    format!("[{}]", body.join(" "))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Any deviation from the expected shape: the caller quarantines the file.
#[derive(Debug)]
struct Malformed;

type ParseResult<T> = Result<T, Malformed>;

fn parse_entry(text: &str, expect_key: &JobKey) -> ParseResult<RunReport> {
    let (key, report) = parse_entry_any(text)?;
    if key.as_str() != expect_key.as_str() {
        return Err(Malformed);
    }
    Ok(report)
}

/// Parses an entry without an expected key — the scrubber's view, which
/// discovers each entry's identity from the `key` line and re-verifies
/// the filename against it.
fn parse_entry_any(text: &str) -> ParseResult<(JobKey, RunReport)> {
    let mut lines = text.lines();
    if lines.next() != Some(FORMAT_HEADER) {
        return Err(Malformed);
    }
    let key_line = lines.next().ok_or(Malformed)?;
    let key = key_line.strip_prefix("key ").ok_or(Malformed)?;
    let engine_line = lines.next().ok_or(Malformed)?;
    let engine_name = engine_line.strip_prefix("engine ").ok_or(Malformed)?;
    // Resolve the persisted label to the registry's 'static name — an
    // entry naming an engine this build does not know is untrusted.
    let engine = registry::engine_by_name(engine_name)
        .map_err(|_| Malformed)?
        .name();
    let exec_line = lines.next().ok_or(Malformed)?;
    let exec = match exec_line.strip_prefix("exec ").ok_or(Malformed)? {
        "post_hoc" => "post_hoc",
        "e2e" => "e2e",
        _ => return Err(Malformed),
    };
    let multi_pe = parse_multi_pe(lines.next().ok_or(Malformed)?)?;
    let layers_line = lines.next().ok_or(Malformed)?;
    let layer_count: usize = layers_line
        .strip_prefix("layers ")
        .ok_or(Malformed)?
        .parse()
        .map_err(|_| Malformed)?;
    // An adversarial header must not drive unbounded preallocation.
    if layer_count > 4096 {
        return Err(Malformed);
    }
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        let combination = parse_phase(&mut lines, PhaseKind::Combination)?;
        let aggregation = parse_phase(&mut lines, PhaseKind::Aggregation)?;
        layers.push(LayerReport {
            combination,
            aggregation,
        });
    }
    if lines.next().is_some() {
        return Err(Malformed); // trailing garbage
    }
    Ok((
        JobKey::from_raw(key.to_string()),
        RunReport {
            engine,
            layers,
            multi_pe,
            exec,
        },
    ))
}

fn parse_multi_pe(line: &str) -> ParseResult<Option<MultiPeSummary>> {
    let rest = line.strip_prefix("multi_pe ").ok_or(Malformed)?;
    if rest == "none" {
        return Ok(None);
    }
    let mut tokens = rest.split(' ');
    let scheduler = SchedulerKind::parse(tokens.next().ok_or(Malformed)?)
        .ok_or(Malformed)?
        .name();
    let pes = parse_token(tokens.next())?;
    let makespan = parse_f64(tokens.next())?;
    let imbalance = parse_f64(tokens.next())?;
    let per_pe_busy = parse_f64_list(&mut tokens)?;
    if tokens.next().is_some() {
        return Err(Malformed);
    }
    Ok(Some(MultiPeSummary {
        scheduler,
        pes,
        makespan,
        imbalance,
        per_pe_busy,
    }))
}

fn parse_phase<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    expect_kind: PhaseKind,
) -> ParseResult<PhaseReport> {
    let header = lines.next().ok_or(Malformed)?;
    let mut tokens = header.strip_prefix("phase ").ok_or(Malformed)?.split(' ');
    let kind = match tokens.next().ok_or(Malformed)? {
        "Combination" => PhaseKind::Combination,
        "Aggregation" => PhaseKind::Aggregation,
        _ => return Err(Malformed),
    };
    if kind != expect_kind {
        return Err(Malformed);
    }
    let mut phase = PhaseReport::new(kind);
    phase.cycles = parse_token(tokens.next())?;
    phase.compute_busy = parse_token(tokens.next())?;
    phase.mac_ops = parse_token(tokens.next())?;
    phase.sram_reads_8b = parse_token(tokens.next())?;
    phase.sram_writes_8b = parse_token(tokens.next())?;
    if tokens.next().is_some() {
        return Err(Malformed);
    }

    let traffic_line = lines.next().ok_or(Malformed)?;
    let mut tokens = traffic_line
        .strip_prefix("traffic ")
        .ok_or(Malformed)?
        .split(' ');
    let mut traffic = TrafficStats::new();
    for class in TrafficClass::ALL {
        let useful = parse_token(tokens.next())?;
        let fetched = parse_token(tokens.next())?;
        let requests = parse_token(tokens.next())?;
        traffic.record_bulk(class, useful, fetched, requests);
    }
    if tokens.next().is_some() {
        return Err(Malformed);
    }
    phase.traffic = traffic;

    let cache_line = lines.next().ok_or(Malformed)?;
    let mut tokens = cache_line
        .strip_prefix("cache ")
        .ok_or(Malformed)?
        .split(' ');
    phase.cache = CacheStats {
        hits: parse_token(tokens.next())?,
        misses: parse_token(tokens.next())?,
        fills: parse_token(tokens.next())?,
    };
    if tokens.next().is_some() {
        return Err(Malformed);
    }

    let profiles_line = lines.next().ok_or(Malformed)?;
    let rest = profiles_line.strip_prefix("profiles").ok_or(Malformed)?;
    let mut tokens = rest.split(' ').filter(|t| !t.is_empty()).peekable();
    while tokens.peek().is_some() {
        phase.cluster_profiles.push(ClusterProfile {
            compute_cycles: parse_token(tokens.next())?,
            mem_bytes: parse_token(tokens.next())?,
            cycles: parse_token(tokens.next())?,
        });
    }

    let pe_line = lines.next().ok_or(Malformed)?;
    let rest = pe_line.strip_prefix("pe ").ok_or(Malformed)?;
    phase.pe = if rest == "none" {
        None
    } else {
        let mut tokens = rest.split(' ');
        let makespan = parse_f64(tokens.next())?;
        let cluster_time = parse_f64(tokens.next())?;
        let per_pe_busy = parse_f64_list(&mut tokens)?;
        if tokens.next().is_some() {
            return Err(Malformed);
        }
        Some(PhasePeBusy {
            makespan,
            per_pe_busy,
            cluster_time,
        })
    };
    Ok(phase)
}

fn parse_token<T: std::str::FromStr>(token: Option<&str>) -> ParseResult<T> {
    token.ok_or(Malformed)?.parse().map_err(|_| Malformed)
}

fn parse_f64(token: Option<&str>) -> ParseResult<f64> {
    parse_token(token)
}

/// Parses the remainder of a `[a b c]` list emitted by [`f64_list`]; the
/// tokens arrive bracketed because the list was space-joined.
fn parse_f64_list<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> ParseResult<Vec<f64>> {
    let mut out = Vec::new();
    let first = tokens.next().ok_or(Malformed)?;
    let mut token = first.strip_prefix('[').ok_or(Malformed)?.to_string();
    loop {
        if let Some(last) = token.strip_suffix(']') {
            if !last.is_empty() {
                out.push(last.parse().map_err(|_| Malformed)?);
            }
            return Ok(out);
        }
        if token.is_empty() {
            return Err(Malformed);
        }
        out.push(token.parse().map_err(|_| Malformed)?);
        token = tokens.next().ok_or(Malformed)?.to_string();
    }
}
