//! Wall-clock speedup of the parallel cluster path over the forced-serial
//! path, on a partitioned Reddit-scale workload (the acceptance benchmark
//! of the workspace bring-up). Run with:
//!
//! ```text
//! cargo bench -p grow-bench --bench parallel_speedup
//! ```

use grow_bench::timing;
use grow_core::{
    prepare, Accelerator, GammaEngine, GcnaxEngine, GrowEngine, MatRaptorEngine, PartitionStrategy,
};
use grow_model::DatasetKey;
use grow_sim::exec::{with_mode, ExecMode};

fn time_runs(engine: &dyn Accelerator, p: &grow_core::PreparedWorkload, iters: u32) -> f64 {
    timing::sample(iters, || {
        std::hint::black_box(engine.run(p));
    })
    .min_secs()
}

fn main() {
    // A Reddit-like spec scaled to stay CI-friendly while keeping enough
    // clusters (~40) for the fan-out to matter.
    let spec = DatasetKey::Reddit.spec().scaled_to(40_000);
    eprintln!("generating {} nodes ...", spec.nodes);
    let workload = spec.instantiate(42);
    eprintln!("partitioning ...");
    let p = prepare(
        &workload,
        PartitionStrategy::Multilevel {
            cluster_nodes: 1024,
        },
        4096,
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "workload: {} nodes, {} clusters; {} hardware threads\n",
        p.nodes,
        p.clusters.len(),
        threads
    );
    println!(
        "{:<12} {:>12} {:>12} {:>9}",
        "engine", "serial ms", "parallel ms", "speedup"
    );

    let engines: Vec<Box<dyn Accelerator>> = vec![
        Box::new(GrowEngine::default()),
        Box::new(GcnaxEngine::default()),
        Box::new(MatRaptorEngine::default()),
        Box::new(GammaEngine::default()),
    ];
    for engine in &engines {
        let serial = with_mode(ExecMode::Serial, || time_runs(engine.as_ref(), &p, 3));
        let parallel = with_mode(ExecMode::Parallel, || time_runs(engine.as_ref(), &p, 3));
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>8.2}x",
            engine.name(),
            serial * 1e3,
            parallel * 1e3,
            serial / parallel
        );
        let par_report = with_mode(ExecMode::Parallel, || engine.run(&p));
        let ser_report = with_mode(ExecMode::Serial, || engine.run(&p));
        assert_eq!(
            par_report,
            ser_report,
            "{} must stay bit-identical",
            engine.name()
        );
    }
}
