//! METIS-class multilevel recursive-bisection partitioner.
//!
//! The paper's preprocessing uses METIS (Karypis–Kumar [20]); this module
//! implements the same three-phase multilevel scheme natively:
//!
//! 1. **Coarsening** — heavy-edge matching collapses matched node pairs
//!    into weighted super-nodes until the graph is small;
//! 2. **Initial partitioning** — greedy region growing on the coarsest
//!    graph, best of several seeded trials;
//! 3. **Uncoarsening + refinement** — the bisection is projected back level
//!    by level, applying Fiduccia–Mattheyses-style boundary passes.
//!
//! k-way partitions are produced by recursive bisection with proportional
//! weight targets, exactly as classic METIS `pmetis`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grow_graph::Graph;

use crate::Partitioning;

/// Tuning knobs of the multilevel partitioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultilevelConfig {
    /// RNG seed for matching order and initial-partition trials.
    pub seed: u64,
    /// Stop coarsening when the graph has at most this many nodes.
    pub coarsen_until: usize,
    /// FM refinement passes per level.
    pub refine_passes: usize,
    /// Allowed imbalance: each side may deviate from its weight target by
    /// this fraction.
    pub balance_tolerance: f64,
    /// Number of seeded greedy-growing trials for the initial bisection.
    pub init_trials: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            seed: 0x6d65746973, // "metis"
            coarsen_until: 96,
            refine_passes: 4,
            balance_tolerance: 0.10,
            init_trials: 6,
        }
    }
}

/// Partitions `graph` into `parts` balanced parts by multilevel recursive
/// bisection.
///
/// # Panics
///
/// Panics if `parts == 0`.
///
/// ```
/// use grow_graph::Graph;
/// use grow_partition::{multilevel_partition, MultilevelConfig};
///
/// // Two triangles joined by one edge: the natural bisection cuts it.
/// let g = Graph::from_edges(6, [(0,1),(1,2),(2,0),(3,4),(4,5),(5,3),(2,3)]);
/// let p = multilevel_partition(&g, 2, &MultilevelConfig::default());
/// assert_eq!(p.edge_cut(&g), 1);
/// ```
pub fn multilevel_partition(
    graph: &Graph,
    parts: usize,
    config: &MultilevelConfig,
) -> Partitioning {
    assert!(parts > 0, "parts must be positive");
    let n = graph.nodes();
    if parts == 1 || n == 0 {
        return Partitioning::single(n);
    }
    if parts >= n {
        // Degenerate: one node per part (extra parts stay empty).
        let assignment = (0..n as u32).collect();
        return Partitioning::new(assignment, parts);
    }
    let wg = WGraph::from_graph(graph);
    let globals: Vec<u32> = (0..n as u32).collect();
    let mut assignment = vec![0u32; n];
    let mut rng = StdRng::seed_from_u64(config.seed);
    bisect_recursive(wg, globals, parts, 0, &mut assignment, config, &mut rng);
    Partitioning::new(assignment, parts)
}

/// Internal weighted graph (CSR with node and edge weights), the working
/// representation across coarsening levels.
#[derive(Debug, Clone)]
struct WGraph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    adjwgt: Vec<u64>,
    vwgt: Vec<u64>,
}

impl WGraph {
    fn from_graph(graph: &Graph) -> Self {
        let adj = graph.adjacency();
        WGraph {
            xadj: adj.indptr().to_vec(),
            adjncy: adj.indices().to_vec(),
            adjwgt: vec![1; adj.nnz()],
            vwgt: vec![1; graph.nodes()],
        }
    }

    fn nodes(&self) -> usize {
        self.vwgt.len()
    }

    fn total_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u64)> + '_ {
        let range = self.xadj[v]..self.xadj[v + 1];
        self.adjncy[range.clone()]
            .iter()
            .copied()
            .zip(self.adjwgt[range].iter().copied())
    }
}

fn bisect_recursive(
    wg: WGraph,
    globals: Vec<u32>,
    parts: usize,
    part_offset: u32,
    assignment: &mut [u32],
    config: &MultilevelConfig,
    rng: &mut StdRng,
) {
    if parts == 1 {
        for &g in &globals {
            assignment[g as usize] = part_offset;
        }
        return;
    }
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    let target_left = (wg.total_weight() as f64 * left_parts as f64 / parts as f64).round() as u64;

    let side = bisect(&wg, target_left, config, rng);

    let (left_wg, left_globals, right_wg, right_globals) = split(&wg, &globals, &side);
    bisect_recursive(
        left_wg,
        left_globals,
        left_parts,
        part_offset,
        assignment,
        config,
        rng,
    );
    bisect_recursive(
        right_wg,
        right_globals,
        right_parts,
        part_offset + left_parts as u32,
        assignment,
        config,
        rng,
    );
}

/// One complete multilevel bisection: returns `side[v] == true` for nodes
/// assigned to the left half (weight target `target_left`).
fn bisect(wg: &WGraph, target_left: u64, config: &MultilevelConfig, rng: &mut StdRng) -> Vec<bool> {
    // Coarsening phase: remember each level and its fine-to-coarse map.
    // Super-node weight is capped (as in METIS) so one coarse node cannot
    // dominate a side and wreck the balance of the initial partition.
    let max_vwgt = ((1.5 * wg.total_weight() as f64 / config.coarsen_until.max(8) as f64).ceil()
        as u64)
        .max(2);
    let mut levels: Vec<(WGraph, Vec<u32>)> = Vec::new();
    let mut current = wg.clone();
    while current.nodes() > config.coarsen_until.max(8) {
        let (coarse, map) = coarsen(&current, max_vwgt, rng);
        let reduction = 1.0 - coarse.nodes() as f64 / current.nodes() as f64;
        levels.push((std::mem::replace(&mut current, coarse), map));
        if reduction < 0.05 {
            break;
        }
    }

    // Initial partition on the coarsest graph.
    let mut side = initial_bisection(&current, target_left, config, rng);
    refine(&current, &mut side, target_left, config);

    // Uncoarsen: project and refine at every level.
    while let Some((fine, map)) = levels.pop() {
        let mut fine_side = vec![false; fine.nodes()];
        for (v, s) in fine_side.iter_mut().enumerate() {
            *s = side[map[v] as usize];
        }
        side = fine_side;
        refine(&fine, &mut side, target_left, config);
        current = fine;
    }
    let _ = current;
    side
}

/// Heavy-edge matching: each unmatched node pairs with its unmatched
/// neighbor of maximum edge weight, subject to the super-node weight cap.
/// Returns the coarse graph and the fine-to-coarse node map.
fn coarsen(wg: &WGraph, max_vwgt: u64, rng: &mut StdRng) -> (WGraph, Vec<u32>) {
    let n = wg.nodes();
    const UNMATCHED: u32 = u32::MAX;
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Fisher-Yates shuffle for a random visit order.
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut map = vec![UNMATCHED; n];
    let mut coarse_count = 0u32;
    for &v in &order {
        let v = v as usize;
        if map[v] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, u64)> = None;
        for (u, w) in wg.neighbors(v) {
            if map[u as usize] == UNMATCHED
                && u as usize != v
                && wg.vwgt[v] + wg.vwgt[u as usize] <= max_vwgt
            {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((u, w)),
                }
            }
        }
        map[v] = coarse_count;
        if let Some((u, _)) = best {
            map[u as usize] = coarse_count;
        }
        coarse_count += 1;
    }

    // Build the coarse weighted graph with a scratch accumulator.
    let nc = coarse_count as usize;
    let mut vwgt = vec![0u64; nc];
    for v in 0..n {
        vwgt[map[v] as usize] += wg.vwgt[v];
    }
    let mut xadj = Vec::with_capacity(nc + 1);
    let mut adjncy: Vec<u32> = Vec::new();
    let mut adjwgt: Vec<u64> = Vec::new();
    // Group fine nodes by coarse id.
    let mut members_start = vec![0usize; nc + 1];
    for v in 0..n {
        members_start[map[v] as usize + 1] += 1;
    }
    for c in 0..nc {
        members_start[c + 1] += members_start[c];
    }
    let mut members = vec![0u32; n];
    let mut cursor = members_start.clone();
    for v in 0..n {
        members[cursor[map[v] as usize]] = v as u32;
        cursor[map[v] as usize] += 1;
    }

    let mut accum = vec![0u64; nc];
    let mut touched: Vec<u32> = Vec::new();
    xadj.push(0);
    for c in 0..nc {
        for &v in &members[members_start[c]..members_start[c + 1]] {
            for (u, w) in wg.neighbors(v as usize) {
                let cu = map[u as usize];
                if cu as usize == c {
                    continue;
                }
                if accum[cu as usize] == 0 {
                    touched.push(cu);
                }
                accum[cu as usize] += w;
            }
        }
        touched.sort_unstable();
        for &cu in &touched {
            adjncy.push(cu);
            adjwgt.push(accum[cu as usize]);
            accum[cu as usize] = 0;
        }
        touched.clear();
        xadj.push(adjncy.len());
    }
    (
        WGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        },
        map,
    )
}

/// Greedy region growing: BFS from a random seed, always absorbing the
/// frontier node with the highest gain, until the left side reaches its
/// weight target. Best cut over `init_trials` trials wins.
fn initial_bisection(
    wg: &WGraph,
    target_left: u64,
    config: &MultilevelConfig,
    rng: &mut StdRng,
) -> Vec<bool> {
    let n = wg.nodes();
    let total = wg.total_weight();
    let target = target_left.min(total);
    let mut best: Option<(u64, Vec<bool>)> = None;
    for _ in 0..config.init_trials.max(1) {
        let mut side = vec![false; n];
        let mut weight = 0u64;
        let mut heap: std::collections::BinaryHeap<(i64, u32)> =
            std::collections::BinaryHeap::new();
        while weight < target {
            let v = match heap.pop() {
                Some((_, v)) if !side[v as usize] => v as usize,
                Some(_) => continue, // stale entry: node already absorbed
                None => {
                    // Frontier exhausted (disconnected component): restart
                    // from a random unassigned node.
                    let mut v = rng.random_range(0..n);
                    let mut guard = 0;
                    while side[v] && guard < 4 * n {
                        v = (v + 1) % n;
                        guard += 1;
                    }
                    v
                }
            };
            side[v] = true;
            weight += wg.vwgt[v];
            // Re-push every outside neighbor with its refreshed gain;
            // duplicates are harmless (stale entries are skipped above) and
            // keeping gains fresh is what makes region growing track
            // community boundaries.
            for (u, _) in wg.neighbors(v) {
                let u = u as usize;
                if !side[u] {
                    let gain: i64 = wg
                        .neighbors(u)
                        .map(|(x, w)| {
                            if side[x as usize] {
                                w as i64
                            } else {
                                -(w as i64)
                            }
                        })
                        .sum();
                    heap.push((gain, u as u32));
                }
            }
        }
        let cut = cut_weight(wg, &side);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, side));
        }
    }
    best.expect("at least one trial").1
}

fn cut_weight(wg: &WGraph, side: &[bool]) -> u64 {
    let mut cut = 0u64;
    for v in 0..wg.nodes() {
        for (u, w) in wg.neighbors(v) {
            if side[v] != side[u as usize] {
                cut += w;
            }
        }
    }
    cut / 2
}

/// FM-style boundary refinement: a balance-repair sweep (needed only right
/// after the initial partition, where region growing may overshoot its
/// target), then several passes of greedy positive-gain moves within the
/// balance window.
fn refine(wg: &WGraph, side: &mut [bool], target_left: u64, config: &MultilevelConfig) {
    let total = wg.total_weight();
    let smaller_side = target_left.min(total - target_left).max(1);
    let tol = ((smaller_side as f64 * config.balance_tolerance) as u64).max(1);
    let mut left_weight: u64 = (0..wg.nodes())
        .filter(|&v| side[v])
        .map(|v| wg.vwgt[v])
        .sum();
    let min_left = target_left.saturating_sub(tol);
    let max_left = (target_left + tol).min(total);

    // Balance repair: if outside the window, shed weight from the heavy
    // side, taking the least-damaging (highest-gain) movable nodes first.
    if left_weight > max_left || left_weight < min_left {
        let heavy_is_left = left_weight > max_left;
        let mut candidates: Vec<(i64, u32)> = (0..wg.nodes())
            .filter(|&v| side[v] == heavy_is_left)
            .map(|v| {
                let mut gain = 0i64;
                for (u, w) in wg.neighbors(v) {
                    if side[u as usize] == side[v] {
                        gain -= w as i64;
                    } else {
                        gain += w as i64;
                    }
                }
                (gain, v as u32)
            })
            .collect();
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        for (_, v) in candidates {
            if left_weight <= max_left && left_weight >= min_left {
                break;
            }
            let v = v as usize;
            side[v] = !side[v];
            if heavy_is_left {
                left_weight -= wg.vwgt[v];
            } else {
                left_weight += wg.vwgt[v];
            }
        }
    }

    for _ in 0..config.refine_passes {
        // Gains of boundary nodes: moving v to the other side changes the
        // cut by external - internal edge weight.
        let mut moves: Vec<(i64, u32)> = Vec::new();
        for v in 0..wg.nodes() {
            let mut internal = 0i64;
            let mut external = 0i64;
            for (u, w) in wg.neighbors(v) {
                if side[u as usize] == side[v] {
                    internal += w as i64;
                } else {
                    external += w as i64;
                }
            }
            if external > 0 {
                moves.push((external - internal, v as u32));
            }
        }
        moves.sort_unstable_by(|a, b| b.cmp(a));
        let mut applied = 0usize;
        for (gain, v) in moves {
            if gain <= 0 {
                break;
            }
            let v = v as usize;
            // Recompute the gain: earlier moves in this pass may have
            // changed it.
            let mut internal = 0i64;
            let mut external = 0i64;
            for (u, w) in wg.neighbors(v) {
                if side[u as usize] == side[v] {
                    internal += w as i64;
                } else {
                    external += w as i64;
                }
            }
            if external - internal <= 0 {
                continue;
            }
            let new_left = if side[v] {
                left_weight.saturating_sub(wg.vwgt[v])
            } else {
                left_weight + wg.vwgt[v]
            };
            if new_left < min_left || new_left > max_left {
                continue;
            }
            side[v] = !side[v];
            left_weight = new_left;
            applied += 1;
        }
        if applied == 0 {
            break;
        }
    }
}

/// Splits a weighted graph into the two side-induced subgraphs, dropping
/// cut edges, and maps local node IDs back to the caller's globals.
fn split(wg: &WGraph, globals: &[u32], side: &[bool]) -> (WGraph, Vec<u32>, WGraph, Vec<u32>) {
    let n = wg.nodes();
    let mut local = vec![0u32; n];
    let mut left_globals = Vec::new();
    let mut right_globals = Vec::new();
    for v in 0..n {
        if side[v] {
            local[v] = left_globals.len() as u32;
            left_globals.push(globals[v]);
        } else {
            local[v] = right_globals.len() as u32;
            right_globals.push(globals[v]);
        }
    }
    let build = |want: bool| {
        let mut xadj = vec![0usize];
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::new();
        for v in 0..n {
            if side[v] != want {
                continue;
            }
            for (u, w) in wg.neighbors(v) {
                if side[u as usize] == want {
                    adjncy.push(local[u as usize]);
                    adjwgt.push(w);
                }
            }
            xadj.push(adjncy.len());
            vwgt.push(wg.vwgt[v]);
        }
        WGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    };
    (build(true), left_globals, build(false), right_globals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grow_graph::CommunityGraphSpec;

    #[test]
    fn bisects_two_cliques() {
        // Two 5-cliques connected by a single edge.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((0, 5));
        let g = Graph::from_edges(10, edges);
        let p = multilevel_partition(&g, 2, &MultilevelConfig::default());
        assert_eq!(p.edge_cut(&g), 1);
        assert_eq!(p.balance(), 1.0);
    }

    #[test]
    fn recovers_planted_communities() {
        let spec = CommunityGraphSpec {
            nodes: 1200,
            avg_degree: 10.0,
            communities: 6,
            intra_fraction: 0.9,
            power_law_exponent: 2.5,
            shuffle_fraction: 1.0,
        };
        let gen = spec.generate_detailed(21);
        let p = multilevel_partition(&gen.graph, 6, &MultilevelConfig::default());
        // The recovered partition keeps most edges internal (planted
        // intra-fraction is 0.9 of endpoints => ~0.8 of edges).
        let frac = p.intra_edge_fraction(&gen.graph);
        assert!(frac > 0.6, "intra fraction {frac} too low");
        assert!(p.balance() < 1.35, "balance {} too skewed", p.balance());
    }

    #[test]
    fn kway_parts_cover_all_nodes() {
        let spec = CommunityGraphSpec {
            nodes: 640,
            avg_degree: 8.0,
            communities: 8,
            intra_fraction: 0.85,
            power_law_exponent: 2.5,
            shuffle_fraction: 1.0,
        };
        let g = spec.generate(3);
        let p = multilevel_partition(&g, 8, &MultilevelConfig::default());
        assert_eq!(p.parts(), 8);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 640);
        assert!(sizes.iter().all(|&s| s > 0), "empty part in {sizes:?}");
    }

    #[test]
    fn one_part_is_trivial() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let p = multilevel_partition(&g, 1, &MultilevelConfig::default());
        assert_eq!(p.parts(), 1);
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn more_parts_than_nodes_degenerates() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let p = multilevel_partition(&g, 10, &MultilevelConfig::default());
        assert_eq!(p.parts(), 10);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let spec = CommunityGraphSpec {
            nodes: 500,
            avg_degree: 8.0,
            communities: 4,
            intra_fraction: 0.85,
            power_law_exponent: 2.5,
            shuffle_fraction: 1.0,
        };
        let g = spec.generate(17);
        let cfg = MultilevelConfig::default();
        let p1 = multilevel_partition(&g, 4, &cfg);
        let p2 = multilevel_partition(&g, 4, &cfg);
        assert_eq!(p1, p2);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_edges(8, [(0, 1), (2, 3), (4, 5), (6, 7)]);
        let p = multilevel_partition(&g, 2, &MultilevelConfig::default());
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 8);
    }
}
