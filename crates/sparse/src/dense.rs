use std::fmt;

use crate::SparseError;

/// A row-major dense `f64` matrix.
///
/// Used for the right-hand side operands of the GCN layer (`XW` and `W`,
/// which Table I of the paper shows to be 100% dense for every dataset) and
/// for reference results produced by the kernels in [`crate::ops`].
///
/// ```
/// use grow_sparse::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 3);
/// m.set(1, 2, 5.0);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, SparseError> {
        if data.len() != rows * cols {
            return Err(SparseError::InvalidStructure(format!(
                "row-major data has {} elements, expected {}",
                data.len(),
                rows * cols
            )));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    ///
    /// ```
    /// use grow_sparse::DenseMatrix;
    /// let m = DenseMatrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
    /// assert_eq!(m.get(1, 0), 2.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Returns row `row` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns row `row` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row {row} out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_row_major(self) -> Vec<f64> {
        self.data
    }

    /// Number of non-zero elements (exact zero is treated as empty).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != 0.0).count()
    }

    /// Fraction of non-zero elements, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.nnz() as f64 / self.data.len() as f64
    }

    /// Applies the ReLU activation (`max(0, x)`) element-wise in place.
    ///
    /// GCN layers apply a non-linear activation after each graph convolution
    /// (Equation 1 of the paper); ReLU is the one the paper assumes.
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Returns `true` if every element differs from `other` by at most `tol`.
    ///
    /// Useful for comparing kernel results computed in different accumulation
    /// orders, which are equal only up to floating-point rounding.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{}", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let cells: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:8.3}"))
                .collect();
            let ellipsis = if self.cols > 8 { " ..." } else { "" };
            writeln!(f, "  [{}{}]", cells.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    fn identity_is_diagonal() {
        let m = DenseMatrix::identity(4);
        assert_eq!(m.nnz(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_row_major(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn row_accessors_round_trip() {
        let mut m = DenseMatrix::from_fn(3, 3, |r, c| (r + c) as f64);
        m.row_mut(2)[1] = 42.0;
        assert_eq!(m.get(2, 1), 42.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = DenseMatrix::from_row_major(1, 3, vec![-1.0, 0.0, 2.0]).unwrap();
        m.relu_in_place();
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn density_counts_nonzeros() {
        let m = DenseMatrix::from_row_major(2, 2, vec![0.0, 1.0, 0.0, 3.0]).unwrap();
        assert_eq!(m.density(), 0.5);
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = DenseMatrix::from_row_major(1, 2, vec![1.0, 2.0]).unwrap();
        let b = DenseMatrix::from_row_major(1, 2, vec![1.0 + 1e-12, 2.0]).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        let c = DenseMatrix::from_row_major(1, 2, vec![1.5, 2.0]).unwrap();
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        DenseMatrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let m = DenseMatrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
    }
}
