//! Hot-path regression battery for the zero-allocation/sharded simulator
//! core: the optimized engines (dense epoch-tagged caches, pooled scratch,
//! plan/replay overlap, intra-cluster row-range sharding) must reproduce
//! the *committed* golden snapshots bit-identically — no re-bless — and
//! stay invariant across the engine × scheduler × partition grid under
//! every combination of sharding and execution mode.

use std::fmt::Write as _;

use grow::accel::registry::{self, ENGINE_NAMES};
use grow::accel::{prepare, PartitionStrategy, RunReport};
use grow::model::{DatasetKey, DatasetSpec};
use grow::sim::exec::{with_mode, with_workers, ExecMode};

mod common;
use common::{cases, golden_path, render};

/// The `shard_rows=` override is engine-uniform since the plan-module
/// port: every engine's plan pass shards on the same registry key.
fn overrides_for(shard_rows: &str) -> Vec<(String, String)> {
    vec![("shard_rows".to_string(), shard_rows.to_string())]
}

fn run_with(
    engine: &str,
    overrides: &[(String, String)],
    p: &grow::accel::PreparedWorkload,
) -> RunReport {
    let borrowed: Vec<(&str, &str)> = overrides
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    registry::engine_from_overrides(engine, &borrowed)
        .expect("registered engine")
        .run(p)
}

/// Builds the golden-report snapshot text with intra-cluster sharding
/// forced on for every engine.
fn sharded_snapshot(spec: DatasetSpec, seed: u64, shard_rows: &str) -> String {
    let workload = spec.instantiate(seed);
    let strategies = [
        PartitionStrategy::None,
        PartitionStrategy::Multilevel { cluster_nodes: 100 },
    ];
    let mut out = String::new();
    for strategy in strategies {
        let prepared = prepare(&workload, strategy, 4096);
        for name in ENGINE_NAMES {
            let report = run_with(name, &overrides_for(shard_rows), &prepared);
            let _ = writeln!(out, "== engine={} strategy={strategy:?} ==", report.engine);
            render(&report, &mut out);
        }
    }
    out
}

#[test]
fn sharded_hot_path_reproduces_committed_goldens() {
    // The committed snapshots were blessed long before sharding existed;
    // the sharded/pooled/overlapped hot path must reproduce their exact
    // bytes on every engine. There is deliberately NO bless path here.
    for (case, spec, seed) in cases() {
        let expected =
            std::fs::read_to_string(golden_path(case)).expect("committed golden snapshot exists");
        for shard_rows in ["64", "257", "auto"] {
            let actual = sharded_snapshot(spec, seed, shard_rows);
            assert_eq!(
                actual, expected,
                "{case}: shard_rows={shard_rows} shifted a counter off the \
                 committed snapshot"
            );
        }
    }
}

#[test]
fn sharded_scheduler_grid_reproduces_committed_goldens() {
    // Same contract for the scheduler-grid snapshots: the multi-PE
    // summaries are derived from cluster profiles the sharded path
    // produced, and must not move by an ulp.
    for (case, spec, seed) in cases() {
        let expected = std::fs::read_to_string(golden_path(&format!("{case}_sched")))
            .expect("committed scheduler snapshot exists");
        let workload = spec.instantiate(seed);
        let prepared = prepare(
            &workload,
            PartitionStrategy::Multilevel { cluster_nodes: 100 },
            4096,
        );
        let mut out = String::new();
        for name in ENGINE_NAMES {
            // Pinned to the schedulers the `_sched` snapshots were
            // committed with (later policies are locked by the e2e grids).
            for scheduler in ["rr", "lpt", "ws"] {
                for pes in ["1", "4"] {
                    let mut overrides = overrides_for("64");
                    overrides.push(("scheduler".to_string(), scheduler.to_string()));
                    overrides.push(("pes".to_string(), pes.to_string()));
                    let report = run_with(name, &overrides, &prepared);
                    let s = report.multi_pe.expect("summary attached");
                    let busy: Vec<String> = s.per_pe_busy.iter().map(|b| format!("{b}")).collect();
                    let _ = writeln!(
                        out,
                        "engine={} scheduler={} pes={} makespan={} imbalance={} busy=[{}]",
                        report.engine,
                        s.scheduler,
                        s.pes,
                        s.makespan,
                        s.imbalance,
                        busy.join(" ")
                    );
                }
            }
        }
        assert_eq!(out, expected, "{case}: sharded scheduler grid diverged");
    }
}

#[test]
fn seeded_sweep_is_shard_and_mode_invariant() {
    // Engine × scheduler × partition sweep across seeds: for every cell,
    // the report must be identical between (a) serial and oversubscribed
    // parallel execution, (b) sharded (fixed and auto) and unsharded, and
    // (c) repeated runs of one engine instance (scratch pools must not
    // leak state between runs).
    let partitions = [
        PartitionStrategy::None,
        PartitionStrategy::Multilevel { cluster_nodes: 120 },
    ];
    for seed in [3u64, 11] {
        let workload = DatasetKey::Citeseer.spec().scaled_to(360).instantiate(seed);
        for strategy in partitions {
            let prepared = prepare(&workload, strategy, 4096);
            for engine in ENGINE_NAMES {
                for scheduler in ["rr", "ws"] {
                    let mut overrides = overrides_for("off");
                    overrides.push(("scheduler".to_string(), scheduler.to_string()));
                    overrides.push(("pes".to_string(), "4".to_string()));
                    let base = run_with(engine, &overrides, &prepared);
                    let parallel = with_workers(4, || run_with(engine, &overrides, &prepared));
                    let serial =
                        with_mode(ExecMode::Serial, || run_with(engine, &overrides, &prepared));
                    assert_eq!(base, parallel, "{engine}/{scheduler}/{strategy:?}/{seed}");
                    assert_eq!(base, serial, "{engine}/{scheduler}/{strategy:?}/{seed}");
                    for shard in ["50", "auto"] {
                        let mut sharded_overrides = overrides.clone();
                        sharded_overrides.push(("shard_rows".to_string(), shard.to_string()));
                        let sharded = run_with(engine, &sharded_overrides, &prepared);
                        assert_eq!(
                            base, sharded,
                            "sharded({shard}) {engine}/{scheduler}/{strategy:?}/{seed}"
                        );
                        let sharded_serial = with_mode(ExecMode::Serial, || {
                            run_with(engine, &sharded_overrides, &prepared)
                        });
                        assert_eq!(
                            base, sharded_serial,
                            "sharded({shard}) serial {engine}/{scheduler}/{strategy:?}/{seed}"
                        );
                    }
                }
            }
        }
    }
}
