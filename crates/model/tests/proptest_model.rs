//! Property-based tests for feature synthesis and workload invariants.

use grow_model::{DatasetKey, FeatureMatrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synthesized_density_tracks_target(
        (rows, cols, density, seed) in (20usize..300, 4usize..128, 0.0f64..=1.0, 0u64..10_000)
    ) {
        let fm = FeatureMatrix::synthesize(rows, cols, density, seed);
        prop_assert_eq!(fm.rows(), rows);
        prop_assert_eq!(fm.cols(), cols);
        let got = fm.density();
        // Expected absolute deviation shrinks with the cell count; use a
        // generous 3-sigma-ish band plus quantization slack.
        let cells = (rows * cols) as f64;
        let sigma = (density * (1.0 - density) / cells).sqrt();
        let tol = 3.0 * sigma + 1.5 / cols as f64;
        prop_assert!(
            (got - density).abs() <= tol,
            "target {density}, measured {got}, tol {tol}"
        );
    }

    #[test]
    fn synthesized_rows_are_sorted_and_unique(
        (rows, cols, density, seed) in (5usize..100, 4usize..64, 0.05f64..0.95, 0u64..1000)
    ) {
        if let FeatureMatrix::Sparse(p) = FeatureMatrix::synthesize(rows, cols, density, seed) {
            for r in 0..p.rows() {
                let row = p.row_indices(r);
                prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {r} unsorted");
                prop_assert!(row.iter().all(|&c| (c as usize) < cols));
            }
        }
    }

    #[test]
    fn materialize_matches_pattern(
        (rows, cols, density, seed) in (5usize..60, 4usize..32, 0.0f64..=1.0, 0u64..1000)
    ) {
        let fm = FeatureMatrix::synthesize(rows, cols, density, seed);
        let m = fm.materialize(seed ^ 99);
        prop_assert_eq!(m.nnz(), fm.nnz());
        prop_assert_eq!(m.shape(), (rows, cols));
    }

    #[test]
    fn workload_scaling_preserves_shape_ratios(
        (scale, seed) in (200usize..2000, 0u64..100)
    ) {
        let spec = DatasetKey::Flickr.spec().scaled_to(scale);
        let w = spec.instantiate(seed);
        prop_assert_eq!(w.graph.nodes(), scale);
        prop_assert_eq!(w.layers[0].f_in, 500);
        prop_assert_eq!(w.layers[0].f_out, 64);
        prop_assert_eq!(w.layers[1].f_out, 7);
        // Densities stay near the Table I row regardless of scale.
        let d0 = w.layers[0].x.density();
        prop_assert!((d0 - 0.464).abs() < 0.1, "X0 density {d0}");
    }
}
