//! Helpers shared by the golden-snapshot suites (`golden_reports.rs`,
//! `hotpath_invariants.rs`) and the exec-model battery (`exec_model.rs`):
//! the fixed-seed workloads, the snapshot file layout, and the
//! field-by-field report rendering. The snapshot suites compare against
//! the same committed `tests/golden/*.snap` bytes, so the rendering lives
//! here exactly once.
//!
//! Not every test binary uses every helper; unused-item lints are
//! silenced per item rather than forcing each binary to import all of
//! them.
#![allow(dead_code)]

use std::fmt::Write as _;
use std::path::PathBuf;

use grow::accel::RunReport;
use grow::model::{DatasetKey, DatasetSpec};
use grow::sim::TrafficClass;

/// The two fixed-seed golden workloads: a Cora-scale citation graph and a
/// Pubmed-scale one (distinct feature shapes and densities).
pub fn cases() -> [(&'static str, DatasetSpec, u64); 2] {
    [
        ("cora_400_s3", DatasetKey::Cora.spec().scaled_to(400), 3),
        ("pubmed_600_s7", DatasetKey::Pubmed.spec().scaled_to(600), 7),
    ]
}

/// Path of a committed golden snapshot.
pub fn golden_path(case: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{case}.snap"))
}

/// Renders every field of a [`RunReport`] deterministically, one counter
/// per token, so snapshot diffs point at the exact field that moved.
pub fn render(report: &RunReport, out: &mut String) {
    for (li, layer) in report.layers.iter().enumerate() {
        for phase in [&layer.combination, &layer.aggregation] {
            let _ = writeln!(
                out,
                "layer={li} phase={:?} cycles={} compute_busy={} mac_ops={} \
                 sram_reads_8b={} sram_writes_8b={}",
                phase.kind,
                phase.cycles,
                phase.compute_busy,
                phase.mac_ops,
                phase.sram_reads_8b,
                phase.sram_writes_8b
            );
            for class in TrafficClass::ALL {
                let _ = writeln!(
                    out,
                    "  traffic {} useful={} fetched={} requests={}",
                    class.label(),
                    phase.traffic.useful_bytes(class),
                    phase.traffic.fetched_bytes(class),
                    phase.traffic.requests(class)
                );
            }
            let _ = writeln!(
                out,
                "  cache hits={} misses={} fills={}",
                phase.cache.hits, phase.cache.misses, phase.cache.fills
            );
            let profiles: Vec<String> = phase
                .cluster_profiles
                .iter()
                .map(|p| format!("({},{})", p.compute_cycles, p.mem_bytes))
                .collect();
            let _ = writeln!(out, "  cluster_profiles=[{}]", profiles.join(" "));
        }
    }
}
