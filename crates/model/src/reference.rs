//! Functional reference execution of GCN inference.
//!
//! The accelerator simulators are timing models; this module computes the
//! actual layer outputs (Equation 1: `X(l+1) = ReLU(A X(l) W(l))`) with the
//! `grow-sparse` kernels, providing the ground truth the engines'
//! value-computation modes are validated against.

use grow_sparse::{ops, CsrMatrix, DenseMatrix, SparseError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use grow_graph::{normalized_adjacency, Graph};

use crate::GcnWorkload;

/// Random dense weight matrices for the workload's layers (Table I: `W` is
/// 100% dense for every dataset). Values are uniform in `[-0.5, 0.5)`.
pub fn random_weights(workload: &GcnWorkload, seed: u64) -> Vec<DenseMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    workload
        .layers
        .iter()
        .map(|l| DenseMatrix::from_fn(l.f_in, l.f_out, |_, _| rng.random::<f64>() - 0.5))
        .collect()
}

/// Runs full 2-layer GCN inference functionally:
/// `X(1) = ReLU(A X(0) W(0))`, `X(2) = A X(1) W(1)` (no activation on the
/// output layer, the usual classification-head convention).
///
/// Note that the layer-1 input features are materialized from the
/// workload's synthesized `X(0)` pattern; the layer-2 input is the
/// *computed* `X(1)` (not the synthesized pattern, which only the timing
/// models use).
///
/// # Errors
///
/// Returns [`SparseError::ShapeMismatch`] if `weights` shapes do not match
/// the workload's layer dimensions.
pub fn run_gcn(
    workload: &GcnWorkload,
    weights: &[DenseMatrix],
    seed: u64,
) -> Result<DenseMatrix, SparseError> {
    let a = normalized_adjacency(&workload.graph);
    let x0 = workload.layers[0].x.materialize(seed ^ 0xfeed);
    let mut x = x0;
    let mut out = None;
    for (idx, w) in weights.iter().enumerate() {
        let mut y = ops::gcn_layer_a_xw(&a, &x, w)?;
        let last = idx + 1 == weights.len();
        if !last {
            y.relu_in_place();
            x = CsrMatrix::from_dense(&y);
        }
        out = Some(y);
    }
    Ok(out.expect("at least one layer"))
}

/// The normalized adjacency used by [`run_gcn`], exposed for engines that
/// need the same matrix (values included) for functional cross-checks.
pub fn adjacency_for(graph: &Graph) -> CsrMatrix {
    normalized_adjacency(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKey;

    fn tiny_workload() -> GcnWorkload {
        DatasetKey::Cora.spec().scaled_to(64).instantiate(5)
    }

    #[test]
    fn inference_produces_output_of_expected_shape() {
        let w = tiny_workload();
        let weights = random_weights(&w, 1);
        let out = run_gcn(&w, &weights, 1).unwrap();
        assert_eq!(out.shape(), (w.graph.nodes(), w.spec.feature_dims[2]));
    }

    #[test]
    fn relu_between_layers_clamps_negatives() {
        let w = tiny_workload();
        let weights = random_weights(&w, 2);
        // Run layer 1 manually and check ReLU applied.
        let a = adjacency_for(&w.graph);
        let x0 = w.layers[0].x.materialize(2 ^ 0xfeed);
        let mut y = ops::gcn_layer_a_xw(&a, &x0, &weights[0]).unwrap();
        y.relu_in_place();
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deterministic_inference() {
        let w = tiny_workload();
        let weights = random_weights(&w, 3);
        let o1 = run_gcn(&w, &weights, 3).unwrap();
        let o2 = run_gcn(&w, &weights, 3).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn mismatched_weights_error() {
        let w = tiny_workload();
        let bad = vec![DenseMatrix::zeros(3, 3)];
        assert!(run_gcn(&w, &bad, 0).is_err());
    }

    #[test]
    fn post_relu_density_is_substantial() {
        // Table I reports X(1) densities of 64-89%: after aggregation over
        // neighborhoods, most entries are non-zero. Check the functional
        // pipeline reproduces that qualitative fact.
        let w = tiny_workload();
        let weights = random_weights(&w, 4);
        let a = adjacency_for(&w.graph);
        let x0 = w.layers[0].x.materialize(4 ^ 0xfeed);
        let mut y = ops::gcn_layer_a_xw(&a, &x0, &weights[0]).unwrap();
        y.relu_in_place();
        let d = y.density();
        assert!(d > 0.3, "post-ReLU density {d}");
    }
}
