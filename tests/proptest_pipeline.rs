//! Property-based tests over the full pipeline: random community graphs
//! through preparation and both primary engines, checking conservation
//! invariants that must hold for *any* input.

use grow::accel::{
    prepare, Accelerator, GcnaxEngine, GrowConfig, GrowEngine, PartitionStrategy,
};
use grow::graph::CommunityGraphSpec;
use grow::model::{DatasetKey, GcnWorkload};
use grow::sim::TrafficClass;
use proptest::prelude::*;

/// Strategy: a small random dataset spec (nodes, degree, densities, seed).
fn arb_workload() -> impl Strategy<Value = GcnWorkload> {
    (60usize..400, 2.0f64..12.0, 0.02f64..1.0, 0.3f64..1.0, 0u64..1000).prop_map(
        |(nodes, degree, x0, x1, seed)| {
            let mut spec = DatasetKey::Pubmed.spec().scaled_to(nodes);
            spec.avg_degree = degree;
            spec.x0_density = x0;
            spec.x1_density = x1;
            spec.instantiate(seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mac_invariance_across_engines(w in arb_workload()) {
        let base = prepare(&w, PartitionStrategy::None, 4096);
        let grow = GrowEngine::default().run(&base);
        let gcnax = GcnaxEngine::default().run(&base);
        prop_assert_eq!(grow.mac_ops(), gcnax.mac_ops());
    }

    #[test]
    fn probe_conservation(w in arb_workload()) {
        let base = prepare(&w, PartitionStrategy::None, 4096);
        let r = GrowEngine::default().run(&base);
        let c = r.aggregation_cache();
        prop_assert_eq!(c.hits + c.misses, 2 * base.adjacency.nnz() as u64);
    }

    #[test]
    fn traffic_conservation(w in arb_workload()) {
        let base = prepare(&w, PartitionStrategy::None, 4096);
        for report in [GrowEngine::default().run(&base), GcnaxEngine::default().run(&base)] {
            let t = report.total_traffic();
            for class in TrafficClass::ALL {
                prop_assert!(t.useful_bytes(class) <= t.fetched_bytes(class));
            }
            prop_assert!(t.total_fetched() > 0);
        }
    }

    #[test]
    fn partitioning_preserves_work(w in arb_workload()) {
        let base = prepare(&w, PartitionStrategy::None, 4096);
        let parted = prepare(&w, PartitionStrategy::Multilevel { cluster_nodes: 64 }, 4096);
        prop_assert_eq!(base.adjacency.nnz(), parted.adjacency.nnz());
        let r0 = GrowEngine::default().run(&base);
        let r1 = GrowEngine::default().run(&parted);
        prop_assert_eq!(r0.mac_ops(), r1.mac_ops());
        // Output traffic (useful) identical: same rows written.
        prop_assert_eq!(
            r0.total_traffic().useful_bytes(TrafficClass::Output),
            r1.total_traffic().useful_bytes(TrafficClass::Output)
        );
    }

    #[test]
    fn smaller_cache_never_hits_more(w in arb_workload()) {
        let base = prepare(&w, PartitionStrategy::None, 4096);
        let big = GrowEngine::new(GrowConfig {
            hdn_cache_bytes: 256 * 1024, ..GrowConfig::default()
        }).run(&base);
        let small = GrowEngine::new(GrowConfig {
            hdn_cache_bytes: 8 * 1024, ..GrowConfig::default()
        }).run(&base);
        let hb = big.aggregation_cache().hits;
        let hs = small.aggregation_cache().hits;
        prop_assert!(hs <= hb, "small cache hits {hs} > big cache hits {hb}");
    }

    #[test]
    fn cluster_layouts_partition_the_node_set(
        (nodes, parts, seed) in (50usize..300, 2usize..12, 0u64..500)
    ) {
        use grow::partition::{multilevel_partition, ClusterLayout, MultilevelConfig};
        let g = CommunityGraphSpec {
            nodes,
            avg_degree: 6.0,
            communities: parts,
            intra_fraction: 0.8,
            power_law_exponent: 2.5,
            shuffle_fraction: 1.0,
        }
        .generate(seed);
        let p = multilevel_partition(&g, parts, &MultilevelConfig::default());
        let layout = ClusterLayout::from_partitioning(&p);
        let covered: usize = layout.ranges().iter().map(|r| r.len()).sum();
        prop_assert_eq!(covered, nodes);
        let mut seen = vec![false; nodes];
        for &x in layout.permutation() {
            prop_assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }
}
