use std::fmt;

use crate::{CscMatrix, DenseMatrix, SparseError};

/// The structure (row pointers + column indices) of a CSR matrix, without
/// values.
///
/// GROW's cycle-level simulators are timing models: only the *sparsity
/// pattern* of the operands determines cycles and DRAM traffic, so the
/// engines consume `CsrPattern`s and the (large) value arrays are optional.
/// CSR is the compression format GROW uses for both sparse inputs `A` and
/// `X` (Table II of the paper).
///
/// Invariants (validated on construction):
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, monotonically
///   non-decreasing, `indptr[rows] == indices.len()`;
/// * column indices within each row are strictly increasing and `< cols`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrPattern {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
}

impl CsrPattern {
    /// Creates a pattern from raw CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if the arrays violate any
    /// CSR invariant (see the type-level documentation).
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
    ) -> Result<Self, SparseError> {
        if indptr.len() != rows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "indptr has length {}, expected rows + 1 = {}",
                indptr.len(),
                rows + 1
            )));
        }
        if indptr[0] != 0 {
            return Err(SparseError::InvalidStructure("indptr[0] must be 0".into()));
        }
        if *indptr.last().expect("indptr non-empty") != indices.len() {
            return Err(SparseError::InvalidStructure(format!(
                "indptr[rows] = {} does not match indices.len() = {}",
                indptr[rows],
                indices.len()
            )));
        }
        for r in 0..rows {
            if indptr[r] > indptr[r + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "indptr decreases at row {r}"
                )));
            }
            let seg = &indices[indptr[r]..indptr[r + 1]];
            for w in seg.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure(format!(
                        "columns in row {r} are not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = seg.last() {
                if last as usize >= cols {
                    return Err(SparseError::InvalidStructure(format!(
                        "column {last} in row {r} exceeds cols = {cols}"
                    )));
                }
            }
        }
        Ok(CsrPattern {
            rows,
            cols,
            indptr,
            indices,
        })
    }

    /// Creates an empty pattern with no non-zeros.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrPattern {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
        }
    }

    /// Creates the pattern of a fully dense `rows x cols` matrix.
    ///
    /// Several Table I feature matrices (`X` for Reddit/Yelp) are 100% dense
    /// yet still stored in CSR by GROW; this constructor builds that case
    /// without an intermediate COO pass.
    pub fn dense(rows: usize, cols: usize) -> Self {
        let indptr = (0..=rows).map(|r| r * cols).collect();
        let mut indices = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            indices.extend(0..cols as u32);
        }
        CsrPattern {
            rows,
            cols,
            indptr,
            indices,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of non-zero positions.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Number of non-zeros in row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.indptr[row + 1] - self.indptr[row]
    }

    /// The column indices of row `row`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_indices(&self, row: usize) -> &[u32] {
        &self.indices[self.indptr[row]..self.indptr[row + 1]]
    }

    /// Borrowing iterator over the column-index slices of the rows in
    /// `rows`, in order — the hot-loop form of [`CsrPattern::row_indices`].
    ///
    /// One `indptr` walk yields every row's `&[u32]` slice directly, so
    /// inner loops touch two flat arrays instead of doing two bounds-checked
    /// pointer loads per row:
    ///
    /// ```
    /// use grow_sparse::CsrPattern;
    ///
    /// let p = CsrPattern::dense(4, 2);
    /// let nnz: usize = p.row_slices(1..3).map(|row| row.len()).sum();
    /// assert_eq!(nnz, 4);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `rows.end > self.rows()` or `rows.start > rows.end`.
    pub fn row_slices(&self, rows: std::ops::Range<usize>) -> RowSlices<'_> {
        RowSlices {
            indptr: &self.indptr[rows.start..=rows.end],
            indices: &self.indices,
        }
    }

    /// The row-pointer array (`rows + 1` entries).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The concatenated column-index array.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Fraction of non-zero positions, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// The transposed pattern (a CSR view of the CSC of `self`).
    pub fn transpose(&self) -> CsrPattern {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0u32; self.indices.len()];
        let mut next = counts.clone();
        for r in 0..self.rows {
            for &c in self.row_indices(r) {
                indices[next[c as usize]] = r as u32;
                next[c as usize] += 1;
            }
        }
        CsrPattern {
            rows: self.cols,
            cols: self.rows,
            indptr: counts,
            indices,
        }
    }

    /// Pairs the pattern with a value array.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if `values.len() != self.nnz()`.
    pub fn with_values(self, values: Vec<f64>) -> Result<CsrMatrix, SparseError> {
        if values.len() != self.nnz() {
            return Err(SparseError::InvalidStructure(format!(
                "value array has {} entries, expected nnz = {}",
                values.len(),
                self.nnz()
            )));
        }
        Ok(CsrMatrix {
            pattern: self,
            values,
        })
    }

    /// Pairs the pattern with all-ones values (an unweighted adjacency matrix).
    pub fn with_unit_values(self) -> CsrMatrix {
        let values = vec![1.0; self.nnz()];
        CsrMatrix {
            pattern: self,
            values,
        }
    }
}

/// Borrowing iterator over per-row column-index slices of a
/// [`CsrPattern`] (see [`CsrPattern::row_slices`]).
#[derive(Debug, Clone)]
pub struct RowSlices<'a> {
    /// The `rows + 1` row-pointer window being walked.
    indptr: &'a [usize],
    indices: &'a [u32],
}

impl<'a> Iterator for RowSlices<'a> {
    type Item = &'a [u32];

    #[inline]
    fn next(&mut self) -> Option<&'a [u32]> {
        let (&start, rest) = self.indptr.split_first()?;
        let &end = rest.first()?;
        self.indptr = rest;
        Some(&self.indices[start..end])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.indptr.len().saturating_sub(1);
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowSlices<'_> {}

impl fmt::Display for CsrPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrPattern {}x{}, nnz = {}, density = {:.3e}",
            self.rows,
            self.cols,
            self.nnz(),
            self.density()
        )
    }
}

/// A CSR (compressed sparse row) matrix with `f64` values.
///
/// The value-carrying companion of [`CsrPattern`]; used by the functional
/// reference kernels and by the simulators' optional value-checking mode.
///
/// ```
/// use grow_sparse::CsrMatrix;
///
/// # fn main() -> Result<(), grow_sparse::SparseError> {
/// let m = CsrMatrix::from_raw(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])?;
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.row_entries(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    pattern: CsrPattern,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates a CSR matrix from raw arrays, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if the structure arrays are
    /// inconsistent or `values.len() != indices.len()`.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        CsrPattern::from_raw(rows, cols, indptr, indices)?.with_values(values)
    }

    /// Creates an empty matrix with no non-zeros.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            pattern: CsrPattern::empty(rows, cols),
            values: Vec::new(),
        }
    }

    /// Creates a CSR matrix from a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let mut indptr = Vec::with_capacity(dense.rows() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0usize);
        for r in 0..dense.rows() {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    indices.push(c as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            pattern: CsrPattern {
                rows: dense.rows(),
                cols: dense.cols(),
                indptr,
                indices,
            },
            values,
        }
    }

    /// The sparsity pattern.
    pub fn pattern(&self) -> &CsrPattern {
        &self.pattern
    }

    /// Consumes the matrix, returning the pattern and dropping the values.
    pub fn into_pattern(self) -> CsrPattern {
        self.pattern
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.pattern.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.pattern.cols()
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.pattern.shape()
    }

    /// Total number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// Fraction of non-zero positions, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.pattern.density()
    }

    /// The column indices of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_indices(&self, row: usize) -> &[u32] {
        self.pattern.row_indices(row)
    }

    /// The values of row `row`, aligned with [`CsrMatrix::row_indices`].
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_values(&self, row: usize) -> &[f64] {
        &self.values[self.pattern.indptr[row]..self.pattern.indptr[row + 1]]
    }

    /// Iterates over `(column, value)` pairs of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.row_indices(row)
            .iter()
            .copied()
            .zip(self.row_values(row).iter().copied())
    }

    /// Borrowing iterator over `(column indices, values)` slice pairs of
    /// the rows in `rows`, in order — the hot-loop form of
    /// [`CsrMatrix::row_entries`] (one `indptr` walk, no per-row index
    /// arithmetic).
    ///
    /// ```
    /// # fn main() -> Result<(), grow_sparse::SparseError> {
    /// let m = grow_sparse::CsrMatrix::from_raw(
    ///     2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])?;
    /// let (cols, vals) = m.row_slices(1..2).next().unwrap();
    /// assert_eq!((cols, vals), (&[1u32][..], &[3.0][..]));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `rows.end > self.rows()` or `rows.start > rows.end`.
    pub fn row_slices(&self, rows: std::ops::Range<usize>) -> RowValueSlices<'_> {
        RowValueSlices {
            indptr: &self.pattern.indptr[rows.start..=rows.end],
            indices: &self.pattern.indices,
            values: &self.values,
        }
    }

    /// The concatenated value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Converts to CSC format (column-major compression, used by GCNAX).
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        CscMatrix::from_transposed_csr(t)
    }

    /// The transposed matrix, still in CSR.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols() + 1];
        for &c in self.pattern.indices() {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols() {
            counts[i + 1] += counts[i];
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts.clone();
        for r in 0..self.rows() {
            for (c, v) in self.row_entries(r) {
                let slot = next[c as usize];
                indices[slot] = r as u32;
                values[slot] = v;
                next[c as usize] += 1;
            }
        }
        CsrMatrix {
            pattern: CsrPattern {
                rows: self.cols(),
                cols: self.rows(),
                indptr: counts,
                indices,
            },
            values,
        }
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut dense = DenseMatrix::zeros(self.rows(), self.cols());
        for r in 0..self.rows() {
            for (c, v) in self.row_entries(r) {
                dense.set(r, c as usize, v);
            }
        }
        dense
    }

    /// Applies `f` to every value in place (e.g. scaling for normalization).
    pub fn map_values_in_place(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Returns the matrix with rows and columns permuted by `perm`, where
    /// `perm[old] = new` — entry `(r, c)` moves to `(perm[r], perm[c])`.
    ///
    /// This is the reordering GROW's graph-partitioning preprocessing applies
    /// to the adjacency matrix (Figure 13 of the paper: partitioning "only
    /// changes the way a particular node is assigned with its node ID").
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, `perm.len() != rows`, or `perm` is
    /// not a permutation.
    pub fn permute_symmetric(&self, perm: &[u32]) -> CsrMatrix {
        assert_eq!(
            self.rows(),
            self.cols(),
            "symmetric permutation needs a square matrix"
        );
        assert_eq!(
            perm.len(),
            self.rows(),
            "permutation length must equal matrix order"
        );
        let n = self.rows();
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(!seen[p as usize], "perm is not a permutation");
            seen[p as usize] = true;
        }
        let mut inv = vec![0u32; n];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0usize);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for &old in inv.iter().take(n) {
            let old_r = old as usize;
            scratch.clear();
            scratch.extend(self.row_entries(old_r).map(|(c, v)| (perm[c as usize], v)));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &scratch {
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            pattern: CsrPattern {
                rows: n,
                cols: n,
                indptr,
                indices,
            },
            values,
        }
    }
}

/// Borrowing iterator over `(column indices, values)` slice pairs of a
/// [`CsrMatrix`] (see [`CsrMatrix::row_slices`]).
#[derive(Debug, Clone)]
pub struct RowValueSlices<'a> {
    indptr: &'a [usize],
    indices: &'a [u32],
    values: &'a [f64],
}

impl<'a> Iterator for RowValueSlices<'a> {
    type Item = (&'a [u32], &'a [f64]);

    #[inline]
    fn next(&mut self) -> Option<(&'a [u32], &'a [f64])> {
        let (&start, rest) = self.indptr.split_first()?;
        let &end = rest.first()?;
        self.indptr = rest;
        Some((&self.indices[start..end], &self.values[start..end]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.indptr.len().saturating_sub(1);
        (n, Some(n))
    }
}

impl ExactSizeIterator for RowValueSlices<'_> {}

impl From<CsrMatrix> for CsrPattern {
    fn from(m: CsrMatrix) -> CsrPattern {
        m.into_pattern()
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix {}x{}, nnz = {}, density = {:.3e}",
            self.rows(),
            self.cols(),
            self.nnz(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 0 3]
        CsrMatrix::from_raw(2, 3, vec![0, 2, 3], vec![0, 2, 2], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn from_raw_validates_indptr_length() {
        let err = CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidStructure(_)));
    }

    #[test]
    fn from_raw_validates_monotonicity() {
        assert!(CsrPattern::from_raw(2, 2, vec![0, 2, 1], vec![0, 1]).is_err());
    }

    #[test]
    fn from_raw_validates_sorted_columns() {
        assert!(CsrPattern::from_raw(1, 3, vec![0, 2], vec![2, 0]).is_err());
        assert!(CsrPattern::from_raw(1, 3, vec![0, 2], vec![1, 1]).is_err());
    }

    #[test]
    fn from_raw_validates_column_bounds() {
        assert!(CsrPattern::from_raw(1, 2, vec![0, 1], vec![2]).is_err());
    }

    #[test]
    fn from_raw_validates_value_length() {
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn dense_pattern_has_full_density() {
        let p = CsrPattern::dense(3, 4);
        assert_eq!(p.nnz(), 12);
        assert_eq!(p.density(), 1.0);
        assert_eq!(p.row_indices(2), &[0, 1, 2, 3]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_moves_entries() {
        let t = sample().transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(
            t.row_entries(2).collect::<Vec<_>>(),
            vec![(0, 2.0), (1, 3.0)]
        );
    }

    #[test]
    fn to_dense_round_trips_through_from_dense() {
        let m = sample();
        let back = CsrMatrix::from_dense(&m.to_dense());
        assert_eq!(m, back);
    }

    #[test]
    fn permute_symmetric_identity_is_noop() {
        let mut coo = crate::CooMatrix::new(3, 3);
        coo.extend([(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]);
        let m = coo.to_csr();
        let p = m.permute_symmetric(&[0, 1, 2]);
        assert_eq!(m, p);
    }

    #[test]
    fn permute_symmetric_relabels_nodes() {
        // Figure 13 of the paper: relabeling 1 -> 5, 2 -> 1, 5 -> 2 moves
        // adjacency entries without changing the graph.
        let mut coo = crate::CooMatrix::new(3, 3);
        coo.extend([(0, 1, 1.0), (1, 1, 2.0)]);
        let m = coo.to_csr();
        // swap nodes 0 and 2
        let p = m.permute_symmetric(&[2, 1, 0]);
        assert_eq!(p.to_dense().get(2, 1), 1.0);
        assert_eq!(p.to_dense().get(1, 1), 2.0);
    }

    #[test]
    fn row_slices_match_per_row_accessors() {
        let m = sample();
        let p = m.pattern();
        let slices: Vec<&[u32]> = p.row_slices(0..p.rows()).collect();
        assert_eq!(slices.len(), p.rows());
        for (r, slice) in slices.iter().enumerate() {
            assert_eq!(*slice, p.row_indices(r));
        }
        for (r, (cols, vals)) in m.row_slices(0..m.rows()).enumerate() {
            assert_eq!(cols, m.row_indices(r));
            assert_eq!(vals, m.row_values(r));
        }
    }

    #[test]
    fn row_slices_honor_sub_ranges() {
        let p = CsrPattern::dense(5, 3);
        let slices: Vec<&[u32]> = p.row_slices(2..4).collect();
        assert_eq!(slices, vec![&[0u32, 1, 2][..]; 2]);
        assert_eq!(p.row_slices(2..4).len(), 2, "exact size");
        assert_eq!(p.row_slices(3..3).count(), 0, "empty range");
        // Empty rows yield empty slices, not skipped entries.
        let e = CsrPattern::empty(3, 3);
        let empties: Vec<&[u32]> = e.row_slices(0..3).collect();
        assert_eq!(empties, vec![&[] as &[u32]; 3]);
    }

    #[test]
    #[should_panic]
    fn row_slices_bounds_checked() {
        let p = CsrPattern::dense(2, 2);
        let _ = p.row_slices(0..3);
    }

    #[test]
    fn row_nnz_counts_segments() {
        let m = sample();
        assert_eq!(m.pattern().row_nnz(0), 2);
        assert_eq!(m.pattern().row_nnz(1), 1);
    }

    #[test]
    fn map_values_scales() {
        let mut m = sample();
        m.map_values_in_place(|v| v * 2.0);
        assert_eq!(m.row_values(1), &[6.0]);
    }

    #[test]
    fn display_reports_nnz() {
        assert!(format!("{}", sample()).contains("nnz = 3"));
    }
}
