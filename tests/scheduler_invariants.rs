//! Scheduler-invariance test battery: for every engine × scheduler ×
//! seeded workload, multi-PE cluster scheduling must be strictly post-hoc
//! — total MACs, DRAM traffic (compulsory bytes included), per-phase
//! cycles, and per-cluster cycle sums are bit-identical across schedulers;
//! only the assignment-dependent multi-PE summary (makespan, per-PE
//! utilization, imbalance) may differ.

use grow::accel::registry::{self, ENGINE_NAMES};
use grow::accel::schedule::SCHEDULER_NAMES;
use grow::accel::{prepare, PartitionStrategy, PreparedWorkload, RunReport};
use grow::model::{DatasetKey, DatasetSpec};

/// The seeded invariance workloads: both golden datasets, partitioned
/// fine enough that the scheduler has real clusters to assign.
fn workloads() -> Vec<(&'static str, PreparedWorkload)> {
    let cases: [(&str, DatasetSpec, u64); 2] = [
        ("cora_400_s3", DatasetKey::Cora.spec().scaled_to(400), 3),
        ("pubmed_600_s7", DatasetKey::Pubmed.spec().scaled_to(600), 7),
    ];
    cases
        .into_iter()
        .map(|(name, spec, seed)| {
            let workload = spec.instantiate(seed);
            let prepared = prepare(
                &workload,
                PartitionStrategy::Multilevel { cluster_nodes: 100 },
                4096,
            );
            assert!(prepared.clusters.len() > 2, "{name}: needs real clusters");
            (name, prepared)
        })
        .collect()
}

fn run(engine: &str, scheduler: &str, pes: &str, prepared: &PreparedWorkload) -> RunReport {
    registry::engine_from_overrides(engine, &[("scheduler", scheduler), ("pes", pes)])
        .expect("registered engine and scheduler")
        .run(prepared)
}

#[test]
fn schedulers_never_change_modeled_work_or_traffic() {
    for (name, prepared) in workloads() {
        for engine in ENGINE_NAMES {
            let baseline = run(engine, "rr", "4", &prepared);
            for scheduler in SCHEDULER_NAMES {
                let report = run(engine, scheduler, "4", &prepared);
                // Everything the phase simulators model is bit-identical:
                // layers carry cycles, MACs, per-class traffic, cache and
                // SRAM counters, and the per-cluster profiles.
                assert_eq!(
                    report.layers, baseline.layers,
                    "{name}/{engine}/{scheduler}: phase counters shifted"
                );
                assert_eq!(report.mac_ops(), baseline.mac_ops());
                assert_eq!(report.dram_bytes(), baseline.dram_bytes());
                assert_eq!(report.total_cycles(), baseline.total_cycles());
                // Per-cluster cycle sums (the multi-PE model's inputs).
                let sums = |r: &RunReport| {
                    r.cluster_profiles().iter().fold((0u64, 0u64), |acc, p| {
                        (acc.0 + p.compute_cycles, acc.1 + p.mem_bytes)
                    })
                };
                assert_eq!(
                    sums(&report),
                    sums(&baseline),
                    "{name}/{engine}/{scheduler}"
                );

                // The summary reflects the requested axis.
                let summary = report.multi_pe.expect("summary attached");
                assert_eq!(summary.scheduler, scheduler);
                assert_eq!(summary.pes, 4);
                assert_eq!(summary.per_pe_busy.len(), 4);
                assert!(summary.makespan > 0.0);
                assert!(summary.imbalance >= 1.0 - 1e-12);
            }
        }
    }
}

#[test]
fn work_stealing_makespan_never_exceeds_round_robin() {
    for (name, prepared) in workloads() {
        for engine in ENGINE_NAMES {
            for pes in ["2", "4", "8"] {
                let rr = run(engine, "rr", pes, &prepared)
                    .multi_pe
                    .expect("summary")
                    .makespan;
                let ws = run(engine, "ws", pes, &prepared)
                    .multi_pe
                    .expect("summary")
                    .makespan;
                assert!(
                    ws <= rr * (1.0 + 1e-9),
                    "{name}/{engine}/pes={pes}: ws {ws} vs rr {rr}"
                );
            }
        }
    }
}

#[test]
fn schedulers_do_differ_where_it_is_allowed() {
    // The invariance above would hold vacuously if every scheduler
    // produced the same assignment; make sure the axis is live — on a
    // skewed workload some engine × PE point must show ws beating rr.
    let mut any_difference = false;
    for (_, prepared) in workloads() {
        let rr = run("grow", "rr", "4", &prepared).multi_pe.expect("summary");
        let ws = run("grow", "ws", "4", &prepared).multi_pe.expect("summary");
        if ws.makespan < rr.makespan || ws.per_pe_busy != rr.per_pe_busy {
            any_difference = true;
        }
    }
    assert!(
        any_difference,
        "work-stealing never diverged from round-robin on any workload"
    );
}

#[test]
fn single_pe_reports_are_scheduler_independent() {
    // With one PE there is nothing to assign: every scheduler serializes
    // the same per-cluster durations. lpt and ws visit them
    // heaviest-first rather than in index order, so totals agree up to
    // float accumulation order.
    for (name, prepared) in workloads() {
        for engine in ENGINE_NAMES {
            let rr = run(engine, "rr", "1", &prepared).multi_pe.expect("summary");
            for scheduler in ["lpt", "ws"] {
                let other = run(engine, scheduler, "1", &prepared)
                    .multi_pe
                    .expect("summary");
                let rel = (other.makespan - rr.makespan).abs() / rr.makespan.max(1.0);
                assert!(rel < 1e-9, "{name}/{engine}: {scheduler} diverged by {rel}");
            }
        }
    }
}
