//! Randomized-input tests over the full pipeline: seeded random community
//! graphs through preparation and both primary engines, checking
//! conservation invariants that must hold for *any* input.
//!
//! (Formerly proptest-based; the offline build has no crates.io access, so
//! cases are drawn from the workspace's own seeded PRNG instead — same
//! properties, deterministic case set.)

use grow::accel::{prepare, Accelerator, GcnaxEngine, GrowConfig, GrowEngine, PartitionStrategy};
use grow::graph::CommunityGraphSpec;
use grow::model::{DatasetKey, GcnWorkload};
use grow::sim::TrafficClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One random small dataset spec (nodes, degree, densities, seed).
fn random_workload(rng: &mut StdRng) -> GcnWorkload {
    let nodes = rng.random_range(60usize..400);
    let mut spec = DatasetKey::Pubmed.spec().scaled_to(nodes);
    spec.avg_degree = rng.random_range(2.0f64..12.0);
    spec.x0_density = rng.random_range(0.02f64..1.0);
    spec.x1_density = rng.random_range(0.3f64..1.0);
    spec.instantiate(rng.random_range(0u64..1000))
}

const CASES: usize = 16;

#[test]
fn mac_invariance_across_engines() {
    let mut rng = StdRng::seed_from_u64(0x9a11);
    for case in 0..CASES {
        let w = random_workload(&mut rng);
        let base = prepare(&w, PartitionStrategy::None, 4096);
        let grow = GrowEngine::default().run(&base);
        let gcnax = GcnaxEngine::default().run(&base);
        assert_eq!(grow.mac_ops(), gcnax.mac_ops(), "case {case}");
    }
}

#[test]
fn probe_conservation() {
    let mut rng = StdRng::seed_from_u64(0x9a12);
    for case in 0..CASES {
        let w = random_workload(&mut rng);
        let base = prepare(&w, PartitionStrategy::None, 4096);
        let r = GrowEngine::default().run(&base);
        let c = r.aggregation_cache();
        assert_eq!(
            c.hits + c.misses,
            2 * base.adjacency.nnz() as u64,
            "case {case}"
        );
    }
}

#[test]
fn traffic_conservation() {
    let mut rng = StdRng::seed_from_u64(0x9a13);
    for case in 0..CASES {
        let w = random_workload(&mut rng);
        let base = prepare(&w, PartitionStrategy::None, 4096);
        for report in [
            GrowEngine::default().run(&base),
            GcnaxEngine::default().run(&base),
        ] {
            let t = report.total_traffic();
            for class in TrafficClass::ALL {
                assert!(
                    t.useful_bytes(class) <= t.fetched_bytes(class),
                    "case {case} class {}",
                    class.label()
                );
            }
            assert!(t.total_fetched() > 0, "case {case}");
        }
    }
}

#[test]
fn partitioning_preserves_work() {
    let mut rng = StdRng::seed_from_u64(0x9a14);
    for case in 0..CASES {
        let w = random_workload(&mut rng);
        let base = prepare(&w, PartitionStrategy::None, 4096);
        let parted = prepare(
            &w,
            PartitionStrategy::Multilevel { cluster_nodes: 64 },
            4096,
        );
        assert_eq!(base.adjacency.nnz(), parted.adjacency.nnz(), "case {case}");
        let r0 = GrowEngine::default().run(&base);
        let r1 = GrowEngine::default().run(&parted);
        assert_eq!(r0.mac_ops(), r1.mac_ops(), "case {case}");
        // Output traffic (useful) identical: same rows written.
        assert_eq!(
            r0.total_traffic().useful_bytes(TrafficClass::Output),
            r1.total_traffic().useful_bytes(TrafficClass::Output),
            "case {case}"
        );
    }
}

#[test]
fn smaller_cache_never_hits_more() {
    let mut rng = StdRng::seed_from_u64(0x9a15);
    for case in 0..CASES {
        let w = random_workload(&mut rng);
        let base = prepare(&w, PartitionStrategy::None, 4096);
        let big = GrowEngine::new(GrowConfig {
            hdn_cache_bytes: 256 * 1024,
            ..GrowConfig::default()
        })
        .run(&base);
        let small = GrowEngine::new(GrowConfig {
            hdn_cache_bytes: 8 * 1024,
            ..GrowConfig::default()
        })
        .run(&base);
        let hb = big.aggregation_cache().hits;
        let hs = small.aggregation_cache().hits;
        assert!(
            hs <= hb,
            "case {case}: small cache hits {hs} > big cache hits {hb}"
        );
    }
}

#[test]
fn cluster_layouts_partition_the_node_set() {
    use grow::partition::{multilevel_partition, ClusterLayout, MultilevelConfig};
    let mut rng = StdRng::seed_from_u64(0x9a16);
    for case in 0..CASES {
        let nodes = rng.random_range(50usize..300);
        let parts = rng.random_range(2usize..12);
        let seed = rng.random_range(0u64..500);
        let g = CommunityGraphSpec {
            nodes,
            avg_degree: 6.0,
            communities: parts,
            intra_fraction: 0.8,
            power_law_exponent: 2.5,
            shuffle_fraction: 1.0,
        }
        .generate(seed);
        let p = multilevel_partition(&g, parts, &MultilevelConfig::default());
        let layout = ClusterLayout::from_partitioning(&p);
        let covered: usize = layout.ranges().iter().map(|r| r.len()).sum();
        assert_eq!(covered, nodes, "case {case}");
        let mut seen = vec![false; nodes];
        for &x in layout.permutation() {
            assert!(!seen[x as usize], "case {case}: duplicate {x}");
            seen[x as usize] = true;
        }
    }
}
