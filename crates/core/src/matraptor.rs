//! The MatRaptor baseline (Srivastava et al., MICRO 2020): a row-wise
//! product sparse-sparse GEMM accelerator with no RHS caching.
//!
//! Section VII-H attributes GROW's 9.3x average speedup (and 18x average /
//! 46x maximum traffic reduction) over MatRaptor to three factors, all
//! modeled here: no cache means every non-zero re-fetches its RHS row
//! (catastrophic in combination, where the small dense `W` is re-fetched
//! per `X` non-zero), CSR-compressed RHS adds 50% metadata bytes, and
//! sorting-queue-based partial-sum merging occupies the pipeline.

use grow_sim::{DramConfig, FaultPlan};

use crate::plan::ShardRows;
use crate::spsp::{run_spsp, spsp_engine, SpSpParams};
use crate::{Accelerator, PreparedWorkload, RunReport};

/// MatRaptor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatRaptorConfig {
    /// MAC lanes (iso-throughput with GROW, Section VI).
    pub mac_lanes: usize,
    /// Off-chip memory parameters.
    pub dram: DramConfig,
    /// Merge occupancy relative to a MAC op (sorting queues: 1.0).
    pub merge_factor: f64,
    /// Intra-cluster sharding of the row-accounting plan pass (the
    /// uniform `shard_rows=` override). Bit-identical at any setting.
    pub shard_rows: ShardRows,
    /// Multi-PE projection (Figure 24): PE count and cluster scheduler.
    pub multi_pe: crate::schedule::MultiPeConfig,
    /// Deterministic fault-injection plan (the uniform `fault=` override;
    /// off by default).
    pub fault: FaultPlan,
}

impl Default for MatRaptorConfig {
    fn default() -> Self {
        MatRaptorConfig {
            mac_lanes: 16,
            dram: DramConfig::default(),
            merge_factor: 1.0,
            shard_rows: ShardRows::Off,
            multi_pe: crate::schedule::MultiPeConfig::default(),
            fault: FaultPlan::OFF,
        }
    }
}

/// The MatRaptor accelerator timing model.
#[derive(Debug, Clone, Default)]
pub struct MatRaptorEngine {
    config: MatRaptorConfig,
}

impl MatRaptorEngine {
    /// Creates an engine with an explicit configuration.
    pub fn new(config: MatRaptorConfig) -> Self {
        MatRaptorEngine { config }
    }

    /// The engine configuration.
    pub fn config(&self) -> &MatRaptorConfig {
        &self.config
    }

    fn params(&self) -> SpSpParams {
        SpSpParams {
            name: "MatRaptor",
            mac_lanes: self.config.mac_lanes,
            dram: self.config.dram,
            fiber_cache_bytes: 0,
            merge_factor: self.config.merge_factor,
            // MatRaptor's on-chip storage is its sorting queue array
            // (~12 queues x a few KB) plus stream buffers.
            sram_kb: 64.0,
            shard_rows: self.config.shard_rows,
            multi_pe: self.config.multi_pe,
            fault: self.config.fault,
        }
    }
}

spsp_engine!(MatRaptorEngine, MatRaptorConfig);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, GrowEngine, PartitionStrategy};
    use grow_model::DatasetKey;
    use grow_sim::TrafficClass;

    fn prepared(nodes: usize) -> PreparedWorkload {
        let w = DatasetKey::Pubmed.spec().scaled_to(nodes).instantiate(3);
        prepare(&w, PartitionStrategy::None, 4096)
    }

    #[test]
    fn no_cache_means_no_hits() {
        let p = prepared(600);
        let r = MatRaptorEngine::default().run(&p);
        for l in &r.layers {
            assert_eq!(l.aggregation.cache.hits, 0);
            assert_eq!(l.combination.cache.hits, 0);
        }
    }

    #[test]
    fn weight_refetch_dominates_combination() {
        // Without caching, every X non-zero fetches a W row from DRAM.
        let p = prepared(600);
        let r = MatRaptorEngine::default().run(&p);
        let comb = &r.layers[0].combination;
        let x_nnz = p.layers[0].x.nnz() as u64;
        assert_eq!(comb.traffic.requests(TrafficClass::Weights), x_nnz);
    }

    #[test]
    fn far_more_traffic_than_grow() {
        // Section VII-H: 18x average traffic reduction for GROW.
        let p = prepared(1000);
        let mat = MatRaptorEngine::default().run(&p);
        let grow = GrowEngine::default().run(&p);
        let ratio = mat.dram_bytes() as f64 / grow.dram_bytes() as f64;
        assert!(ratio > 4.0, "traffic ratio {ratio}");
        assert_eq!(
            mat.mac_ops(),
            grow.mac_ops(),
            "same MACs, different movement"
        );
    }

    #[test]
    fn merge_overhead_occupies_pipeline() {
        let p = prepared(400);
        let with_merge = MatRaptorEngine::default().run(&p);
        let without = MatRaptorEngine::new(MatRaptorConfig {
            merge_factor: 0.0,
            ..MatRaptorConfig::default()
        })
        .run(&p);
        assert!(
            with_merge.layers[0].aggregation.compute_busy
                > without.layers[0].aggregation.compute_busy
        );
    }

    #[test]
    fn deterministic() {
        let p = prepared(300);
        let e = MatRaptorEngine::default();
        assert_eq!(e.run(&p), e.run(&p));
    }

    #[test]
    fn sharded_rows_are_bit_identical_to_unsharded() {
        // The shard_rows contract ported to the cacheless row walk: the
        // per-row plan over any range partition concatenates to the
        // unsharded plan, in every execution mode.
        use crate::plan::ShardRows;
        let p = prepared(2000);
        let base = MatRaptorEngine::default().run(&p);
        for shard in [
            ShardRows::Fixed(64),
            ShardRows::Fixed(257),
            ShardRows::Fixed(1999),
            ShardRows::Auto,
        ] {
            let e = MatRaptorEngine::new(MatRaptorConfig {
                shard_rows: shard,
                ..MatRaptorConfig::default()
            });
            let sharded = grow_sim::exec::with_workers(4, || e.run(&p));
            assert_eq!(base, sharded, "{shard:?} parallel");
            let serial = grow_sim::exec::with_mode(grow_sim::ExecMode::Serial, || e.run(&p));
            assert_eq!(base, serial, "{shard:?} serial");
        }
    }
}
