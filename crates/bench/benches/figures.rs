//! Criterion benches: one group per paper table/figure, exercising the
//! exact code path that regenerates it at a CI-friendly scale.
//!
//! These measure the *simulator's* wall-clock cost; the simulated results
//! themselves (the paper's numbers) come from the `experiments` binary,
//! which runs the same functions at full surrogate scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use grow_core::experiments::{self, DatasetEval};
use grow_core::{
    Accelerator, GammaEngine, GcnaxEngine, GrowConfig, GrowEngine, MatRaptorEngine,
};
use grow_model::DatasetKey;
use grow_sparse::analysis::{self, FIG5A_BOUNDS};
use grow_sparse::RowMajorSparse;

fn bench_eval() -> DatasetEval {
    DatasetEval::from_spec(DatasetKey::Pubmed.spec().scaled_to(4000), 42)
}

fn table1_datasets(c: &mut Criterion) {
    c.bench_function("table1_dataset_generation", |b| {
        b.iter(|| {
            let spec = DatasetKey::Cora.spec().scaled_to(1000);
            black_box(spec.instantiate(7).graph.directed_edges())
        })
    });
}

fn fig2_mac_counts(c: &mut Criterion) {
    let eval = bench_eval();
    c.bench_function("fig2_mac_counts", |b| {
        b.iter(|| {
            let l = &eval.workload.layers[0];
            black_box(analysis::gcn_mac_counts(&eval.base.adjacency, &l.x.view(), l.f_out))
        })
    });
}

fn fig5_tile_histogram(c: &mut Criterion) {
    let eval = bench_eval();
    c.bench_function("fig5_tile_histogram", |b| {
        b.iter(|| {
            black_box(analysis::tile_nnz_histogram(
                &RowMajorSparse::Pattern(&eval.base.adjacency),
                128,
                128,
                FIG5A_BOUNDS,
            ))
        })
    });
}

fn fig6_fig7_gcnax(c: &mut Criterion) {
    let eval = bench_eval();
    let engine = GcnaxEngine::default();
    c.bench_function("fig6_fig7_gcnax_run", |b| {
        b.iter(|| black_box(engine.run(&eval.base).total_cycles()))
    });
}

fn fig17_fig18_fig20_grow(c: &mut Criterion) {
    let eval = bench_eval();
    let engine = GrowEngine::default();
    let mut g = c.benchmark_group("fig17_fig18_fig20_grow");
    g.bench_function("without_partitioning", |b| {
        b.iter(|| black_box(engine.run(&eval.base).total_cycles()))
    });
    g.bench_function("with_partitioning", |b| {
        b.iter(|| black_box(engine.run(&eval.partitioned).total_cycles()))
    });
    g.finish();
}

fn fig19_fig21_ablations(c: &mut Criterion) {
    let eval = bench_eval();
    c.bench_function("fig19_traffic_ablation", |b| {
        b.iter(|| black_box(experiments::traffic_ablation(&eval, &GrowConfig::default())))
    });
}

fn fig24_multi_pe(c: &mut Criterion) {
    let eval = bench_eval();
    let profiles = GrowEngine::default().run(&eval.partitioned).cluster_profiles();
    c.bench_function("fig24_multi_pe_fluid", |b| {
        b.iter(|| black_box(grow_core::multi_pe::simulate(&profiles, 16, 128.0)))
    });
}

fn fig25_sweeps(c: &mut Criterion) {
    let eval = bench_eval();
    c.bench_function("fig25a_runahead_point", |b| {
        let cfg = GrowConfig { runahead: 4, ldn_entries: 4, ..GrowConfig::default() };
        let engine = GrowEngine::new(cfg);
        b.iter(|| black_box(engine.run(&eval.partitioned).total_cycles()))
    });
}

fn fig26_spsp(c: &mut Criterion) {
    let eval = bench_eval();
    let mat = MatRaptorEngine::default();
    let gamma = GammaEngine::default();
    let mut g = c.benchmark_group("fig26_spsp_baselines");
    g.bench_function("matraptor", |b| b.iter(|| black_box(mat.run(&eval.base).total_cycles())));
    g.bench_function("gamma", |b| b.iter(|| black_box(gamma.run(&eval.base).total_cycles())));
    g.finish();
}

fn preprocessing(c: &mut Criterion) {
    // The one-time software cost of Section V-C (not charged to inference).
    let w = DatasetKey::Pubmed.spec().scaled_to(4000).instantiate(42);
    c.bench_function("fig13_partition_preprocessing", |b| {
        b.iter(|| {
            black_box(grow_core::prepare(
                &w,
                grow_core::PartitionStrategy::Multilevel { cluster_nodes: 512 },
                4096,
            ))
        })
    });
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = figures;
    config = configure();
    targets = table1_datasets, fig2_mac_counts, fig5_tile_histogram, fig6_fig7_gcnax,
        fig17_fig18_fig20_grow, fig19_fig21_ablations, fig24_multi_pe, fig25_sweeps,
        fig26_spsp, preprocessing
}
criterion_main!(figures);
