//! Sparse and dense matrix substrate for the GROW reproduction.
//!
//! The GROW accelerator (HPCA 2023) and all of its baselines operate on
//! sparse-dense GEMM (`SpDeGEMM`) workloads where the left-hand side is a
//! compressed sparse matrix (CSR for GROW/MatRaptor/GAMMA, CSC for GCNAX)
//! and the right-hand side is dense. This crate provides:
//!
//! * storage formats: [`CooMatrix`], [`CsrMatrix`] / [`CsrPattern`],
//!   [`CscMatrix`], and row-major [`DenseMatrix`];
//! * lossless conversions between all formats;
//! * reference kernels in [`ops`] (row-wise/Gustavson SpMM, dense GEMM, and
//!   the two GCN execution orders `(A*X)*W` and `A*(X*W)`), used as ground
//!   truth by the cycle-level simulators;
//! * workload analyses in [`analysis`] that regenerate the paper's Figure 2
//!   (MAC counts per execution order) and Figure 5 (non-zeros per 2D tile).
//!
//! # Example
//!
//! ```
//! use grow_sparse::{CooMatrix, DenseMatrix, ops};
//!
//! # fn main() -> Result<(), grow_sparse::SparseError> {
//! let mut coo = CooMatrix::new(2, 3);
//! coo.push(0, 0, 1.0)?;
//! coo.push(1, 2, 2.0)?;
//! let a = coo.to_csr();
//! let b = DenseMatrix::identity(3);
//! let c = ops::spmm(&a, &b)?;
//! assert_eq!(c.get(1, 2), 2.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csc;
mod csr;
mod dense;
mod error;
mod view;

pub mod analysis;
pub mod ops;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::{CsrMatrix, CsrPattern, RowSlices, RowValueSlices};
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use view::{RowMajorSparse, SparseRowIter};
