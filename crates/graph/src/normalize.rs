use grow_sparse::{CooMatrix, CsrMatrix};

use crate::Graph;

/// Computes the symmetrically normalized adjacency matrix with self-loops,
/// `A_hat = D^{-1/2} (A + I) D^{-1/2}`.
///
/// The paper (Section II-A) notes that `A` is "typically normalized to
/// prevent it from changing its scale" and that normalization happens
/// offline as a one-time preprocessing step; the matrix called `A`
/// throughout the evaluation is this normalized version. Self-loops are the
/// Kipf & Welling renormalization-trick convention.
///
/// ```
/// use grow_graph::{normalized_adjacency, Graph};
///
/// let g = Graph::from_edges(2, [(0, 1)]);
/// let a = normalized_adjacency(&g);
/// assert_eq!(a.nnz(), 4); // two edges + two self-loops
/// // Row sums of D^{-1/2}(A+I)D^{-1/2} for a symmetric 2-cycle are 1.
/// let row_sum: f64 = a.row_values(0).iter().sum();
/// assert!((row_sum - 1.0).abs() < 1e-12);
/// ```
pub fn normalized_adjacency(graph: &Graph) -> CsrMatrix {
    let n = graph.nodes();
    let inv_sqrt: Vec<f64> = (0..n)
        .map(|v| 1.0 / ((graph.degree(v) + 1) as f64).sqrt())
        .collect();
    let mut coo = CooMatrix::with_capacity(n, n, graph.directed_edges() + n);
    for v in 0..n {
        coo.push(v, v, inv_sqrt[v] * inv_sqrt[v])
            .expect("diagonal in bounds");
        for &u in graph.neighbors(v) {
            coo.push(v, u as usize, inv_sqrt[v] * inv_sqrt[u as usize])
                .expect("edge in bounds");
        }
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_self_loops() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let a = normalized_adjacency(&g);
        // isolated node 2 still gets a self-loop of weight 1.
        assert_eq!(a.row_entries(2).collect::<Vec<_>>(), vec![(2, 1.0)]);
        assert_eq!(a.nnz(), 2 + 3);
    }

    #[test]
    fn normalization_is_symmetric() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let a = normalized_adjacency(&g);
        let t = a.transpose();
        assert!(a.to_dense().approx_eq(&t.to_dense(), 1e-12));
    }

    #[test]
    fn values_match_degree_formula() {
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]);
        let a = normalized_adjacency(&g);
        // deg(0)=2, deg(1)=1 -> weight(0,1) = 1/sqrt(3*2).
        let expected = 1.0 / (3.0f64 * 2.0).sqrt();
        let got = a
            .row_entries(0)
            .find(|&(c, _)| c == 1)
            .map(|(_, v)| v)
            .expect("edge present");
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn spectral_radius_at_most_one() {
        // Power iteration: the normalized adjacency with self-loops has
        // spectral radius <= 1, which is why GCNs use it (features cannot
        // blow up across layers).
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let a = normalized_adjacency(&g);
        let mut v = vec![1.0f64; 5];
        for _ in 0..50 {
            let mut next = vec![0.0f64; 5];
            for (r, slot) in next.iter_mut().enumerate() {
                for (c, w) in a.row_entries(r) {
                    *slot += w * v[c as usize];
                }
            }
            let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
            for x in &mut next {
                *x /= norm;
            }
            v = next;
        }
        let mut av = [0.0f64; 5];
        for (r, slot) in av.iter_mut().enumerate() {
            for (c, w) in a.row_entries(r) {
                *slot += w * v[c as usize];
            }
        }
        let lambda = av.iter().zip(&v).map(|(a, b)| a * b).sum::<f64>();
        assert!(lambda <= 1.0 + 1e-9, "spectral radius {lambda} > 1");
    }
}
