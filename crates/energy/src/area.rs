use std::fmt;

/// Quadratic technology-scaling factor from 65 nm to 40 nm: `(40/65)^2`.
///
/// The paper measures GROW at 65 nm and reports estimated 40 nm numbers
/// for comparison with GCNAX (Table IV): "we scale our area estimations
/// from our 65 nm results".
pub const TECH_SCALE_65_TO_40: f64 = (40.0 / 65.0) * (40.0 / 65.0);

/// The measured 65 nm component areas of Table IV, in mm²:
/// (MAC array, I-BUF_sparse, HDN ID list, HDN cache, O-BUF_dense, others).
pub const GROW_AREA_65NM: [(&str, f64); 6] = [
    ("MAC array", 0.613),
    ("I-BUF_sparse", 0.319),
    ("HDN ID list", 1.112),
    ("HDN cache", 3.569),
    ("O-BUF_dense", 0.113),
    ("Others", 0.059),
];

/// GCNAX's reported total area at 40 nm, mm² (Table IV).
pub const GCNAX_AREA_40NM: f64 = 6.51;

/// A per-component area estimate, in mm².
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// `(component name, area in mm²)` pairs.
    pub components: Vec<(&'static str, f64)>,
}

impl AreaBreakdown {
    /// Total area in mm².
    pub fn total(&self) -> f64 {
        self.components.iter().map(|&(_, a)| a).sum()
    }

    /// Scales every component by `factor` (e.g. [`TECH_SCALE_65_TO_40`]).
    pub fn scaled(&self, factor: f64) -> AreaBreakdown {
        AreaBreakdown {
            components: self
                .components
                .iter()
                .map(|&(n, a)| (n, a * factor))
                .collect(),
        }
    }

    /// Area of a named component, if present.
    pub fn component(&self, name: &str) -> Option<f64> {
        self.components
            .iter()
            .find(|&&(n, _)| n == name)
            .map(|&(_, a)| a)
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, area) in &self.components {
            writeln!(f, "  {name:<14} {area:8.3} mm2")?;
        }
        writeln!(f, "  {:<14} {:8.3} mm2", "Total", self.total())
    }
}

/// The RTL-synthesis-derived area model of Table IV.
///
/// Per-unit densities are back-derived from the measured 65 nm components
/// (e.g. the 512 KB HDN cache measures 3.569 mm² => ~6.97 mm²/MB of
/// banked single-ported SRAM; the 4096-entry CAM measures 1.112 mm²), so
/// alternative configurations — different cache sizes, PE counts, or the
/// extra comparator array discussed in Section VIII — can be sized
/// consistently with the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// mm² per MAC lane at 65 nm (0.613 / 16 lanes).
    pub mac_lane_mm2: f64,
    /// mm² per KB of dual-ported SRAM (I-BUF_sparse: 0.319 / 12 KB).
    pub sram_dual_port_mm2_per_kb: f64,
    /// mm² per KB of single-ported banked SRAM (HDN cache: 3.569 / 512 KB).
    pub sram_single_port_mm2_per_kb: f64,
    /// mm² per CAM entry (HDN ID list: 1.112 / 4096 entries).
    pub cam_entry_mm2: f64,
    /// mm² per KB of flip-flop storage (O-BUF_dense: 0.113 / 2 KB).
    pub flipflop_mm2_per_kb: f64,
    /// Fixed control/other logic, mm² (Table IV "Others").
    pub others_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            mac_lane_mm2: 0.613 / 16.0,
            sram_dual_port_mm2_per_kb: 0.319 / 12.0,
            sram_single_port_mm2_per_kb: 3.569 / 512.0,
            cam_entry_mm2: 1.112 / 4096.0,
            flipflop_mm2_per_kb: 0.113 / 2.0,
            others_mm2: 0.059,
        }
    }
}

impl AreaModel {
    /// Area of a GROW instance at 65 nm for the given configuration
    /// (Table III defaults: 16 MACs, 12 KB I-BUF, 4096-entry HDN ID list,
    /// 512 KB HDN cache, 2 KB O-BUF).
    pub fn grow_65nm(
        &self,
        macs: usize,
        ibuf_sparse_kb: f64,
        hdn_id_entries: usize,
        hdn_cache_kb: f64,
        obuf_kb: f64,
    ) -> AreaBreakdown {
        AreaBreakdown {
            components: vec![
                ("MAC array", self.mac_lane_mm2 * macs as f64),
                (
                    "I-BUF_sparse",
                    self.sram_dual_port_mm2_per_kb * ibuf_sparse_kb,
                ),
                ("HDN ID list", self.cam_entry_mm2 * hdn_id_entries as f64),
                ("HDN cache", self.sram_single_port_mm2_per_kb * hdn_cache_kb),
                ("O-BUF_dense", self.flipflop_mm2_per_kb * obuf_kb),
                ("Others", self.others_mm2),
            ],
        }
    }

    /// The default Table III configuration at 65 nm — reproduces the
    /// measured column of Table IV.
    pub fn grow_default_65nm(&self) -> AreaBreakdown {
        self.grow_65nm(16, 12.0, 4096, 512.0, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reproduces_table4_measured_column() {
        let model = AreaModel::default();
        let area = model.grow_default_65nm();
        for (name, expected) in GROW_AREA_65NM {
            let got = area.component(name).expect("component present");
            assert!(
                (got - expected).abs() < 1e-9,
                "{name}: got {got}, Table IV says {expected}"
            );
        }
        assert!(
            (area.total() - 5.785).abs() < 1e-9,
            "total {}",
            area.total()
        );
    }

    #[test]
    fn scaling_reproduces_table4_estimated_column() {
        let area = AreaModel::default()
            .grow_default_65nm()
            .scaled(TECH_SCALE_65_TO_40);
        // Table IV estimated 40 nm numbers (rounded to 3 decimals in print).
        assert!((area.component("MAC array").unwrap() - 0.232).abs() < 2e-3);
        assert!((area.component("HDN cache").unwrap() - 1.352).abs() < 2e-3);
        assert!(
            (area.total() - 2.191).abs() < 1e-2,
            "total {}",
            area.total()
        );
    }

    #[test]
    fn grow_beats_gcnax_area_at_40nm() {
        let grow = AreaModel::default()
            .grow_default_65nm()
            .scaled(TECH_SCALE_65_TO_40);
        assert!(grow.total() < GCNAX_AREA_40NM);
    }

    #[test]
    fn sram_dominates_area() {
        // Section VII-E: "the majority of area is used by the on-chip SRAM
        // buffers (88%)".
        let area = AreaModel::default().grow_default_65nm();
        let sram: f64 = ["I-BUF_sparse", "HDN ID list", "HDN cache", "O-BUF_dense"]
            .iter()
            .map(|n| area.component(n).unwrap())
            .sum();
        let frac = sram / area.total();
        assert!((0.85..0.92).contains(&frac), "SRAM fraction {frac}");
    }

    #[test]
    fn comparator_array_overhead_band() {
        // Section VIII: a vector comparator array for SAGEConv pooling adds
        // ~1.4% area. A comparator lane is far smaller than a MAC lane;
        // sanity-check that a 16-lane comparator sized at ~13% of the MAC
        // array lands in that band.
        let model = AreaModel::default();
        let base = model.grow_default_65nm().total();
        let comparator = 0.613 * 0.13;
        let overhead = comparator / base;
        assert!((0.010..0.020).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn custom_config_scales_linearly() {
        let model = AreaModel::default();
        let half = model.grow_65nm(8, 12.0, 4096, 256.0, 2.0);
        let full = model.grow_default_65nm();
        assert!(
            half.component("MAC array").unwrap() * 2.0 - full.component("MAC array").unwrap()
                < 1e-9
        );
        assert!(half.total() < full.total());
    }
}
