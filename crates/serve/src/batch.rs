//! The batch simulation service: a queue of [`JobSpec`]s in, a vector of
//! [`JobResult`]s out — in submission order, with per-job timing and
//! error status.
//!
//! The service is built for sweep-style serving (many workloads × the
//! engine fleet × partition strategies):
//!
//! 1. **Validation first.** Every job's engine name and overrides are
//!    resolved through [`grow_core::registry`] before any preparation; a
//!    bad job fails alone, the rest of the batch proceeds.
//! 2. **Deduplicated preparation.** Jobs sharing a workload recipe
//!    (dataset spec + seed + HDN list length) share one pooled
//!    [`SimSession`]; each distinct (workload, partition strategy) pair is
//!    prepared exactly once. Preparation fans across worker threads.
//! 3. **Keyed result cache.** Completed [`RunReport`]s are cached by
//!    [`JobKey`]; duplicate jobs — within a batch or across batches — are
//!    served from cache, exactly one computation per key.
//! 4. **Deterministic fan-out.** Simulations run through
//!    [`grow_sim::exec::parallel_map`], so batch results are bit-identical
//!    between `GROW_SERIAL=1` and any thread count.

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use grow_core::registry::{self, RegistryError};
use grow_core::{
    Accelerator, ExecModelKind, PartitionStrategy, PlanCache, PreparedWorkload, RunReport,
    SchedulerKind, ShardRows,
};
use grow_model::DatasetSpec;
use grow_sim::exec::{parallel_map, with_mode, ExecMode};
use grow_sim::fault::{self, CancelReason, FaultPlan, FaultSite, SimFault};

use crate::session::{SimSession, DEFAULT_HDN_ID_ENTRIES};
use crate::store::ResultStore;

/// One simulation job, as pure data: everything needed to reproduce a
/// single engine run. Sweep definitions are lists of these.
///
/// ```
/// use grow_core::PartitionStrategy;
/// use grow_model::DatasetKey;
/// use grow_serve::JobSpec;
///
/// let job = JobSpec::new(DatasetKey::Cora.spec().scaled_to(300), 42, "grow")
///     .with_strategy(PartitionStrategy::multilevel_default())
///     .with_override("hdn_cache_kb", "256")
///     .with_override("runahead", "4");
/// assert_eq!(job.overrides, ["hdn_cache_kb=256", "runahead=4"]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Dataset recipe; the workload is instantiated deterministically from
    /// it and `seed`.
    pub dataset: DatasetSpec,
    /// Workload generation seed.
    pub seed: u64,
    /// Registry engine name (case-insensitive; see
    /// [`registry::ENGINE_NAMES`]).
    pub engine: String,
    /// Partitioning applied before simulation.
    pub strategy: PartitionStrategy,
    /// Textual `key=value` configuration overrides, applied through
    /// [`registry::engine_from_overrides`]. Malformed or unknown entries
    /// fail this job at validation time.
    pub overrides: Vec<String>,
    /// Per-cluster HDN ID list length used during preparation.
    pub hdn_id_entries: usize,
}

impl JobSpec {
    /// A default job: no partitioning, no overrides, Table III HDN list
    /// length.
    pub fn new(dataset: DatasetSpec, seed: u64, engine: &str) -> Self {
        JobSpec {
            dataset,
            seed,
            engine: engine.to_string(),
            strategy: PartitionStrategy::None,
            overrides: Vec::new(),
            hdn_id_entries: DEFAULT_HDN_ID_ENTRIES,
        }
    }

    /// Sets the partition strategy.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Appends one `key=value` override from its parts.
    pub fn with_override(mut self, key: &str, value: &str) -> Self {
        self.overrides.push(format!("{key}={value}"));
        self
    }

    /// Appends one raw override specification (validated as `key=value`
    /// when the job runs).
    pub fn with_override_spec(mut self, spec: &str) -> Self {
        self.overrides.push(spec.to_string());
        self
    }

    /// Selects the multi-PE cluster scheduler (the `scheduler=` override).
    pub fn with_scheduler(self, scheduler: SchedulerKind) -> Self {
        self.with_override("scheduler", scheduler.name())
    }

    /// Sets the multi-PE PE count (the `pes=` override).
    pub fn with_pes(self, pes: usize) -> Self {
        self.with_override("pes", &pes.to_string())
    }

    /// Selects the execution model (the `exec=` override): post-hoc
    /// multi-PE projection (the default) or end-to-end multi-PE
    /// composition, where `pes`/`scheduler` change the per-phase cycle
    /// counts themselves.
    pub fn with_exec_model(self, exec: ExecModelKind) -> Self {
        self.with_override("exec", exec.name())
    }

    /// Sets the banked-memory channel count (the `channels=` override):
    /// clusters are address-interleaved across channels by index, and
    /// memory-bound clusters co-resident on a channel pay a bank-conflict
    /// stall. `channels=1 banks=1` (the default) is the uniform fluid pipe
    /// and reproduces pre-banking reports bit-for-bit.
    pub fn with_channels(self, channels: usize) -> Self {
        self.with_override("channels", &channels.to_string())
    }

    /// Sets the per-channel bank count (the `banks=` override): more banks
    /// amortize the per-request conflict overhead of co-resident
    /// memory-bound clusters. See [`JobSpec::with_channels`].
    pub fn with_banks(self, banks: usize) -> Self {
        self.with_override("banks", &banks.to_string())
    }

    /// Sets the intra-cluster row-range sharding threshold (the
    /// `shard_rows=` override, GROW only): clusters larger than the
    /// threshold split their probe-plan pass across worker threads.
    /// Accepts a plain row count (`with_shard_rows(64)`, `0` = off) or a
    /// [`ShardRows`] variant — `ShardRows::Auto` derives the threshold
    /// from the prepared workload's cluster statistics. Purely a
    /// simulator-throughput knob — reports are bit-identical to an
    /// unsharded run.
    pub fn with_shard_rows(self, rows: impl Into<ShardRows>) -> Self {
        let value = match rows.into() {
            ShardRows::Off => "0".to_string(),
            ShardRows::Fixed(rows) => rows.to_string(),
            ShardRows::Auto => "auto".to_string(),
        };
        self.with_override("shard_rows", &value)
    }

    /// Sets the per-cluster HDN ID list length for preparation.
    pub fn with_hdn_id_entries(mut self, entries: usize) -> Self {
        self.hdn_id_entries = entries;
        self
    }

    /// Sets the deterministic fault-injection plan (the uniform `fault=`
    /// override; see [`grow_sim::fault::FaultPlan::parse`] for the
    /// `site:action[:nth[:attempts]]` grammar). A malformed spec fails the
    /// job at validation time like any other bad override. The plan
    /// participates in the job key — a faulted job never shares a cached
    /// report with its fault-free twin.
    pub fn with_fault(self, spec: &str) -> Self {
        self.with_override("fault", spec)
    }

    /// The job's canonical cache key: engine name normalized through the
    /// registry, overrides reduced to their *effective* configuration,
    /// workload recipe serialized. Two jobs with equal keys produce
    /// bit-identical reports.
    pub fn key(&self) -> JobKey {
        let engine = registry::canonical_name(&self.engine)
            .map(str::to_string)
            .unwrap_or_else(|_| self.engine.to_ascii_lowercase());
        // Overrides apply in order with last-wins semantics (matching
        // `engine_from_overrides`), so the key must too: reduce to one
        // value per key first, then sort for order independence.
        //
        // Malformed specs can never configure an engine, so they must not
        // participate in the `key=value` namespace: a raw `"runahead"`
        // folded into the same last-wins slot as a valid `runahead=4`
        // would hand a failing job the key of a runnable one — with a
        // persistent result store attached, that is a cache-poisoning
        // bug. They are kept in their own list, Debug-escaped with a `!`
        // prefix, which no runnable configuration's rendering can produce
        // (registry keys are plain identifiers).
        let mut effective: Vec<(String, String)> = Vec::new();
        let mut malformed: Vec<String> = Vec::new();
        for spec in &self.overrides {
            match registry::parse_override(spec) {
                Ok((key, value)) => match effective.iter_mut().find(|(k, _)| *k == key) {
                    Some(slot) => slot.1 = value,
                    None => effective.push((key, value)),
                },
                Err(_) => malformed.push(format!("!{spec:?}")),
            }
        }
        effective.sort();
        malformed.sort();
        malformed.dedup();
        let mut overrides: Vec<String> = effective
            .into_iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        overrides.extend(malformed);
        JobKey(format!(
            "{engine}|{:?}|[{}]|{}",
            self.strategy,
            overrides.join(","),
            self.session_key()
        ))
    }

    /// Key of the pooled session this job runs on: the workload recipe
    /// without the engine-side configuration.
    pub(crate) fn session_key(&self) -> String {
        format!(
            "{:?}|seed={}|hdn={}",
            self.dataset, self.seed, self.hdn_id_entries
        )
    }
}

/// Canonical identity of a job (see [`JobSpec::key`]): the report-cache
/// and deduplication key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobKey(String);

impl JobKey {
    /// The key's canonical string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Rebuilds a key from its canonical string form (store entries carry
    /// the key they were persisted under; the scrubber re-derives entry
    /// paths from it).
    pub(crate) fn from_raw(raw: String) -> JobKey {
        JobKey(raw)
    }
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Outcome of one job in a batch, in submission order.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Index of the job within the submitted batch.
    pub index: usize,
    /// The job's cache key.
    pub key: JobKey,
    /// Dataset name (paper figure labels).
    pub dataset: &'static str,
    /// Engine name as submitted.
    pub engine: String,
    /// The report, or the [`JobError`] that failed this job.
    pub outcome: Result<RunReport, JobError>,
    /// True when the report was served from the result cache (a duplicate
    /// of an earlier job, or computed by a previous batch).
    pub cache_hit: bool,
    /// Wall-clock time of this job's simulation in milliseconds; `None`
    /// when no simulation ran for this job (cache and store hits, failed
    /// jobs), so a sub-millisecond run is never mistaken for a hit.
    pub wall_ms: Option<f64>,
}

impl JobResult {
    /// The report, if the job succeeded.
    pub fn report(&self) -> Option<&RunReport> {
        self.outcome.as_ref().ok()
    }
}

/// Why a job failed. Validation failures surface the underlying
/// [`RegistryError`]; everything else is a supervised execution failure —
/// the job's panic or injected fault was caught, classified, and (when
/// transient) retried under the service's [`RetryPolicy`] before landing
/// here. A failed job never poisons the batch: every other job still runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job never ran: unknown engine, malformed or unknown override.
    Invalid(RegistryError),
    /// The simulation panicked (a genuine bug or an injected `panic`
    /// action) on every permitted attempt.
    Panicked {
        /// The final attempt's panic message.
        message: String,
        /// Attempts consumed (1 = no retry budget was available).
        attempts: u64,
    },
    /// A deterministic injected fault ([`SimFault::Injected`]) persisted
    /// through every permitted attempt.
    Injected {
        /// The injection site that tripped on the final attempt.
        site: FaultSite,
        /// Attempts consumed.
        attempts: u64,
    },
    /// The job was cancelled cooperatively (explicit request or deadline).
    /// Never retried: cancellation is a command, not a fault.
    Cancelled {
        /// What tripped the cancellation.
        reason: CancelReason,
    },
    /// The result store panicked while serving this job's key (injected
    /// `store_read:panic` or a real corruption bug). Permanent for the
    /// batch — recompute after a [`ResultStore::scrub`].
    StoreCorrupt {
        /// The captured panic message.
        message: String,
    },
}

impl JobError {
    /// True for failures worth retrying (panics and injected faults);
    /// false for permanent ones (validation, cancellation, store
    /// corruption).
    pub fn is_transient(&self) -> bool {
        matches!(self, JobError::Panicked { .. } | JobError::Injected { .. })
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Invalid(e) => write!(f, "invalid job: {e}"),
            JobError::Panicked { message, attempts } => {
                write!(f, "job panicked after {attempts} attempt(s): {message}")
            }
            JobError::Injected { site, attempts } => {
                write!(
                    f,
                    "injected fault at site '{site}' after {attempts} attempt(s)"
                )
            }
            JobError::Cancelled { reason } => write!(f, "job cancelled: {reason}"),
            JobError::StoreCorrupt { message } => {
                write!(f, "result store corrupt for this key: {message}")
            }
        }
    }
}

impl std::error::Error for JobError {}

impl From<RegistryError> for JobError {
    fn from(e: RegistryError) -> Self {
        JobError::Invalid(e)
    }
}

/// Deterministic retry budget for supervised job execution: a failed
/// attempt whose error [`is_transient`](JobError::is_transient) re-runs
/// immediately (backoff is counted in retry slots, not wall-clock time, so
/// serial and parallel legs retry identically) up to `max_attempts` total
/// attempts per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (clamped to >= 1).
    pub max_attempts: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, failures are final.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1 }
    }
}

impl Default for RetryPolicy {
    /// Three total attempts — enough to outlast any single-spec injected
    /// fault with `attempts <= 2`.
    fn default() -> Self {
        RetryPolicy { max_attempts: 3 }
    }
}

/// Service counters, cumulative across batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted across all batches.
    pub jobs_submitted: u64,
    /// Jobs that failed validation.
    pub jobs_failed: u64,
    /// Jobs served from the result cache without a new simulation.
    pub cache_hits: u64,
    /// Engine simulations actually executed (one per distinct job key).
    pub simulations_run: u64,
    /// Workloads instantiated into pooled sessions.
    pub sessions_created: u64,
    /// (workload, strategy) preparations executed.
    pub preparations_run: u64,
    /// Distinct job keys served from the on-disk [`ResultStore`] instead
    /// of a fresh simulation (counted once per load; the per-job hits are
    /// in [`cache_hits`](Self::cache_hits)).
    pub store_hits: u64,
    /// Pooled sessions dropped by the LRU capacity bound.
    pub sessions_evicted: u64,
    /// Extra simulation attempts consumed by the retry policy (a job that
    /// succeeds on attempt 3 adds 2 here).
    pub retries: u64,
    /// Unwinds caught by the job supervisor: injected faults, injected
    /// panics, genuine bugs, and store panics. The service itself never
    /// unwinds past a job.
    pub panics_caught: u64,
    /// Jobs whose final outcome was [`JobError::Cancelled`].
    pub jobs_cancelled: u64,
    /// Aggregation plans served from the cross-job [`PlanCache`] instead
    /// of a fresh plan pass (see [`BatchService::plan_cache`]).
    pub plan_cache_hits: u64,
    /// Peak number of jobs computing at once — the batch compute-set size
    /// for [`BatchService::run_batch`], the concurrent-worker high-water
    /// mark for [`AsyncService`](crate::AsyncService).
    pub jobs_in_flight_peak: u64,
}

/// The batch simulation service: session pool + result cache + worker
/// fan-out. See the [module docs](self) for the execution phases.
///
/// Two optional attachments turn it into a long-lived server core (the
/// configuration [`AsyncService`](crate::AsyncService) runs on):
///
/// * a [`ResultStore`] ([`with_store`](Self::with_store)) makes the
///   report cache survive process restarts;
/// * a session capacity
///   ([`with_session_capacity`](Self::with_session_capacity)) bounds the
///   otherwise unbounded session pool with least-recently-used eviction.
#[derive(Debug, Default)]
pub struct BatchService {
    sessions: HashMap<String, SimSession>,
    /// LRU bookkeeping: tick of each pooled session's last batch use.
    session_last_use: HashMap<String, u64>,
    session_clock: u64,
    session_capacity: Option<usize>,
    reports: HashMap<JobKey, RunReport>,
    store: Option<ResultStore>,
    retry: RetryPolicy,
    stats: ServiceStats,
    /// Cross-job aggregation-plan cache, scoped to the session pool:
    /// every pooled session stamps its prepared workloads with a scope
    /// into this cache, so jobs sharing a (workload, strategy, engine
    /// alignment) prefix skip the plan pass entirely.
    plan_cache: Arc<PlanCache>,
}

impl BatchService {
    /// An empty service (no pooled sessions, empty cache).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative service counters. `plan_cache_hits` reads live from the
    /// shared [`PlanCache`], so hits scored by in-flight jobs are visible
    /// the moment they land.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.stats;
        stats.plan_cache_hits = self.plan_cache.hits();
        stats
    }

    /// Number of pooled sessions (distinct workload recipes seen).
    pub fn pooled_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Number of cached reports (distinct job keys computed).
    pub fn cached_reports(&self) -> usize {
        self.reports.len()
    }

    /// The pooled [`SimSession`] a job's workload recipe maps to, if the
    /// service has instantiated it — callers can inspect the workload and
    /// its prepared forms (graph statistics, partition quality) without
    /// re-running the preprocessing.
    pub fn session_for(&self, job: &JobSpec) -> Option<&SimSession> {
        self.sessions.get(&job.session_key())
    }

    /// Attaches a persistent on-disk result store: cache misses probe the
    /// store before simulating, and every newly computed report is
    /// persisted, so repeated queries are hits across process restarts.
    /// Failed jobs are never persisted — they have no report.
    pub fn with_store(mut self, store: ResultStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches (or replaces) the persistent result store. See
    /// [`with_store`](Self::with_store).
    pub fn set_store(&mut self, store: ResultStore) {
        self.store = Some(store);
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&ResultStore> {
        self.store.as_ref()
    }

    /// Bounds the session pool to `capacity` workload recipes: after each
    /// batch, least-recently-used sessions beyond the bound are dropped
    /// (and re-instantiated on demand if the workload returns). The
    /// default is unbounded — the historical behavior, fine for sweeps,
    /// wrong for an always-on service.
    pub fn with_session_capacity(mut self, capacity: usize) -> Self {
        self.set_session_capacity(Some(capacity));
        self
    }

    /// Sets or removes the session-pool bound, evicting immediately if
    /// the pool is already over the new capacity.
    pub fn set_session_capacity(&mut self, capacity: Option<usize>) {
        self.session_capacity = capacity;
        self.evict_sessions();
    }

    /// The session-pool bound (`None` = unbounded).
    pub fn session_capacity(&self) -> Option<usize> {
        self.session_capacity
    }

    /// Sets the supervised-execution retry budget (default: 3 total
    /// attempts per job).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the retry budget in place.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The supervised-execution retry budget.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replaces the cross-job plan cache with a fresh one bounded to
    /// `capacity` plan families (default:
    /// [`PlanCache::DEFAULT_CAPACITY`]). Call before the first batch —
    /// sessions stamp the cache handle into their prepared workloads, so
    /// the pool is cleared to keep every stamp pointing at the new cache.
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache = Arc::new(PlanCache::new(capacity));
        self.sessions.clear();
        self.session_last_use.clear();
        self
    }

    /// The shared cross-job aggregation-plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Drops the in-memory session pool, result cache, cross-job plan
    /// cache, and LRU bookkeeping. Deliberately does **not** reset the
    /// cumulative
    /// [`ServiceStats`] — the counters describe the service's lifetime,
    /// not its current caches (use [`reset_stats`](Self::reset_stats) for
    /// that) — and does not touch the attached on-disk store: after a
    /// clear, previously computed keys are recomputed, or re-served from
    /// the store if one is attached.
    pub fn clear(&mut self) {
        self.sessions.clear();
        self.session_last_use.clear();
        self.session_clock = 0;
        self.reports.clear();
        self.plan_cache.clear();
    }

    /// Zeroes the cumulative counters without touching the session pool,
    /// the result cache, or the store — the complement of
    /// [`clear`](Self::clear).
    pub fn reset_stats(&mut self) {
        self.stats = ServiceStats::default();
        self.plan_cache.reset_counters();
    }

    /// Runs a single job (a batch of one).
    pub fn run_one(&mut self, job: &JobSpec) -> JobResult {
        self.run_batch(std::slice::from_ref(job))
            .pop()
            .expect("one job in, one result out")
    }

    /// Runs a batch of jobs and returns one [`JobResult`] per job, in
    /// submission order. Invalid jobs (unknown engine, malformed or
    /// unknown overrides) fail individually; every other job still runs.
    pub fn run_batch(&mut self, jobs: &[JobSpec]) -> Vec<JobResult> {
        self.stats.jobs_submitted += jobs.len() as u64;
        let keys: Vec<JobKey> = jobs.iter().map(JobSpec::key).collect();

        // Phase 1: validate every job up front — engine resolution is
        // cheap, preparation is not, so bad jobs never cost a partition.
        let validations: Vec<Result<(), RegistryError>> = jobs
            .iter()
            .map(|job| build_engine(job).map(|_| ()))
            .collect();

        // Phase 1.5: probe the on-disk store for every validated key the
        // in-memory cache cannot serve — once per distinct key. A hit
        // enters the report cache and the job is served like any other
        // cache hit; a corrupt entry is quarantined by the store and the
        // job simply computes. The probe runs supervised under the job's
        // own fault plan: a store *panic* (injected `store_read:panic`, or
        // a real bug) fails that key cleanly as [`JobError::StoreCorrupt`]
        // instead of unwinding the batch — permanent, no retry, because a
        // corrupt store will not heal by re-reading it.
        let mut store_failed: HashMap<JobKey, JobError> = HashMap::new();
        if let Some(mut store) = self.store.take() {
            let mut probed: HashSet<JobKey> = HashSet::new();
            for i in 0..jobs.len() {
                if validations[i].is_ok()
                    && !self.reports.contains_key(&keys[i])
                    && probed.insert(keys[i].clone())
                {
                    let plan = job_fault_plan(&jobs[i]);
                    let loaded = catch_unwind(AssertUnwindSafe(|| {
                        fault::with_plan(plan, || store.load(&keys[i]))
                    }));
                    match loaded {
                        Ok(Some(report)) => {
                            self.reports.insert(keys[i].clone(), report);
                            self.stats.store_hits += 1;
                        }
                        Ok(None) => {}
                        Err(payload) => {
                            self.stats.panics_caught += 1;
                            store_failed.insert(
                                keys[i].clone(),
                                JobError::StoreCorrupt {
                                    message: panic_message(payload.as_ref()),
                                },
                            );
                        }
                    }
                }
            }
            self.store = Some(store);
        }

        // Phase 2: the compute set — the first occurrence of every key
        // the report cache cannot already serve. Keys the store probe
        // failed are excluded: their verdict is already in.
        let mut claimed: HashSet<&JobKey> = HashSet::new();
        let to_compute: Vec<usize> = (0..jobs.len())
            .filter(|&i| {
                validations[i].is_ok()
                    && !self.reports.contains_key(&keys[i])
                    && !store_failed.contains_key(&keys[i])
                    && claimed.insert(&keys[i])
            })
            .collect();

        // Phase 3: deduplicated preparation. Group the compute set by
        // session key; each task owns its session (pooled ones are taken
        // out of the map for the duration), so whole workloads prepare in
        // parallel, and each session fans its own strategies too.
        struct PrepTask {
            key: String,
            session: Option<SimSession>,
            spec: DatasetSpec,
            seed: u64,
            hdn_id_entries: usize,
            strategies: Vec<PartitionStrategy>,
        }
        let mut order: Vec<String> = Vec::new();
        let mut grouped: HashMap<String, (usize, Vec<PartitionStrategy>)> = HashMap::new();
        for &i in &to_compute {
            let key = jobs[i].session_key();
            let (_, strategies) = grouped.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (i, Vec::new())
            });
            if !strategies.contains(&jobs[i].strategy) {
                strategies.push(jobs[i].strategy);
            }
        }
        let tasks: Vec<PrepTask> = order
            .into_iter()
            .map(|key| {
                let (exemplar, strategies) = grouped.remove(&key).expect("grouped by key");
                PrepTask {
                    session: self.sessions.remove(&key),
                    key,
                    spec: jobs[exemplar].dataset,
                    seed: jobs[exemplar].seed,
                    hdn_id_entries: jobs[exemplar].hdn_id_entries,
                    strategies,
                }
            })
            .collect();
        self.stats.sessions_created += tasks.iter().filter(|t| t.session.is_none()).count() as u64;
        // Fan at one level only: when several workloads prepare at once,
        // each worker runs its own strategies serially instead of nesting
        // a second thread fan-out (hardware_threads^2 CPU-bound threads).
        // A single task keeps the inner fan-out so it still parallelizes.
        let fan_tasks = tasks.len() > 1;
        let plan_cache = &self.plan_cache;
        let prepared = parallel_map(tasks, |_, task| {
            let PrepTask {
                key,
                session,
                spec,
                seed,
                hdn_id_entries,
                strategies,
            } = task;
            let mut session = session.unwrap_or_else(|| {
                let mut s = SimSession::from_spec(spec, seed);
                s.set_hdn_id_entries(hdn_id_entries);
                s.set_plan_cache(Arc::clone(plan_cache), key.clone());
                s
            });
            let newly_prepared = if fan_tasks {
                with_mode(ExecMode::Serial, || session.prepare_all(&strategies))
            } else {
                session.prepare_all(&strategies)
            };
            (key, session, newly_prepared)
        });
        for (key, session, newly_prepared) in prepared {
            self.stats.preparations_run += newly_prepared as u64;
            self.sessions.insert(key, session);
        }

        // Phase 4: fan the simulations across worker threads, each job
        // supervised. Sessions are read-only here; each worker rebuilds
        // its (validated) engine and runs it against the shared prepared
        // workload under `catch_unwind`: a panic — injected or genuine —
        // is classified into a [`JobError`] and, when transient, retried
        // up to the policy's budget. The attempt number is published
        // through the fault context so an injected fault with
        // `attempts=N` stops firing on attempt N+1, making the retried
        // run bit-identical to a fault-free one.
        self.note_in_flight(to_compute.len() as u64);
        let sessions = &self.sessions;
        // Same one-level rule as phase 3: with several jobs in flight the
        // job grain saturates the cores, so each engine's internal
        // cluster fan-out is forced serial; a lone job keeps it.
        let fan_jobs = to_compute.len() > 1;
        let max_attempts = self.retry.max_attempts.max(1);
        struct JobRun {
            index: usize,
            outcome: Result<RunReport, JobError>,
            wall_ms: f64,
            retries: u64,
            caught: u64,
        }
        let computed: Vec<JobRun> = parallel_map(to_compute, |_, i| {
            let job = &jobs[i];
            let started = Instant::now();
            let engine = build_engine(job).expect("validated in phase 1");
            let prepared = sessions
                .get(&job.session_key())
                .and_then(|s| s.get_prepared(job.strategy))
                .expect("prepared in phase 3");
            let mut retries = 0u64;
            let mut caught = 0u64;
            let mut attempt = 1u64;
            let outcome = loop {
                // A cancelled ticket stops consuming attempts before the
                // next run, not just at the engine's own check points.
                if let Some(reason) = fault::cancel_state() {
                    break Err(JobError::Cancelled { reason });
                }
                let run = fault::with_attempt(attempt, || {
                    catch_unwind(AssertUnwindSafe(|| {
                        if fan_jobs {
                            with_mode(ExecMode::Serial, || engine.run(prepared))
                        } else {
                            engine.run(prepared)
                        }
                    }))
                });
                match run {
                    Ok(report) => break Ok(report),
                    Err(payload) => {
                        caught += 1;
                        let err = classify_unwind(payload, attempt);
                        if err.is_transient() && attempt < max_attempts {
                            attempt += 1;
                            retries += 1;
                            continue;
                        }
                        break Err(err);
                    }
                }
            };
            JobRun {
                index: i,
                outcome,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                retries,
                caught,
            }
        });
        self.stats.simulations_run += computed.len() as u64;
        let mut wall_by_index: HashMap<usize, f64> = HashMap::new();
        let mut failed: HashMap<JobKey, JobError> = HashMap::new();
        for run in computed {
            self.stats.retries += run.retries;
            self.stats.panics_caught += run.caught;
            match run.outcome {
                Ok(report) => {
                    wall_by_index.insert(run.index, run.wall_ms);
                    // Only freshly computed reports of validated jobs
                    // reach this point, so a failed job can never be
                    // persisted. A store write failure — error return or
                    // panic, both injectable at the `store_write` site —
                    // costs persistence, not the batch.
                    if let Some(store) = self.store.as_mut() {
                        let plan = job_fault_plan(&jobs[run.index]);
                        let persisted = catch_unwind(AssertUnwindSafe(|| {
                            fault::with_plan(plan, || store.persist(&keys[run.index], &report))
                        }));
                        match persisted {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => eprintln!(
                                "warning: result store write failed for {}: {e}",
                                keys[run.index]
                            ),
                            Err(payload) => {
                                self.stats.panics_caught += 1;
                                eprintln!(
                                    "warning: result store write panicked for {}: {}",
                                    keys[run.index],
                                    panic_message(payload.as_ref())
                                );
                            }
                        }
                    }
                    self.reports.insert(keys[run.index].clone(), report);
                }
                Err(e) => {
                    // Duplicates of a failed key share the error; it never
                    // enters the report cache or the store, so a later
                    // batch (or a bigger retry budget) recomputes it.
                    failed.insert(keys[run.index].clone(), e);
                }
            }
        }

        // Phase 5: results in submission order, duplicates and repeats
        // served from the cache; failures resolved in precedence order —
        // validation, then store corruption, then supervised execution.
        let results = jobs
            .iter()
            .zip(validations)
            .enumerate()
            .map(|(index, (job, validation))| {
                let failure = match validation {
                    Err(e) => Some(JobError::Invalid(e)),
                    Ok(()) => store_failed
                        .get(&keys[index])
                        .or_else(|| failed.get(&keys[index]))
                        .cloned(),
                };
                let (outcome, cache_hit, wall_ms) = match failure {
                    Some(e) => {
                        self.stats.jobs_failed += 1;
                        if matches!(e, JobError::Cancelled { .. }) {
                            self.stats.jobs_cancelled += 1;
                        }
                        (Err(e), false, None)
                    }
                    None => {
                        let wall_ms = wall_by_index.get(&index).copied();
                        if wall_ms.is_none() {
                            self.stats.cache_hits += 1;
                        }
                        let report = self
                            .reports
                            .get(&keys[index])
                            .expect("computed in phase 4 or cached earlier")
                            .clone();
                        (Ok(report), wall_ms.is_none(), wall_ms)
                    }
                };
                JobResult {
                    index,
                    key: keys[index].clone(),
                    dataset: job.dataset.key.name(),
                    engine: job.engine.clone(),
                    outcome,
                    cache_hit,
                    wall_ms,
                }
            })
            .collect();

        // Touch this batch's pooled sessions in submission order, then
        // enforce the LRU capacity bound.
        for job in jobs {
            let session_key = job.session_key();
            if self.sessions.contains_key(&session_key) {
                self.session_clock += 1;
                self.session_last_use
                    .insert(session_key, self.session_clock);
            }
        }
        self.evict_sessions();
        results
    }

    /// Stages one job for supervised execution — the per-job front half
    /// of [`run_batch`](Self::run_batch), factored out so concurrent
    /// callers (the [`AsyncService`](crate::AsyncService) worker pool)
    /// hold the service lock only around cheap bookkeeping. Runs
    /// validation, the in-memory cache probe, and the supervised store
    /// probe (before any session is built, so a restarted service serves
    /// a warm fleet without instantiating workloads). Returns either the
    /// job's resolved outcome or the validated engine; the caller then
    /// prepares the session *outside* this lock ([`take_session`] /
    /// [`adopt_session`]) and computes.
    ///
    /// [`take_session`]: Self::take_session
    /// [`adopt_session`]: Self::adopt_session
    pub(crate) fn stage(&mut self, job: &JobSpec, key: &JobKey) -> Staged {
        self.stats.jobs_submitted += 1;
        let engine = match build_engine(job) {
            Ok(engine) => engine,
            Err(e) => {
                self.stats.jobs_failed += 1;
                return Staged::Done {
                    outcome: Err(JobError::Invalid(e)),
                    cache_hit: false,
                };
            }
        };
        if let Some(report) = self.reports.get(key) {
            self.stats.cache_hits += 1;
            return Staged::Done {
                outcome: Ok(report.clone()),
                cache_hit: true,
            };
        }
        if let Some(mut store) = self.store.take() {
            let plan = job_fault_plan(job);
            let loaded = catch_unwind(AssertUnwindSafe(|| {
                fault::with_plan(plan, || store.load(key))
            }));
            self.store = Some(store);
            match loaded {
                Ok(Some(report)) => {
                    self.reports.insert(key.clone(), report.clone());
                    self.stats.store_hits += 1;
                    self.stats.cache_hits += 1;
                    return Staged::Done {
                        outcome: Ok(report),
                        cache_hit: true,
                    };
                }
                Ok(None) => {}
                Err(payload) => {
                    self.stats.panics_caught += 1;
                    self.stats.jobs_failed += 1;
                    return Staged::Done {
                        outcome: Err(JobError::StoreCorrupt {
                            message: panic_message(payload.as_ref()),
                        }),
                        cache_hit: false,
                    };
                }
            }
        }
        Staged::NeedsCompute {
            engine,
            max_attempts: self.retry.max_attempts.max(1),
        }
    }

    /// Takes the pooled session for `session_key` out of the pool so a
    /// concurrent caller can prepare it outside the service lock (the
    /// caller serializes same-session takers itself). Returns `None` if
    /// the workload was never instantiated or was evicted.
    pub(crate) fn take_session(&mut self, session_key: &str) -> Option<SimSession> {
        self.sessions.remove(session_key)
    }

    /// Returns a prepared session to the pool, counting a fresh
    /// instantiation and the preparations the caller ran while holding
    /// it. The complement of [`take_session`](Self::take_session).
    pub(crate) fn adopt_session(
        &mut self,
        session_key: String,
        session: SimSession,
        created: bool,
        newly_prepared: usize,
    ) {
        if created {
            self.stats.sessions_created += 1;
        }
        self.stats.preparations_run += newly_prepared as u64;
        self.sessions.insert(session_key, session);
    }

    /// Shared handle to the cross-job plan cache, for stamping sessions
    /// instantiated outside the service lock.
    pub(crate) fn plan_cache_arc(&self) -> Arc<PlanCache> {
        Arc::clone(&self.plan_cache)
    }

    /// Commits one computed job — the per-job back half of
    /// [`run_batch`](Self::run_batch): counter merges, the supervised
    /// store persist (write failures cost persistence, never the job),
    /// and the report-cache insert. Returns the job's outcome and its
    /// wall time (`None` for failures, like [`JobResult::wall_ms`]).
    pub(crate) fn commit(
        &mut self,
        job: &JobSpec,
        key: &JobKey,
        run: ComputeOutcome,
    ) -> (Result<RunReport, JobError>, Option<f64>) {
        self.stats.simulations_run += 1;
        self.stats.retries += run.retries;
        self.stats.panics_caught += run.caught;
        match run.outcome {
            Ok(report) => {
                if let Some(store) = self.store.as_mut() {
                    let plan = job_fault_plan(job);
                    let persisted = catch_unwind(AssertUnwindSafe(|| {
                        fault::with_plan(plan, || store.persist(key, &report))
                    }));
                    match persisted {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => {
                            eprintln!("warning: result store write failed for {key}: {e}")
                        }
                        Err(payload) => {
                            self.stats.panics_caught += 1;
                            eprintln!(
                                "warning: result store write panicked for {key}: {}",
                                panic_message(payload.as_ref())
                            );
                        }
                    }
                }
                self.reports.insert(key.clone(), report.clone());
                (Ok(report), Some(run.wall_ms))
            }
            Err(e) => {
                self.stats.jobs_failed += 1;
                if matches!(e, JobError::Cancelled { .. }) {
                    self.stats.jobs_cancelled += 1;
                }
                (Err(e), None)
            }
        }
    }

    /// Marks the job's pooled session as just-used and enforces the LRU
    /// capacity bound — the per-job form of [`run_batch`]'s batch-tail
    /// bookkeeping.
    ///
    /// [`run_batch`]: Self::run_batch
    pub(crate) fn touch_session(&mut self, job: &JobSpec) {
        let session_key = job.session_key();
        if self.sessions.contains_key(&session_key) {
            self.session_clock += 1;
            self.session_last_use
                .insert(session_key, self.session_clock);
        }
        self.evict_sessions();
    }

    /// Raises the jobs-in-flight high-water mark.
    pub(crate) fn note_in_flight(&mut self, in_flight: u64) {
        self.stats.jobs_in_flight_peak = self.stats.jobs_in_flight_peak.max(in_flight);
    }

    /// Drops least-recently-used sessions until the pool fits the
    /// capacity bound. Ties (sessions never touched by a batch) break by
    /// key string so eviction is deterministic.
    fn evict_sessions(&mut self) {
        let Some(capacity) = self.session_capacity else {
            return;
        };
        while self.sessions.len() > capacity {
            let victim = self
                .sessions
                .keys()
                .map(|k| (self.session_last_use.get(k).copied().unwrap_or(0), k))
                .min()
                .map(|(_, k)| k.clone())
                .expect("pool is over capacity, so non-empty");
            self.sessions.remove(&victim);
            self.session_last_use.remove(&victim);
            self.stats.sessions_evicted += 1;
        }
    }
}

/// Outcome of [`BatchService::stage`]: the job is either resolved on the
/// spot (validation failure, cache or store hit, store corruption) or
/// validated and waiting on preparation + compute.
pub(crate) enum Staged {
    /// Resolved without a simulation.
    Done {
        outcome: Result<RunReport, JobError>,
        cache_hit: bool,
    },
    /// Needs a simulation: prepare the session outside the service lock,
    /// assemble a [`ComputeTask`], run [`compute_supervised`], then
    /// [`BatchService::commit`] the result.
    NeedsCompute {
        engine: Box<dyn Accelerator>,
        max_attempts: u64,
    },
}

/// A self-contained unit of supervised compute: the validated engine and
/// the shared prepared workload (alive across session eviction via its
/// `Arc`). Never crosses threads — the worker that staged it runs it.
pub(crate) struct ComputeTask {
    pub(crate) engine: Box<dyn Accelerator>,
    pub(crate) prepared: Arc<PreparedWorkload>,
    pub(crate) max_attempts: u64,
}

/// What one supervised compute produced, for [`BatchService::commit`].
pub(crate) struct ComputeOutcome {
    outcome: Result<RunReport, JobError>,
    wall_ms: f64,
    retries: u64,
    caught: u64,
}

/// Runs one staged simulation under the supervision contract of
/// [`BatchService::run_batch`]'s phase 4: every attempt runs under
/// `catch_unwind` with the attempt number published through the fault
/// context, transient failures retry up to the task's budget, and a
/// cancelled ticket stops consuming attempts at the loop head. The
/// caller picks the execution mode (the governor's serial forcing or a
/// lone job's full inner fan-out) by wrapping this call.
pub(crate) fn compute_supervised(task: &ComputeTask) -> ComputeOutcome {
    let started = Instant::now();
    let mut retries = 0u64;
    let mut caught = 0u64;
    let mut attempt = 1u64;
    let outcome = loop {
        if let Some(reason) = fault::cancel_state() {
            break Err(JobError::Cancelled { reason });
        }
        let run = fault::with_attempt(attempt, || {
            catch_unwind(AssertUnwindSafe(|| task.engine.run(&task.prepared)))
        });
        match run {
            Ok(report) => break Ok(report),
            Err(payload) => {
                caught += 1;
                let err = classify_unwind(payload, attempt);
                if err.is_transient() && attempt < task.max_attempts {
                    attempt += 1;
                    retries += 1;
                    continue;
                }
                break Err(err);
            }
        }
    };
    ComputeOutcome {
        outcome,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        retries,
        caught,
    }
}

/// Builds the job's engine, validating the name and every override.
fn build_engine(job: &JobSpec) -> Result<Box<dyn Accelerator>, RegistryError> {
    let parsed = registry::parse_overrides(&job.overrides)?;
    let borrowed: Vec<(&str, &str)> = parsed
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    registry::engine_from_overrides(&job.engine, &borrowed)
}

/// The job's effective fault plan, parsed from its `fault=` override with
/// the registry's last-wins semantics. `OFF` for jobs without one — and
/// for unparseable ones, which never get this far (they fail validation).
pub(crate) fn job_fault_plan(job: &JobSpec) -> FaultPlan {
    let mut plan = FaultPlan::OFF;
    for spec in &job.overrides {
        if let Ok((key, value)) = registry::parse_override(spec) {
            if key == "fault" {
                if let Ok(parsed) = FaultPlan::parse(&value) {
                    plan = parsed;
                }
            }
        }
    }
    plan
}

/// Classifies a caught unwind payload into a [`JobError`]: injected
/// faults and cooperative cancellations travel as typed [`SimFault`]
/// payloads; anything else is a genuine panic whose message is preserved.
fn classify_unwind(payload: Box<dyn Any + Send>, attempts: u64) -> JobError {
    match payload.downcast::<SimFault>() {
        Ok(fault) => match *fault {
            SimFault::Injected { site, .. } => JobError::Injected { site, attempts },
            SimFault::Cancelled { reason } => JobError::Cancelled { reason },
        },
        Err(payload) => JobError::Panicked {
            message: panic_message(payload.as_ref()),
            attempts,
        },
    }
}

/// Best-effort human-readable form of a panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(fault) = payload.downcast_ref::<SimFault>() {
        fault.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The full dataset × engine × partition grid as a job list — the
/// serving-layer form of the paper's comparison sweeps.
pub fn grid_jobs(
    datasets: &[DatasetSpec],
    seed: u64,
    engines: &[&str],
    strategies: &[PartitionStrategy],
) -> Vec<JobSpec> {
    let mut jobs = Vec::with_capacity(datasets.len() * engines.len() * strategies.len());
    for &dataset in datasets {
        for &engine in engines {
            for &strategy in strategies {
                jobs.push(JobSpec::new(dataset, seed, engine).with_strategy(strategy));
            }
        }
    }
    jobs
}

/// The scheduler × PE-count grid for one engine on each dataset — the
/// serving-layer form of the extended Figure 24 sweep (the `figure24`
/// experiment dispatches exactly this job list).
pub fn scheduler_grid_jobs(
    datasets: &[DatasetSpec],
    seed: u64,
    engine: &str,
    strategy: PartitionStrategy,
    schedulers: &[SchedulerKind],
    pe_counts: &[usize],
) -> Vec<JobSpec> {
    let mut jobs = Vec::with_capacity(datasets.len() * schedulers.len() * pe_counts.len());
    for &dataset in datasets {
        for &pes in pe_counts {
            for &scheduler in schedulers {
                jobs.push(
                    JobSpec::new(dataset, seed, engine)
                        .with_strategy(strategy)
                        .with_scheduler(scheduler)
                        .with_pes(pes),
                );
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use grow_model::DatasetKey;

    fn spec() -> DatasetSpec {
        DatasetKey::Cora.spec().scaled_to(300)
    }

    #[test]
    fn job_key_is_canonical() {
        let a = JobSpec::new(spec(), 7, "GROW")
            .with_override("runahead", "4")
            .with_override("hdn_cache_kb", "256");
        let b = JobSpec::new(spec(), 7, "grow")
            .with_override("hdn_cache_kb", "256")
            .with_override("runahead", "4");
        assert_eq!(a.key(), b.key(), "case and override order are canonical");
        assert_ne!(a.key(), JobSpec::new(spec(), 8, "grow").key(), "seed");
        assert_ne!(
            a.key(),
            a.clone().with_hdn_id_entries(16).key(),
            "hdn entries"
        );
        assert_ne!(
            JobSpec::new(spec(), 7, "grow").key(),
            JobSpec::new(spec(), 7, "grow")
                .with_strategy(PartitionStrategy::multilevel_default())
                .key(),
            "strategy"
        );
    }

    #[test]
    fn repeated_override_keys_use_last_wins_in_the_key() {
        // engine_from_overrides applies overrides in order (last wins);
        // the cache key must reflect the *effective* configuration, not
        // the submission text.
        let fast = JobSpec::new(spec(), 7, "grow")
            .with_override("dram_gbps", "8")
            .with_override("dram_gbps", "256");
        let slow = JobSpec::new(spec(), 7, "grow")
            .with_override("dram_gbps", "256")
            .with_override("dram_gbps", "8");
        assert_ne!(fast.key(), slow.key(), "different effective configs");
        let canonical = JobSpec::new(spec(), 7, "grow").with_override("dram_gbps", "256");
        assert_eq!(fast.key(), canonical.key(), "same effective config");

        // And the service really computes both variants: the effective
        // 8 GB/s job must be slower than the effective 256 GB/s one.
        let mut service = BatchService::new();
        let results = service.run_batch(&[fast, slow]);
        assert_eq!(service.stats().simulations_run, 2);
        assert!(
            results[1].report().unwrap().total_cycles()
                > results[0].report().unwrap().total_cycles(),
            "the two orderings must not share a cached report"
        );
    }

    #[test]
    fn malformed_override_specs_never_share_a_runnable_key() {
        // Regression: the key used to fold a malformed spec into the
        // valid last-wins slot, so this failing job had the same key as
        // the clean `runahead=4` job — a cache-poisoning hazard once
        // reports persist across restarts.
        let clean = JobSpec::new(spec(), 7, "grow").with_override("runahead", "4");
        let poisoned = JobSpec::new(spec(), 7, "grow")
            .with_override_spec("runahead")
            .with_override("runahead", "4");
        assert_ne!(clean.key(), poisoned.key());
        // Regression: a malformed `x=` rendered as `x==`, identical to
        // the well-formed spec `x==` (key `x`, value `=`).
        assert_ne!(
            JobSpec::new(spec(), 7, "grow")
                .with_override_spec("x=")
                .key(),
            JobSpec::new(spec(), 7, "grow")
                .with_override_spec("x==")
                .key(),
        );
        // Distinct malformed texts keep distinct keys; identical ones
        // (identical failures) share one.
        let foo = JobSpec::new(spec(), 7, "grow").with_override_spec("foo");
        assert_ne!(
            foo.key(),
            JobSpec::new(spec(), 7, "grow")
                .with_override_spec("foo=")
                .key(),
        );
        assert_eq!(
            foo.key(),
            JobSpec::new(spec(), 7, "grow")
                .with_override_spec("foo")
                .key(),
        );

        // And behaviorally: the failing job must not hand the clean job
        // a cache hit (or vice versa).
        let mut service = BatchService::new();
        let results = service.run_batch(&[poisoned, clean]);
        assert!(results[0].outcome.is_err());
        assert!(results[1].outcome.is_ok());
        assert!(!results[1].cache_hit, "clean job really computed");
        assert_eq!(service.stats().simulations_run, 1);
    }

    #[test]
    fn clear_keeps_counters_and_reset_stats_zeroes_them() {
        let mut service = BatchService::new();
        let job = JobSpec::new(spec(), 3, "gcnax");
        let first = service.run_one(&job);
        assert!(first.wall_ms.is_some(), "fresh simulation is timed");
        assert_eq!(service.stats().simulations_run, 1);

        service.clear();
        assert_eq!(service.pooled_sessions(), 0);
        assert_eq!(service.cached_reports(), 0);
        assert_eq!(
            service.stats().simulations_run,
            1,
            "clear keeps the cumulative counters"
        );

        // Clear-then-rerun really recomputes — bit-identically.
        let again = service.run_one(&job);
        assert!(!again.cache_hit);
        assert!(again.wall_ms.is_some());
        assert_eq!(service.stats().simulations_run, 2);
        assert_eq!(again.report(), first.report());

        // A cache hit is distinguishable from a fast run by wall_ms.
        let hit = service.run_one(&job);
        assert!(hit.cache_hit);
        assert_eq!(hit.wall_ms, None);

        service.reset_stats();
        assert_eq!(service.stats(), ServiceStats::default());
        assert_eq!(
            service.cached_reports(),
            1,
            "reset_stats leaves the caches alone"
        );
    }

    #[test]
    fn session_pool_evicts_least_recently_used() {
        let mut service = BatchService::new().with_session_capacity(2);
        let a = JobSpec::new(spec(), 1, "gcnax");
        let b = JobSpec::new(spec(), 2, "gcnax");
        let c = JobSpec::new(spec(), 3, "gcnax");
        service.run_one(&a);
        service.run_one(&b);
        assert_eq!(service.pooled_sessions(), 2);
        // Touch a's workload again, then admit c: b is now the LRU victim.
        service.run_one(&a.clone().with_override("dram_gbps", "8"));
        service.run_one(&c);
        assert_eq!(service.pooled_sessions(), 2);
        assert!(service.session_for(&a).is_some(), "recently used survives");
        assert!(service.session_for(&b).is_none(), "LRU session evicted");
        assert!(service.session_for(&c).is_some());
        assert_eq!(service.stats().sessions_evicted, 1);
        // An evicted workload is simply re-instantiated on demand.
        service.run_one(&b.clone().with_override("dram_gbps", "8"));
        assert_eq!(service.stats().sessions_created, 4);
        assert_eq!(service.stats().sessions_evicted, 2);
    }

    #[test]
    fn duplicate_jobs_compute_once() {
        let mut service = BatchService::new();
        let job = JobSpec::new(spec(), 3, "gcnax");
        let results = service.run_batch(&[job.clone(), job.clone(), job.clone()]);
        assert_eq!(service.stats().simulations_run, 1);
        assert_eq!(service.stats().cache_hits, 2);
        assert!(!results[0].cache_hit);
        assert!(results[1].cache_hit && results[2].cache_hit);
        assert_eq!(results[0].report(), results[1].report());
        // A later batch is served entirely from cache.
        let again = service.run_one(&job);
        assert!(again.cache_hit);
        assert_eq!(service.stats().simulations_run, 1);
        assert_eq!(again.report(), results[0].report());
    }

    #[test]
    fn sessions_pool_across_engines_and_batches() {
        let mut service = BatchService::new();
        let jobs: Vec<JobSpec> = ["grow", "gcnax", "matraptor", "gamma"]
            .iter()
            .map(|e| JobSpec::new(spec(), 5, e))
            .collect();
        service.run_batch(&jobs);
        assert_eq!(service.pooled_sessions(), 1, "one workload recipe");
        assert_eq!(service.stats().sessions_created, 1);
        assert_eq!(service.stats().preparations_run, 1, "one shared strategy");
        assert_eq!(service.stats().simulations_run, 4);
        // Another strategy on the same workload reuses the session.
        service.run_one(
            &JobSpec::new(spec(), 5, "grow")
                .with_strategy(PartitionStrategy::Multilevel { cluster_nodes: 100 }),
        );
        assert_eq!(service.stats().sessions_created, 1, "session reused");
        assert_eq!(service.stats().preparations_run, 2);
    }

    #[test]
    fn invalid_jobs_fail_alone() {
        let mut service = BatchService::new();
        let results = service.run_batch(&[
            JobSpec::new(spec(), 1, "grow"),
            JobSpec::new(spec(), 1, "npu"),
            JobSpec::new(spec(), 1, "grow").with_override_spec("runahead"),
            JobSpec::new(spec(), 1, "grow").with_override("runahead", "many"),
            JobSpec::new(spec(), 1, "gcnax").with_override("runahead", "4"),
            JobSpec::new(spec(), 1, "gamma"),
        ]);
        assert!(results[0].outcome.is_ok());
        assert_eq!(
            results[1].outcome,
            Err(JobError::Invalid(RegistryError::UnknownEngine(
                "npu".into()
            )))
        );
        assert_eq!(
            results[2].outcome,
            Err(JobError::Invalid(RegistryError::MalformedOverride {
                spec: "runahead".into()
            }))
        );
        assert_eq!(
            results[3].outcome,
            Err(JobError::Invalid(RegistryError::InvalidValue {
                key: "runahead".into(),
                value: "many".into()
            }))
        );
        assert_eq!(
            results[4].outcome,
            Err(JobError::Invalid(RegistryError::UnknownKey {
                engine: "gcnax",
                key: "runahead".into()
            }))
        );
        assert!(results[5].outcome.is_ok(), "later jobs unaffected");
        assert_eq!(service.stats().jobs_failed, 4);
        assert_eq!(service.stats().simulations_run, 2);
    }

    #[test]
    fn grid_covers_the_cross_product() {
        let specs = [spec(), DatasetKey::Citeseer.spec().scaled_to(300)];
        let strategies = [
            PartitionStrategy::None,
            PartitionStrategy::multilevel_default(),
        ];
        let jobs = grid_jobs(&specs, 9, &["grow", "gcnax"], &strategies);
        assert_eq!(jobs.len(), 8);
        let distinct: HashSet<JobKey> = jobs.iter().map(JobSpec::key).collect();
        assert_eq!(distinct.len(), 8, "all grid points are distinct keys");
    }

    #[test]
    fn scheduler_grid_covers_the_axis_and_only_changes_the_summary() {
        let jobs = scheduler_grid_jobs(
            &[spec()],
            7,
            "grow",
            PartitionStrategy::Multilevel { cluster_nodes: 100 },
            &SchedulerKind::ALL,
            &[1, 4],
        );
        assert_eq!(jobs.len(), 8, "4 schedulers x 2 PE counts");
        let distinct: HashSet<JobKey> = jobs.iter().map(JobSpec::key).collect();
        assert_eq!(distinct.len(), 8, "every grid point is a distinct key");

        let mut service = BatchService::new();
        let results = service.run_batch(&jobs);
        let reports: Vec<&RunReport> = results.iter().map(|r| r.report().unwrap()).collect();
        for (job, report) in jobs.iter().zip(&reports) {
            assert_eq!(
                report.layers, reports[0].layers,
                "scheduling must never change phase counters ({job:?})"
            );
            let summary = report.multi_pe.as_ref().expect("summary attached");
            assert!(job
                .overrides
                .contains(&format!("scheduler={}", summary.scheduler)));
            assert!(job.overrides.contains(&format!("pes={}", summary.pes)));
        }
    }

    #[test]
    fn exec_model_jobs_have_distinct_keys_and_reports() {
        let mut service = BatchService::new();
        let post_hoc = JobSpec::new(spec(), 7, "grow")
            .with_strategy(PartitionStrategy::Multilevel { cluster_nodes: 100 })
            .with_pes(4);
        let e2e = post_hoc.clone().with_exec_model(ExecModelKind::EndToEnd);
        assert_ne!(post_hoc.key(), e2e.key());
        let results = service.run_batch(&[post_hoc, e2e]);
        assert_eq!(service.stats().simulations_run, 2);
        let (ph, e2e) = (results[0].report().unwrap(), results[1].report().unwrap());
        assert_eq!(ph.exec, "post_hoc");
        assert_eq!(e2e.exec, "e2e");
        assert!(
            e2e.total_cycles() < ph.total_cycles(),
            "4 concurrent PEs finish the run faster than one"
        );
        assert!(e2e.multi_pe_breakdown().is_some());
    }

    #[test]
    fn auto_sharded_jobs_report_identically_to_unsharded() {
        let mut service = BatchService::new();
        let unsharded = JobSpec::new(spec(), 7, "grow");
        let auto = unsharded.clone().with_shard_rows(ShardRows::Auto);
        assert!(auto.overrides.contains(&"shard_rows=auto".to_string()));
        assert_ne!(unsharded.key(), auto.key());
        let results = service.run_batch(&[unsharded, auto]);
        assert_eq!(results[0].report().unwrap(), results[1].report().unwrap());
    }

    #[test]
    fn sharded_jobs_report_identically_to_unsharded() {
        // shard_rows is a throughput knob, not a model knob: the sharded
        // job has a distinct cache key (distinct effective config) yet its
        // report — layers, multi-PE summary, everything — must be
        // bit-identical to the unsharded run's.
        let mut service = BatchService::new();
        let unsharded =
            JobSpec::new(spec(), 7, "grow").with_strategy(PartitionStrategy::multilevel_default());
        let sharded = unsharded.clone().with_shard_rows(64);
        assert_ne!(unsharded.key(), sharded.key());
        let results = service.run_batch(&[unsharded, sharded]);
        assert_eq!(service.stats().simulations_run, 2, "both really ran");
        assert_eq!(results[0].report().unwrap(), results[1].report().unwrap());
    }

    #[test]
    fn batch_matches_session_runs() {
        let mut service = BatchService::new();
        let strategy = PartitionStrategy::Multilevel { cluster_nodes: 100 };
        let result = service.run_one(
            &JobSpec::new(spec(), 11, "grow")
                .with_strategy(strategy)
                .with_override("runahead", "4"),
        );
        let mut session = SimSession::from_spec(spec(), 11);
        let direct = session
            .run_with("grow", &[("runahead", "4")], strategy)
            .unwrap();
        assert_eq!(result.outcome.unwrap(), direct);
    }

    #[test]
    fn injected_faults_retry_to_a_bit_identical_report() {
        let mut service = BatchService::new();
        let clean = JobSpec::new(spec(), 3, "grow");
        let baseline = service.run_one(&clean).outcome.unwrap();
        for fault_spec in [
            "dram:error:1:2",
            "dram:panic:1",
            "exec:error:1",
            "exec:panic:1:2",
        ] {
            let result = service.run_one(&clean.clone().with_fault(fault_spec));
            let report = result
                .outcome
                .unwrap_or_else(|e| panic!("{fault_spec}: {e}"));
            assert_eq!(report, baseline, "{fault_spec}");
            assert!(!result.cache_hit, "{fault_spec} really recomputed");
        }
        assert!(service.stats().retries > 0, "transient faults retried");
        assert!(service.stats().panics_caught > 0, "unwinds were caught");
        assert_eq!(service.stats().jobs_failed, 0, "every retry succeeded");
    }

    #[test]
    fn permanent_injected_faults_fail_cleanly_and_are_not_cached() {
        let mut service = BatchService::new();
        let job = JobSpec::new(spec(), 3, "gcnax").with_fault("dram:error:1:99");
        let first = service.run_one(&job);
        assert_eq!(
            first.outcome,
            Err(JobError::Injected {
                site: FaultSite::DramIssue,
                attempts: 3
            }),
            "retry budget exhausted on a fault outlasting it"
        );
        assert_eq!(first.wall_ms, None, "failed jobs report no timing");
        assert_eq!(service.stats().jobs_failed, 1);
        assert_eq!(service.stats().retries, 2);
        // The failure is not cached: a later batch really re-attempts.
        let again = service.run_one(&job);
        assert!(again.outcome.is_err());
        assert!(!again.cache_hit);
        assert_eq!(service.stats().simulations_run, 2);
        // A no-retry policy fails on the first attempt.
        service.set_retry_policy(RetryPolicy::none());
        assert_eq!(
            service.run_one(&job).outcome,
            Err(JobError::Injected {
                site: FaultSite::DramIssue,
                attempts: 1
            })
        );
    }

    #[test]
    fn duplicate_failing_jobs_share_the_error_without_extra_runs() {
        let mut service = BatchService::new();
        let job = JobSpec::new(spec(), 3, "gamma").with_fault("dram:panic:1:99");
        let results = service.run_batch(&[job.clone(), job.clone()]);
        assert_eq!(service.stats().simulations_run, 1, "one run per key");
        assert_eq!(results[0].outcome, results[1].outcome);
        assert!(
            matches!(results[0].outcome, Err(JobError::Panicked { .. })),
            "injected panics surface as Panicked, not Injected"
        );
        assert_eq!(service.stats().jobs_failed, 2, "both submissions failed");
    }

    #[test]
    fn malformed_fault_specs_fail_validation() {
        let mut service = BatchService::new();
        let result = service.run_one(&JobSpec::new(spec(), 3, "grow").with_fault("dram:boom"));
        assert_eq!(
            result.outcome,
            Err(JobError::Invalid(RegistryError::InvalidValue {
                key: "fault".into(),
                value: "dram:boom".into()
            }))
        );
        assert_eq!(service.stats().simulations_run, 0);
    }

    #[test]
    fn fault_override_participates_in_the_job_key() {
        let clean = JobSpec::new(spec(), 3, "grow");
        let faulted = clean.clone().with_fault("dram:error:1");
        assert_ne!(clean.key(), faulted.key());
        assert_eq!(job_fault_plan(&clean), FaultPlan::OFF);
        assert_eq!(
            job_fault_plan(&faulted),
            FaultPlan::parse("dram:error:1").unwrap()
        );
    }
}
