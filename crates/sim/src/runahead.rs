use crate::Cycle;

/// One pending LHS non-zero waiting for an in-flight RHS row (an entry of
/// the LHS-ID table of Figure 16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waiter {
    /// The O-BUF output row this non-zero accumulates into.
    pub output_row: u32,
    /// The LHS sparse value to multiply with the returning RHS row.
    pub lhs_value: f64,
}

/// Outcome of trying to issue an HDN-cache-missed RHS row request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueOutcome {
    /// A new LDN-table entry was allocated; the caller must start the DRAM
    /// fetch and then call [`RunaheadTables::set_completion`].
    Allocated,
    /// The row was already in flight; the waiter piggy-backs on the
    /// existing LDN entry (MSHR-style coalescing).
    Coalesced,
    /// The LDN table is full: runahead must stall until a fetch returns.
    LdnFull,
    /// The LHS-ID table is full: runahead must stall until a fetch returns.
    LhsFull,
}

/// One LDN-table slot: an RHS row in flight and its waiting LHS non-zeros.
#[derive(Debug, Clone, Default)]
struct Slot {
    rhs_row: u32,
    live: bool,
    complete_at: Option<Cycle>,
    /// Reused across occupancies: cleared (not dropped) when the slot is
    /// re-allocated, so steady-state issue/drain traffic allocates nothing.
    waiters: Vec<Waiter>,
}

/// The runahead-execution bookkeeping of Section V-D: an `M`-entry LDN
/// table tracking HDN-cache-missed RHS rows in flight, and an `N`-entry
/// LHS-ID table holding the sparse values waiting on them (Figure 16;
/// defaults `M = 16`, `N = 64`).
///
/// Like the hardware it models, the table is a handful of CAM slots:
/// lookups are a linear scan over at most `M` live entries (`M` is 16 in
/// Table III — far below the break-even point of any hashed index), and
/// slot storage — waiter lists included — is recycled, so steady-state
/// operation performs no heap allocation. [`RunaheadTables::reset`]
/// recycles the whole table for the next cluster.
///
/// ```
/// use grow_sim::{IssueOutcome, RunaheadTables, Waiter};
///
/// let mut t = RunaheadTables::new(16, 64);
/// let w = Waiter { output_row: 0, lhs_value: 1.5 };
/// assert_eq!(t.issue(7, w), IssueOutcome::Allocated);
/// t.set_completion(7, 120);
/// // Same row again from another output row: coalesced, no new fetch.
/// assert_eq!(t.issue(7, Waiter { output_row: 2, lhs_value: -0.5 }), IssueOutcome::Coalesced);
/// let (done, row, waiters) = t.pop_earliest().unwrap();
/// assert_eq!((done, row, waiters.len()), (120, 7, 2));
/// ```
#[derive(Debug, Clone)]
pub struct RunaheadTables {
    ldn_capacity: usize,
    lhs_capacity: usize,
    slots: Vec<Slot>,
    live: usize,
    lhs_used: usize,
    peak_ldn: usize,
    peak_lhs: usize,
}

impl Default for RunaheadTables {
    /// Minimal 1/1-entry tables; call [`RunaheadTables::reset`] to size
    /// them before use.
    fn default() -> Self {
        RunaheadTables::new(1, 1)
    }
}

impl RunaheadTables {
    /// Creates empty tables with the given capacities (Table III defaults
    /// are 16 and 64).
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn new(ldn_capacity: usize, lhs_capacity: usize) -> Self {
        assert!(
            ldn_capacity > 0 && lhs_capacity > 0,
            "table capacities must be positive"
        );
        RunaheadTables {
            ldn_capacity,
            lhs_capacity,
            slots: Vec::new(),
            live: 0,
            lhs_used: 0,
            peak_ldn: 0,
            peak_lhs: 0,
        }
    }

    /// Recycles the tables: as if freshly constructed with
    /// `new(ldn_capacity, lhs_capacity)`, but reusing the slot storage and
    /// the waiter lists inside it.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero.
    pub fn reset(&mut self, ldn_capacity: usize, lhs_capacity: usize) {
        assert!(
            ldn_capacity > 0 && lhs_capacity > 0,
            "table capacities must be positive"
        );
        self.ldn_capacity = ldn_capacity;
        self.lhs_capacity = lhs_capacity;
        for slot in &mut self.slots {
            slot.live = false;
        }
        self.live = 0;
        self.lhs_used = 0;
        self.peak_ldn = 0;
        self.peak_lhs = 0;
    }

    /// LDN-table entries currently allocated.
    pub fn ldn_used(&self) -> usize {
        self.live
    }

    /// LHS-ID-table entries currently allocated.
    pub fn lhs_used(&self) -> usize {
        self.lhs_used
    }

    /// Largest simultaneous LDN occupancy observed.
    pub fn peak_ldn(&self) -> usize {
        self.peak_ldn
    }

    /// Largest simultaneous LHS occupancy observed.
    pub fn peak_lhs(&self) -> usize {
        self.peak_lhs
    }

    /// True if no fetches are in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The live slot index holding `rhs_row`, if any.
    #[inline]
    fn find(&self, rhs_row: u32) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.live && s.rhs_row == rhs_row)
    }

    /// Attempts to register `waiter` for RHS row `rhs_row`.
    ///
    /// On [`IssueOutcome::Allocated`] the caller must perform the DRAM read
    /// and report its completion via [`RunaheadTables::set_completion`].
    /// On `LdnFull`/`LhsFull` nothing is recorded; the caller should drain
    /// one completion ([`RunaheadTables::pop_earliest`]) and retry.
    pub fn issue(&mut self, rhs_row: u32, waiter: Waiter) -> IssueOutcome {
        if self.lhs_used >= self.lhs_capacity {
            return IssueOutcome::LhsFull;
        }
        if let Some(i) = self.find(rhs_row) {
            self.slots[i].waiters.push(waiter);
            self.lhs_used += 1;
            self.peak_lhs = self.peak_lhs.max(self.lhs_used);
            return IssueOutcome::Coalesced;
        }
        if self.live >= self.ldn_capacity {
            return IssueOutcome::LdnFull;
        }
        let i = match self.slots.iter().position(|s| !s.live) {
            Some(i) => i,
            None => {
                self.slots.push(Slot::default());
                self.slots.len() - 1
            }
        };
        let slot = &mut self.slots[i];
        slot.rhs_row = rhs_row;
        slot.live = true;
        slot.complete_at = None;
        slot.waiters.clear();
        slot.waiters.push(waiter);
        self.live += 1;
        self.lhs_used += 1;
        self.peak_ldn = self.peak_ldn.max(self.live);
        self.peak_lhs = self.peak_lhs.max(self.lhs_used);
        IssueOutcome::Allocated
    }

    /// Records the DRAM completion cycle of a newly allocated entry.
    ///
    /// # Panics
    ///
    /// Panics if `rhs_row` has no allocated entry or already has a
    /// completion time.
    pub fn set_completion(&mut self, rhs_row: u32, complete_at: Cycle) {
        let i = self.find(rhs_row).expect("entry must be allocated");
        let slot = &mut self.slots[i];
        assert!(slot.complete_at.is_none(), "completion already set");
        slot.complete_at = Some(complete_at);
    }

    /// Removes the in-flight row with the earliest completion and returns
    /// `(completion cycle, rhs row, waiters)`, borrowing the waiter list
    /// out of the recycled slot — the allocation-free form engines drain
    /// with. Returns `None` when no completed fetch is in flight.
    ///
    /// Ties on the completion cycle resolve to the smallest RHS row id
    /// (the same total order the paper's FIFO channel produces).
    pub fn pop_earliest_slice(&mut self) -> Option<(Cycle, u32, &[Waiter])> {
        let mut best: Option<(Cycle, u32, usize)> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if !slot.live {
                continue;
            }
            if let Some(done) = slot.complete_at {
                let key = (done, slot.rhs_row);
                if best.is_none_or(|(d, r, _)| key < (d, r)) {
                    best = Some((done, slot.rhs_row, i));
                }
            }
        }
        let (done, row, i) = best?;
        let slot = &mut self.slots[i];
        slot.live = false;
        self.live -= 1;
        self.lhs_used -= slot.waiters.len();
        Some((done, row, &self.slots[i].waiters))
    }

    /// Like [`RunaheadTables::pop_earliest_slice`], returning the waiters
    /// by value.
    pub fn pop_earliest(&mut self) -> Option<(Cycle, u32, Vec<Waiter>)> {
        self.pop_earliest_slice()
            .map(|(done, row, waiters)| (done, row, waiters.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(row: u32) -> Waiter {
        Waiter {
            output_row: row,
            lhs_value: 1.0,
        }
    }

    #[test]
    fn allocate_then_drain() {
        let mut t = RunaheadTables::new(4, 8);
        assert_eq!(t.issue(10, w(0)), IssueOutcome::Allocated);
        t.set_completion(10, 50);
        assert_eq!(t.ldn_used(), 1);
        let (done, row, waiters) = t.pop_earliest().unwrap();
        assert_eq!((done, row), (50, 10));
        assert_eq!(waiters.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.lhs_used(), 0);
    }

    #[test]
    fn coalescing_shares_one_fetch() {
        // Figure 16's example: LDN nodes 1 and 2 miss; output rows 0, 2, 3
        // wait on them via three LHS-ID entries but only two LDN entries.
        let mut t = RunaheadTables::new(16, 64);
        assert_eq!(t.issue(1, w(0)), IssueOutcome::Allocated);
        t.set_completion(1, 100);
        assert_eq!(t.issue(2, w(2)), IssueOutcome::Allocated);
        t.set_completion(2, 110);
        assert_eq!(t.issue(1, w(3)), IssueOutcome::Coalesced);
        assert_eq!(t.ldn_used(), 2, "two LDN entries as in Figure 16");
        assert_eq!(t.lhs_used(), 3, "three LHS-ID entries as in Figure 16");
    }

    #[test]
    fn completions_drain_in_time_order() {
        let mut t = RunaheadTables::new(4, 8);
        t.issue(1, w(0));
        t.set_completion(1, 200);
        t.issue(2, w(1));
        t.set_completion(2, 150);
        assert_eq!(t.pop_earliest().unwrap().1, 2);
        assert_eq!(t.pop_earliest().unwrap().1, 1);
        assert!(t.pop_earliest().is_none());
    }

    #[test]
    fn completion_ties_resolve_by_row_id() {
        let mut t = RunaheadTables::new(4, 8);
        t.issue(9, w(0));
        t.set_completion(9, 100);
        t.issue(4, w(1));
        t.set_completion(4, 100);
        assert_eq!(t.pop_earliest().unwrap().1, 4, "smaller row id first");
        assert_eq!(t.pop_earliest().unwrap().1, 9);
    }

    #[test]
    fn ldn_capacity_blocks_new_rows() {
        let mut t = RunaheadTables::new(2, 8);
        t.issue(1, w(0));
        t.issue(2, w(0));
        assert_eq!(t.issue(3, w(0)), IssueOutcome::LdnFull);
        // Existing rows can still coalesce.
        assert_eq!(t.issue(1, w(1)), IssueOutcome::Coalesced);
    }

    #[test]
    fn lhs_capacity_blocks_everything() {
        let mut t = RunaheadTables::new(4, 2);
        t.issue(1, w(0));
        t.issue(1, w(1));
        assert_eq!(t.issue(1, w(2)), IssueOutcome::LhsFull);
        assert_eq!(t.issue(9, w(2)), IssueOutcome::LhsFull);
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut t = RunaheadTables::new(4, 8);
        t.issue(1, w(0));
        t.issue(2, w(0));
        t.issue(2, w(1));
        t.set_completion(1, 10);
        t.set_completion(2, 20);
        while t.pop_earliest().is_some() {}
        assert_eq!(t.peak_ldn(), 2);
        assert_eq!(t.peak_lhs(), 3);
    }

    #[test]
    fn reset_recycles_slots_without_stale_state() {
        let mut t = RunaheadTables::new(2, 4);
        t.issue(1, w(0));
        t.issue(2, w(1));
        t.set_completion(1, 10);
        t.reset(3, 6);
        assert!(t.is_empty());
        assert_eq!(t.lhs_used(), 0);
        assert_eq!(t.peak_ldn(), 0);
        // Rows in flight before the reset are gone; re-issuing allocates.
        assert_eq!(t.issue(1, w(5)), IssueOutcome::Allocated);
        t.set_completion(1, 99);
        let (done, row, waiters) = t.pop_earliest().unwrap();
        assert_eq!((done, row), (99, 1));
        assert_eq!(waiters.len(), 1);
        assert_eq!(waiters[0].output_row, 5, "no waiters from a prior epoch");
    }

    #[test]
    fn pop_slice_matches_owned_pop() {
        let mut a = RunaheadTables::new(4, 8);
        let mut b = RunaheadTables::new(4, 8);
        for t in [&mut a, &mut b] {
            t.issue(3, w(0));
            t.issue(3, w(1));
            t.set_completion(3, 40);
        }
        let owned = a.pop_earliest().unwrap();
        let (done, row, slice) = b.pop_earliest_slice().unwrap();
        assert_eq!((owned.0, owned.1), (done, row));
        assert_eq!(owned.2.as_slice(), slice);
    }

    #[test]
    #[should_panic(expected = "entry must be allocated")]
    fn completion_requires_allocation() {
        let mut t = RunaheadTables::new(2, 2);
        t.set_completion(5, 10);
    }
}
