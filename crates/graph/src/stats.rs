//! Degree statistics: the power-law characterization behind GROW's
//! high-degree-node (HDN) caching (Figure 11 of the paper).

use crate::Graph;

/// Degrees of all nodes sorted descending — the x-axis of Figure 11.
pub fn sorted_degrees(graph: &Graph) -> Vec<usize> {
    let mut d: Vec<usize> = (0..graph.nodes()).map(|v| graph.degree(v)).collect();
    d.sort_unstable_by(|a, b| b.cmp(a));
    d
}

/// Node IDs of the `k` highest-degree nodes (ties broken by ID).
///
/// This is the global (no graph partitioning) HDN selection of
/// Section V-C: "caching without graph partitioning simply caches the
/// top-N high-degree nodes" (Figure 17 caption).
pub fn top_degree_nodes(graph: &Graph, k: usize) -> Vec<u32> {
    let mut nodes: Vec<u32> = (0..graph.nodes() as u32).collect();
    nodes.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v as usize)), v));
    nodes.truncate(k);
    nodes
}

/// Fraction of directed edges whose *target* lies in the `k` highest-degree
/// nodes: the upper bound of the no-partitioning HDN cache hit rate.
pub fn top_k_edge_coverage(graph: &Graph, k: usize) -> f64 {
    if graph.directed_edges() == 0 {
        return 0.0;
    }
    let covered: usize = top_degree_nodes(graph, k)
        .iter()
        .map(|&v| graph.degree(v as usize))
        .sum();
    covered as f64 / graph.directed_edges() as f64
}

/// Log-binned degree histogram: `(bin lower bound, node count)` pairs with
/// power-of-two bins, suitable for printing Figure 11's distribution.
pub fn degree_histogram_log2(graph: &Graph) -> Vec<(usize, usize)> {
    let mut bins: Vec<usize> = Vec::new();
    for v in 0..graph.nodes() {
        let d = graph.degree(v);
        let bin = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        if bins.len() <= bin {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += 1;
    }
    bins.into_iter()
        .enumerate()
        .map(|(bin, count)| (if bin == 0 { 0 } else { 1usize << (bin - 1) }, count))
        .filter(|&(_, count)| count > 0)
        .collect()
}

/// Maximum-likelihood estimate of the power-law exponent `gamma` for the
/// degree tail `d >= d_min` (Clauset–Shalizi–Newman estimator).
///
/// Returns `None` if fewer than two nodes reach `d_min`.
pub fn power_law_alpha(graph: &Graph, d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for v in 0..graph.nodes() {
        let d = graph.degree(v);
        if d >= d_min {
            count += 1;
            log_sum += (d as f64 / (d_min as f64 - 0.5)).ln();
        }
    }
    if count < 2 || log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + count as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CommunityGraphSpec;

    fn star(n: usize) -> Graph {
        Graph::from_edges(n, (1..n as u32).map(|v| (0, v)))
    }

    #[test]
    fn sorted_degrees_descending() {
        let g = star(5);
        assert_eq!(sorted_degrees(&g), vec![4, 1, 1, 1, 1]);
    }

    #[test]
    fn top_degree_nodes_finds_hub() {
        let g = star(5);
        assert_eq!(top_degree_nodes(&g, 1), vec![0]);
        assert_eq!(top_degree_nodes(&g, 2).len(), 2);
    }

    #[test]
    fn coverage_of_hub_is_half_in_star() {
        // In a star, the hub is an endpoint of every edge, so targeting the
        // hub covers half of all directed entries.
        let g = star(9);
        assert!((top_k_edge_coverage(&g, 1) - 0.5).abs() < 1e-12);
        assert!((top_k_edge_coverage(&g, 9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_all_nodes() {
        let g = star(10);
        let total: usize = degree_histogram_log2(&g).iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn alpha_estimate_near_generator_exponent() {
        let spec = CommunityGraphSpec {
            nodes: 5000,
            avg_degree: 12.0,
            communities: 10,
            intra_fraction: 0.8,
            power_law_exponent: 2.4,
            shuffle_fraction: 1.0,
        };
        let g = spec.generate(13);
        let alpha = power_law_alpha(&g, 12).expect("enough tail nodes");
        assert!(
            (1.6..3.4).contains(&alpha),
            "estimated alpha {alpha} not in a plausible power-law band"
        );
    }

    #[test]
    fn alpha_returns_none_for_tiny_graphs() {
        let g = Graph::from_edges(2, [(0, 1)]);
        assert!(power_law_alpha(&g, 100).is_none());
    }
}
