//! Release-mode scale smoke test: the partitioner must handle the largest
//! Table I surrogate sizes in single-digit seconds with useful quality.
//! Run with `cargo test --release -p grow-partition -- --ignored`.

use std::time::Instant;

use grow_graph::CommunityGraphSpec;
use grow_partition::{
    label_propagation_partition, multilevel_partition, LabelPropagationConfig, MultilevelConfig,
};

#[test]
#[ignore = "release-mode scale check; run explicitly"]
fn yelp_scale_partitioning_quality_and_speed() {
    let spec = CommunityGraphSpec {
        nodes: 89_605,
        avg_degree: 19.5,
        communities: 40,
        intra_fraction: 0.85,
        power_law_exponent: 2.4,
        shuffle_fraction: 1.0,
    };
    let t0 = Instant::now();
    let graph = spec.generate(42);
    let gen_time = t0.elapsed();

    let parts = graph.nodes().div_ceil(4096);
    let t1 = Instant::now();
    let ml = multilevel_partition(&graph, parts, &MultilevelConfig::default());
    let ml_time = t1.elapsed();
    let ml_frac = ml.intra_edge_fraction(&graph);

    let t2 = Instant::now();
    let lp = label_propagation_partition(&graph, parts, &LabelPropagationConfig::default());
    let lp_time = t2.elapsed();
    let lp_frac = lp.intra_edge_fraction(&graph);

    eprintln!(
        "gen: {gen_time:?}; multilevel: {ml_time:?} (intra {ml_frac:.3}, balance {:.3}); \
         label-prop: {lp_time:?} (intra {lp_frac:.3}, balance {:.3})",
        ml.balance(),
        lp.balance()
    );
    assert!(ml_frac > 0.5, "multilevel intra fraction {ml_frac} too low");
    assert!(ml_time.as_secs() < 60, "multilevel too slow: {ml_time:?}");
}
