use std::fmt;

use crate::{CsrMatrix, DenseMatrix, SparseError};

/// A CSC (compressed sparse column) matrix with `f64` values.
///
/// CSC is the compression format used by GCNAX and HyGCN (Table II of the
/// paper): the sparse operand of each 2D tile is stored column-major so the
/// outer-product dataflow can walk whole columns. Internally this type wraps
/// the CSR representation of the transpose, which keeps the two formats
/// trivially consistent.
///
/// ```
/// use grow_sparse::{CooMatrix, CscMatrix};
///
/// # fn main() -> Result<(), grow_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 3);
/// coo.push(0, 2, 4.0)?;
/// coo.push(1, 2, 5.0)?;
/// let csc = coo.to_csr().to_csc();
/// assert_eq!(csc.col_entries(2).collect::<Vec<_>>(), vec![(0, 4.0), (1, 5.0)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    /// CSR of the transpose: row r of `transposed` is column r of `self`.
    transposed: CsrMatrix,
}

impl CscMatrix {
    /// Creates a CSC matrix from raw column-compressed arrays.
    ///
    /// `colptr` has `cols + 1` entries; `indices` stores row indices sorted
    /// ascending within each column.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if the arrays violate the
    /// compressed-format invariants.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        colptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        // The transpose of this CSC matrix is a CSR matrix with the same arrays.
        let transposed = CsrMatrix::from_raw(cols, rows, colptr, indices, values)?;
        Ok(CscMatrix { transposed })
    }

    pub(crate) fn from_transposed_csr(transposed: CsrMatrix) -> Self {
        CscMatrix { transposed }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.transposed.cols()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.transposed.rows()
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Total number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.transposed.nnz()
    }

    /// Fraction of non-zero positions, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.transposed.density()
    }

    /// The row indices of column `col`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col_indices(&self, col: usize) -> &[u32] {
        self.transposed.row_indices(col)
    }

    /// The values of column `col`, aligned with [`CscMatrix::col_indices`].
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col_values(&self, col: usize) -> &[f64] {
        self.transposed.row_values(col)
    }

    /// Iterates over `(row, value)` pairs of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col_entries(&self, col: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.transposed.row_entries(col)
    }

    /// Number of non-zeros in column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col_nnz(&self, col: usize) -> usize {
        self.transposed.pattern().row_nnz(col)
    }

    /// Converts to CSR format.
    pub fn to_csr(&self) -> CsrMatrix {
        self.transposed.transpose()
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        self.to_csr().to_dense()
    }
}

impl fmt::Display for CscMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CscMatrix {}x{}, nnz = {}, density = {:.3e}",
            self.rows(),
            self.cols(),
            self.nnz(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 2);
        coo.extend([(0, 0, 1.0), (2, 0, 2.0), (1, 1, 3.0)]);
        coo.to_csr()
    }

    #[test]
    fn csr_to_csc_round_trips() {
        let csr = sample();
        let back = csr.to_csc().to_csr();
        assert_eq!(csr, back);
    }

    #[test]
    fn column_access_matches_dense() {
        let csc = sample().to_csc();
        assert_eq!(
            csc.col_entries(0).collect::<Vec<_>>(),
            vec![(0, 1.0), (2, 2.0)]
        );
        assert_eq!(csc.col_entries(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
        assert_eq!(csc.col_nnz(0), 2);
    }

    #[test]
    fn from_raw_mirrors_paper_figure4_example() {
        // Figure 4(b) of the paper: a 3x4 matrix in CSC with
        // colptr = [0, 2, 4, 7], values packed column-major.
        // We reproduce the structure class: 2 columns, first has rows {0,1}.
        let csc =
            CscMatrix::from_raw(2, 2, vec![0, 2, 3], vec![0, 1, 1], vec![0.2, 1.2, 0.8]).unwrap();
        assert_eq!(csc.nnz(), 3);
        assert_eq!(csc.col_values(0), &[0.2, 1.2]);
        assert_eq!(csc.to_dense().get(1, 1), 0.8);
    }

    #[test]
    fn shape_is_not_transposed() {
        let csc = sample().to_csc();
        assert_eq!(csc.shape(), (3, 2));
    }
}
