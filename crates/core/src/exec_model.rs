//! The execution-model layer: how per-cluster timelines become per-phase
//! cycle counts.
//!
//! Every engine simulates its clusters in isolated contexts (the shared
//! [`pipeline`](crate::pipeline) harness); this module decides what the
//! resulting fragments *mean*:
//!
//! * [`ExecModelKind::PostHoc`] (default) — the original single-PE
//!   semantics: a phase's cycle count is the sequential composition of its
//!   prologue and per-cluster makespans, and the configured multi-PE
//!   arrangement is a *projection* computed afterwards from the
//!   per-cluster profiles ([`crate::schedule::summarize`]). Scheduling can
//!   never change a phase counter.
//! * [`ExecModelKind::EndToEnd`] (`exec=e2e`) — `pes=N` is a real
//!   execution mode: each phase's clusters are dispatched through the
//!   configured [`Scheduler`](crate::schedule::Scheduler) onto `N`
//!   virtual PEs that contend for the shared memory system under
//!   water-filling bandwidth sharing ([`multi_pe::simulate_e2e`]) — with a
//!   non-default channel/bank topology
//!   ([`MemTopology`](grow_sim::MemTopology), registry keys `channels=` /
//!   `banks=`) the banked contention model
//!   ([`multi_pe::simulate_e2e_banked`]) adds per-request bank-conflict
//!   stalls on top — and the resulting makespan *is* the phase's cycle
//!   count. Combination and
//!   aggregation timelines compose with inter-phase (and inter-layer)
//!   sync barriers: a phase's cluster fan-out starts only after the
//!   previous phase — and any serial prologue — has fully drained. Each
//!   phase carries its per-PE busy breakdown
//!   ([`PhasePeBusy`](crate::report::PhasePeBusy)), assembled per layer
//!   into the report's [`MultiPeBreakdown`](crate::MultiPeBreakdown).
//!
//! The end-to-end fluid durations are calibrated against the detailed
//! per-cluster timelines (see [`multi_pe::simulate_e2e`]), which yields
//! the load-bearing equivalence the golden suites assert: **a 1-PE
//! end-to-end run is bit-identical to the post-hoc composition** — same
//! cycles, same traffic, same everything the snapshots render. With
//! `pes > 1` the phase counters genuinely change (that is the point), and
//! determinism still holds: the composition runs over fragments merged in
//! cluster order, so `GROW_SERIAL=1` and parallel execution agree
//! bit-identically.

use crate::multi_pe;
use crate::report::PhasePeBusy;
use crate::schedule::{self, MultiPeConfig};
use crate::{MultiPeSummary, PhaseKind, PhaseReport, RunReport};

/// Canonical execution-model names, in registry order (`exec=` values).
pub const EXEC_MODEL_NAMES: [&str; 2] = ["post_hoc", "e2e"];

/// Which execution model composes per-cluster timelines into phase cycle
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecModelKind {
    /// Single-PE sequential composition; multi-PE as a post-hoc
    /// projection (the legacy semantics, and the default).
    #[default]
    PostHoc,
    /// End-to-end multi-PE composition: the scheduler and the fluid
    /// contention model run inside the execution loop, per phase.
    EndToEnd,
}

impl ExecModelKind {
    /// Every execution model, in [`EXEC_MODEL_NAMES`] order.
    pub const ALL: [ExecModelKind; 2] = [ExecModelKind::PostHoc, ExecModelKind::EndToEnd];

    /// Parses a (case-insensitive) execution-model name. Accepts the
    /// canonical names plus spelled-out aliases.
    pub fn parse(name: &str) -> Option<ExecModelKind> {
        match name.to_ascii_lowercase().as_str() {
            "post_hoc" | "post-hoc" | "posthoc" => Some(ExecModelKind::PostHoc),
            "e2e" | "end_to_end" | "end-to-end" | "endtoend" => Some(ExecModelKind::EndToEnd),
            _ => None,
        }
    }

    /// The canonical [`EXEC_MODEL_NAMES`] entry of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            ExecModelKind::PostHoc => "post_hoc",
            ExecModelKind::EndToEnd => "e2e",
        }
    }
}

/// One engine run's execution model: the configured multi-PE arrangement
/// plus the memory-system parameters, built once per
/// [`Accelerator::run`](crate::Accelerator::run) and threaded through the
/// [`pipeline`](crate::pipeline) so every phase composes its cluster
/// fragments the same way.
#[derive(Debug, Clone, Copy)]
pub struct ExecModel {
    cfg: MultiPeConfig,
    per_pe_bytes_per_cycle: f64,
    dram: grow_sim::DramConfig,
}

impl ExecModel {
    /// Builds the execution model for one run: `cfg` names the PE count,
    /// scheduler, model kind, and channel/bank topology;
    /// `per_pe_bytes_per_cycle` is each PE's average share of the channel
    /// (total bandwidth scales with `pes`, per Section VII-F). Request
    /// granularity and per-request overhead — the banked contention
    /// parameters — take the Table III defaults; engines that carry a
    /// full [`DramConfig`](grow_sim::DramConfig) should use
    /// [`ExecModel::with_dram`] so registry overrides of those knobs
    /// reach the contention model too.
    pub fn new(cfg: MultiPeConfig, per_pe_bytes_per_cycle: f64) -> Self {
        ExecModel::with_dram(
            cfg,
            grow_sim::DramConfig {
                bytes_per_cycle: per_pe_bytes_per_cycle,
                ..grow_sim::DramConfig::default()
            },
        )
    }

    /// Builds the execution model from an engine's full DRAM
    /// configuration: the per-PE bandwidth share is
    /// `dram.bytes_per_cycle`, and the banked contention model reuses the
    /// engine's `access_granularity` and `request_overhead_cycles`.
    pub fn with_dram(cfg: MultiPeConfig, dram: grow_sim::DramConfig) -> Self {
        ExecModel {
            cfg,
            per_pe_bytes_per_cycle: dram.bytes_per_cycle,
            dram,
        }
    }

    /// The model kind in effect.
    pub fn kind(&self) -> ExecModelKind {
        self.cfg.exec
    }

    /// The multi-PE configuration in effect.
    pub fn config(&self) -> &MultiPeConfig {
        &self.cfg
    }

    /// Composes one phase's per-cluster fragments into a single
    /// [`PhaseReport`].
    ///
    /// Counters that scheduling cannot change — traffic, cache, SRAM, MAC
    /// and compute-busy totals, cluster profiles — merge in cluster order
    /// under either model. Each fragment's profile is stamped with the
    /// fragment's detailed makespan ([`crate::ClusterProfile::cycles`]);
    /// the cycle count is then:
    ///
    /// * post-hoc, or end-to-end with one PE: the exact sequential sum of
    ///   fragment cycles (integer arithmetic — the 1-PE end-to-end path is
    ///   bit-identical to post-hoc *by construction*, not by rounding);
    /// * end-to-end with `pes > 1`: the calibrated fluid makespan of the
    ///   scheduler's dispatch over the fragments, rounded to whole cycles.
    ///
    /// End-to-end composition also attaches the phase's [`PhasePeBusy`].
    pub fn compose(&self, kind: PhaseKind, partials: Vec<PhaseReport>) -> PhaseReport {
        let mut merged = PhaseReport::new(kind);
        for mut partial in partials {
            let detailed = partial.cycles;
            for profile in &mut partial.cluster_profiles {
                profile.cycles = detailed;
            }
            merged.absorb_sequential(partial);
        }
        if self.cfg.exec == ExecModelKind::EndToEnd {
            let run = multi_pe::simulate_e2e_banked(
                &merged.cluster_profiles,
                self.cfg.pes,
                self.per_pe_bytes_per_cycle,
                self.cfg.scheduler,
                &self.dram,
                self.cfg.topology,
            );
            if self.cfg.pes > 1 {
                merged.cycles = run.makespan.round() as u64;
            }
            let fragment = PhasePeBusy {
                makespan: run.makespan,
                cluster_time: run.cluster_cycles.iter().sum(),
                per_pe_busy: run.per_pe_busy,
            };
            // A multi-pass phase (column-chunked combination) composes its
            // passes back to back; merge onto any breakdown already
            // accumulated the same way the caller absorbs the report.
            merged.pe = Some(fragment);
        }
        merged
    }

    /// Finalizes a run's report under this model: records the model name
    /// and attaches the multi-PE summary.
    ///
    /// * Post-hoc: the summary is the legacy Figure 24 projection over the
    ///   run's cluster profiles ([`schedule::summarize`]), bit-identical
    ///   to the pre-exec-model behavior.
    /// * End-to-end: the summary is *derived from the breakdown* — its
    ///   makespan is the report's actual end-to-end cycle count and its
    ///   per-PE busy times are the phase breakdowns summed across the
    ///   inter-phase barriers.
    pub fn finalize(&self, report: &mut RunReport) {
        report.exec = self.cfg.exec.name();
        match self.cfg.exec {
            ExecModelKind::PostHoc => {
                report.multi_pe = Some(schedule::summarize(
                    report,
                    &self.cfg,
                    self.per_pe_bytes_per_cycle,
                ));
            }
            ExecModelKind::EndToEnd => {
                // Sum the phase breakdowns into one whole-run PhasePeBusy
                // (phases are barrier-separated, so sequential absorption
                // is exactly the composition the run performed).
                let mut run_busy = PhasePeBusy {
                    makespan: 0.0,
                    per_pe_busy: vec![0.0f64; self.cfg.pes],
                    cluster_time: 0.0,
                };
                for layer in &report.layers {
                    for phase in [&layer.combination, &layer.aggregation] {
                        if let Some(pe) = &phase.pe {
                            run_busy.absorb_sequential(pe);
                        }
                    }
                }
                report.multi_pe = Some(MultiPeSummary {
                    scheduler: self.cfg.scheduler.name(),
                    pes: self.cfg.pes,
                    makespan: report.total_cycles() as f64,
                    imbalance: run_busy.imbalance(),
                    per_pe_busy: run_busy.per_pe_busy,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SchedulerKind;
    use crate::ClusterProfile;

    fn model(kind: ExecModelKind, pes: usize) -> ExecModel {
        ExecModel::new(
            MultiPeConfig {
                pes,
                scheduler: SchedulerKind::RoundRobin,
                exec: kind,
                ..MultiPeConfig::default()
            },
            32.0,
        )
    }

    fn fragment(cycles: u64, compute: u64, mem: u64) -> PhaseReport {
        let mut p = PhaseReport::new(PhaseKind::Aggregation);
        p.cycles = cycles;
        p.compute_busy = compute;
        p.mac_ops = compute;
        p.cluster_profiles.push(ClusterProfile {
            compute_cycles: compute,
            mem_bytes: mem,
            cycles: 0,
        });
        p
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in ExecModelKind::ALL {
            assert_eq!(ExecModelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(
            ExecModelKind::parse("End-To-End"),
            Some(ExecModelKind::EndToEnd)
        );
        assert_eq!(ExecModelKind::parse("bogus"), None);
        assert_eq!(ExecModelKind::ALL.len(), EXEC_MODEL_NAMES.len());
    }

    #[test]
    fn post_hoc_compose_is_the_sequential_sum() {
        let parts = vec![fragment(100, 40, 64), fragment(250, 10, 512)];
        let merged = model(ExecModelKind::PostHoc, 8).compose(PhaseKind::Aggregation, parts);
        assert_eq!(merged.cycles, 350);
        assert!(merged.pe.is_none());
        // Profiles are stamped with their fragment's detailed makespan.
        assert_eq!(merged.cluster_profiles[0].cycles, 100);
        assert_eq!(merged.cluster_profiles[1].cycles, 250);
    }

    #[test]
    fn single_pe_end_to_end_is_bit_identical_to_post_hoc() {
        let parts = || {
            vec![
                fragment(123, 40, 64),
                fragment(7, 1, 1),
                fragment(999, 2, 3),
            ]
        };
        let ph = model(ExecModelKind::PostHoc, 1).compose(PhaseKind::Aggregation, parts());
        let e2e = model(ExecModelKind::EndToEnd, 1).compose(PhaseKind::Aggregation, parts());
        assert_eq!(e2e.cycles, ph.cycles);
        assert_eq!(e2e.traffic, ph.traffic);
        assert_eq!(e2e.cluster_profiles, ph.cluster_profiles);
        let pe = e2e.pe.expect("end-to-end attaches the breakdown");
        assert_eq!(pe.per_pe_busy.len(), 1);
        assert!((pe.makespan - ph.cycles as f64).abs() < 1e-9);
    }

    #[test]
    fn multi_pe_end_to_end_shrinks_the_phase() {
        let parts = || (0..16).map(|_| fragment(1000, 900, 100)).collect();
        let one = model(ExecModelKind::EndToEnd, 1).compose(PhaseKind::Aggregation, parts());
        let four = model(ExecModelKind::EndToEnd, 4).compose(PhaseKind::Aggregation, parts());
        assert_eq!(one.cycles, 16_000);
        assert!(
            four.cycles < one.cycles,
            "four {} one {}",
            four.cycles,
            one.cycles
        );
        let pe = four.pe.expect("breakdown attached");
        assert_eq!(pe.per_pe_busy.len(), 4);
        let busy: f64 = pe.per_pe_busy.iter().sum();
        assert!((busy - pe.cluster_time).abs() / busy < 1e-9, "conservation");
    }

    #[test]
    fn banked_topology_reaches_the_composition() {
        use grow_sim::MemTopology;
        // Memory-bound fragments all homed on one banked channel: the
        // composed phase must stretch past the idealized uniform pipe.
        let parts = || (0..16).map(|_| fragment(1000, 10, 4000)).collect();
        let uniform = model(ExecModelKind::EndToEnd, 4).compose(PhaseKind::Aggregation, parts());
        let banked_cfg = MultiPeConfig {
            pes: 4,
            scheduler: SchedulerKind::RoundRobin,
            exec: ExecModelKind::EndToEnd,
            topology: MemTopology::new(1, 4),
        };
        let banked = ExecModel::new(banked_cfg, 32.0).compose(PhaseKind::Aggregation, parts());
        assert!(
            banked.cycles > uniform.cycles,
            "banked {} vs uniform {}",
            banked.cycles,
            uniform.cycles
        );
        // The default topology is the uniform pipe, bit for bit.
        let default_cfg = MultiPeConfig {
            topology: MemTopology::default(),
            ..banked_cfg
        };
        let defaulted = ExecModel::new(default_cfg, 32.0).compose(PhaseKind::Aggregation, parts());
        assert_eq!(defaulted, uniform);
    }

    #[test]
    fn finalize_post_hoc_matches_legacy_summarize() {
        use crate::{prepare, Accelerator, GrowEngine, PartitionStrategy};
        let w = grow_model::DatasetKey::Cora
            .spec()
            .scaled_to(300)
            .instantiate(3);
        let p = prepare(
            &w,
            PartitionStrategy::Multilevel { cluster_nodes: 100 },
            4096,
        );
        let report = GrowEngine::default().run(&p);
        let cfg = MultiPeConfig::default();
        let expected = schedule::summarize(&report, &cfg, 32.0);
        let mut finalized = report.clone();
        ExecModel::new(cfg, 32.0).finalize(&mut finalized);
        assert_eq!(finalized.multi_pe, Some(expected));
        assert_eq!(finalized.exec, "post_hoc");
    }
}
