//! [`AsyncService`] — the always-on, asynchronous front end of the
//! serving layer.
//!
//! [`BatchService`] is synchronous and batch-scoped: callers assemble a
//! job list, block through `run_batch`, and get every result at once. An
//! always-on deployment needs the opposite shape — submissions arriving
//! at any time, an immediate [`Ticket`] per submission, and each
//! [`JobResult`] delivered the moment its job completes. `AsyncService`
//! provides that shape on plain `std` (threads + `mpsc` + `Condvar`; the
//! workspace builds without crates.io, so there is no tokio), layered on
//! the same `BatchService` internals:
//!
//! * **Priority classes + admission control.** Submissions enter one of
//!   three FIFO queues ([`Priority::High`]/[`Priority::Normal`]/
//!   [`Priority::Low`]); the worker always drains the highest non-empty
//!   class. The pending set is bounded by
//!   [`AsyncConfig::queue_capacity`]; a submission over the bound is
//!   rejected immediately with [`SubmitError::QueueFull`] — back-pressure
//!   by refusal, never by blocking the submitter.
//! * **Bounded session pool.** [`AsyncConfig::session_capacity`] forwards
//!   to [`BatchService::with_session_capacity`]'s LRU bound, so an
//!   always-on process does not accumulate one pooled workload per
//!   distinct recipe it ever saw.
//! * **Persistent results.** Attach a
//!   [`ResultStore`](crate::ResultStore) to the inner `BatchService` and
//!   repeated queries are served across process restarts without running
//!   a simulation.
//!
//! **Bit-identity contract.** The worker processes one job at a time, so
//! each simulation keeps its full inner cluster fan-out through
//! [`parallel_map`](grow_sim::exec::parallel_map) — exactly the one-level
//! rule `run_batch` applies, taken to the single-job grain. Reports are
//! bit-identical between serial and parallel execution by the simulator's
//! determinism contract, so draining an `AsyncService` yields reports
//! byte-for-byte equal to `BatchService::run_batch` over the same jobs,
//! under both `GROW_SERIAL=1` and any thread count. The worker thread
//! replays the spawning thread's `with_mode`/`with_workers` overrides via
//! [`ExecContext`], so scoped test overrides apply to async runs too.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use grow_sim::exec::ExecContext;
use grow_sim::fault::{self, CancelToken, FaultSite};

use crate::batch::{job_fault_plan, BatchService, JobResult, JobSpec, ServiceStats};

/// Scheduling class of a submission: the worker always serves the
/// highest non-empty class, FIFO within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Served before everything else (interactive queries).
    High,
    /// The default class.
    #[default]
    Normal,
    /// Served only when nothing else waits (background sweeps).
    Low,
}

impl Priority {
    /// Queue slot of this class (0 = served first).
    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Configuration of an [`AsyncService`].
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Maximum number of admitted-but-uncompleted jobs (queued plus in
    /// flight); a submission over the bound is rejected with
    /// [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// LRU bound for the inner session pool (`None` keeps whatever the
    /// wrapped [`BatchService`] was configured with).
    pub session_capacity: Option<usize>,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            queue_capacity: 1024,
            session_capacity: None,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending set is at capacity; resubmit after draining tickets.
    QueueFull {
        /// The configured [`AsyncConfig::queue_capacity`].
        capacity: usize,
        /// Admitted-but-uncompleted jobs at rejection time.
        pending: usize,
    },
    /// The service is shutting down and accepts no new work.
    ShuttingDown,
    /// The worker thread died (an injected worker kill or a supervision
    /// escape); no new work can run. Call
    /// [`finish_report`](AsyncService::finish_report) for the casualty
    /// list.
    ServiceDead,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity, pending } => write!(
                f,
                "pending queue full ({pending} of {capacity} slots in use)"
            ),
            SubmitError::ShuttingDown => f.write_str("service is shutting down"),
            SubmitError::ServiceDead => f.write_str("service worker died"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a [`Ticket`] will never deliver a result: the worker thread died
/// (or the service was dropped) with the job still outstanding. Surfaced
/// as an error — never a panic or a hang — so submitters always observe a
/// worker death as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The result channel disconnected with no result delivered.
    ServiceDead,
}

impl fmt::Display for WaitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitError::ServiceDead => {
                f.write_str("service died before delivering this job's result")
            }
        }
    }
}

impl std::error::Error for WaitError {}

/// Shutdown summary returned by [`AsyncService::finish_report`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FinishReport {
    /// True when the worker thread exited by panic rather than by
    /// draining its queues.
    pub worker_panicked: bool,
    /// Submission ids whose results were never delivered because the
    /// worker died: the job it was running plus everything still queued.
    pub casualties: Vec<u64>,
}

/// A claim on one submitted job's eventual [`JobResult`], returned
/// immediately by [`AsyncService::submit`]. The result is delivered the
/// moment the job completes, independent of every other submission.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<JobResult>,
    cancel: Arc<CancelToken>,
}

impl Ticket {
    /// The submission id (also stamped into the delivered
    /// [`JobResult::index`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cooperative cancellation of this job. The engine checks
    /// the token at cluster and layer boundaries; a job caught in flight
    /// completes as [`JobError::Cancelled`](crate::JobError::Cancelled).
    /// A job that already completed (or is served from cache) still
    /// delivers its report — cancellation never corrupts a finished
    /// result, it only stops future work.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the job completes and returns its result.
    ///
    /// # Errors
    ///
    /// [`WaitError::ServiceDead`] when the worker died (or the service
    /// was dropped) before delivering this job's result — never a panic,
    /// never a hang.
    pub fn wait(self) -> Result<JobResult, WaitError> {
        self.rx.recv().map_err(|_| WaitError::ServiceDead)
    }

    /// Returns the result if the job has already completed, without
    /// blocking. At most one result is ever delivered per ticket: after
    /// this returns `Ok(Some(..))`, [`wait`](Self::wait) would error.
    ///
    /// # Errors
    ///
    /// [`WaitError::ServiceDead`] when the channel disconnected with no
    /// result delivered.
    pub fn try_wait(&self) -> Result<Option<JobResult>, WaitError> {
        match self.rx.try_recv() {
            Ok(result) => Ok(Some(result)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(WaitError::ServiceDead),
        }
    }
}

/// One admitted submission parked in the priority queues.
struct Submission {
    id: u64,
    job: JobSpec,
    tx: Sender<JobResult>,
    cancel: Arc<CancelToken>,
}

/// The queues and lifecycle flags shared between submitters and the
/// worker thread.
struct QueueState {
    /// One FIFO per [`Priority`], indexed by [`Priority::index`].
    queues: [VecDeque<Submission>; 3],
    /// Admitted-but-uncompleted jobs (queued plus in flight).
    pending: usize,
    /// Set by [`AsyncService::finish`]: stop after draining the queues.
    stopping: bool,
    /// Set by `Drop`: stop now, discarding queued submissions.
    abort: bool,
    /// Set by the worker's death guard: the worker exited by panic and
    /// will never serve another job.
    worker_dead: bool,
    /// Submission ids orphaned by a worker death (the in-flight job plus
    /// everything queued behind it).
    casualties: Vec<u64>,
}

impl QueueState {
    /// Pops the oldest submission of the highest non-empty class.
    fn pop(&mut self) -> Option<Submission> {
        self.queues.iter_mut().find_map(VecDeque::pop_front)
    }
}

struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl Shared {
    /// Locks the queue state, recovering from poison: a worker that died
    /// mid-update leaves consistent-enough state (counters are fixed up
    /// by the death guard), and submitters must keep observing the death
    /// as data ([`SubmitError::ServiceDead`]), never as a propagated
    /// panic.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The always-on asynchronous serving front end. See the
/// [module docs](self) for the design and the bit-identity contract.
///
/// ```
/// use grow_model::DatasetKey;
/// use grow_serve::{AsyncConfig, AsyncService, BatchService, JobSpec};
///
/// let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
/// let spec = DatasetKey::Cora.spec().scaled_to(300);
/// let ticket = service.submit(JobSpec::new(spec, 42, "grow")).unwrap();
/// let result = ticket.wait().expect("worker alive");
/// assert!(result.report().is_some());
/// let batch = service.finish(); // drain + recover the inner BatchService
/// assert_eq!(batch.stats().simulations_run, 1);
/// ```
pub struct AsyncService {
    shared: Arc<Shared>,
    service: Option<Arc<Mutex<BatchService>>>,
    completions: Arc<Mutex<Vec<u64>>>,
    worker: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    capacity: usize,
}

impl fmt::Debug for AsyncService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncService")
            .field("capacity", &self.capacity)
            .field("pending", &self.pending())
            .finish_non_exhaustive()
    }
}

impl AsyncService {
    /// Spawns the worker thread and starts accepting submissions. The
    /// wrapped `service` brings its caches, counters, and any attached
    /// [`ResultStore`](crate::ResultStore) with it.
    pub fn start(mut service: BatchService, config: AsyncConfig) -> Self {
        if config.session_capacity.is_some() {
            service.set_session_capacity(config.session_capacity);
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                pending: 0,
                stopping: false,
                abort: false,
                worker_dead: false,
                casualties: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        let service = Arc::new(Mutex::new(service));
        let completions = Arc::new(Mutex::new(Vec::new()));
        // The worker replays this thread's execution overrides, so a
        // `with_mode(ExecMode::Serial, ..)` scope around the service
        // applies to async runs exactly as it would to `run_batch`.
        let ctx = ExecContext::capture();
        let worker = {
            let shared = Arc::clone(&shared);
            let service = Arc::clone(&service);
            let completions = Arc::clone(&completions);
            std::thread::Builder::new()
                .name("grow-serve-worker".to_string())
                .spawn(move || ctx.scope(|| worker_loop(&shared, &service, &completions)))
                .expect("spawn serving worker")
        };
        AsyncService {
            shared,
            service: Some(service),
            completions,
            worker: Some(worker),
            next_id: AtomicU64::new(0),
            capacity: config.queue_capacity.max(1),
        }
    }

    /// Submits one job at [`Priority::Normal`]; returns its [`Ticket`]
    /// immediately (never blocks on compute).
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] over the admission bound,
    /// [`SubmitError::ShuttingDown`] after [`finish`](Self::finish) began.
    pub fn submit(&self, job: JobSpec) -> Result<Ticket, SubmitError> {
        self.submit_with(job, Priority::Normal)
    }

    /// [`submit`](Self::submit) with an explicit [`Priority`] class.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_with(&self, job: JobSpec, priority: Priority) -> Result<Ticket, SubmitError> {
        self.submit_inner(job, priority, CancelToken::new())
    }

    /// [`submit_with`](Self::submit_with) plus a per-job deadline: a job
    /// still running `timeout` after submission cancels cooperatively at
    /// its next cluster/layer boundary and completes as
    /// [`JobError::Cancelled`](crate::JobError::Cancelled). The deadline
    /// only decides *whether* a job completes, never what a completed
    /// report contains, so determinism of delivered reports is untouched.
    ///
    /// # Errors
    ///
    /// See [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        job: JobSpec,
        priority: Priority,
        timeout: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(
            job,
            priority,
            CancelToken::with_deadline(Instant::now() + timeout),
        )
    }

    fn submit_inner(
        &self,
        job: JobSpec,
        priority: Priority,
        cancel: CancelToken,
    ) -> Result<Ticket, SubmitError> {
        let cancel = Arc::new(cancel);
        let mut st = self.shared.lock();
        if st.worker_dead {
            return Err(SubmitError::ServiceDead);
        }
        if st.stopping {
            return Err(SubmitError::ShuttingDown);
        }
        if st.pending >= self.capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.capacity,
                pending: st.pending,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        st.queues[priority.index()].push_back(Submission {
            id,
            job,
            tx,
            cancel: Arc::clone(&cancel),
        });
        st.pending += 1;
        drop(st);
        self.shared.cv.notify_all();
        Ok(Ticket { id, rx, cancel })
    }

    /// Admitted-but-uncompleted jobs right now (queued plus in flight).
    pub fn pending(&self) -> usize {
        self.shared.lock().pending
    }

    /// The admission bound ([`AsyncConfig::queue_capacity`]).
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Submission ids in completion order — the service's observable
    /// processing sequence (priority classes reorder it relative to
    /// submission order).
    pub fn completed_ids(&self) -> Vec<u64> {
        self.completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// True when the worker thread died; every outstanding ticket will
    /// resolve to [`WaitError::ServiceDead`] and new submissions are
    /// rejected with [`SubmitError::ServiceDead`].
    pub fn worker_dead(&self) -> bool {
        self.shared.lock().worker_dead
    }

    /// Submission ids orphaned by a worker death so far (empty while the
    /// worker is healthy). The authoritative list at shutdown is
    /// [`finish_report`](Self::finish_report)'s.
    pub fn casualties(&self) -> Vec<u64> {
        self.shared.lock().casualties.clone()
    }

    /// Cumulative counters of the inner [`BatchService`]. Blocks while a
    /// simulation is in flight (the worker holds the service for the
    /// duration of each job).
    pub fn stats(&self) -> ServiceStats {
        self.inner()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats()
    }

    /// Drains every queued submission, stops the worker, and returns the
    /// inner [`BatchService`] — with its warmed caches and counters — for
    /// inspection or synchronous reuse. A worker death is absorbed, not
    /// propagated (see [`finish_report`](Self::finish_report) for the
    /// casualty list).
    pub fn finish(self) -> BatchService {
        self.finish_report().0
    }

    /// [`finish`](Self::finish) plus the shutdown summary: whether the
    /// worker exited by panic, and which submission ids lost their
    /// results to it. A clean shutdown reports `worker_panicked: false`
    /// and no casualties.
    pub fn finish_report(mut self) -> (BatchService, FinishReport) {
        {
            let mut st = self.shared.lock();
            st.stopping = true;
        }
        self.shared.cv.notify_all();
        let worker_panicked = match self.worker.take() {
            Some(worker) => worker.join().is_err(),
            None => false,
        };
        let casualties = self.shared.lock().casualties.clone();
        let service = self.service.take().expect("finish runs once");
        let Ok(service) = Arc::try_unwrap(service) else {
            unreachable!("worker has exited, so the service has one owner");
        };
        let service = service.into_inner().unwrap_or_else(PoisonError::into_inner);
        (
            service,
            FinishReport {
                worker_panicked,
                casualties,
            },
        )
    }

    fn inner(&self) -> &Mutex<BatchService> {
        self.service.as_ref().expect("service present until finish")
    }
}

impl Drop for AsyncService {
    fn drop(&mut self) {
        // `finish` already joined the worker; otherwise stop it promptly,
        // discarding queued submissions (their tickets' senders drop, so
        // a blocked `Ticket::wait` panics rather than hanging forever).
        if let Some(worker) = self.worker.take() {
            {
                let mut st = self.shared.lock();
                st.stopping = true;
                st.abort = true;
            }
            self.shared.cv.notify_all();
            let _ = worker.join();
        }
    }
}

/// Arms the worker thread against its own death: dropped during an
/// unwind, it marks the service dead, records the in-flight job and every
/// queued submission as casualties, fixes the pending count, and wakes
/// every waiter — whose tickets then observe a disconnected channel
/// ([`WaitError::ServiceDead`]) because the submissions (and their
/// senders) are dropped here. Disarmed on the worker's clean exits.
struct WorkerGuard<'a> {
    shared: &'a Shared,
    /// The submission being processed right now, if any. The guard
    /// *owns* it so that during an unwind its sender cannot drop before
    /// the death is recorded below — a waiter woken by the disconnect
    /// must already observe `worker_dead`, or it could race one more
    /// submission into a dying service.
    current: RefCell<Option<Submission>>,
    armed: Cell<bool>,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if !self.armed.get() {
            return;
        }
        // Collect the casualties' submissions and drop them only after
        // the lock is released and `worker_dead` is visible: their
        // senders dropping is what wakes the waiters.
        let mut dead: Vec<Submission> = Vec::new();
        let mut st = self.shared.lock();
        st.worker_dead = true;
        if let Some(submission) = self.current.borrow_mut().take() {
            st.casualties.push(submission.id);
            st.pending = st.pending.saturating_sub(1);
            dead.push(submission);
        }
        while let Some(submission) = st.pop() {
            st.casualties.push(submission.id);
            st.pending = st.pending.saturating_sub(1);
            dead.push(submission);
        }
        drop(st);
        self.shared.cv.notify_all();
        drop(dead);
    }
}

/// The worker: pop the highest-priority submission, run it as a batch of
/// one (full inner fan-out — the one-level rule at the single-job grain)
/// with the ticket's cancel token armed, deliver the result, repeat until
/// stopped. `run_one` supervises each job, so a job panic — injected or
/// genuine — becomes a [`JobError`](crate::JobError), never a worker
/// death; the only deliberate hole is the `worker` fault site below,
/// which kills the worker itself to exercise the death guard.
fn worker_loop(shared: &Shared, service: &Mutex<BatchService>, completions: &Mutex<Vec<u64>>) {
    let guard = WorkerGuard {
        shared,
        current: RefCell::new(None),
        armed: Cell::new(true),
    };
    loop {
        let submission = {
            let mut st = shared.lock();
            loop {
                if st.abort {
                    guard.armed.set(false);
                    return;
                }
                if let Some(submission) = st.pop() {
                    break submission;
                }
                if st.stopping {
                    guard.armed.set(false);
                    return;
                }
                st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Park the submission in the guard: on an unwind the guard — not
        // the unwinding stack frame — drops it, after recording the death.
        guard.current.replace(Some(submission));
        let current = guard.current.borrow();
        let submission = current.as_ref().expect("parked above");
        // The 'worker' fault site: a supervisor kill that escapes the
        // per-job supervision on purpose — the submission drops with the
        // unwind, so its waiter sees ServiceDead, and the guard converts
        // the death into casualty bookkeeping instead of a poisoned hang.
        if job_fault_plan(&submission.job)
            .action_at(FaultSite::Worker, 1, 1)
            .is_some()
        {
            panic!("injected worker kill (fault site 'worker')");
        }
        let mut result = {
            let mut svc = service.lock().unwrap_or_else(PoisonError::into_inner);
            fault::with_cancel(Some(Arc::clone(&submission.cancel)), || {
                svc.run_one(&submission.job)
            })
        };
        // `run_one` numbers within its one-job batch; the submission id is
        // the meaningful index at this layer.
        result.index = submission.id as usize;
        completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(submission.id);
        {
            let mut st = shared.lock();
            st.pending -= 1;
        }
        shared.cv.notify_all();
        // The ticket may be gone (dropped without waiting); fine.
        let _ = submission.tx.send(result);
        drop(current);
        guard.current.replace(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission(id: u64) -> Submission {
        let (tx, _rx) = mpsc::channel();
        Submission {
            id,
            job: JobSpec::new(
                grow_model::DatasetKey::Cora.spec().scaled_to(300),
                id,
                "grow",
            ),
            tx,
            cancel: Arc::new(CancelToken::new()),
        }
    }

    #[test]
    fn queue_pops_priority_classes_in_order() {
        let mut state = QueueState {
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            pending: 0,
            stopping: false,
            abort: false,
            worker_dead: false,
            casualties: Vec::new(),
        };
        state.queues[Priority::Low.index()].push_back(submission(0));
        state.queues[Priority::Normal.index()].push_back(submission(1));
        state.queues[Priority::High.index()].push_back(submission(2));
        state.queues[Priority::High.index()].push_back(submission(3));
        state.queues[Priority::Normal.index()].push_back(submission(4));
        let order: Vec<u64> = std::iter::from_fn(|| state.pop()).map(|s| s.id).collect();
        assert_eq!(order, [2, 3, 1, 4, 0], "High FIFO, then Normal, then Low");
    }

    #[test]
    fn submit_after_finish_flag_is_rejected() {
        let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
        {
            let mut st = service.shared.lock();
            st.stopping = true;
        }
        let spec = grow_model::DatasetKey::Cora.spec().scaled_to(300);
        assert_eq!(
            service.submit(JobSpec::new(spec, 1, "grow")).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn submit_error_messages_name_the_bound() {
        let e = SubmitError::QueueFull {
            capacity: 4,
            pending: 4,
        };
        assert_eq!(e.to_string(), "pending queue full (4 of 4 slots in use)");
        assert_eq!(
            SubmitError::ShuttingDown.to_string(),
            "service is shutting down"
        );
    }
}
