//! Single-thread simulation-throughput bench over the `experiments
//! engines` smoke grid: every registry engine on the cora/pubmed
//! surrogates (1500 nodes, seed 42), timed around `Accelerator::run` only
//! — preparation is done once up front — with the cluster fan-out forced
//! serial so the numbers measure the hot path itself, not the thread
//! pool. Every cell is timed twice: under the default post-hoc execution
//! model and under `exec=e2e pes=4 scheduler=ws`, so the end-to-end
//! mode's composition overhead (the per-phase fluid solver) is tracked
//! alongside the hot path. Run with:
//!
//! ```text
//! cargo bench -p grow-bench --bench throughput -- \
//!     [--quick] [--iters N] [--out DIR] [--baseline results/BENCH_hotpath.json]
//! ```
//!
//! Results land in `<out>/BENCH_hotpath.json` with a fixed key order
//! (rows sorted by dataset then engine), so successive runs diff cleanly;
//! `--quick` (the CI smoke mode) writes `BENCH_hotpath_smoke.json`
//! instead, so a 3-iteration smoke run never clobbers the committed
//! full-iteration baseline. Passing `--baseline` merges a previous run's
//! totals in and reports the wall-clock speedup against it — the
//! before/after protocol is: run the bench on the old commit, save the
//! JSON, then run on the new commit with `--baseline <saved>`.

use std::path::PathBuf;

use grow_bench::{json, timing};
use grow_core::registry::{engine_by_name, engine_from_overrides, ENGINE_NAMES};
use grow_core::{prepare, PartitionStrategy, PreparedWorkload};
use grow_model::DatasetKey;
use grow_sim::exec::{with_mode, ExecMode};

struct Cell {
    dataset: &'static str,
    engine: &'static str,
    min_ms: f64,
    mean_ms: f64,
    e2e_min_ms: f64,
    e2e_mean_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Cargo runs benches with the package directory as CWD; default to
    // the workspace-root results/ directory alongside the other BENCH_*
    // artifacts.
    let mut out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let mut baseline: Option<PathBuf> = None;
    let mut iters = 30u32;
    let mut quick = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // Cargo appends `--bench` when invoking harness=false benches.
            "--bench" => {}
            "--quick" => {
                quick = true;
                iters = 3;
            }
            "--iters" => iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N"),
            "--out" => out_dir = PathBuf::from(it.next().expect("--out DIR")),
            "--baseline" => baseline = Some(PathBuf::from(it.next().expect("--baseline FILE"))),
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    // The `experiments engines` smoke grid: cora + pubmed at 1500 nodes,
    // seed 42; GROW on its partitioned form, baselines on the original
    // node order (Section VI's setup).
    let seed = 42u64;
    let datasets = [DatasetKey::Cora, DatasetKey::Pubmed];
    let mut prepared: Vec<(&'static str, PreparedWorkload, PreparedWorkload)> = Vec::new();
    for key in datasets {
        let spec = key.spec().scaled_to(1500);
        eprintln!(
            "[setup] instantiating {} ({} nodes) ...",
            key.name(),
            spec.nodes
        );
        let workload = spec.instantiate(seed);
        let base = prepare(&workload, PartitionStrategy::None, 4096);
        let partitioned = prepare(&workload, PartitionStrategy::multilevel_default(), 4096);
        prepared.push((key.name(), base, partitioned));
    }

    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:<8} {:<10} {:>10} {:>10} {:>11} {:>12}  ({iters} iters, serial)",
        "dataset", "engine", "min ms", "mean ms", "e2e min ms", "e2e mean ms"
    );
    for (dataset, base, partitioned) in &prepared {
        for name in ENGINE_NAMES {
            let engine = engine_by_name(name).expect("registered engine");
            let e2e_engine =
                engine_from_overrides(name, &[("exec", "e2e"), ("pes", "4"), ("scheduler", "ws")])
                    .expect("registered engine and exec overrides");
            let workload = if name == "grow" { partitioned } else { base };
            let t = with_mode(ExecMode::Serial, || {
                timing::sample(iters, || {
                    std::hint::black_box(engine.run(workload));
                })
            });
            let e2e = with_mode(ExecMode::Serial, || {
                timing::sample(iters, || {
                    std::hint::black_box(e2e_engine.run(workload));
                })
            });
            println!(
                "{dataset:<8} {:<10} {:>10.3} {:>10.3} {:>11.3} {:>12.3}",
                engine.name(),
                t.min_ns / 1e6,
                t.mean_ns / 1e6,
                e2e.min_ns / 1e6,
                e2e.mean_ns / 1e6
            );
            cells.push(Cell {
                dataset,
                engine: engine.name(),
                min_ms: t.min_ns / 1e6,
                mean_ms: t.mean_ns / 1e6,
                e2e_min_ms: e2e.min_ns / 1e6,
                e2e_mean_ms: e2e.mean_ns / 1e6,
            });
        }
    }
    // Fixed row order regardless of measurement order: dataset, engine.
    cells.sort_by(|a, b| (a.dataset, a.engine).cmp(&(b.dataset, b.engine)));
    let total_min_ms: f64 = cells.iter().map(|c| c.min_ms).sum();
    let total_e2e_min_ms: f64 = cells.iter().map(|c| c.e2e_min_ms).sum();
    println!("total (sum of per-cell min): {total_min_ms:.3} ms");
    println!(
        "e2e total {total_e2e_min_ms:.3} ms -> mode overhead {:.2}x",
        total_e2e_min_ms / total_min_ms
    );

    let baseline_total = baseline.as_ref().and_then(|path| {
        let text = std::fs::read_to_string(path)
            .map_err(|e| eprintln!("warning: could not read baseline {}: {e}", path.display()))
            .ok()?;
        extract_number(&text, "total_min_ms")
    });
    if let Some(base_ms) = baseline_total {
        println!(
            "baseline total {base_ms:.3} ms -> speedup {:.2}x",
            base_ms / total_min_ms
        );
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            json::object(&[
                ("dataset", json::string(c.dataset)),
                ("engine", json::string(c.engine)),
                ("min_ms", json::number(c.min_ms)),
                ("mean_ms", json::number(c.mean_ms)),
                ("e2e_min_ms", json::number(c.e2e_min_ms)),
                ("e2e_mean_ms", json::number(c.e2e_mean_ms)),
            ])
        })
        .collect();
    let doc = json::object(&[
        (
            "grid",
            json::string("engines-smoke: cora,pubmed @1500 seed 42, serial"),
        ),
        ("iters", json::uint(iters as u64)),
        ("rows", json::array(rows)),
        ("total_min_ms", json::number(total_min_ms)),
        ("total_e2e_min_ms", json::number(total_e2e_min_ms)),
        (
            "baseline_total_min_ms",
            baseline_total.map_or_else(|| "null".to_string(), json::number),
        ),
        (
            "speedup_vs_baseline",
            baseline_total.map_or_else(|| "null".to_string(), |b| json::number(b / total_min_ms)),
        ),
    ]);
    // Quick smoke runs get their own file: the tracked BENCH_hotpath.json
    // holds full-iteration numbers only.
    let file = if quick {
        "BENCH_hotpath_smoke.json"
    } else {
        "BENCH_hotpath.json"
    };
    if let Err(e) =
        std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(out_dir.join(file), doc))
    {
        eprintln!("warning: could not write {file}: {e}");
    }
}

/// Pulls a top-level numeric field out of a BENCH_hotpath.json document
/// (the workspace builds offline, so no JSON parser crate; the file format
/// is our own and the field is a bare number).
fn extract_number(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
