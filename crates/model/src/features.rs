use grow_sparse::{CsrMatrix, CsrPattern, RowMajorSparse};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A (possibly dense) feature-matrix sparsity pattern.
///
/// Table I's feature matrices span densities from 0.85% (Citeseer `X(0)`)
/// to 100% (Reddit/Yelp `X(0)`). GROW stores even dense feature matrices
/// in CSR (Table II), but *representing* a 100%-dense pattern explicitly
/// would waste hundreds of MB, so fully dense matrices use a synthetic
/// dense view instead.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureMatrix {
    /// A fully dense `rows x cols` matrix.
    Dense {
        /// Number of rows (graph nodes).
        rows: usize,
        /// Number of columns (features).
        cols: usize,
    },
    /// A genuinely sparse pattern.
    Sparse(CsrPattern),
}

impl FeatureMatrix {
    /// Synthesizes a feature pattern of the given density.
    ///
    /// Each row receives `round(density * cols)` non-zeros in expectation
    /// (per-row count drawn with a stochastic fractional part), at
    /// uniformly sampled column positions — matching how post-ReLU
    /// activation sparsity is unstructured. `density >= 0.995` produces
    /// the dense representation.
    ///
    /// # Panics
    ///
    /// Panics if `density` is outside `[0, 1]`.
    pub fn synthesize(rows: usize, cols: usize, density: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        if density >= 0.995 {
            return FeatureMatrix::Dense { rows, cols };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices: Vec<u32> =
            Vec::with_capacity(((rows * cols) as f64 * density) as usize + rows);
        indptr.push(0usize);
        let mut scratch: Vec<u32> = Vec::with_capacity(cols);
        for _ in 0..rows {
            let expect = density * cols as f64;
            let mut nnz = expect.floor() as usize;
            if rng.random::<f64>() < expect.fract() {
                nnz += 1;
            }
            let nnz = nnz.min(cols);
            if nnz * 3 > cols {
                // Dense-ish row: sample the complement (columns to drop).
                scratch.clear();
                scratch.extend(0..cols as u32);
                // Partial Fisher-Yates: move `cols - nnz` victims to the end.
                for i in 0..(cols - nnz) {
                    let j = rng.random_range(i..cols);
                    scratch.swap(i, j);
                }
                let mut keep: Vec<u32> = scratch[(cols - nnz)..].to_vec();
                keep.sort_unstable();
                indices.extend(keep);
            } else {
                // Sparse row: rejection-sample distinct columns.
                scratch.clear();
                while scratch.len() < nnz {
                    let c = rng.random_range(0..cols as u32);
                    if !scratch.contains(&c) {
                        scratch.push(c);
                    }
                }
                scratch.sort_unstable();
                indices.extend_from_slice(&scratch);
            }
            indptr.push(indices.len());
        }
        let pattern = CsrPattern::from_raw(rows, cols, indptr, indices)
            .expect("synthesized pattern is structurally valid");
        FeatureMatrix::Sparse(pattern)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            FeatureMatrix::Dense { rows, .. } => *rows,
            FeatureMatrix::Sparse(p) => p.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            FeatureMatrix::Dense { cols, .. } => *cols,
            FeatureMatrix::Sparse(p) => p.cols(),
        }
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        match self {
            FeatureMatrix::Dense { rows, cols } => rows * cols,
            FeatureMatrix::Sparse(p) => p.nnz(),
        }
    }

    /// Measured density.
    pub fn density(&self) -> f64 {
        let cells = self.rows() * self.cols();
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Borrowed row-major view for the simulators.
    pub fn view(&self) -> RowMajorSparse<'_> {
        match self {
            FeatureMatrix::Dense { rows, cols } => RowMajorSparse::Dense {
                rows: *rows,
                cols: *cols,
            },
            FeatureMatrix::Sparse(p) => RowMajorSparse::Pattern(p),
        }
    }

    /// Materializes the pattern with random values in `(0, 1]` (functional
    /// testing on small workloads; avoid on the large surrogates).
    pub fn materialize(&self, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            FeatureMatrix::Dense { rows, cols } => {
                let pattern = CsrPattern::dense(*rows, *cols);
                let values = (0..pattern.nnz()).map(|_| rng.random::<f64>()).collect();
                pattern
                    .with_values(values)
                    .expect("value count matches nnz")
            }
            FeatureMatrix::Sparse(p) => {
                let values = (0..p.nnz()).map(|_| rng.random::<f64>()).collect();
                p.clone()
                    .with_values(values)
                    .expect("value count matches nnz")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_threshold() {
        assert!(matches!(
            FeatureMatrix::synthesize(10, 10, 1.0, 0),
            FeatureMatrix::Dense { .. }
        ));
        assert!(matches!(
            FeatureMatrix::synthesize(10, 10, 0.5, 0),
            FeatureMatrix::Sparse(_)
        ));
    }

    #[test]
    fn density_tracks_target() {
        for &target in &[0.01, 0.1, 0.4, 0.772, 0.891] {
            let fm = FeatureMatrix::synthesize(400, 64, target, 7);
            let got = fm.density();
            assert!(
                (got - target).abs() < 0.05,
                "target {target}, measured {got}"
            );
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = FeatureMatrix::synthesize(50, 32, 0.3, 9);
        let b = FeatureMatrix::synthesize(50, 32, 0.3, 9);
        assert_eq!(a, b);
        let c = FeatureMatrix::synthesize(50, 32, 0.3, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn view_matches_backing_storage() {
        let fm = FeatureMatrix::synthesize(20, 16, 0.25, 3);
        assert_eq!(fm.view().nnz(), fm.nnz());
        let dense = FeatureMatrix::Dense { rows: 4, cols: 4 };
        assert_eq!(dense.view().row_nnz(0), 4);
    }

    #[test]
    fn materialize_produces_nonzero_values() {
        let fm = FeatureMatrix::synthesize(10, 8, 0.5, 1);
        let m = fm.materialize(2);
        assert_eq!(m.nnz(), fm.nnz());
        assert!(m.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn extreme_densities() {
        let empty = FeatureMatrix::synthesize(10, 10, 0.0, 0);
        assert_eq!(empty.nnz(), 0);
        let dense_ish = FeatureMatrix::synthesize(10, 10, 0.99, 0);
        assert!(dense_ish.density() > 0.9);
    }
}
