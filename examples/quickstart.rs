//! Quickstart: simulate GROW on a small citation-network workload and
//! print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use grow::accel::{prepare, Accelerator, GcnaxEngine, GrowEngine, PartitionStrategy};
use grow::model::DatasetKey;

fn main() {
    // 1. Instantiate a Cora-like dataset (Table I row 1) at full scale:
    //    2,708 nodes, power-law degrees, 1433-16-7 feature dimensions.
    let workload = DatasetKey::Cora.spec().instantiate(42);
    println!("workload: {}", workload.graph);

    // 2. Software preprocessing (Section V-C): graph partitioning,
    //    cluster-sorted relabeling, per-cluster HDN ID lists.
    let base = prepare(&workload, PartitionStrategy::None, 4096);
    let partitioned = prepare(&workload, PartitionStrategy::multilevel_default(), 4096);
    println!(
        "partitioned into {} clusters (intra-cluster edge fraction {:.1}%)",
        partitioned.clusters.len(),
        100.0 * partitioned.intra_edge_fraction
    );

    // 3. Simulate GROW and the GCNAX baseline.
    let grow = GrowEngine::default().run(&partitioned);
    let gcnax = GcnaxEngine::default().run(&base);
    println!("\n{grow}");
    println!("{gcnax}");

    // 4. The paper's headline metrics.
    let speedup = gcnax.total_cycles() as f64 / grow.total_cycles() as f64;
    let traffic = gcnax.dram_bytes() as f64 / grow.dram_bytes() as f64;
    let hit_rate = grow.aggregation_cache().hit_rate().unwrap_or(0.0);
    println!("\nGROW vs GCNAX: {speedup:.2}x speedup, {traffic:.2}x less DRAM traffic");
    println!("HDN cache hit rate: {:.1}%", 100.0 * hit_rate);
}
