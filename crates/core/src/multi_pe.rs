//! Multi-PE scaling model (Figure 24 / Section VII-F).
//!
//! The paper sweeps GROW from 1 to 16 processing engines "with a
//! proportional increase in memory bandwidth"; each PE processes different
//! graph clusters, and because "different PEs exhibit different memory
//! intensive phases at different times", PEs opportunistically use more
//! than their average bandwidth share — producing super-linear speedups on
//! the large graphs.
//!
//! This module reproduces that mechanism with a fluid (processor-sharing)
//! co-simulation over the per-cluster execution profiles that the detailed
//! single-PE simulator emits: every cluster-task needs `compute_cycles` of
//! MAC time and `mem_bytes` of DRAM transfer (overlapped); at any instant
//! the memory-demanding PEs split the shared channel by water-filling,
//! while compute-bound PEs leave their share to others.
//!
//! Which PE runs which cluster is decided by a pluggable
//! [`Scheduler`](crate::schedule::Scheduler) — see [`crate::schedule`] for
//! the policies (`rr`, `lpt`, `ws`, `ca`). [`simulate`] keeps the original
//! round-robin behavior bit-identically; [`simulate_with`] exposes the full
//! per-PE accounting under any scheduler; [`simulate_e2e`] is the
//! calibrated variant the end-to-end execution model
//! ([`crate::exec_model`]) composes phase cycle counts with.

use grow_sim::{fault, DramConfig, MemTopology};

use crate::schedule::{Scheduler, SchedulerKind};
use crate::ClusterProfile;

/// One point of the Figure 24 scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of processing engines (memory bandwidth scales with it).
    pub pes: usize,
    /// Makespan in cycles under the fluid model.
    pub cycles: f64,
    /// Throughput normalized to the 1-PE configuration.
    pub normalized_throughput: f64,
}

/// Full accounting of one fluid multi-PE simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPeRun {
    /// Canonical name of the scheduler that assigned clusters to PEs.
    pub scheduler: &'static str,
    /// Number of processing engines simulated.
    pub pes: usize,
    /// Makespan in cycles: when the last PE finishes its last cluster.
    pub makespan: f64,
    /// Cycles each PE spent with a cluster in execution (the rest of the
    /// makespan it sat idle waiting for work).
    pub per_pe_busy: Vec<f64>,
    /// In-system execution time of each cluster, indexed like the input
    /// profiles. Every cluster occupies exactly one PE while executing, so
    /// these sum to the total busy time (the conservation law the property
    /// suite asserts).
    pub cluster_cycles: Vec<f64>,
}

impl MultiPeRun {
    /// Total busy cycles across PEs.
    pub fn busy_total(&self) -> f64 {
        self.per_pe_busy.iter().sum()
    }

    /// Load-imbalance ratio: busiest PE over mean PE busy time. 1.0 means
    /// perfectly balanced; `pes` means one PE did all the work. Defined as
    /// 1.0 for an empty run *and* for a degenerate run whose busy total is
    /// zero or non-finite (a non-empty fleet of zero-cycle clusters must
    /// not divide by 0.0 into a NaN).
    pub fn imbalance(&self) -> f64 {
        let total = self.busy_total();
        // The NaN check matters: a poisoned busy vector would otherwise
        // sail through `<= 0.0` and propagate NaN out of the division.
        if total.is_nan() || total <= 0.0 || self.per_pe_busy.is_empty() {
            return 1.0;
        }
        let max = self.per_pe_busy.iter().cloned().fold(0.0f64, f64::max);
        max * self.per_pe_busy.len() as f64 / total
    }
}

/// Simulates `pes` PEs working through `profiles` under the original
/// round-robin cluster assignment against a shared memory channel of
/// `pes * per_pe_bytes_per_cycle`. Returns the makespan in cycles.
///
/// This is the legacy entry point; [`simulate_with`] selects the scheduler
/// and returns the full per-PE accounting. Round-robin results are
/// bit-identical between the two.
///
/// # Panics
///
/// Panics if `pes == 0` or the bandwidth is not positive.
pub fn simulate(profiles: &[ClusterProfile], pes: usize, per_pe_bytes_per_cycle: f64) -> f64 {
    simulate_with(
        profiles,
        pes,
        per_pe_bytes_per_cycle,
        SchedulerKind::RoundRobin,
    )
    .makespan
}

/// Simulates `pes` PEs working through `profiles` with cluster-to-PE
/// assignment decided by `scheduler`, against a shared memory channel of
/// `pes * per_pe_bytes_per_cycle`.
///
/// # Panics
///
/// Panics if `pes == 0` or the bandwidth is not positive.
pub fn simulate_with(
    profiles: &[ClusterProfile],
    pes: usize,
    per_pe_bytes_per_cycle: f64,
    scheduler: SchedulerKind,
) -> MultiPeRun {
    simulate_scheduled(
        profiles,
        pes,
        per_pe_bytes_per_cycle,
        scheduler.scheduler().as_ref(),
    )
}

/// [`simulate_with`] over an arbitrary (possibly user-supplied)
/// [`Scheduler`] implementation.
///
/// # Panics
///
/// Panics if `pes == 0` or the bandwidth is not positive.
pub fn simulate_scheduled(
    profiles: &[ClusterProfile],
    pes: usize,
    per_pe_bytes_per_cycle: f64,
    scheduler: &dyn Scheduler,
) -> MultiPeRun {
    simulate_fluid(profiles, pes, per_pe_bytes_per_cycle, scheduler, false)
}

/// The end-to-end fluid co-simulation (`exec=e2e`): like
/// [`simulate_scheduled`], but each cluster-task's duration is *calibrated
/// against its detailed standalone timeline* ([`ClusterProfile::cycles`]).
/// A task with detailed makespan `T`, MAC-busy `C`, and transfer `M` runs
/// for `max(C, M/a) + S` cycles at allocated bandwidth `a`, where
/// `S = T - max(C, M/B)` (with `B` the per-PE fair share) is the
/// serialization residue the overlap model cannot see — latency tails,
/// FIFO ordering, dependent stalls. At `a = B` the duration is exactly
/// `T`, so a 1-PE end-to-end run reproduces the detailed sequential
/// composition; at `a < B` memory-bound tasks stretch (contention) and at
/// `a > B` they shrink (borrowing idle bandwidth, the Section VII-F
/// super-linearity mechanism).
///
/// # Panics
///
/// Panics if `pes == 0` or the bandwidth is not positive.
pub fn simulate_e2e(
    profiles: &[ClusterProfile],
    pes: usize,
    per_pe_bytes_per_cycle: f64,
    scheduler: SchedulerKind,
) -> MultiPeRun {
    simulate_fluid(
        profiles,
        pes,
        per_pe_bytes_per_cycle,
        scheduler.scheduler().as_ref(),
        true,
    )
}

/// [`simulate_e2e`] against a banked multi-channel memory system: clusters
/// interleave across `topology.channels` by index, and each memory-active
/// task pays a per-request bank-conflict stall proportional to how many
/// other memory-active tasks share its home channel (amortized over
/// `topology.banks`; the per-request cost reuses
/// [`DramConfig::request_overhead_cycles`], see
/// [`MemTopology::conflict_penalty_per_byte`]). The calibration residue is
/// unchanged, so with one PE no two tasks are ever co-resident, no stall
/// accrues, and the run still reproduces the detailed sequential
/// composition bit-identically.
///
/// The uniform `1x1` topology short-circuits to [`simulate_e2e`]'s exact
/// legacy path — `channels=1 banks=1` is *defined* as the idealized shared
/// pipe the committed e2e golden snapshots model, so those bytes are
/// reproduced by construction.
///
/// Schedulers are built through
/// [`Scheduler::dispatcher_banked`](crate::schedule::Scheduler::dispatcher_banked),
/// so channel-affinity-aware policies (`ca`) see the topology while the
/// oblivious ones dispatch exactly as they do on the uniform pipe.
///
/// # Panics
///
/// Panics if `pes == 0` or the bandwidth is not positive.
pub fn simulate_e2e_banked(
    profiles: &[ClusterProfile],
    pes: usize,
    per_pe_bytes_per_cycle: f64,
    scheduler: SchedulerKind,
    dram: &DramConfig,
    topology: MemTopology,
) -> MultiPeRun {
    if topology.is_uniform() {
        return simulate_e2e(profiles, pes, per_pe_bytes_per_cycle, scheduler);
    }
    simulate_fluid_banked(
        profiles,
        pes,
        per_pe_bytes_per_cycle,
        scheduler.scheduler().as_ref(),
        dram,
        topology,
    )
}

/// The banked variant of [`simulate_fluid`], always calibrated (`e2e`).
/// Same event loop and water-filling; the only additions are the home
/// channels and the co-residency-dependent conflict stall folded into each
/// task's memory time. Conflict terms are piecewise-constant between
/// completion events (the live set only changes there), so the
/// minimum-completion event stepping stays exact.
fn simulate_fluid_banked(
    profiles: &[ClusterProfile],
    pes: usize,
    per_pe_bytes_per_cycle: f64,
    scheduler: &dyn Scheduler,
    dram: &DramConfig,
    topology: MemTopology,
) -> MultiPeRun {
    assert!(pes > 0, "at least one PE");
    assert!(per_pe_bytes_per_cycle > 0.0, "bandwidth must be positive");
    let total_bw = pes as f64 * per_pe_bytes_per_cycle;
    let mut dispatch = scheduler.dispatcher_banked(profiles, pes, per_pe_bytes_per_cycle, topology);

    struct Task {
        idx: usize,
        c: f64,
        m: f64,
        s: f64,
        w: f64,
        channel: usize,
    }
    let spawn = |i: usize| {
        let c = profiles[i].compute_cycles as f64;
        let m = profiles[i].mem_bytes as f64;
        // Calibration residue, identical to the uniform e2e path: the
        // detailed timeline beyond the overlap model's fair-share estimate.
        let s = (profiles[i].cycles as f64 - c.max(m / per_pe_bytes_per_cycle)).max(0.0);
        Task {
            idx: i,
            c,
            m,
            s,
            w: 1.0,
            channel: topology.home_channel(i),
        }
    };
    // The `sched` fault site counts cluster hand-offs to PEs; the whole
    // dispatch loop runs on one thread, so the ordinal is leg-identical.
    let mut dispatched: u64 = 0;
    let mut active: Vec<Option<Task>> = (0..pes)
        .map(|p| {
            dispatch.next(p).map(|i| {
                dispatched += 1;
                fault::trip_at(fault::FaultSite::Sched, dispatched);
                spawn(i)
            })
        })
        .collect();
    let mut busy = vec![0.0f64; pes];
    let mut cluster_cycles = vec![0.0f64; profiles.len()];

    let mut t = 0.0f64;
    loop {
        let live: Vec<usize> = (0..pes).filter(|&p| active[p].is_some()).collect();
        if live.is_empty() {
            break;
        }
        // Memory-active co-residency per channel: how many live tasks with
        // traffic are homed on each channel right now.
        let mut channel_load = vec![0usize; topology.channels];
        for &p in &live {
            let task = active[p].as_ref().expect("live");
            if task.m > 0.0 {
                channel_load[task.channel] += 1;
            }
        }

        // Water-fill the aggregate bandwidth, exactly as on the uniform
        // pipe (address interleaving lets any stream draw on the whole
        // channel array; conflicts, not peak bandwidth, are per-channel).
        let mut order: Vec<(f64, usize)> = live
            .iter()
            .map(|&p| {
                let task = active[p].as_ref().expect("live");
                let demand = if task.c <= 0.0 {
                    f64::INFINITY
                } else {
                    task.m / task.c
                };
                (demand, p)
            })
            .collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite-ish demands"));
        let mut alloc = vec![0.0f64; pes];
        let mut remaining = total_bw;
        let mut left = order.len();
        for &(demand, p) in &order {
            let share = remaining / left as f64;
            let a = demand.min(share);
            alloc[p] = a;
            remaining -= a;
            left -= 1;
        }

        let mut dt = f64::INFINITY;
        let mut rates = vec![0.0f64; pes];
        for &p in &live {
            let task = active[p].as_ref().expect("live");
            let mem_time = if task.m <= 0.0 {
                0.0
            } else if alloc[p] <= 0.0 {
                f64::INFINITY
            } else {
                // Transfer time plus the expected bank-conflict stall for
                // sharing the home channel with `load - 1` other
                // memory-active tasks.
                let co_residents = channel_load[task.channel] - 1;
                task.m / alloc[p] + task.m * topology.conflict_penalty_per_byte(dram, co_residents)
            };
            let duration = (task.c.max(mem_time) + task.s).max(1e-9);
            rates[p] = 1.0 / duration;
            dt = dt.min(task.w / rates[p]);
        }

        t += dt;
        for &p in &live {
            busy[p] += dt;
            let task = active[p].as_mut().expect("live");
            cluster_cycles[task.idx] += dt;
            task.w -= rates[p] * dt;
            if task.w <= 1e-9 {
                active[p] = dispatch.next(p).map(|i| {
                    dispatched += 1;
                    fault::trip_at(fault::FaultSite::Sched, dispatched);
                    spawn(i)
                });
            }
        }
    }
    MultiPeRun {
        scheduler: scheduler.name(),
        pes,
        makespan: t,
        per_pe_busy: busy,
        cluster_cycles,
    }
}

fn simulate_fluid(
    profiles: &[ClusterProfile],
    pes: usize,
    per_pe_bytes_per_cycle: f64,
    scheduler: &dyn Scheduler,
    calibrated: bool,
) -> MultiPeRun {
    assert!(pes > 0, "at least one PE");
    assert!(per_pe_bytes_per_cycle > 0.0, "bandwidth must be positive");
    let total_bw = pes as f64 * per_pe_bytes_per_cycle;
    let mut dispatch = scheduler.dispatcher(profiles, pes, per_pe_bytes_per_cycle);

    // Active task per PE: cluster index, compute total, mem total, serial
    // residue, fraction remaining.
    struct Task {
        idx: usize,
        c: f64,
        m: f64,
        s: f64,
        w: f64,
    }
    let spawn = |i: usize| {
        let c = profiles[i].compute_cycles as f64;
        let m = profiles[i].mem_bytes as f64;
        // Serial residue of the detailed timeline beyond the overlap
        // model's fair-share estimate (0 in the uncalibrated projection).
        let s = if calibrated {
            (profiles[i].cycles as f64 - c.max(m / per_pe_bytes_per_cycle)).max(0.0)
        } else {
            0.0
        };
        Task {
            idx: i,
            c,
            m,
            s,
            w: 1.0,
        }
    };
    // Same `sched` fault-site accounting as the banked path.
    let mut dispatched: u64 = 0;
    let mut active: Vec<Option<Task>> = (0..pes)
        .map(|p| {
            dispatch.next(p).map(|i| {
                dispatched += 1;
                fault::trip_at(fault::FaultSite::Sched, dispatched);
                spawn(i)
            })
        })
        .collect();
    let mut busy = vec![0.0f64; pes];
    let mut cluster_cycles = vec![0.0f64; profiles.len()];

    let mut t = 0.0f64;
    loop {
        // Collect live tasks and their bandwidth demands.
        let live: Vec<usize> = (0..pes).filter(|&p| active[p].is_some()).collect();
        if live.is_empty() {
            break;
        }
        // Demand: bandwidth at which the task becomes compute-bound.
        let mut order: Vec<(f64, usize)> = live
            .iter()
            .map(|&p| {
                let task = active[p].as_ref().expect("live");
                let demand = if task.c <= 0.0 {
                    f64::INFINITY
                } else {
                    task.m / task.c
                };
                (demand, p)
            })
            .collect();
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite-ish demands"));

        // Water-fill the shared channel.
        let mut alloc = vec![0.0f64; pes];
        let mut remaining = total_bw;
        let mut left = order.len();
        for &(demand, p) in &order {
            let share = remaining / left as f64;
            let a = demand.min(share);
            alloc[p] = a;
            remaining -= a;
            left -= 1;
        }

        // Per-task completion rate and the next completion event.
        let mut dt = f64::INFINITY;
        let mut rates = vec![0.0f64; pes];
        for &p in &live {
            let task = active[p].as_ref().expect("live");
            let mem_time = if task.m <= 0.0 {
                0.0
            } else if alloc[p] <= 0.0 {
                f64::INFINITY
            } else {
                task.m / alloc[p]
            };
            let duration = (task.c.max(mem_time) + task.s).max(1e-9);
            rates[p] = 1.0 / duration;
            dt = dt.min(task.w / rates[p]);
        }

        t += dt;
        for &p in &live {
            busy[p] += dt;
            let task = active[p].as_mut().expect("live");
            cluster_cycles[task.idx] += dt;
            task.w -= rates[p] * dt;
            if task.w <= 1e-9 {
                active[p] = dispatch.next(p).map(|i| {
                    dispatched += 1;
                    fault::trip_at(fault::FaultSite::Sched, dispatched);
                    spawn(i)
                });
            }
        }
    }
    MultiPeRun {
        scheduler: scheduler.name(),
        pes,
        makespan: t,
        per_pe_busy: busy,
        cluster_cycles,
    }
}

/// Produces the Figure 24 scaling curve for the given PE counts under the
/// original round-robin assignment.
pub fn scaling_curve(
    profiles: &[ClusterProfile],
    pe_counts: &[usize],
    per_pe_bytes_per_cycle: f64,
) -> Vec<ScalingPoint> {
    scaling_curve_with(
        profiles,
        pe_counts,
        per_pe_bytes_per_cycle,
        SchedulerKind::RoundRobin,
    )
}

/// Produces the Figure 24 scaling curve under an explicit scheduler.
pub fn scaling_curve_with(
    profiles: &[ClusterProfile],
    pe_counts: &[usize],
    per_pe_bytes_per_cycle: f64,
    scheduler: SchedulerKind,
) -> Vec<ScalingPoint> {
    let base = simulate_with(profiles, 1, per_pe_bytes_per_cycle, scheduler).makespan;
    pe_counts
        .iter()
        .map(|&pes| {
            let cycles = simulate_with(profiles, pes, per_pe_bytes_per_cycle, scheduler).makespan;
            ScalingPoint {
                pes,
                cycles,
                normalized_throughput: if cycles > 0.0 {
                    base / cycles
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(c: u64, m: u64) -> ClusterProfile {
        ClusterProfile {
            compute_cycles: c,
            mem_bytes: m,
            cycles: 0,
        }
    }

    #[test]
    fn single_pe_is_sum_of_maxima() {
        let profiles = [task(100, 50), task(10, 400)];
        // bw = 2 B/cycle: durations max(100, 25) = 100 and max(10, 200).
        let t = simulate(&profiles, 1, 2.0);
        assert!((t - 300.0).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn scaling_is_at_least_near_linear_for_homogeneous_tasks() {
        let profiles: Vec<ClusterProfile> = (0..64).map(|_| task(100, 100)).collect();
        let curve = scaling_curve(&profiles, &[1, 2, 4, 8], 2.0);
        for point in &curve[1..] {
            let eff = point.normalized_throughput / point.pes as f64;
            assert!(eff > 0.9, "pes {} efficiency {eff}", point.pes);
        }
    }

    #[test]
    fn heterogeneous_phases_scale_super_linearly() {
        // Compute-bound and memory-bound clusters interleaved so that at
        // any instant half the PEs need bandwidth and half do not: a single
        // PE wastes whichever resource the current cluster does not need,
        // while co-running PEs overlap them and memory-bound clusters
        // borrow idle bandwidth (Section VII-F's explanation of the
        // super-linear speedups). Task assignment is round-robin over 16
        // PEs, so tasks 0..16 are the PEs' first tasks and 16..32 their
        // second; give even PEs (compute, memory) and odd PEs the reverse.
        let first: Vec<ClusterProfile> = (0..16)
            .map(|p| {
                if p % 2 == 0 {
                    task(1000, 10)
                } else {
                    task(10, 1000)
                }
            })
            .collect();
        let second: Vec<ClusterProfile> = (0..16)
            .map(|p| {
                if p % 2 == 0 {
                    task(10, 1000)
                } else {
                    task(1000, 10)
                }
            })
            .collect();
        let profiles: Vec<ClusterProfile> = first.into_iter().chain(second).collect();
        let curve = scaling_curve(&profiles, &[16], 1.0);
        let speedup = curve[0].normalized_throughput;
        assert!(
            speedup > 16.5,
            "expected super-linear scaling, got {speedup} at 16 PEs"
        );
    }

    #[test]
    fn zero_work_tasks_complete() {
        let profiles = [task(0, 0), task(5, 5)];
        let t = simulate(&profiles, 2, 1.0);
        assert!(t.is_finite());
    }

    #[test]
    fn more_pes_never_slower() {
        let profiles: Vec<ClusterProfile> =
            (0..40).map(|i| task(50 + i * 3, 40 * (i % 5))).collect();
        let t1 = simulate(&profiles, 1, 4.0);
        let t4 = simulate(&profiles, 4, 4.0);
        let t16 = simulate(&profiles, 16, 4.0);
        assert!(t4 <= t1 && t16 <= t4, "t1 {t1}, t4 {t4}, t16 {t16}");
    }

    #[test]
    fn curve_normalizes_to_one_pe() {
        let profiles = [task(10, 10), task(20, 5)];
        let curve = scaling_curve(&profiles, &[1], 1.0);
        assert!((curve[0].normalized_throughput - 1.0).abs() < 1e-9);
    }

    #[test]
    fn legacy_simulate_is_round_robin() {
        let profiles: Vec<ClusterProfile> =
            (0..23).map(|i| task(30 + 7 * i, 11 * (i % 6))).collect();
        for pes in [1, 3, 8] {
            let run = simulate_with(&profiles, pes, 4.0, SchedulerKind::RoundRobin);
            assert_eq!(
                simulate(&profiles, pes, 4.0),
                run.makespan,
                "bit-identical round-robin makespan at {pes} PEs"
            );
            assert_eq!(run.per_pe_busy.len(), pes);
            assert_eq!(run.cluster_cycles.len(), profiles.len());
            assert_eq!(run.scheduler, "rr");
        }
    }

    #[test]
    fn work_stealing_balances_a_skewed_tail() {
        // 3 giant clusters then 61 small ones on 4 PEs: round-robin gives
        // PE 3 only small clusters while PEs 0..3 serialize behind the
        // giants; work-stealing spreads the small ones over whoever is
        // free.
        let profiles: Vec<ClusterProfile> = (0..64)
            .map(|i| if i < 3 { task(10_000, 0) } else { task(100, 0) })
            .collect();
        let rr = simulate_with(&profiles, 4, 4.0, SchedulerKind::RoundRobin);
        let ws = simulate_with(&profiles, 4, 4.0, SchedulerKind::WorkStealing);
        let lpt = simulate_with(&profiles, 4, 4.0, SchedulerKind::StaticLpt);
        assert!(
            ws.makespan < rr.makespan,
            "ws {} vs rr {}",
            ws.makespan,
            rr.makespan
        );
        assert!(
            lpt.makespan < rr.makespan,
            "lpt {} vs rr {}",
            lpt.makespan,
            rr.makespan
        );
        assert!(ws.imbalance() < rr.imbalance());
    }

    #[test]
    fn imbalance_is_one_for_zero_busy_totals_and_nan() {
        // Regression: a non-empty fleet of zero-cycle clusters has a 0.0
        // busy total; `max * len / total` must not produce NaN.
        let zero = MultiPeRun {
            scheduler: "rr",
            pes: 4,
            makespan: 0.0,
            per_pe_busy: vec![0.0; 4],
            cluster_cycles: vec![],
        };
        assert_eq!(zero.imbalance(), 1.0);
        assert!(!zero.imbalance().is_nan());
        // A poisoned busy vector must not propagate NaN either.
        let poisoned = MultiPeRun {
            per_pe_busy: vec![f64::NAN, 1.0],
            ..zero
        };
        assert_eq!(poisoned.imbalance(), 1.0);
    }

    fn calibrated(c: u64, m: u64, bw: f64) -> ClusterProfile {
        // A plausible detailed timeline: overlap estimate + 10% residue.
        ClusterProfile {
            compute_cycles: c,
            mem_bytes: m,
            cycles: ((c as f64).max(m as f64 / bw) * 1.1) as u64,
        }
    }

    #[test]
    fn banked_uniform_topology_is_bit_identical_to_the_fluid_pipe() {
        let profiles: Vec<ClusterProfile> = (0..32)
            .map(|i| calibrated(50 + 13 * i, 40 * (i % 7), 4.0))
            .collect();
        let dram = DramConfig::default();
        for pes in [1usize, 3, 8] {
            for kind in SchedulerKind::ALL {
                let fluid = simulate_e2e(&profiles, pes, 4.0, kind);
                let banked =
                    simulate_e2e_banked(&profiles, pes, 4.0, kind, &dram, MemTopology::default());
                assert_eq!(fluid, banked, "pes={pes} scheduler={}", kind.name());
            }
        }
    }

    #[test]
    fn bank_conflicts_stretch_contended_memory_phases() {
        // Memory-bound tasks all homed on one channel: the banked model
        // must charge conflict stalls the idealized pipe does not.
        let profiles: Vec<ClusterProfile> = (0..16).map(|_| calibrated(10, 4000, 4.0)).collect();
        let dram = DramConfig::default();
        let ideal = simulate_e2e(&profiles, 4, 4.0, SchedulerKind::RoundRobin);
        let banked = simulate_e2e_banked(
            &profiles,
            4,
            4.0,
            SchedulerKind::RoundRobin,
            &dram,
            MemTopology::new(1, 8),
        );
        assert!(
            banked.makespan > ideal.makespan,
            "banked {} vs ideal {}",
            banked.makespan,
            ideal.makespan
        );
        // With one PE nothing is ever co-resident: no stall, identical run.
        let solo_ideal = simulate_e2e(&profiles, 1, 4.0, SchedulerKind::RoundRobin);
        let solo_banked = simulate_e2e_banked(
            &profiles,
            1,
            4.0,
            SchedulerKind::RoundRobin,
            &dram,
            MemTopology::new(1, 8),
        );
        assert_eq!(solo_ideal, solo_banked);
    }

    #[test]
    fn more_channels_and_more_banks_never_slower() {
        let profiles = crate::schedule::power_law_profiles(96, 11);
        let dram = DramConfig::default();
        for kind in [SchedulerKind::RoundRobin, SchedulerKind::ContentionAware] {
            let mut prev = f64::INFINITY;
            for channels in [1usize, 2, 4, 8, 16] {
                let run = simulate_e2e_banked(
                    &profiles,
                    8,
                    4.0,
                    kind,
                    &dram,
                    MemTopology::new(channels, 8),
                );
                assert!(
                    run.makespan <= prev * (1.0 + 1e-9),
                    "{}: channels={channels} slower ({} > {prev})",
                    kind.name(),
                    run.makespan
                );
                prev = run.makespan;
            }
            let mut prev = f64::INFINITY;
            for banks in [1usize, 2, 4, 8] {
                let run =
                    simulate_e2e_banked(&profiles, 8, 4.0, kind, &dram, MemTopology::new(4, banks));
                assert!(
                    run.makespan <= prev * (1.0 + 1e-9),
                    "{}: banks={banks} slower ({} > {prev})",
                    kind.name(),
                    run.makespan
                );
                prev = run.makespan;
            }
        }
    }

    #[test]
    fn busy_cycle_conservation_holds_under_banking() {
        let profiles = crate::schedule::power_law_profiles(64, 5);
        let run = simulate_e2e_banked(
            &profiles,
            4,
            4.0,
            SchedulerKind::ContentionAware,
            &DramConfig::default(),
            MemTopology::new(4, 8),
        );
        let busy = run.busy_total();
        let cluster: f64 = run.cluster_cycles.iter().sum();
        assert!((busy - cluster).abs() / busy.max(1.0) < 1e-9);
        for &b in &run.per_pe_busy {
            assert!(b <= run.makespan * (1.0 + 1e-9));
        }
    }

    #[test]
    fn imbalance_is_one_when_balanced() {
        let profiles: Vec<ClusterProfile> = (0..8).map(|_| task(100, 0)).collect();
        let run = simulate_with(&profiles, 4, 4.0, SchedulerKind::RoundRobin);
        assert!((run.imbalance() - 1.0).abs() < 1e-9, "{}", run.imbalance());
        assert_eq!(
            MultiPeRun {
                per_pe_busy: vec![],
                ..run
            }
            .imbalance(),
            1.0
        );
    }
}
