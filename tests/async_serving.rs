//! Acceptance tests for the always-on serving front end and the on-disk
//! result store.
//!
//! The load-bearing properties:
//!
//! * draining an `AsyncService` over the mixed fleet yields outcomes
//!   **bit-identical** to `BatchService::run_batch`, under a forced-serial
//!   scope and an oversubscribed 8-worker scope (each CI leg additionally
//!   runs the whole file under `GROW_SERIAL=1` or parallel);
//! * a *restarted* service pointed at the same store directory serves the
//!   entire fleet from disk — zero simulations in its lifetime — with the
//!   exact reports of the first lifetime;
//! * corrupt, truncated, or wrong-key store entries are quarantined and
//!   recomputed, never served;
//! * admission control rejects over-capacity submissions with a reason,
//!   and priority classes reorder completion.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use grow::accel::PartitionStrategy;
use grow::model::DatasetKey;
use grow::serve::{
    AsyncConfig, AsyncService, BatchService, JobResult, JobSpec, Priority, ResultStore,
    SubmitError, Ticket,
};
use grow::sim::exec::{with_mode, with_workers, ExecMode};

/// Oversubscribed worker count (the in-code equivalent of
/// `GROW_THREADS=8`), so threads genuinely interleave even on small CI
/// machines.
const WORKERS: usize = 8;

/// A fresh, collision-free store directory per test.
fn temp_store_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "grow-async-serving-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The mixed 18-job fleet of `tests/batch_serving.rs`: 2 datasets x 4
/// engines x 2 partition strategies, an override variant, a multi-PE
/// scheduler variant, and one invalid job.
fn mixed_jobs() -> Vec<JobSpec> {
    let cora = DatasetKey::Cora.spec().scaled_to(600);
    let pubmed = DatasetKey::Pubmed.spec().scaled_to(900);
    let strategies = [
        PartitionStrategy::None,
        PartitionStrategy::Multilevel { cluster_nodes: 150 },
    ];
    let mut jobs = Vec::new();
    for spec in [cora, pubmed] {
        for engine in ["grow", "gcnax", "matraptor", "gamma"] {
            for strategy in strategies {
                jobs.push(JobSpec::new(spec, 21, engine).with_strategy(strategy));
            }
        }
    }
    jobs.push(
        JobSpec::new(cora, 21, "grow")
            .with_strategy(strategies[1])
            .with_override("hdn_cache_kb", "64")
            .with_override("runahead", "4"),
    );
    jobs.push(
        JobSpec::new(cora, 21, "grow")
            .with_strategy(strategies[1])
            .with_override("scheduler", "ws")
            .with_override("pes", "8"),
    );
    // The intentionally invalid job: fails alone, not the fleet.
    jobs.push(JobSpec::new(pubmed, 21, "npu"));
    jobs
}

/// Submits every job, waits every ticket (submission order), returns the
/// drained results and the recovered inner service.
fn drain(service: AsyncService, jobs: &[JobSpec]) -> (Vec<JobResult>, BatchService) {
    let tickets: Vec<Ticket> = jobs
        .iter()
        .map(|job| service.submit(job.clone()).expect("under the bound"))
        .collect();
    let results: Vec<JobResult> = tickets
        .into_iter()
        .map(|t| t.wait().expect("worker alive"))
        .collect();
    (results, service.finish())
}

fn assert_same_outcomes(sync: &[JobResult], asynchronous: &[JobResult]) {
    assert_eq!(sync.len(), asynchronous.len());
    for (s, a) in sync.iter().zip(asynchronous) {
        assert_eq!(
            s.outcome, a.outcome,
            "job {} ({} on {}) diverged between run_batch and async drain",
            s.index, s.engine, s.dataset
        );
        assert_eq!(s.key, a.key);
    }
}

#[test]
fn async_drain_is_bit_identical_to_run_batch() {
    let jobs = mixed_jobs();
    let both = |jobs: &[JobSpec]| {
        let sync = BatchService::new().run_batch(jobs);
        let (asynchronous, batch) = drain(
            AsyncService::start(BatchService::new(), AsyncConfig::default()),
            jobs,
        );
        assert_eq!(batch.stats().simulations_run, jobs.len() as u64 - 1);
        (sync, asynchronous)
    };

    // The worker thread inherits the caller's scoped overrides, so both
    // execution shapes run under each mode.
    let (sync_serial, async_serial) = with_mode(ExecMode::Serial, || both(&jobs));
    let (sync_parallel, async_parallel) = with_workers(WORKERS, || both(&jobs));

    assert_same_outcomes(&sync_serial, &async_serial);
    assert_same_outcomes(&sync_parallel, &async_parallel);
    assert_same_outcomes(&async_serial, &async_parallel);

    // Async results carry the submission id as their index, in order.
    for (i, r) in async_parallel.iter().enumerate() {
        assert_eq!(r.index, i);
    }
}

#[test]
fn restarted_service_serves_the_fleet_from_disk() {
    let jobs = mixed_jobs();
    let dir = temp_store_dir();

    // Lifetime 1: compute everything, persisting each report.
    let store = ResultStore::open(&dir).expect("open store");
    let (first, batch) = drain(
        AsyncService::start(
            BatchService::new().with_store(store),
            AsyncConfig::default(),
        ),
        &jobs,
    );
    let stats = batch.stats();
    assert_eq!(stats.simulations_run, jobs.len() as u64 - 1);
    assert_eq!(stats.store_hits, 0);
    let store = batch.store().expect("store attached");
    assert_eq!(
        store.stats().persisted,
        jobs.len() as u64 - 1,
        "every computed report persisted; the failed job never does"
    );
    assert_eq!(store.len(), jobs.len() - 1);

    // Lifetime 2: a *fresh* service on the same directory — the entire
    // fleet must be served from disk, bit-identically, without running a
    // single simulation.
    let store = ResultStore::open(&dir).expect("reopen store");
    let (second, batch) = drain(
        AsyncService::start(
            BatchService::new().with_store(store),
            AsyncConfig::default(),
        ),
        &jobs,
    );
    let stats = batch.stats();
    assert_eq!(stats.simulations_run, 0, "second lifetime computes nothing");
    assert_eq!(stats.store_hits, jobs.len() as u64 - 1);
    assert_eq!(stats.sessions_created, 0, "no workload even instantiated");
    for (f, s) in first.iter().zip(&second) {
        assert_eq!(f.outcome, s.outcome, "store round-trip must be exact");
        if s.outcome.is_ok() {
            assert!(s.cache_hit, "store hits are cache hits");
            assert_eq!(s.wall_ms, None, "no simulation ran");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_store_entries_are_quarantined_not_served() {
    let dir = temp_store_dir();
    let mut store = ResultStore::open(&dir).expect("open store");
    let spec = DatasetKey::Cora.spec().scaled_to(300);
    let job = JobSpec::new(spec, 9, "grow");
    let key = job.key();
    let report = BatchService::new()
        .run_one(&job)
        .outcome
        .expect("valid job");
    store.persist(&key, &report).expect("persist");

    // The round trip is exact before any tampering.
    assert_eq!(store.load(&key), Some(report.clone()));
    assert_eq!(store.stats().hits, 1);

    // A truncated entry (torn write survived a crash) is quarantined.
    let path = store.entry_path(&key);
    let text = std::fs::read_to_string(&path).expect("entry exists");
    std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
    assert_eq!(store.load(&key), None, "truncated entry never served");
    assert_eq!(store.stats().quarantined, 1);
    assert!(store.is_empty(), "quarantined files are not live entries");

    // Foreign bytes under the right name are quarantined too.
    std::fs::write(&path, "grow-store v1\nkey nonsense\n").expect("write");
    assert_eq!(store.load(&key), None);
    assert_eq!(store.stats().quarantined, 2);

    // An entry copied under another key's file name fails key
    // verification — a hash collision or a mis-filed entry is never
    // trusted.
    store.persist(&key, &report).expect("persist again");
    let other = JobSpec::new(spec, 10, "grow").key();
    std::fs::copy(store.entry_path(&key), store.entry_path(&other)).expect("copy");
    assert_eq!(store.load(&other), None, "wrong-key entry never served");

    // The serving path recomputes after quarantine instead of failing:
    // the original key's entry is intact, the mis-filed one is gone.
    let mut service = BatchService::new().with_store(store);
    let served = service.run_one(&job);
    assert!(served.cache_hit, "intact entry still serves");
    assert_eq!(served.outcome.expect("served"), report);
    assert_eq!(service.stats().simulations_run, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_corruption_of_one_key_preserves_every_quarantine_file() {
    // Two successive corruptions of the same entry must yield two
    // *distinct* quarantine files: renaming over the first `.corrupt`
    // would silently destroy the evidence it exists to preserve.
    let dir = temp_store_dir();
    let mut store = ResultStore::open(&dir).expect("open store");
    let spec = DatasetKey::Cora.spec().scaled_to(300);
    let job = JobSpec::new(spec, 11, "grow");
    let key = job.key();
    let report = BatchService::new()
        .run_one(&job)
        .outcome
        .expect("valid job");

    let path = store.entry_path(&key);
    store.persist(&key, &report).expect("persist");
    std::fs::write(&path, "grow-store v1\nfirst corruption\n").expect("write");
    assert_eq!(store.load(&key), None);
    store.persist(&key, &report).expect("persist again");
    std::fs::write(&path, "grow-store v1\nsecond corruption\n").expect("write");
    assert_eq!(store.load(&key), None);
    assert_eq!(store.stats().quarantined, 2);

    let quarantined: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".corrupt"))
        .collect();
    assert_eq!(
        quarantined.len(),
        2,
        "each corruption keeps its own file: {quarantined:?}"
    );
    let bodies: Vec<String> = quarantined
        .iter()
        .map(|name| std::fs::read_to_string(dir.join(name)).expect("read quarantine"))
        .collect();
    assert!(
        bodies.iter().any(|b| b.contains("first corruption"))
            && bodies.iter().any(|b| b.contains("second corruption")),
        "both corrupted payloads survive for inspection"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_ticket_does_not_wedge_the_worker() {
    // A caller that abandons its Ticket before completion must not panic
    // or wedge the worker thread on the dead result channel: subsequent
    // submissions still run and complete normally.
    let spec = DatasetKey::Pubmed.spec().scaled_to(900);
    let strategy = PartitionStrategy::Multilevel { cluster_nodes: 150 };
    let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
    let abandoned = service
        .submit(JobSpec::new(spec, 60, "grow").with_strategy(strategy))
        .expect("admitted");
    let abandoned_id = abandoned.id();
    drop(abandoned);
    let kept = service
        .submit(JobSpec::new(spec, 61, "gcnax"))
        .expect("admitted");
    assert!(
        kept.wait().expect("worker alive").outcome.is_ok(),
        "worker survived the dead rx"
    );
    let completed = service.completed_ids();
    let batch = service.finish();
    assert!(
        completed.contains(&abandoned_id),
        "the abandoned job still ran to completion: {completed:?}"
    );
    assert_eq!(batch.stats().simulations_run, 2);
}

#[test]
fn finish_with_undrained_tickets_returns_the_warmed_service() {
    // finish() must drain the queue and hand back the warmed BatchService
    // even when tickets are still alive and unwaited at shutdown.
    let spec = DatasetKey::Cora.spec().scaled_to(300);
    let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
    let tickets: Vec<Ticket> = (0..3u64)
        .map(|seed| {
            service
                .submit(JobSpec::new(spec, seed, "gcnax"))
                .expect("admitted")
        })
        .collect();
    let batch = service.finish();
    assert_eq!(
        batch.stats().simulations_run,
        3,
        "finish drains the queue before joining the worker"
    );
    // The undrained tickets still resolve from the completed results.
    for t in tickets {
        assert!(t.wait().expect("worker alive").outcome.is_ok());
    }
}

#[test]
fn admission_control_rejects_over_capacity_submissions() {
    let spec = DatasetKey::Pubmed.spec().scaled_to(900);
    let strategy = PartitionStrategy::Multilevel { cluster_nodes: 150 };
    let service = AsyncService::start(
        BatchService::new(),
        AsyncConfig {
            queue_capacity: 2,
            session_capacity: None,
            workers: 1,
        },
    );
    assert_eq!(service.queue_capacity(), 2);
    // Two admitted jobs fill the pending set (a job stays pending until
    // it completes, and these take milliseconds to simulate).
    let t1 = service
        .submit(JobSpec::new(spec, 1, "grow").with_strategy(strategy))
        .expect("first admitted");
    let t2 = service
        .submit(JobSpec::new(spec, 2, "gcnax"))
        .expect("second admitted");
    match service.submit(JobSpec::new(spec, 3, "gamma")) {
        Err(SubmitError::QueueFull { capacity, pending }) => {
            assert_eq!(capacity, 2);
            assert!(pending >= 1, "rejection reports the pending load");
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Draining frees capacity; the resubmission is admitted and runs.
    assert!(t1.wait().expect("worker alive").outcome.is_ok());
    assert!(t2.wait().expect("worker alive").outcome.is_ok());
    let t3 = service
        .submit(JobSpec::new(spec, 3, "gamma"))
        .expect("admitted after drain");
    assert!(t3.wait().expect("worker alive").outcome.is_ok());
    let batch = service.finish();
    assert_eq!(batch.stats().simulations_run, 3);
}

#[test]
fn priority_classes_reorder_completion() {
    // The Low submission lands before the High one, so FIFO service would
    // complete Low first; the class order must complete High first. The
    // scenario is timing-sensitive in one narrow way — if the worker goes
    // idle in the microseconds between the two submits it picks Low
    // simply because nothing else is queued — so a racy run (possible on
    // an oversubscribed CI box) is retried; a genuine FIFO regression
    // fails every attempt deterministically.
    let spec = DatasetKey::Pubmed.spec().scaled_to(900);
    let strategy = PartitionStrategy::Multilevel { cluster_nodes: 150 };
    let mut last_order = Vec::new();
    for attempt in 0..3 {
        let service = AsyncService::start(BatchService::new(), AsyncConfig::default());
        // The first submission occupies the worker for several
        // milliseconds while the Low and High submissions land.
        let occupy = service
            .submit(JobSpec::new(spec, 50, "grow").with_strategy(strategy))
            .expect("admitted");
        let low = service
            .submit_with(JobSpec::new(spec, 51, "gcnax"), Priority::Low)
            .expect("admitted");
        let high = service
            .submit_with(JobSpec::new(spec, 52, "matraptor"), Priority::High)
            .expect("admitted");
        let (low_id, high_id) = (low.id(), high.id());
        assert!(occupy.wait().expect("worker alive").outcome.is_ok());
        assert!(low.wait().expect("worker alive").outcome.is_ok());
        assert!(high.wait().expect("worker alive").outcome.is_ok());
        let order = service.completed_ids();
        service.finish();
        let pos = |id| order.iter().position(|&c| c == id).expect("completed");
        if pos(high_id) < pos(low_id) {
            return;
        }
        last_order = order;
        eprintln!("attempt {attempt}: worker went idle between submits; retrying");
    }
    panic!("High never overtook Low in the completion sequence: {last_order:?}");
}

#[test]
fn four_worker_drain_is_bit_identical_to_run_batch() {
    // The tentpole determinism claim: a 4-worker concurrent drain of the
    // mixed fleet returns exactly the reports of a synchronous
    // `run_batch`, under a forced-serial scope and an oversubscribed
    // parallel scope alike. Only completion order may differ.
    let jobs = mixed_jobs();
    let pooled = |jobs: &[JobSpec]| {
        let (results, batch) = drain(
            AsyncService::start(
                BatchService::new(),
                AsyncConfig {
                    workers: 4,
                    ..AsyncConfig::default()
                },
            ),
            jobs,
        );
        let stats = batch.stats();
        assert_eq!(
            stats.simulations_run,
            jobs.len() as u64 - 1,
            "the pool never double-computes a key"
        );
        assert!(
            stats.jobs_in_flight_peak >= 1,
            "the in-flight high-water mark is recorded"
        );
        results
    };

    let sync_serial = with_mode(ExecMode::Serial, || BatchService::new().run_batch(&jobs));
    let pooled_serial = with_mode(ExecMode::Serial, || pooled(&jobs));
    let pooled_parallel = with_workers(WORKERS, || pooled(&jobs));

    assert_same_outcomes(&sync_serial, &pooled_serial);
    assert_same_outcomes(&sync_serial, &pooled_parallel);

    // Async results carry the submission id as their index, in order.
    for (i, r) in pooled_parallel.iter().enumerate() {
        assert_eq!(r.index, i);
    }
}

#[test]
fn duplicate_keys_compute_once_under_a_worker_pool() {
    // Four same-key submissions on a four-worker pool: the running-set
    // exclusion must leave exactly one computation; the rest are served
    // as cache hits the moment it commits.
    let spec = DatasetKey::Pubmed.spec().scaled_to(900);
    let job = JobSpec::new(spec, 77, "grow")
        .with_strategy(PartitionStrategy::Multilevel { cluster_nodes: 150 });
    let service = AsyncService::start(
        BatchService::new(),
        AsyncConfig {
            workers: 4,
            ..AsyncConfig::default()
        },
    );
    let tickets: Vec<Ticket> = (0..4)
        .map(|_| service.submit(job.clone()).expect("admitted"))
        .collect();
    let results: Vec<JobResult> = tickets
        .into_iter()
        .map(|t| t.wait().expect("pool alive"))
        .collect();
    let batch = service.finish();
    assert_eq!(
        batch.stats().simulations_run,
        1,
        "same-key submissions never compute twice"
    );
    for r in &results {
        assert_eq!(
            r.outcome, results[0].outcome,
            "every duplicate gets the report"
        );
    }
    assert!(
        results.iter().filter(|r| r.cache_hit).count() >= 3,
        "the duplicates are cache hits"
    );
}

#[test]
fn admission_control_holds_under_a_worker_pool() {
    // QueueFull accounting with several workers: pending counts queued
    // plus in-flight, so a full pool rejects exactly as a busy single
    // worker does, and draining frees the capacity back.
    let spec = DatasetKey::Pubmed.spec().scaled_to(900);
    let strategy = PartitionStrategy::Multilevel { cluster_nodes: 150 };
    let service = AsyncService::start(
        BatchService::new(),
        AsyncConfig {
            queue_capacity: 3,
            session_capacity: None,
            workers: 4,
        },
    );
    let tickets: Vec<Ticket> = (0..3u64)
        .map(|seed| {
            service
                .submit(JobSpec::new(spec, seed, "grow").with_strategy(strategy))
                .expect("admitted")
        })
        .collect();
    match service.submit(JobSpec::new(spec, 9, "gamma")) {
        Err(SubmitError::QueueFull { capacity, pending }) => {
            assert_eq!(capacity, 3);
            assert!(pending >= 1, "rejection reports the pending load");
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    for t in tickets {
        assert!(t.wait().expect("pool alive").outcome.is_ok());
    }
    let t = service
        .submit(JobSpec::new(spec, 9, "gamma"))
        .expect("admitted after drain");
    assert!(t.wait().expect("pool alive").outcome.is_ok());
    assert_eq!(service.pending(), 0, "accounting returns to zero");
    let batch = service.finish();
    assert_eq!(batch.stats().simulations_run, 4);
}

#[test]
fn priority_classes_reorder_completion_under_a_worker_pool() {
    // With every worker occupied, the next free worker must take the
    // queued High submission before the earlier-queued Low one. Same
    // narrow timing sensitivity (and the same retry) as the
    // single-worker variant above.
    let spec = DatasetKey::Pubmed.spec().scaled_to(900);
    let strategy = PartitionStrategy::Multilevel { cluster_nodes: 150 };
    let mut last_order = Vec::new();
    for attempt in 0..3 {
        let service = AsyncService::start(
            BatchService::new(),
            AsyncConfig {
                workers: 2,
                ..AsyncConfig::default()
            },
        );
        let occupy: Vec<Ticket> = (0..2u64)
            .map(|seed| {
                service
                    .submit(JobSpec::new(spec, 40 + seed, "grow").with_strategy(strategy))
                    .expect("admitted")
            })
            .collect();
        let low = service
            .submit_with(JobSpec::new(spec, 51, "gcnax"), Priority::Low)
            .expect("admitted");
        let high = service
            .submit_with(JobSpec::new(spec, 52, "matraptor"), Priority::High)
            .expect("admitted");
        let (low_id, high_id) = (low.id(), high.id());
        for t in occupy {
            assert!(t.wait().expect("pool alive").outcome.is_ok());
        }
        assert!(low.wait().expect("pool alive").outcome.is_ok());
        assert!(high.wait().expect("pool alive").outcome.is_ok());
        let order = service.completed_ids();
        service.finish();
        let pos = |id| order.iter().position(|&c| c == id).expect("completed");
        if pos(high_id) < pos(low_id) {
            return;
        }
        last_order = order;
        eprintln!("attempt {attempt}: a worker went idle between submits; retrying");
    }
    panic!("High never overtook Low on the pool: {last_order:?}");
}

#[test]
fn plan_cache_shares_plans_across_jobs_and_stays_bit_identical() {
    // Three jobs on one session: two grow configurations share the
    // "grow" plan family (the second must hit), gcnax lives in its own
    // family. Single-job batches fix the request order, so the counters
    // are exact in both CI legs.
    let spec = DatasetKey::Cora.spec().scaled_to(600);
    let strategy = PartitionStrategy::Multilevel { cluster_nodes: 150 };
    let grow = JobSpec::new(spec, 33, "grow").with_strategy(strategy);
    let gcnax = JobSpec::new(spec, 33, "gcnax").with_strategy(strategy);
    let runahead = grow.clone().with_override("runahead", "8");

    let mut warm = BatchService::new();
    let warm_grow = warm.run_batch(std::slice::from_ref(&grow));
    let warm_gcnax = warm.run_batch(std::slice::from_ref(&gcnax));
    let warm_runahead = warm.run_batch(std::slice::from_ref(&runahead));
    assert_eq!(
        warm.stats().plan_cache_hits,
        1,
        "the runahead variant replays the shared grow plan"
    );
    assert_eq!(warm.plan_cache().misses(), 2, "one entry per plan family");
    assert_eq!(warm.plan_cache().len(), 2);

    // Cold references: isolated services, nothing shared. The replayed
    // plan must be indistinguishable from a fresh plan pass.
    for (warmed, job) in [
        (&warm_grow, &grow),
        (&warm_gcnax, &gcnax),
        (&warm_runahead, &runahead),
    ] {
        let cold = BatchService::new().run_batch(std::slice::from_ref(job));
        assert_eq!(
            warmed[0].outcome, cold[0].outcome,
            "{}: shared-plan report diverged from an isolated run",
            job.engine
        );
    }

    // Eviction: with room for one entry, the gcnax insert evicts the
    // grow plans, so the runahead variant misses where it hit above —
    // and still computes the identical report.
    let mut tiny = BatchService::new().with_plan_cache_capacity(1);
    let tiny_grow = tiny.run_batch(std::slice::from_ref(&grow));
    tiny.run_batch(std::slice::from_ref(&gcnax));
    let tiny_runahead = tiny.run_batch(std::slice::from_ref(&runahead));
    assert_eq!(
        tiny.stats().plan_cache_hits,
        0,
        "capacity 1 evicts before reuse"
    );
    assert_eq!(tiny.plan_cache().misses(), 3);
    assert_eq!(tiny.plan_cache().len(), 1, "the bound holds");
    assert_eq!(tiny_grow[0].outcome, warm_grow[0].outcome);
    assert_eq!(tiny_runahead[0].outcome, warm_runahead[0].outcome);

    // reset_stats clears the live counters with the rest.
    warm.reset_stats();
    assert_eq!(warm.stats().plan_cache_hits, 0);
    assert_eq!(warm.plan_cache().misses(), 0);
}

#[test]
fn async_config_bounds_the_session_pool() {
    let service = AsyncService::start(
        BatchService::new(),
        AsyncConfig {
            queue_capacity: 16,
            session_capacity: Some(1),
            workers: 1,
        },
    );
    for seed in 0..3u64 {
        let job = JobSpec::new(DatasetKey::Cora.spec().scaled_to(300), seed, "gcnax");
        assert!(service
            .submit(job)
            .expect("admitted")
            .wait()
            .expect("worker alive")
            .outcome
            .is_ok());
    }
    let batch = service.finish();
    assert_eq!(batch.pooled_sessions(), 1, "pool bounded by the config");
    assert_eq!(batch.session_capacity(), Some(1));
    assert_eq!(batch.stats().sessions_created, 3);
    assert_eq!(batch.stats().sessions_evicted, 2);
}
