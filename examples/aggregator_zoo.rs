//! The Section VIII "aggregator zoo": run the same graph through GCN-sum,
//! GraphSAGE-mean/pool, GIN, and GAT aggregation on the GROW model, and
//! report cycles plus the extra die area each variant needs.
//!
//! ```text
//! cargo run --release --example aggregator_zoo
//! ```

use grow::accel::extensions::{run_with_aggregation, AggregationKind};
use grow::accel::{prepare, GrowEngine, PartitionStrategy};
use grow::energy::{AreaModel, TECH_SCALE_65_TO_40};
use grow::model::DatasetKey;

fn main() {
    let workload = DatasetKey::Flickr.spec().scaled_to(20_000).instantiate(11);
    let prepared = prepare(&workload, PartitionStrategy::multilevel_default(), 4096);
    let engine = GrowEngine::default();
    let base_area = AreaModel::default()
        .grow_default_65nm()
        .scaled(TECH_SCALE_65_TO_40)
        .total();

    println!("workload: {}", workload.graph);
    println!(
        "\n{:<28} {:>12} {:>12} {:>10} {:>12}",
        "aggregator", "cycles", "MAC ops", "area mm2", "vs GCN-sum"
    );

    let variants: [(&str, AggregationKind); 5] = [
        ("GCN sum (paper default)", AggregationKind::GcnSum),
        (
            "SAGE mean (sample 25)",
            AggregationKind::SageMean { sample: Some(25) },
        ),
        (
            "SAGE pool (sample 25)",
            AggregationKind::SagePool { sample: Some(25) },
        ),
        ("GIN (2-layer MLP)", AggregationKind::Gin),
        ("GAT (attention)", AggregationKind::Gat),
    ];

    let baseline = run_with_aggregation(&engine, &prepared, AggregationKind::GcnSum);
    for (name, kind) in variants {
        let report = run_with_aggregation(&engine, &prepared, kind);
        let area = base_area * (1.0 + kind.area_overhead_fraction());
        println!(
            "{:<28} {:>12} {:>12} {:>10.3} {:>11.2}x",
            name,
            report.total_cycles(),
            report.mac_ops(),
            area,
            report.total_cycles() as f64 / baseline.total_cycles() as f64
        );
    }
    println!(
        "\narea overheads follow Section VIII: pooling comparator array +1.4%, \
         GAT softmax unit +1.7%; mean/GIN reuse the MAC array as-is."
    );
}
