//! End-to-end GCN inference on a citation network: functional execution
//! (actual feature values through `X' = ReLU(A X W)`) cross-checked with
//! the accelerator timing models.
//!
//! This is the paper's motivating workload class (Cora/Citeseer/Pubmed are
//! citation graphs): classify papers into topics from bag-of-words
//! features plus the citation structure.
//!
//! ```text
//! cargo run --release --example citation_inference
//! ```

use grow::accel::{prepare, Accelerator, GcnaxEngine, GrowEngine, PartitionStrategy};
use grow::energy::EnergyModel;
use grow::model::{reference, DatasetKey};

fn main() {
    // A Pubmed-like citation network, scaled so the functional pass stays
    // fast: the GCN still has the paper's 500-16-3 feature dimensions.
    let spec = DatasetKey::Pubmed.spec().scaled_to(4000);
    let workload = spec.instantiate(7);
    println!("citation graph: {}", workload.graph);

    // ---- functional inference (the values, not the cycles) -------------
    let weights = reference::random_weights(&workload, 1);
    let logits = reference::run_gcn(&workload, &weights, 1).expect("shapes match");
    println!(
        "inference output: {} nodes x {} classes",
        logits.rows(),
        logits.cols()
    );
    // Nodes get classified by their arg-max logit; show the distribution.
    let mut class_counts = vec![0usize; logits.cols()];
    for node in 0..logits.rows() {
        let row = logits.row(node);
        let best = (0..row.len())
            .max_by(|&a, &b| row[a].partial_cmp(&row[b]).expect("finite"))
            .expect("at least one class");
        class_counts[best] += 1;
    }
    println!("predicted class distribution: {class_counts:?}");

    // ---- accelerator timing (the cycles, not the values) ---------------
    let base = prepare(&workload, PartitionStrategy::None, 4096);
    let partitioned = prepare(&workload, PartitionStrategy::multilevel_default(), 4096);
    let grow = GrowEngine::default().run(&partitioned);
    let gcnax = GcnaxEngine::default().run(&base);

    println!("\nper-layer latency breakdown (cycles):");
    for (i, (g, x)) in grow.layers.iter().zip(&gcnax.layers).enumerate() {
        println!(
            "  layer {i}: GROW comb {:>10} agg {:>10} | GCNAX comb {:>10} agg {:>10}",
            g.combination.cycles, g.aggregation.cycles, x.combination.cycles, x.aggregation.cycles
        );
    }

    // ---- energy (Figure 22 methodology) ---------------------------------
    let model = EnergyModel::default();
    let grow_energy = model.estimate(&grow.activity(GrowEngine::default().sram_kb()));
    let gcnax_energy = model.estimate(&gcnax.activity(GcnaxEngine::default().sram_kb()));
    println!("\nGROW  {grow_energy}");
    println!("GCNAX {gcnax_energy}");
    println!(
        "\nGROW vs GCNAX: {:.2}x speedup, {:.2}x energy efficiency",
        gcnax.total_cycles() as f64 / grow.total_cycles() as f64,
        gcnax_energy.total() / grow_energy.total()
    );
}
