use std::collections::HashMap;
use std::fmt;

/// Hit/miss counters for a row cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probe hits.
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Rows installed by preloading (pinned fills) or demand insertion.
    pub fills: u64,
}

impl CacheStats {
    /// Hit rate over all probes; `None` before the first probe.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.fills += other.fills;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {} / misses {} (hit rate {:.1}%)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate().unwrap_or(0.0)
        )
    }
}

/// GROW's HDN cache: a scratchpad that pins a fixed set of row IDs.
///
/// The paper statically pins the per-cluster top-N high-degree nodes and
/// found this beats demand-based replacement ("statically pinning the
/// high-degree nodes within the cache yielded the most robust speedups",
/// Section VIII). Misses stream to the processing engine directly from
/// DRAM and are *not* installed.
///
/// ```
/// use grow_sim::PinnedRowCache;
///
/// let mut cache = PinnedRowCache::new(2, 10);
/// cache.load(&[3, 7, 9]); // capacity 2: only 3 and 7 fit
/// assert!(cache.probe(3));
/// assert!(!cache.probe(9));
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PinnedRowCache {
    capacity_rows: usize,
    resident: Vec<bool>,
    loaded: Vec<u32>,
    stats: CacheStats,
}

impl PinnedRowCache {
    /// Creates a cache holding up to `capacity_rows` rows out of a universe
    /// of `universe` row IDs.
    pub fn new(capacity_rows: usize, universe: usize) -> Self {
        PinnedRowCache {
            capacity_rows,
            resident: vec![false; universe],
            loaded: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// Row capacity.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Replaces the pinned set with (a capacity-truncated prefix of) `ids`,
    /// as happens at each cluster boundary. Returns how many rows were
    /// actually pinned — the number of preload fills the DMA must fetch.
    ///
    /// # Panics
    ///
    /// Panics if an ID is outside the universe.
    pub fn load(&mut self, ids: &[u32]) -> usize {
        for &id in &self.loaded {
            self.resident[id as usize] = false;
        }
        self.loaded.clear();
        for &id in ids.iter().take(self.capacity_rows) {
            if !self.resident[id as usize] {
                self.resident[id as usize] = true;
                self.loaded.push(id);
            }
        }
        self.stats.fills += self.loaded.len() as u64;
        self.loaded.len()
    }

    /// Number of rows currently pinned.
    pub fn resident_rows(&self) -> usize {
        self.loaded.len()
    }

    /// Probes for `id`, recording a hit or miss.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn probe(&mut self, id: u32) -> bool {
        let hit = self.resident[id as usize];
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Checks residency without touching statistics.
    pub fn peek(&self, id: u32) -> bool {
        self.resident[id as usize]
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

/// A demand-filled LRU row cache.
///
/// Models GAMMA's fiber cache (Section VII-H: "GAMMA's fiber cache is not
/// optimized for the power-law distribution of graphs") and the
/// alternative eviction policies of the Section VIII discussion.
///
/// ```
/// use grow_sim::LruRowCache;
///
/// let mut cache = LruRowCache::new(2);
/// assert!(!cache.probe(1));
/// cache.insert(1);
/// cache.insert(2);
/// cache.probe(1);      // touch 1 so 2 becomes LRU
/// cache.insert(3);     // evicts 2
/// assert!(cache.peek(1) && !cache.peek(2) && cache.peek(3));
/// ```
#[derive(Debug, Clone)]
pub struct LruRowCache {
    capacity_rows: usize,
    /// id -> slot index in the intrusive list.
    map: HashMap<u32, usize>,
    /// Slot storage: (id, prev, next); usize::MAX is the null link.
    slots: Vec<(u32, usize, usize)>,
    head: usize, // most recent
    tail: usize, // least recent
    stats: CacheStats,
}

const NIL: usize = usize::MAX;

impl LruRowCache {
    /// Creates an empty cache holding up to `capacity_rows` rows.
    pub fn new(capacity_rows: usize) -> Self {
        LruRowCache {
            capacity_rows,
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Row capacity.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Number of resident rows.
    pub fn resident_rows(&self) -> usize {
        self.map.len()
    }

    /// Probes for `id`, recording a hit (and touching the entry) or a miss.
    pub fn probe(&mut self, id: u32) -> bool {
        if let Some(&slot) = self.map.get(&id) {
            self.stats.hits += 1;
            self.unlink(slot);
            self.push_front(slot);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Checks residency without touching statistics or recency.
    pub fn peek(&self, id: u32) -> bool {
        self.map.contains_key(&id)
    }

    /// Installs `id` as most-recently-used, evicting the LRU row if full.
    /// No-op if already resident (the entry is just touched).
    pub fn insert(&mut self, id: u32) {
        if self.capacity_rows == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&id) {
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        self.stats.fills += 1;
        let slot = if self.map.len() >= self.capacity_rows {
            let victim = self.tail;
            let old_id = self.slots[victim].0;
            self.map.remove(&old_id);
            self.unlink(victim);
            self.slots[victim].0 = id;
            victim
        } else {
            self.slots.push((id, NIL, NIL));
            self.slots.len() - 1
        };
        self.map.insert(id, slot);
        self.push_front(slot);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn unlink(&mut self, slot: usize) {
        let (_, prev, next) = self.slots[slot];
        if prev != NIL {
            self.slots[prev].2 = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].1 = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].1 = NIL;
        self.slots[slot].2 = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].1 = NIL;
        self.slots[slot].2 = self.head;
        if self.head != NIL {
            self.slots[self.head].1 = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_cache_respects_capacity() {
        let mut c = PinnedRowCache::new(3, 100);
        assert_eq!(c.load(&[1, 2, 3, 4, 5]), 3);
        assert!(c.peek(3));
        assert!(!c.peek(4));
    }

    #[test]
    fn pinned_cache_reload_swaps_cluster_sets() {
        // Figure 13: cluster 0 pins {0,1,2}, cluster 1 pins {3,4,5}.
        let mut c = PinnedRowCache::new(3, 6);
        c.load(&[0, 1, 2]);
        assert!(c.probe(0) && c.probe(1) && c.probe(2));
        c.load(&[3, 4, 5]);
        assert!(!c.peek(0));
        assert!(c.probe(3) && c.probe(4) && c.probe(5));
        assert_eq!(c.stats().hits, 6);
        assert_eq!(c.stats().fills, 6);
    }

    #[test]
    fn pinned_cache_misses_are_not_installed() {
        let mut c = PinnedRowCache::new(2, 10);
        c.load(&[1]);
        assert!(!c.probe(5));
        assert!(!c.probe(5), "miss twice: streaming, not caching");
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn pinned_cache_dedups_load_list() {
        let mut c = PinnedRowCache::new(4, 10);
        assert_eq!(c.load(&[7, 7, 8]), 2);
    }

    #[test]
    fn figure12_hit_count() {
        // Figure 12 of the paper: node degrees (column counts) are
        // [5, 3, 3, 4, 4, 3]; pinning the top-3 nodes {0, 3, 4} yields
        // exactly 5 + 4 + 4 = 13 HDN cache hits over the six output rows.
        let rows: [&[u32]; 6] = [
            &[0, 2, 3, 4, 5],
            &[0, 1, 3, 4],
            &[0, 1, 3, 4],
            &[0, 2, 4, 5],
            &[0, 1, 3, 5],
            &[2],
        ];
        let mut c = PinnedRowCache::new(3, 6);
        c.load(&[0, 3, 4]);
        for row in rows {
            for &col in row {
                c.probe(col);
            }
        }
        assert_eq!(c.stats().hits, 13, "Figure 12 promises 13 hits");
    }

    #[test]
    fn figure13_hit_count_with_partitioning() {
        // Figure 13: after graph partitioning, pinning each cluster's own
        // nodes {0,1,2} then {3,4,5} yields 18 hits on the clustered
        // adjacency.
        let rows: [&[u32]; 6] = [
            &[0, 1, 2, 5],
            &[0, 1, 2, 3, 4],
            &[0, 1, 2, 5],
            &[1, 3, 4, 5],
            &[1, 3, 4, 5],
            &[0, 2, 3, 4, 5],
        ];
        let mut c = PinnedRowCache::new(3, 6);
        c.load(&[0, 1, 2]);
        for row in rows.iter().take(3) {
            for &col in *row {
                c.probe(col);
            }
        }
        c.load(&[3, 4, 5]);
        for row in rows.iter().skip(3) {
            for &col in *row {
                c.probe(col);
            }
        }
        assert_eq!(c.stats().hits, 18, "Figure 13 promises 18 hits");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruRowCache::new(2);
        c.insert(1);
        c.insert(2);
        c.probe(1);
        c.insert(3);
        assert!(c.peek(1));
        assert!(!c.peek(2));
        assert!(c.peek(3));
        assert_eq!(c.resident_rows(), 2);
    }

    #[test]
    fn lru_insert_existing_is_touch() {
        let mut c = LruRowCache::new(2);
        c.insert(1);
        c.insert(2);
        c.insert(1); // touch, no fill
        c.insert(3); // evicts 2
        assert!(c.peek(1) && c.peek(3) && !c.peek(2));
        assert_eq!(c.stats().fills, 3);
    }

    #[test]
    fn lru_zero_capacity_never_hits() {
        let mut c = LruRowCache::new(0);
        c.insert(1);
        assert!(!c.probe(1));
        assert_eq!(c.resident_rows(), 0);
    }

    #[test]
    fn lru_heavy_churn_is_consistent() {
        let mut c = LruRowCache::new(8);
        for i in 0..1000u32 {
            c.probe(i % 16);
            c.insert(i % 16);
        }
        assert_eq!(c.resident_rows(), 8);
        let resident: Vec<u32> = (0..16).filter(|&i| c.peek(i)).collect();
        assert_eq!(resident.len(), 8);
    }

    #[test]
    fn hit_rate_reporting() {
        let mut c = LruRowCache::new(4);
        assert!(c.stats().hit_rate().is_none());
        c.insert(9);
        c.probe(9);
        c.probe(10);
        assert_eq!(c.stats().hit_rate(), Some(0.5));
    }
}
