//! Experiment drivers: one function per evaluation artifact of the paper
//! (Section VII). The `grow-bench` harness calls these and formats the
//! paper's rows/series; integration tests assert the headline shapes.

use grow_model::{DatasetKey, DatasetSpec, GcnWorkload};
use grow_sim::DramConfig;

use crate::schedule::SchedulerKind;
use crate::{
    multi_pe, prepare, Accelerator, ClusterProfile, GammaEngine, GcnaxEngine, GrowConfig,
    GrowEngine, MatRaptorEngine, PartitionStrategy, PreparedWorkload, ReplacementPolicy, RunReport,
};

/// A dataset instantiated and preprocessed both ways (with and without
/// graph partitioning), shared across experiments to amortize the
/// generation and partitioning cost.
#[derive(Debug, Clone)]
pub struct DatasetEval {
    /// Which dataset.
    pub key: DatasetKey,
    /// The generated workload.
    pub workload: GcnWorkload,
    /// Original node order, single cluster (baselines + "GROW w/o G.P.").
    pub base: PreparedWorkload,
    /// Partitioned + relabeled ("GROW with G.P.").
    pub partitioned: PreparedWorkload,
}

impl DatasetEval {
    /// Instantiates and preprocesses the dataset at its default spec.
    pub fn new(key: DatasetKey, seed: u64) -> Self {
        Self::from_spec(key.spec(), seed)
    }

    /// Instantiates and preprocesses an explicit spec (tests use scaled
    /// variants).
    pub fn from_spec(spec: DatasetSpec, seed: u64) -> Self {
        let workload = spec.instantiate(seed);
        let base = prepare(&workload, PartitionStrategy::None, 4096);
        let partitioned = prepare(&workload, PartitionStrategy::multilevel_default(), 4096);
        DatasetEval {
            key: spec.key,
            workload,
            base,
            partitioned,
        }
    }
}

/// The three configurations compared throughout Figures 17–22.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// GCNAX baseline on the original node order.
    pub gcnax: RunReport,
    /// GROW without graph partitioning.
    pub grow_no_gp: RunReport,
    /// GROW with graph partitioning.
    pub grow_gp: RunReport,
}

impl SpeedupRow {
    /// GROW-with-G.P. speedup over GCNAX (Figure 20(a)).
    pub fn speedup_gp(&self) -> f64 {
        self.gcnax.total_cycles() as f64 / self.grow_gp.total_cycles() as f64
    }

    /// GROW-without-G.P. speedup over GCNAX (Figure 20(a)).
    pub fn speedup_no_gp(&self) -> f64 {
        self.gcnax.total_cycles() as f64 / self.grow_no_gp.total_cycles() as f64
    }

    /// DRAM traffic normalized to GCNAX (Figure 18; lower is better).
    pub fn traffic_ratio_gp(&self) -> f64 {
        self.grow_gp.dram_bytes() as f64 / self.gcnax.dram_bytes() as f64
    }

    /// DRAM traffic of GROW w/o G.P. normalized to GCNAX (Figure 18).
    pub fn traffic_ratio_no_gp(&self) -> f64 {
        self.grow_no_gp.dram_bytes() as f64 / self.gcnax.dram_bytes() as f64
    }

    /// HDN cache hit rates without/with partitioning (Figure 17).
    pub fn hit_rates(&self) -> (f64, f64) {
        (
            self.grow_no_gp
                .aggregation_cache()
                .hit_rate()
                .unwrap_or(0.0),
            self.grow_gp.aggregation_cache().hit_rate().unwrap_or(0.0),
        )
    }
}

/// Runs the Figure 17/18/20/22 comparison on one dataset.
pub fn speedup_row(eval: &DatasetEval, grow: &GrowConfig, gcnax: &GcnaxEngine) -> SpeedupRow {
    let engine = GrowEngine::new(*grow);
    SpeedupRow {
        dataset: eval.key.name(),
        gcnax: gcnax.run(&eval.base),
        grow_no_gp: engine.run(&eval.base),
        grow_gp: engine.run(&eval.partitioned),
    }
}

/// The Figure 19 ablation: DRAM traffic of GROW without HDN caching,
/// with HDN caching (no G.P.), and with HDN caching + G.P.
#[derive(Debug, Clone, Copy)]
pub struct TrafficAblation {
    /// DRAM bytes without HDN caching.
    pub no_cache: u64,
    /// DRAM bytes with HDN caching, no partitioning.
    pub cache: u64,
    /// DRAM bytes with HDN caching and partitioning.
    pub cache_gp: u64,
}

/// Runs the Figure 19 traffic ablation on one dataset.
pub fn traffic_ablation(eval: &DatasetEval, base_config: &GrowConfig) -> TrafficAblation {
    let no_cache_cfg = GrowConfig {
        hdn_caching: false,
        ..*base_config
    };
    TrafficAblation {
        no_cache: GrowEngine::new(no_cache_cfg).run(&eval.base).dram_bytes(),
        cache: GrowEngine::new(*base_config).run(&eval.base).dram_bytes(),
        cache_gp: GrowEngine::new(*base_config)
            .run(&eval.partitioned)
            .dram_bytes(),
    }
}

/// The Figure 21 cumulative ablation: speedup over GCNAX when applying
/// GROW's three mechanisms one by one.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupAblation {
    /// Row-stationary dataflow + HDN cache only (runahead degree 1, no
    /// partitioning).
    pub hdn_only: f64,
    /// Plus runahead execution (default degree, no partitioning).
    pub plus_runahead: f64,
    /// Plus graph partitioning (the full GROW).
    pub plus_partitioning: f64,
}

/// Runs the Figure 21 ablation on one dataset.
pub fn speedup_ablation(eval: &DatasetEval, config: &GrowConfig) -> SpeedupAblation {
    let gcnax = GcnaxEngine::default().run(&eval.base).total_cycles() as f64;
    let hdn_only_cfg = GrowConfig {
        runahead: 1,
        ..*config
    };
    let hdn_only = GrowEngine::new(hdn_only_cfg).run(&eval.base).total_cycles() as f64;
    let runahead = GrowEngine::new(*config).run(&eval.base).total_cycles() as f64;
    let full = GrowEngine::new(*config)
        .run(&eval.partitioned)
        .total_cycles() as f64;
    SpeedupAblation {
        hdn_only: gcnax / hdn_only,
        plus_runahead: gcnax / runahead,
        plus_partitioning: gcnax / full,
    }
}

/// Runahead-degree sweep (Figure 25(a)): cycles at each degree, on the
/// partitioned workload.
pub fn runahead_sweep(eval: &DatasetEval, degrees: &[usize]) -> Vec<(usize, u64)> {
    degrees
        .iter()
        .map(|&d| {
            let cfg = GrowConfig {
                runahead: d,
                ldn_entries: d.max(1),
                ..GrowConfig::default()
            };
            (
                d,
                GrowEngine::new(cfg).run(&eval.partitioned).total_cycles(),
            )
        })
        .collect()
}

/// One point of the Figure 25(b) bandwidth sweep.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthPoint {
    /// Memory bandwidth in GB/s.
    pub gbps: f64,
    /// GROW cycles (with G.P.).
    pub grow_cycles: u64,
    /// GCNAX cycles.
    pub gcnax_cycles: u64,
}

/// Memory-bandwidth sweep (Figure 25(b)).
pub fn bandwidth_sweep(eval: &DatasetEval, gbps: &[f64]) -> Vec<BandwidthPoint> {
    gbps.iter()
        .map(|&bw| {
            let dram = DramConfig::with_bandwidth_gbps(bw);
            let grow = GrowEngine::new(GrowConfig {
                dram,
                ..GrowConfig::default()
            });
            let gcnax = GcnaxEngine::new(crate::GcnaxConfig {
                dram,
                ..Default::default()
            });
            BandwidthPoint {
                gbps: bw,
                grow_cycles: grow.run(&eval.partitioned).total_cycles(),
                gcnax_cycles: gcnax.run(&eval.base).total_cycles(),
            }
        })
        .collect()
}

/// The Figure 26 comparison: all four engines on one dataset.
#[derive(Debug, Clone)]
pub struct SpSpComparison {
    /// GCNAX report.
    pub gcnax: RunReport,
    /// MatRaptor report.
    pub matraptor: RunReport,
    /// GAMMA report.
    pub gamma: RunReport,
    /// GROW (with G.P.) report.
    pub grow: RunReport,
}

/// Runs the Figure 26 comparison on one dataset.
pub fn spsp_comparison(eval: &DatasetEval) -> SpSpComparison {
    SpSpComparison {
        gcnax: GcnaxEngine::default().run(&eval.base),
        matraptor: MatRaptorEngine::default().run(&eval.base),
        gamma: GammaEngine::default().run(&eval.base),
        grow: GrowEngine::default().run(&eval.partitioned),
    }
}

/// PE-count scaling (Figure 24) from the partitioned GROW run's cluster
/// profiles, with bandwidth proportional to the PE count.
pub fn pe_scaling(eval: &DatasetEval, pe_counts: &[usize]) -> Vec<multi_pe::ScalingPoint> {
    let report = GrowEngine::default().run(&eval.partitioned);
    let profiles = report.cluster_profiles();
    multi_pe::scaling_curve(
        &profiles,
        pe_counts,
        GrowConfig::default().dram.bytes_per_cycle,
    )
}

/// One point of the extended Figure 24 study: a scheduler × PE-count cell
/// of the multi-PE fluid model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerPoint {
    /// Canonical scheduler name (`rr`, `lpt`, `ws`, `ca`).
    pub scheduler: &'static str,
    /// PE count of this cell.
    pub pes: usize,
    /// Multi-PE makespan in cycles.
    pub makespan: f64,
    /// Load-imbalance ratio (busiest PE / mean busy time).
    pub imbalance: f64,
    /// Makespan speedup relative to round-robin at the same PE count
    /// (1.0 for the `rr` rows themselves).
    pub speedup_vs_rr: f64,
}

/// Runs every scheduler across `pe_counts` over one set of cluster
/// profiles — the scheduler axis of the `figure24` experiment and the
/// scheduler-comparison bench.
pub fn scheduler_comparison(
    profiles: &[ClusterProfile],
    pe_counts: &[usize],
    per_pe_bytes_per_cycle: f64,
) -> Vec<SchedulerPoint> {
    let mut out = Vec::new();
    for &pes in pe_counts {
        // RoundRobin is first in `ALL`, so the baseline falls out of the
        // same loop — no duplicate simulation.
        let mut rr_makespan = f64::NAN;
        for kind in SchedulerKind::ALL {
            let run = multi_pe::simulate_with(profiles, pes, per_pe_bytes_per_cycle, kind);
            if kind == SchedulerKind::RoundRobin {
                rr_makespan = run.makespan;
            }
            out.push(SchedulerPoint {
                scheduler: kind.name(),
                pes,
                makespan: run.makespan,
                imbalance: run.imbalance(),
                speedup_vs_rr: if run.makespan > 0.0 {
                    rr_makespan / run.makespan
                } else {
                    1.0
                },
            });
        }
    }
    out
}

/// The pinned-vs-LRU replacement study of the Section VIII discussion.
#[derive(Debug, Clone, Copy)]
pub struct ReplacementStudy {
    /// Cycles with the paper's pinned HDN policy.
    pub pinned_cycles: u64,
    /// Cycles with demand-filled LRU replacement.
    pub lru_cycles: u64,
    /// Hit rates of the two policies.
    pub pinned_hit_rate: f64,
    /// See [`ReplacementStudy::pinned_hit_rate`].
    pub lru_hit_rate: f64,
}

/// Runs the replacement-policy study on one dataset.
pub fn replacement_study(eval: &DatasetEval) -> ReplacementStudy {
    let pinned = GrowEngine::default().run(&eval.partitioned);
    let lru_cfg = GrowConfig {
        replacement: ReplacementPolicy::Lru,
        ..GrowConfig::default()
    };
    let lru = GrowEngine::new(lru_cfg).run(&eval.partitioned);
    ReplacementStudy {
        pinned_cycles: pinned.total_cycles(),
        lru_cycles: lru.total_cycles(),
        pinned_hit_rate: pinned.aggregation_cache().hit_rate().unwrap_or(0.0),
        lru_hit_rate: lru.aggregation_cache().hit_rate().unwrap_or(0.0),
    }
}

/// The Section VIII non-power-law study: GROW vs GCNAX on a uniform
/// (Erdős–Rényi-like) graph, where HDN caching has no skew to exploit.
#[derive(Debug, Clone, Copy)]
pub struct NonPowerLawStudy {
    /// GROW cycles (with partitioning).
    pub grow_cycles: u64,
    /// GCNAX cycles.
    pub gcnax_cycles: u64,
    /// GROW's HDN hit rate on the uniform graph.
    pub hit_rate: f64,
    /// GROW speedup over GCNAX.
    pub speedup: f64,
}

/// Runs the non-power-law discussion experiment on a `2^scale`-node
/// uniform R-MAT graph with Pubmed-like feature dimensions.
///
/// Section VIII predicts "the effectiveness of GROW's HDN caching will be
/// reduced for non-power-law graphs" but expects row-stationary dataflow
/// plus runahead "to better hide latency than GCNAX, maintaining its
/// superiority".
pub fn non_power_law_study(scale: u32, avg_degree: f64, seed: u64) -> NonPowerLawStudy {
    use grow_graph::RmatGraphSpec;
    let graph = RmatGraphSpec::uniform(scale, avg_degree).generate(seed);
    let mut spec = DatasetKey::Pubmed.spec().scaled_to(graph.nodes());
    spec.avg_degree = avg_degree;
    let workload = grow_model::GcnWorkload::with_graph(&spec, graph, seed);
    let base = prepare(&workload, PartitionStrategy::None, 4096);
    let partitioned = prepare(
        &workload,
        PartitionStrategy::Multilevel {
            cluster_nodes: (workload.graph.nodes() / 8).max(64),
        },
        4096,
    );
    let grow = GrowEngine::default().run(&partitioned);
    let gcnax = GcnaxEngine::default().run(&base);
    NonPowerLawStudy {
        grow_cycles: grow.total_cycles(),
        gcnax_cycles: gcnax.total_cycles(),
        hit_rate: grow.aggregation_cache().hit_rate().unwrap_or(0.0),
        speedup: gcnax.total_cycles() as f64 / grow.total_cycles() as f64,
    }
}

/// Wall-clock cost of the one-time software preprocessing (Section V-C:
/// "tens of milliseconds to several tens of minutes depending on the
/// number of graph nodes").
pub fn preprocessing_cost(workload: &GcnWorkload) -> std::time::Duration {
    let start = std::time::Instant::now();
    let _ = prepare(workload, PartitionStrategy::multilevel_default(), 4096);
    start.elapsed()
}

/// Geometric mean (the paper's "average" for ratios).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for v in values {
        log_sum += v.max(f64::MIN_POSITIVE).ln();
        count += 1;
    }
    if count == 0 {
        return 0.0;
    }
    (log_sum / count as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_eval() -> DatasetEval {
        DatasetEval::from_spec(DatasetKey::Pubmed.spec().scaled_to(1500), 7)
    }

    #[test]
    fn speedup_row_shows_grow_winning() {
        // Paper regime: XW must exceed GCNAX's 512 KB dense buffer
        // (n * 16 * 8 B > 512 KB => n > 4096) and the adjacency must be
        // tile-sparse; tiny resident workloads legitimately favor GCNAX.
        let mut spec = DatasetKey::Pubmed.spec().scaled_to(6000);
        spec.avg_degree = 4.0;
        let eval = DatasetEval::from_spec(spec, 7);
        let row = speedup_row(&eval, &GrowConfig::default(), &GcnaxEngine::default());
        assert!(row.speedup_gp() > 1.0, "speedup {}", row.speedup_gp());
        let (no_gp, gp) = row.hit_rates();
        assert!(gp >= no_gp * 0.8, "partitioning hit rate {gp} vs {no_gp}");
    }

    #[test]
    fn traffic_ablation_is_monotone() {
        // Figure 19: caching reduces traffic, partitioning reduces it more
        // (on community-structured graphs).
        let eval = small_eval();
        let t = traffic_ablation(&eval, &GrowConfig::default());
        assert!(t.no_cache > t.cache, "{t:?}");
        assert!(t.cache >= t.cache_gp, "{t:?}");
    }

    #[test]
    fn ablation_steps_improve() {
        let eval = small_eval();
        let a = speedup_ablation(&eval, &GrowConfig::default());
        assert!(a.plus_runahead >= a.hdn_only * 0.95, "{a:?}");
        assert!(a.plus_partitioning >= a.plus_runahead * 0.9, "{a:?}");
    }

    #[test]
    fn bandwidth_sweep_monotone_for_gcnax() {
        // Figure 25(b): GCNAX is highly bandwidth-sensitive.
        let eval = small_eval();
        let pts = bandwidth_sweep(&eval, &[16.0, 64.0, 256.0]);
        assert!(pts[0].gcnax_cycles > pts[1].gcnax_cycles);
        assert!(pts[1].gcnax_cycles >= pts[2].gcnax_cycles);
    }

    #[test]
    fn spsp_comparison_ranks_engines() {
        // Figure 26: GROW > GAMMA > MatRaptor. At this toy scale both
        // sparse-sparse engines can be compute-bound (cycle tie), but the
        // fiber cache must still strictly separate their traffic.
        let eval = small_eval();
        let c = spsp_comparison(&eval);
        assert!(c.grow.total_cycles() < c.gamma.total_cycles());
        assert!(c.gamma.total_cycles() <= c.matraptor.total_cycles());
        assert!(c.gamma.dram_bytes() < c.matraptor.dram_bytes());
        assert!(c.grow.dram_bytes() < c.gamma.dram_bytes());
    }

    #[test]
    fn pe_scaling_improves_throughput() {
        // Use fine-grained clusters so the small test workload actually has
        // parallelism to distribute (the default 4096-node clusters leave a
        // 2500-node graph as a single cluster).
        let workload = DatasetKey::Pubmed.spec().scaled_to(2500).instantiate(7);
        let base = crate::prepare(&workload, crate::PartitionStrategy::None, 4096);
        let partitioned = crate::prepare(
            &workload,
            crate::PartitionStrategy::Multilevel { cluster_nodes: 200 },
            4096,
        );
        let eval = DatasetEval {
            key: DatasetKey::Pubmed,
            workload,
            base,
            partitioned,
        };
        let curve = pe_scaling(&eval, &[1, 4, 16]);
        assert!((curve[0].normalized_throughput - 1.0).abs() < 1e-9);
        assert!(curve[1].normalized_throughput > 2.0, "{curve:?}");
        assert!(
            curve[2].normalized_throughput > curve[1].normalized_throughput,
            "{curve:?}"
        );
    }

    #[test]
    fn scheduler_comparison_covers_the_grid() {
        let profiles = crate::schedule::power_law_profiles(96, 5);
        let points = scheduler_comparison(&profiles, &[2, 8], 4.0);
        assert_eq!(points.len(), 8, "4 schedulers x 2 PE counts");
        for p in &points {
            assert!(p.makespan > 0.0 && p.imbalance >= 1.0, "{p:?}");
            if p.scheduler == "rr" {
                assert!((p.speedup_vs_rr - 1.0).abs() < 1e-12, "{p:?}");
            }
            if p.scheduler == "ws" {
                assert!(p.speedup_vs_rr >= 1.0 - 1e-9, "ws never slower: {p:?}");
            }
        }
    }

    #[test]
    fn non_power_law_hit_rate_is_depressed() {
        // Section VIII: without a heavy tail there is little for the HDN
        // cache to pin; the hit rate must fall well below the power-law
        // case, yet GROW should not collapse against GCNAX.
        // 2^13 nodes so the HDN cache (4096 rows at f_out = 16) cannot
        // simply pin the whole graph.
        let uniform = non_power_law_study(13, 8.0, 5);
        let power_law = {
            let eval = small_eval();
            let row = speedup_row(&eval, &GrowConfig::default(), &GcnaxEngine::default());
            row.hit_rates().1
        };
        assert!(
            uniform.hit_rate < power_law,
            "uniform {} vs power-law {power_law}",
            uniform.hit_rate
        );
        assert!(
            uniform.speedup > 0.5,
            "GROW should stay competitive: {uniform:?}"
        );
    }

    #[test]
    fn preprocessing_cost_is_measurable() {
        let w = DatasetKey::Pubmed.spec().scaled_to(1000).instantiate(3);
        let d = preprocessing_cost(&w);
        assert!(d.as_nanos() > 0);
        assert!(
            d.as_secs() < 60,
            "preprocessing should be fast at this scale"
        );
    }

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn replacement_study_reports_both_policies() {
        let eval = small_eval();
        let s = replacement_study(&eval);
        assert!(s.pinned_cycles > 0 && s.lru_cycles > 0);
        assert!(s.pinned_hit_rate > 0.0);
    }
}
