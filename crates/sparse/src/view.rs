use std::ops::Range;

use crate::CsrPattern;

/// A borrowed, row-major view of a sparse operand's structure.
///
/// The cycle-level simulators only need to *walk* the non-zero column
/// indices of each LHS row. Several Table I feature matrices are 100% dense
/// (Reddit, Yelp) — materializing a `CsrPattern` for a dense 90k x 300
/// matrix would waste hundreds of megabytes, so engines accept this view,
/// which synthesizes dense rows on the fly.
///
/// ```
/// use grow_sparse::RowMajorSparse;
///
/// let view = RowMajorSparse::Dense { rows: 2, cols: 3 };
/// let cols: Vec<u32> = view.row_iter(1).collect();
/// assert_eq!(cols, vec![0, 1, 2]);
/// assert_eq!(view.nnz(), 6);
/// ```
#[derive(Debug, Clone, Copy)]
pub enum RowMajorSparse<'a> {
    /// A genuinely sparse operand backed by a CSR pattern.
    Pattern(&'a CsrPattern),
    /// A fully dense operand of the given shape; every column of every row
    /// is a non-zero.
    Dense {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
}

impl<'a> RowMajorSparse<'a> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            RowMajorSparse::Pattern(p) => p.rows(),
            RowMajorSparse::Dense { rows, .. } => *rows,
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            RowMajorSparse::Pattern(p) => p.cols(),
            RowMajorSparse::Dense { cols, .. } => *cols,
        }
    }

    /// Total number of non-zero positions.
    pub fn nnz(&self) -> usize {
        match self {
            RowMajorSparse::Pattern(p) => p.nnz(),
            RowMajorSparse::Dense { rows, cols } => rows * cols,
        }
    }

    /// Number of non-zeros in row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_nnz(&self, row: usize) -> usize {
        match self {
            RowMajorSparse::Pattern(p) => p.row_nnz(row),
            RowMajorSparse::Dense { rows, cols } => {
                assert!(row < *rows, "row {row} out of bounds");
                *cols
            }
        }
    }

    /// Iterates over the non-zero column indices of row `row`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_iter(&self, row: usize) -> SparseRowIter<'a> {
        match self {
            RowMajorSparse::Pattern(p) => SparseRowIter::Slice(p.row_indices(row).iter()),
            RowMajorSparse::Dense { rows, cols } => {
                assert!(row < *rows, "row {row} out of bounds");
                SparseRowIter::Range(0..*cols as u32)
            }
        }
    }

    /// Fraction of non-zero positions, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        match self {
            RowMajorSparse::Pattern(p) => p.density(),
            RowMajorSparse::Dense { rows, cols } => {
                if *rows == 0 || *cols == 0 {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }
}

impl<'a> From<&'a CsrPattern> for RowMajorSparse<'a> {
    fn from(p: &'a CsrPattern) -> Self {
        RowMajorSparse::Pattern(p)
    }
}

/// Iterator over the non-zero column indices of one row of a
/// [`RowMajorSparse`] view.
#[derive(Debug, Clone)]
pub enum SparseRowIter<'a> {
    /// Backed by a CSR index slice.
    Slice(std::slice::Iter<'a, u32>),
    /// Backed by a synthetic dense range.
    Range(Range<u32>),
}

impl Iterator for SparseRowIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            SparseRowIter::Slice(it) => it.next().copied(),
            SparseRowIter::Range(r) => r.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SparseRowIter::Slice(it) => it.size_hint(),
            SparseRowIter::Range(r) => r.size_hint(),
        }
    }
}

impl ExactSizeIterator for SparseRowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn pattern_view_iterates_rows() {
        let mut coo = CooMatrix::new(2, 4);
        coo.extend([(0, 1, 1.0), (0, 3, 1.0)]);
        let csr = coo.to_csr();
        let view = RowMajorSparse::from(csr.pattern());
        assert_eq!(view.row_iter(0).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(view.row_iter(1).count(), 0);
        assert_eq!(view.nnz(), 2);
    }

    #[test]
    fn dense_view_synthesizes_full_rows() {
        let view = RowMajorSparse::Dense { rows: 3, cols: 2 };
        assert_eq!(view.row_nnz(2), 2);
        assert_eq!(view.density(), 1.0);
        assert_eq!(view.row_iter(0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn dense_view_bounds_checked() {
        RowMajorSparse::Dense { rows: 1, cols: 1 }.row_iter(1);
    }

    #[test]
    fn empty_dense_view_density_is_zero() {
        assert_eq!(RowMajorSparse::Dense { rows: 0, cols: 5 }.density(), 0.0);
    }
}
