//! Cross-crate integration tests: dataset generation -> partitioning ->
//! all four accelerator models, checking the paper's headline invariants.

use grow::accel::{
    prepare, Accelerator, GammaEngine, GcnaxEngine, GrowConfig, GrowEngine, MatRaptorEngine,
    PartitionStrategy,
};
use grow::model::DatasetKey;
use grow::sim::TrafficClass;

fn workload(nodes: usize) -> grow::model::GcnWorkload {
    DatasetKey::Pubmed.spec().scaled_to(nodes).instantiate(2024)
}

#[test]
fn all_engines_execute_identical_mac_work() {
    // Section VI: engines are configured for iso-computation; the paper's
    // comparison is purely about data movement. Every engine must report
    // exactly (nnz(X_l) + nnz(A)) * f_out MACs per layer.
    let w = workload(1200);
    let base = prepare(&w, PartitionStrategy::None, 4096);
    let expected: u64 = base
        .layers
        .iter()
        .map(|l| (l.x.nnz() as u64 + base.adjacency.nnz() as u64) * l.f_out as u64)
        .sum();
    let engines: Vec<Box<dyn Accelerator>> = vec![
        Box::new(GrowEngine::default()),
        Box::new(GcnaxEngine::default()),
        Box::new(MatRaptorEngine::default()),
        Box::new(GammaEngine::default()),
    ];
    for engine in engines {
        let report = engine.run(&base);
        assert_eq!(report.mac_ops(), expected, "{} MAC count", engine.name());
    }
}

#[test]
fn traffic_ordering_matches_paper() {
    // Figures 18 and 26: GROW < GCNAX and GROW << MatRaptor on DRAM bytes;
    // GAMMA sits between GROW and MatRaptor. The workload must be in the
    // paper's regime: XW larger than GCNAX's dense buffer (so it is not
    // resident) and an adjacency sparse enough that 2D tiles are mostly
    // empty — node-scaled surrogates are denser than the originals, so use
    // a low-degree 8000-node graph.
    let mut spec = DatasetKey::Pubmed.spec().scaled_to(8000);
    spec.avg_degree = 4.0;
    let w = spec.instantiate(2024);
    let base = prepare(&w, PartitionStrategy::None, 4096);
    let partitioned = prepare(
        &w,
        PartitionStrategy::Multilevel {
            cluster_nodes: 1000,
        },
        4096,
    );
    let grow = GrowEngine::default().run(&partitioned).dram_bytes();
    let gcnax = GcnaxEngine::default().run(&base).dram_bytes();
    let gamma = GammaEngine::default().run(&base).dram_bytes();
    let matraptor = MatRaptorEngine::default().run(&base).dram_bytes();
    assert!(grow < gcnax, "GROW {grow} vs GCNAX {gcnax}");
    assert!(grow < gamma, "GROW {grow} vs GAMMA {gamma}");
    assert!(gamma < matraptor, "GAMMA {gamma} vs MatRaptor {matraptor}");
}

#[test]
fn speedup_ordering_matches_paper() {
    // Same paper-regime workload as the traffic test: XW not resident in
    // GCNAX's buffer and a paper-like tile sparsity.
    let mut spec = DatasetKey::Pubmed.spec().scaled_to(8000);
    spec.avg_degree = 4.0;
    let w = spec.instantiate(2024);
    let base = prepare(&w, PartitionStrategy::None, 4096);
    let partitioned = prepare(
        &w,
        PartitionStrategy::Multilevel {
            cluster_nodes: 1000,
        },
        4096,
    );
    let grow = GrowEngine::default().run(&partitioned).total_cycles();
    let gcnax = GcnaxEngine::default().run(&base).total_cycles();
    let matraptor = MatRaptorEngine::default().run(&base).total_cycles();
    assert!(grow < gcnax, "GROW {grow} vs GCNAX {gcnax}");
    assert!(grow < matraptor, "GROW {grow} vs MatRaptor {matraptor}");
}

#[test]
fn useful_bytes_never_exceed_fetched() {
    // Traffic conservation: granularity rounding and metadata can only add
    // bytes, never remove them.
    let w = workload(900);
    let base = prepare(&w, PartitionStrategy::None, 4096);
    for engine in [
        &GrowEngine::default() as &dyn Accelerator,
        &GcnaxEngine::default(),
    ] {
        let t = engine.run(&base).total_traffic();
        for class in TrafficClass::ALL {
            assert!(
                t.useful_bytes(class) <= t.fetched_bytes(class),
                "{} class {}",
                engine.name(),
                class.label()
            );
        }
    }
}

#[test]
fn grow_probe_count_equals_adjacency_nnz_per_layer() {
    let w = workload(800);
    let partitioned = prepare(&w, PartitionStrategy::multilevel_default(), 4096);
    let r = GrowEngine::default().run(&partitioned);
    let c = r.aggregation_cache();
    assert_eq!(c.hits + c.misses, 2 * partitioned.adjacency.nnz() as u64);
}

#[test]
fn partitioning_never_hurts_hit_rate_much_and_usually_helps() {
    let w = workload(3000);
    let base = prepare(&w, PartitionStrategy::None, 4096);
    // Cluster size must be below the graph size for partitioning to exist
    // (the default 4096-node clusters would leave this graph whole).
    let partitioned = prepare(
        &w,
        PartitionStrategy::Multilevel { cluster_nodes: 500 },
        4096,
    );
    // Force a small cache so the global top-N cannot cover the graph.
    let cfg = GrowConfig {
        hdn_cache_bytes: 16 * 1024,
        ..GrowConfig::default()
    };
    let engine = GrowEngine::new(cfg);
    let without = engine.run(&base).aggregation_cache().hit_rate().unwrap();
    let with = engine
        .run(&partitioned)
        .aggregation_cache()
        .hit_rate()
        .unwrap();
    assert!(
        with > without,
        "partitioning should raise the constrained-cache hit rate: {without} -> {with}"
    );
}

#[test]
fn label_propagation_strategy_also_works() {
    let w = workload(1500);
    let lp = prepare(
        &w,
        PartitionStrategy::LabelPropagation { cluster_nodes: 300 },
        4096,
    );
    assert!(lp.clusters.len() >= 2);
    let r = GrowEngine::default().run(&lp);
    assert!(r.total_cycles() > 0);
}

#[test]
fn output_write_traffic_is_identical_for_dense_writers() {
    // GROW and GCNAX both write the dense output matrix once per phase.
    let w = workload(700);
    let base = prepare(&w, PartitionStrategy::None, 4096);
    let grow = GrowEngine::default().run(&base).total_traffic();
    let gcnax = GcnaxEngine::default().run(&base).total_traffic();
    assert_eq!(
        grow.useful_bytes(TrafficClass::Output),
        gcnax.useful_bytes(TrafficClass::Output)
    );
}
