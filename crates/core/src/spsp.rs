//! Shared model of the row-wise-product sparse-*sparse* GEMM accelerators
//! (MatRaptor and GAMMA, compared against GROW in Section VII-H).
//!
//! Both use Gustavson's algorithm like GROW, but as generic sparse-sparse
//! engines they differ in exactly the three ways the paper identifies:
//!
//! 1. the RHS matrix is CSR-compressed, adding index metadata to every RHS
//!    row fetch ("additional indexing overheads as well as more memory
//!    traffic to fetch metadata associated with CSR");
//! 2. partial-sum merging hardware occupies the pipeline for every
//!    contribution ("a complicated and costly partial-sum merging process,
//!    which is entirely redundant for SpDeGEMM");
//! 3. caching: MatRaptor has none; GAMMA has a demand-filled LRU
//!    fiber cache "not optimized for the power-law distribution of graphs"
//!    (flushed at cluster boundaries, like every other per-cluster state).
//!
//! Like the other engines, the row walk runs cluster by cluster through
//! the shared [`pipeline`](crate::pipeline) harness, in parallel across
//! clusters — and, within a cluster, as a plan/replay pair through
//! [`plan`]: the pure row-accounting pass (per-row non-zero and hit
//! counts) is produced ahead of the cycle-accurate replay. Three plan
//! flavors exist: the cacheless walk (every non-zero misses) is a pure
//! per-range pass that shards and runs in parallel; a fiber cache big
//! enough to never evict collapses LRU to first-touch (a [`plan::StampSet`]
//! walk, still sequential but list-free); a genuinely evicting LRU walk
//! stays sequential on one producer thread. All three overlap with replay.

use std::ops::Range;
use std::sync::OnceLock;

use grow_sim::{
    CacheStats, DramConfig, FaultPlan, LruRowCache, ScratchArena, TrafficClass, INDEX_BYTES,
};
use grow_sparse::RowMajorSparse;

use crate::exec_model::ExecModel;
use crate::pipeline::{self, PhaseCtx};
use crate::plan::{self, PlanBuffer, ShardRows, ShardSpec};
use crate::{LayerReport, PhaseKind, PhaseReport, PreparedWorkload, RunReport};

/// Per-worker scratch of the sparse-sparse cluster path: the fiber cache
/// (and its no-eviction first-touch shortcut), recycled through a
/// [`ScratchArena`] and epoch-reset at every cluster boundary (the flush
/// the module docs describe) instead of reallocated.
#[derive(Debug, Default)]
struct SpSpScratch {
    cache: LruRowCache,
    stamp: plan::StampSet,
}

/// Bytes per element of a CSR-compressed row: value + column index.
const CSR_ELEM_BYTES: u64 = 8 + INDEX_BYTES;

/// The plan-pass output of the row walk over a row range: per LHS row its
/// non-zero count and fiber-cache hit count. Everything the replay spends
/// (DRAM fetches, MAC/merge occupancy, SRAM counters, cache statistics)
/// is a function of these two numbers per row, in row order.
#[derive(Debug, Default)]
struct RowCounts {
    /// `(nnz, hits)` per LHS row of the range.
    rows: Vec<(u32, u32)>,
}

impl PlanBuffer for RowCounts {
    fn clear(&mut self) {
        self.rows.clear();
    }
}

impl RowCounts {
    /// Ordered merge of a shard's plan onto this one.
    fn absorb(&mut self, shard: &RowCounts) {
        self.rows.extend_from_slice(&shard.rows);
    }
}

/// A row plan retained across layers (the aggregation LHS — the adjacency
/// — is layer-invariant). Tagged with the cache mode it was planned
/// under: hit counts are only reusable while the mode matches (a
/// first-touch plan is wrong for a cacheless layer and vice versa).
#[derive(Debug)]
struct CachedRows {
    with_cache: bool,
    plan: RowCounts,
}

/// Parameters of a row-wise sparse-sparse engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SpSpParams {
    pub name: &'static str,
    pub mac_lanes: usize,
    pub dram: DramConfig,
    /// Fiber-cache capacity in bytes (0 = no cache, i.e. MatRaptor).
    pub fiber_cache_bytes: u64,
    /// Merge occupancy per scalar x vector contribution, as a multiple of
    /// the MAC occupancy (MatRaptor's sorting queues ~1.0; GAMMA's
    /// high-radix pipelined merger ~0.5).
    pub merge_factor: f64,
    /// Total on-chip SRAM in KB (for energy accounting).
    pub sram_kb: f64,
    /// Intra-cluster sharding of the row-accounting plan pass (the
    /// uniform `shard_rows=` override). Bit-identical at any setting.
    pub shard_rows: ShardRows,
    /// Multi-PE projection (Figure 24): PE count and cluster scheduler.
    pub multi_pe: crate::schedule::MultiPeConfig,
    /// Deterministic fault-injection plan (the uniform `fault=` override;
    /// off by default).
    pub fault: FaultPlan,
}

pub(crate) fn run_spsp(params: &SpSpParams, workload: &PreparedWorkload) -> RunReport {
    let adjacency = RowMajorSparse::Pattern(&workload.adjacency);
    // One scratch pool per run: fiber caches are epoch-reset between
    // clusters and layers, never reallocated; row plans are recycled.
    let scratch: ScratchArena<SpSpScratch> = ScratchArena::new();
    let plan_pool: ScratchArena<RowCounts> = ScratchArena::new();
    let spec = params.shard_rows.spec(workload);
    // The aggregation row plan is a function of the layer-invariant
    // adjacency (when the cache mode carries over — see `CachedRows`):
    // count it once at the first layer, replay it at later ones (small
    // workloads only; see `PLAN_REUSE_MAX_OPS`). The combination LHS
    // changes per layer, so no retention there.
    // Inside a serving session pool the slots come from the cross-job
    // plan cache instead (keyed per engine family; the `CachedRows` mode
    // tag still guards cache-mode mismatches at replay time).
    let plan_gate =
        workload.adjacency.nnz() + 2 * workload.adjacency.rows() <= plan::PLAN_REUSE_MAX_OPS;
    // Fault-injected runs stay off the shared cache (see the grow
    // engine): injection counts must not depend on fleet warm state.
    let shared_plans = match &workload.plan_cache {
        Some(scope) if plan_gate && params.fault.is_off() => {
            Some(scope.slots::<CachedRows>(params.name, workload.clusters.len()))
        }
        _ => None,
    };
    let local_plans: Option<Vec<OnceLock<CachedRows>>> =
        (shared_plans.is_none() && plan_gate && workload.layers.len() > 1).then(|| {
            (0..workload.clusters.len())
                .map(|_| OnceLock::new())
                .collect()
        });
    let agg_store: Option<&[OnceLock<CachedRows>]> = shared_plans
        .as_deref()
        .map(Vec::as_slice)
        .or(local_plans.as_deref());
    let model = ExecModel::with_dram(params.multi_pe, params.dram);
    let mut report =
        pipeline::run_layers(params.name, workload, params.fault, |layer| LayerReport {
            combination: run_phase(
                params,
                &model,
                PhaseKind::Combination,
                &layer.x.view(),
                layer.f_out,
                &workload.clusters,
                &scratch,
                &plan_pool,
                spec,
                None,
            ),
            aggregation: run_phase(
                params,
                &model,
                PhaseKind::Aggregation,
                &adjacency,
                layer.f_out,
                &workload.clusters,
                &scratch,
                &plan_pool,
                spec,
                agg_store,
            ),
        });
    model.finalize(&mut report);
    report
}

/// One SpDeGEMM phase executed as if both operands were sparse.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    params: &SpSpParams,
    model: &ExecModel,
    kind: PhaseKind,
    lhs: &RowMajorSparse<'_>,
    f: usize,
    clusters: &[Range<usize>],
    scratch: &ScratchArena<SpSpScratch>,
    plan_pool: &ScratchArena<RowCounts>,
    spec: ShardSpec,
    store: Option<&[OnceLock<CachedRows>]>,
) -> PhaseReport {
    pipeline::run_clusters_scratched(model, kind, clusters, scratch, |s, ci, cluster| {
        let cell = store.map(|st| &st[ci]);
        run_rows(params, kind, lhs, f, cluster, s, spec, plan_pool, cell)
    })
}

/// Simulates one cluster's rows in an isolated context.
#[allow(clippy::too_many_arguments)]
fn run_rows(
    params: &SpSpParams,
    kind: PhaseKind,
    lhs: &RowMajorSparse<'_>,
    f: usize,
    rows: Range<usize>,
    scratch: &mut SpSpScratch,
    spec: ShardSpec,
    plan_pool: &ScratchArena<RowCounts>,
    cell: Option<&OnceLock<CachedRows>>,
) -> PhaseReport {
    let mut ctx = PhaseCtx::new(kind, params.dram, params.mac_lanes);

    // The RHS (dense in reality) is stored and fetched as CSR by these
    // engines: f elements of 12 bytes per row.
    let rhs_row_bytes = f as u64 * CSR_ELEM_BYTES;
    let cache_rows = (params.fiber_cache_bytes / rhs_row_bytes) as usize;
    let merge_cycles =
        ((f as f64 * params.merge_factor).ceil() as u64).div_ceil(params.mac_lanes as u64);

    let rhs_class = match kind {
        PhaseKind::Combination => TrafficClass::Weights,
        PhaseKind::Aggregation => TrafficClass::RhsRows,
    };

    let row_count = rows.len() as u64;
    let mut lhs_burst = 0u64;
    match *lhs {
        RowMajorSparse::Dense { cols, .. } => {
            // Dense LHS rows touch RHS rows 0..cols sequentially. Under LRU
            // a cyclic sequential scan either fits entirely (all hits after
            // the first row) or thrashes (all misses) — handled in bulk.
            let fits = cache_rows >= cols;
            for (i, _row) in rows.clone().enumerate() {
                let nnz = cols as u64;
                lhs_burst += nnz * CSR_ELEM_BYTES + INDEX_BYTES;
                let (hits, misses) = if cache_rows == 0 || !fits || i == 0 {
                    (0, nnz)
                } else {
                    (nnz, 0)
                };
                record_row(
                    &mut ctx,
                    rhs_class,
                    f,
                    rhs_row_bytes,
                    merge_cycles,
                    hits,
                    misses,
                );
            }
            if row_count > 0 {
                if cache_rows > 0 && fits {
                    ctx.report.cache.hits += (row_count - 1) * cols as u64;
                    ctx.report.cache.misses += cols as u64;
                } else {
                    ctx.report.cache.misses += row_count * cols as u64;
                }
            }
        }
        RowMajorSparse::Pattern(p) => {
            let use_cache = cache_rows > 0;
            // A fiber cache big enough for the whole RHS never evicts:
            // recency becomes unobservable and hit/miss collapses to
            // first-touch per cluster.
            let no_evict = use_cache && cache_rows >= lhs.cols();
            // Plans are layer-reusable only when they do not depend on
            // transient LRU state (cacheless or first-touch).
            let pure = !use_cache || no_evict;

            let mut total_contrib = 0u64;
            let mut stats = CacheStats::default();
            // The replay pass: spends each planned row in row order.
            // `read_many` goes through the (f64-accumulating) DRAM channel
            // and must keep its original one-call-per-row sequence; the
            // MAC/merge occupancy is pure u64 accumulation at gate 0, so
            // it is summed here and issued once after the walk.
            let mut replay = |buf: &RowCounts, ctx: &mut PhaseCtx| {
                for &(nnz, hits) in &buf.rows {
                    let nnz = nnz as u64;
                    let hits = hits as u64;
                    let misses = nnz - hits;
                    lhs_burst += nnz * CSR_ELEM_BYTES + INDEX_BYTES;
                    if misses > 0 {
                        ctx.dram.read_many(0, misses, rhs_row_bytes, rhs_class);
                        ctx.report.sram_writes_8b += misses * rhs_row_bytes.div_ceil(8);
                    }
                    if nnz > 0 {
                        ctx.report.sram_reads_8b += nnz * (1 + rhs_row_bytes.div_ceil(8));
                        ctx.report.sram_writes_8b += nnz * f as u64;
                    }
                    total_contrib += nnz;
                    stats.hits += hits;
                    stats.misses += misses;
                }
            };

            let cached = cell
                .and_then(|c| c.get())
                .filter(|c| pure && c.with_cache == use_cache);
            if let Some(cached) = cached {
                replay(&cached.plan, &mut ctx);
            } else {
                let retain = pure && cell.is_some();
                let mut merged = retain.then(RowCounts::default);
                let ranges = plan::shard_ranges(Some(p), rows.clone(), spec, 1);
                let consume = |_range: Range<usize>, buf: &RowCounts| {
                    replay(buf, &mut ctx);
                    if let Some(m) = merged.as_mut() {
                        m.absorb(buf);
                    }
                };
                if !use_cache {
                    // No fiber cache (MatRaptor): every non-zero is a miss
                    // and nothing is probed, so the plan is the per-row
                    // CSR lengths — a pure per-range pass that shards and
                    // runs in parallel ahead of the replay.
                    plan::plan_replay(
                        plan_pool,
                        ranges,
                        |range, buf: &mut RowCounts| {
                            for slice in p.row_slices(range) {
                                buf.rows.push((slice.len() as u32, 0));
                            }
                        },
                        consume,
                    );
                } else if no_evict {
                    // First-touch shortcut: same hit/miss outcome as the
                    // LRU walk, without maintaining the intrusive recency
                    // list. First-touch state spans the cluster, so the
                    // walk is sequential — one producer thread, overlapped
                    // with replay.
                    let stamp = &mut scratch.stamp;
                    stamp.reset(lhs.cols());
                    plan::plan_replay_seq(
                        plan_pool,
                        ranges,
                        move |range, buf: &mut RowCounts| {
                            for slice in p.row_slices(range) {
                                let mut hits = 0u32;
                                for &c in slice {
                                    if !stamp.first_touch(c) {
                                        hits += 1;
                                    }
                                }
                                buf.rows.push((slice.len() as u32, hits));
                            }
                        },
                        consume,
                    );
                } else {
                    // Genuinely evicting LRU: every probe outcome depends
                    // on all prior probes, so the walk stays sequential on
                    // one producer thread (cluster-boundary flush via
                    // epoch reset), overlapped with replay.
                    let cache = &mut scratch.cache;
                    cache.reset(cache_rows, lhs.cols());
                    plan::plan_replay_seq(
                        plan_pool,
                        ranges,
                        move |range, buf: &mut RowCounts| {
                            for slice in p.row_slices(range) {
                                let mut hits = 0u32;
                                for &c in slice {
                                    if cache.probe(c) {
                                        hits += 1;
                                    } else {
                                        cache.insert(c);
                                    }
                                }
                                buf.rows.push((slice.len() as u32, hits));
                            }
                        },
                        consume,
                    );
                }
                if let (Some(cell), Some(merged)) = (cell, merged) {
                    cell.set(CachedRows {
                        with_cache: use_cache,
                        plan: merged,
                    })
                    .ok();
                }
            }

            ctx.mac.scalar_vector_bulk(0, f, total_contrib);
            ctx.mac.occupy(0, merge_cycles * total_contrib);
            if use_cache {
                // Demand insertion fills on every miss, so fills == misses
                // (exactly what `LruRowCache::stats` reports). The
                // cacheless path leaves the report's cache block untouched.
                stats.fills = stats.misses;
                ctx.report.cache.merge(&stats);
            }
        }
    }
    // The LHS CSR stream (C2SR in MatRaptor's terms) is contiguous.
    ctx.dram.read_stream(0, lhs_burst, TrafficClass::LhsSparse);
    ctx.dram.round_burst(lhs_burst, TrafficClass::LhsSparse);
    ctx.report.sram_reads_8b += lhs_burst.div_ceil(8);
    ctx.report.sram_writes_8b += lhs_burst.div_ceil(8);

    // Output written in compressed form (12 B/element) — these engines
    // produce sparse outputs even when the result is dense.
    let out_bytes = row_count * f as u64 * CSR_ELEM_BYTES;
    ctx.dram
        .write(ctx.mac.busy_until(), out_bytes, TrafficClass::Output);
    ctx.report.sram_reads_8b += out_bytes.div_ceil(8);

    let mut report = ctx.finish_cluster();
    report.cycles += params.dram.latency_cycles;
    report
}

/// Accounts one LHS row's worth of RHS fetches, MACs, and merge occupancy.
fn record_row(
    ctx: &mut PhaseCtx,
    rhs_class: TrafficClass,
    f: usize,
    rhs_row_bytes: u64,
    merge_cycles: u64,
    hits: u64,
    misses: u64,
) {
    if misses > 0 {
        ctx.dram.read_many(0, misses, rhs_row_bytes, rhs_class);
        ctx.report.sram_writes_8b += misses * rhs_row_bytes.div_ceil(8);
    }
    let contributions = hits + misses;
    if contributions > 0 {
        ctx.mac.scalar_vector_bulk(0, f, contributions);
        ctx.mac.occupy(0, merge_cycles * contributions);
        ctx.report.sram_reads_8b += contributions * (1 + rhs_row_bytes.div_ceil(8));
        ctx.report.sram_writes_8b += contributions * f as u64;
    }
}

/// Implements [`Accelerator`] for a thin wrapper around [`SpSpParams`].
macro_rules! spsp_engine {
    ($engine:ident, $config:ident) => {
        impl Accelerator for $engine {
            fn name(&self) -> &'static str {
                self.params().name
            }

            fn run(&self, workload: &PreparedWorkload) -> RunReport {
                run_spsp(&self.params(), workload)
            }

            fn sram_kb(&self) -> f64 {
                self.params().sram_kb
            }
        }
    };
}
pub(crate) use spsp_engine;
