//! Pluggable cluster-to-PE scheduling (the Figure 24 multi-PE axis).
//!
//! The fluid multi-PE model in [`crate::multi_pe`] works through a list of
//! per-cluster execution profiles on `pes` processing engines sharing one
//! memory channel. *Which* PE runs *which* cluster used to be hard-coded
//! round-robin; this module turns the assignment into a pluggable policy:
//!
//! * [`RoundRobin`] — the original static interleaving (`cluster i` on
//!   `PE i % pes`), bit-identical to the previous behavior;
//! * [`StaticLpt`] — longest-processing-time bin packing over per-cluster
//!   standalone cycle estimates (the classic 4/3-approximation), in the
//!   spirit of Accel-GCN's degree-sorted workload balancing;
//! * [`WorkStealing`] — event-driven greedy dispatch: whenever a PE
//!   finishes its cluster it pulls the next pending one, with deterministic
//!   tie-breaking by cluster index (lowest pending index first).
//!
//! * [`ContentionAware`] — like work-stealing, but the pending pool is
//!   split into memory-bound and compute-bound clusters and each dispatch
//!   tops up whichever class is under-represented among the clusters in
//!   execution — mixing the classes keeps part of the fleet off the
//!   shared channel at any instant.
//!
//! Schedulers are dispatched by name through [`SchedulerKind`] — the value
//! set of the registry-wide `scheduler=rr|lpt|ws|ca` override — and every
//! engine carries a [`MultiPeConfig`] whose summary lands on the final
//! [`RunReport`](crate::RunReport). Under the default post-hoc execution
//! model scheduling is strictly *post-hoc* over the per-cluster profiles:
//! it can never change modeled work or traffic, only the multi-PE
//! makespan and per-PE utilization (the scheduler-invariance test battery
//! locks this in). Under the end-to-end model
//! ([`crate::exec_model`], `exec=e2e`) the same schedulers run *inside*
//! the execution loop and the resulting makespans are the per-phase cycle
//! counts themselves.

use std::collections::VecDeque;

use grow_sim::MemTopology;

use crate::multi_pe;
use crate::{ClusterProfile, MultiPeSummary, RunReport};

/// Canonical scheduler names, in registry order (`scheduler=` values).
pub const SCHEDULER_NAMES: [&str; 4] = ["rr", "lpt", "ws", "ca"];

/// Which cluster-to-PE scheduling policy the multi-PE model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Static round-robin interleaving (the paper's implicit baseline).
    #[default]
    RoundRobin,
    /// Static longest-processing-time bin packing.
    StaticLpt,
    /// Dynamic work-stealing (greedy event-driven dispatch).
    WorkStealing,
    /// Contention-aware dispatch: interleaves memory-bound and
    /// compute-bound clusters across the PEs.
    ContentionAware,
}

impl SchedulerKind {
    /// Every scheduler, in [`SCHEDULER_NAMES`] order.
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::RoundRobin,
        SchedulerKind::StaticLpt,
        SchedulerKind::WorkStealing,
        SchedulerKind::ContentionAware,
    ];

    /// Parses a (case-insensitive) scheduler name. Accepts the canonical
    /// short names plus their spelled-out aliases.
    pub fn parse(name: &str) -> Option<SchedulerKind> {
        match name.to_ascii_lowercase().as_str() {
            "rr" | "roundrobin" | "round-robin" => Some(SchedulerKind::RoundRobin),
            "lpt" | "static-lpt" | "staticlpt" => Some(SchedulerKind::StaticLpt),
            "ws" | "workstealing" | "work-stealing" => Some(SchedulerKind::WorkStealing),
            "ca" | "contention-aware" | "contentionaware" => Some(SchedulerKind::ContentionAware),
            _ => None,
        }
    }

    /// The canonical [`SCHEDULER_NAMES`] entry of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "rr",
            SchedulerKind::StaticLpt => "lpt",
            SchedulerKind::WorkStealing => "ws",
            SchedulerKind::ContentionAware => "ca",
        }
    }

    /// Builds the scheduler this kind names.
    pub fn scheduler(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobin),
            SchedulerKind::StaticLpt => Box::new(StaticLpt),
            SchedulerKind::WorkStealing => Box::new(WorkStealing),
            SchedulerKind::ContentionAware => Box::new(ContentionAware),
        }
    }
}

/// A cluster-to-PE scheduling policy.
///
/// A scheduler is a stateless factory; per-simulation state lives in the
/// [`Dispatcher`] it creates, which the fluid model queries every time a
/// PE needs its next cluster. Static policies precompute per-PE queues;
/// dynamic policies decide at dispatch time.
pub trait Scheduler: Send + Sync {
    /// Canonical name (one of [`SCHEDULER_NAMES`] for built-ins, e.g.
    /// `rr`, `lpt`, `ws`, `ca`).
    fn name(&self) -> &'static str;

    /// Creates the dispatch state for one simulation of `profiles` on
    /// `pes` PEs, each entitled to `per_pe_bytes_per_cycle` of the shared
    /// channel on average (static policies may use it for cost estimates).
    fn dispatcher(
        &self,
        profiles: &[ClusterProfile],
        pes: usize,
        per_pe_bytes_per_cycle: f64,
    ) -> Box<dyn Dispatcher>;

    /// Creates the dispatch state for one *banked-memory* simulation (see
    /// [`MemTopology`]): like [`Scheduler::dispatcher`], but the policy is
    /// told how clusters map onto memory channels, so it can order each
    /// PE's work by channel affinity (prefetch-friendly sequences that
    /// avoid dispatching two memory-bound clusters onto the same channel
    /// at once).
    ///
    /// The default implementation ignores the topology and defers to
    /// [`Scheduler::dispatcher`] — topology-oblivious policies (`rr`,
    /// `lpt`, `ws`) dispatch identically with or without banking, which
    /// is exactly what makes the contention delta attributable to the
    /// channel-affinity-aware policies (`ca`).
    fn dispatcher_banked(
        &self,
        profiles: &[ClusterProfile],
        pes: usize,
        per_pe_bytes_per_cycle: f64,
        topology: MemTopology,
    ) -> Box<dyn Dispatcher> {
        let _ = topology;
        self.dispatcher(profiles, pes, per_pe_bytes_per_cycle)
    }
}

/// Per-simulation dispatch state created by a [`Scheduler`].
pub trait Dispatcher {
    /// The next cluster index PE `pe` should execute, or `None` when the
    /// policy has no further work for it. Called once per PE at simulation
    /// start and again whenever that PE completes a cluster; completion
    /// ties are resolved in PE-index order by the fluid model, so dispatch
    /// is deterministic.
    fn next(&mut self, pe: usize) -> Option<usize>;
}

/// Dispatch state shared by the static policies: one precomputed queue of
/// cluster indices per PE.
struct StaticQueues {
    queues: Vec<VecDeque<usize>>,
}

impl Dispatcher for StaticQueues {
    fn next(&mut self, pe: usize) -> Option<usize> {
        self.queues[pe].pop_front()
    }
}

/// Static round-robin: cluster `i` runs on PE `i % pes`, clusters keep
/// their program order within a PE. This is exactly the assignment the
/// multi-PE model shipped with, so reports under it are bit-identical to
/// the pre-scheduler code.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn dispatcher(
        &self,
        profiles: &[ClusterProfile],
        pes: usize,
        _per_pe_bytes_per_cycle: f64,
    ) -> Box<dyn Dispatcher> {
        let mut queues = vec![VecDeque::new(); pes];
        for i in 0..profiles.len() {
            queues[i % pes].push_back(i);
        }
        Box::new(StaticQueues { queues })
    }
}

/// The standalone cycle estimate LPT packs on: the cluster alone on one
/// PE with its fair bandwidth share (compute and transfer overlapped).
fn standalone_cycles(p: &ClusterProfile, per_pe_bytes_per_cycle: f64) -> f64 {
    let mem = p.mem_bytes as f64 / per_pe_bytes_per_cycle;
    (p.compute_cycles as f64).max(mem)
}

/// Static longest-processing-time bin packing: clusters are sorted by
/// decreasing standalone cycle estimate (ties by cluster index) and each
/// is assigned to the currently least-loaded PE (ties by PE index). PEs
/// then process their queues in that assignment order.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticLpt;

impl Scheduler for StaticLpt {
    fn name(&self) -> &'static str {
        "lpt"
    }

    fn dispatcher(
        &self,
        profiles: &[ClusterProfile],
        pes: usize,
        per_pe_bytes_per_cycle: f64,
    ) -> Box<dyn Dispatcher> {
        let mut order: Vec<usize> = (0..profiles.len()).collect();
        // Sort by decreasing estimate; sort_by is stable, so equal
        // estimates keep ascending cluster index.
        order.sort_by(|&a, &b| {
            standalone_cycles(&profiles[b], per_pe_bytes_per_cycle)
                .partial_cmp(&standalone_cycles(&profiles[a], per_pe_bytes_per_cycle))
                .expect("finite estimates")
        });
        let mut queues = vec![VecDeque::new(); pes];
        let mut loads = vec![0.0f64; pes];
        for i in order {
            let target = (0..pes)
                .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).expect("finite loads"))
                .expect("at least one PE");
            queues[target].push_back(i);
            loads[target] += standalone_cycles(&profiles[i], per_pe_bytes_per_cycle);
        }
        Box::new(StaticQueues { queues })
    }
}

/// Dynamic work-stealing, modeled as greedy event-driven dispatch over one
/// shared pending queue: whichever PE finishes first pulls the next
/// pending cluster. The queue hands out the heaviest pending cluster
/// first (largest standalone cycle estimate — greedy dispatch degenerates
/// to plain FIFO order otherwise and inherits its list-scheduling
/// anomalies), with deterministic tie-breaking by cluster index; ties
/// between PEs finishing at the same instant are resolved in PE-index
/// order by the fluid model.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkStealing;

struct SharedQueue {
    pending: VecDeque<usize>,
}

impl Dispatcher for SharedQueue {
    fn next(&mut self, _pe: usize) -> Option<usize> {
        self.pending.pop_front()
    }
}

impl Scheduler for WorkStealing {
    fn name(&self) -> &'static str {
        "ws"
    }

    fn dispatcher(
        &self,
        profiles: &[ClusterProfile],
        _pes: usize,
        per_pe_bytes_per_cycle: f64,
    ) -> Box<dyn Dispatcher> {
        let mut pending: Vec<usize> = (0..profiles.len()).collect();
        // Heaviest first; sort_by is stable, so equal estimates keep
        // ascending cluster index.
        pending.sort_by(|&a, &b| {
            standalone_cycles(&profiles[b], per_pe_bytes_per_cycle)
                .partial_cmp(&standalone_cycles(&profiles[a], per_pe_bytes_per_cycle))
                .expect("finite estimates")
        });
        Box::new(SharedQueue {
            pending: pending.into(),
        })
    }
}

/// Contention-aware dynamic dispatch: like [`WorkStealing`], whichever PE
/// finishes first pulls the next pending cluster — but the pending pool is
/// split into *memory-bound* clusters (bandwidth demand `mem_bytes /
/// compute_cycles` above the per-PE fair share) and *compute-bound* ones,
/// each ordered heaviest-first, and each dispatch hands out the class that
/// is currently under-represented among the clusters in execution. Mixing
/// the classes keeps part of the fleet off the shared channel at any
/// instant, which is what greedy heaviest-first dispatch misses when it
/// happens to line up several memory-bound clusters (the documented
/// `ws`-loses-to-`rr` contention-alignment cases).
#[derive(Debug, Clone, Copy, Default)]
pub struct ContentionAware;

struct ClassedQueues {
    /// Pending memory-bound clusters, heaviest-first (ties by index).
    mem: VecDeque<usize>,
    /// Pending compute-bound clusters, heaviest-first (ties by index).
    compute: VecDeque<usize>,
    /// Standalone cycle estimate per cluster (head-to-head tie-breaks).
    weight: Vec<f64>,
    /// Class of each PE's in-execution cluster (`Some(true)` =
    /// memory-bound), updated at every dispatch.
    running: Vec<Option<bool>>,
}

impl Dispatcher for ClassedQueues {
    fn next(&mut self, pe: usize) -> Option<usize> {
        // The PE asking has just finished (or not started) its cluster.
        self.running[pe] = None;
        let mem_running = self.running.iter().flatten().filter(|&&m| m).count();
        let compute_running = self.running.iter().flatten().count() - mem_running;
        let pick_mem = match (self.mem.front(), self.compute.front()) {
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
            (Some(&m), Some(&c)) => {
                if mem_running != compute_running {
                    // Top up the under-represented class.
                    mem_running < compute_running
                } else {
                    // Balanced mix: drain the heavier head first
                    // (LPT-style), ties toward the memory-bound side so
                    // transfers start as early as possible.
                    self.weight[m] >= self.weight[c]
                }
            }
        };
        let next = if pick_mem {
            self.mem.pop_front()
        } else {
            self.compute.pop_front()
        };
        if next.is_some() {
            self.running[pe] = Some(pick_mem);
        }
        next
    }
}

impl Scheduler for ContentionAware {
    fn name(&self) -> &'static str {
        "ca"
    }

    fn dispatcher(
        &self,
        profiles: &[ClusterProfile],
        pes: usize,
        per_pe_bytes_per_cycle: f64,
    ) -> Box<dyn Dispatcher> {
        let (mem, compute, weight) = classed_pools(profiles, per_pe_bytes_per_cycle);
        Box::new(ClassedQueues {
            mem: mem.into(),
            compute: compute.into(),
            weight,
            running: vec![None; pes],
        })
    }

    /// The banked extension: class balancing as in the uniform dispatcher,
    /// plus PE-local channel-affinity ordering within the memory-bound
    /// pool — each dispatch prefers a cluster whose home channel no other
    /// in-flight memory-bound cluster is using (spreading the fleet across
    /// the channels), and among equally-conflicted candidates one homed on
    /// the PE's previous channel (prefetch-friendly row reuse).
    fn dispatcher_banked(
        &self,
        profiles: &[ClusterProfile],
        pes: usize,
        per_pe_bytes_per_cycle: f64,
        topology: MemTopology,
    ) -> Box<dyn Dispatcher> {
        let (mem, compute, weight) = classed_pools(profiles, per_pe_bytes_per_cycle);
        let home: Vec<usize> = (0..profiles.len())
            .map(|i| topology.home_channel(i))
            .collect();
        Box::new(AffinityClassedQueues {
            mem: mem.into(),
            compute: compute.into(),
            weight,
            home,
            running: vec![None; pes],
            last_channel: vec![None; pes],
        })
    }
}

/// Splits the clusters into the heaviest-first memory-bound and
/// compute-bound pools `ca` balances between (shared by the uniform and
/// banked dispatchers; the classification and ordering are identical).
fn classed_pools(
    profiles: &[ClusterProfile],
    per_pe_bytes_per_cycle: f64,
) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let weight: Vec<f64> = profiles
        .iter()
        .map(|p| standalone_cycles(p, per_pe_bytes_per_cycle))
        .collect();
    // Memory-bound: the cluster wants more than its fair bandwidth
    // share while computing (demand mem_bytes/compute_cycles > B).
    let is_mem =
        |p: &ClusterProfile| p.mem_bytes as f64 > p.compute_cycles as f64 * per_pe_bytes_per_cycle;
    let mut mem: Vec<usize> = (0..profiles.len())
        .filter(|&i| is_mem(&profiles[i]))
        .collect();
    let mut compute: Vec<usize> = (0..profiles.len())
        .filter(|&i| !is_mem(&profiles[i]))
        .collect();
    // Heaviest first within each class; stable sort keeps ascending
    // cluster index on equal estimates.
    mem.sort_by(|&a, &b| weight[b].partial_cmp(&weight[a]).expect("finite estimates"));
    compute.sort_by(|&a, &b| weight[b].partial_cmp(&weight[a]).expect("finite estimates"));
    (mem, compute, weight)
}

/// [`ClassedQueues`] with channel affinity: tracks which memory channel
/// every in-flight cluster is homed on and steers each memory-bound
/// dispatch toward an un-contended channel (see
/// [`ContentionAware::dispatcher_banked`]). Deterministic: selection is a
/// pure function of queue state, with ties broken by queue position.
struct AffinityClassedQueues {
    /// Pending memory-bound clusters, heaviest-first (ties by index).
    mem: VecDeque<usize>,
    /// Pending compute-bound clusters, heaviest-first (ties by index).
    compute: VecDeque<usize>,
    /// Standalone cycle estimate per cluster (head-to-head tie-breaks).
    weight: Vec<f64>,
    /// Home channel per cluster (address interleaving).
    home: Vec<usize>,
    /// Class and home channel of each PE's in-execution cluster
    /// (`Some((true, ch))` = memory-bound on channel `ch`).
    running: Vec<Option<(bool, usize)>>,
    /// Home channel of each PE's previous cluster, for prefetch-friendly
    /// same-channel sequencing when conflicts tie.
    last_channel: Vec<Option<usize>>,
}

impl Dispatcher for AffinityClassedQueues {
    fn next(&mut self, pe: usize) -> Option<usize> {
        // The PE asking has just finished (or not started) its cluster.
        self.running[pe] = None;
        let mem_running = self
            .running
            .iter()
            .flatten()
            .filter(|&&(is_mem, _)| is_mem)
            .count();
        let compute_running = self.running.iter().flatten().count() - mem_running;
        let pick_mem = match (self.mem.front(), self.compute.front()) {
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
            (Some(&m), Some(&c)) => {
                if mem_running != compute_running {
                    // Top up the under-represented class.
                    mem_running < compute_running
                } else {
                    // Balanced mix: drain the heavier head first
                    // (LPT-style), ties toward the memory-bound side so
                    // transfers start as early as possible.
                    self.weight[m] >= self.weight[c]
                }
            }
        };
        let next = if pick_mem {
            // Channel-affinity selection: fewest in-flight memory-bound
            // co-residents on the candidate's home channel wins; among
            // equals, the PE's previous channel (row-buffer reuse), then
            // the heaviest-first queue position.
            let conflicts = |cluster: usize| {
                self.running
                    .iter()
                    .flatten()
                    .filter(|&&(is_mem, ch)| is_mem && ch == self.home[cluster])
                    .count()
            };
            let best = self
                .mem
                .iter()
                .enumerate()
                .min_by_key(|&(pos, &cluster)| {
                    let affinity_miss =
                        usize::from(self.last_channel[pe] != Some(self.home[cluster]));
                    (conflicts(cluster), affinity_miss, pos)
                })
                .map(|(pos, _)| pos)
                .expect("front checked non-empty");
            self.mem.remove(best)
        } else {
            self.compute.pop_front()
        };
        if let Some(cluster) = next {
            self.running[pe] = Some((pick_mem, self.home[cluster]));
            self.last_channel[pe] = Some(self.home[cluster]);
        }
        next
    }
}

/// Multi-PE execution settings carried by every engine configuration: how
/// many PEs the run targets, which scheduler assigns clusters to them,
/// which execution model turns the per-cluster timelines into cycle
/// counts, and how the shared memory system is organized into channels
/// and banks. Registry overrides: `pes=N`, `scheduler=rr|lpt|ws|ca`,
/// `exec=post_hoc|e2e`, `channels=N`, `banks=N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MultiPeConfig {
    /// Processing engines (memory bandwidth scales proportionally).
    /// Default 1 — the paper's single-PE configuration.
    pub pes: usize,
    /// Cluster-to-PE scheduling policy.
    pub scheduler: SchedulerKind,
    /// Execution model: post-hoc projection (default) or end-to-end
    /// multi-PE composition (see [`crate::exec_model`]).
    pub exec: crate::exec_model::ExecModelKind,
    /// Channel/bank organization the end-to-end model contends on. The
    /// default `1x1` is the legacy idealized shared pipe (conflict
    /// modeling off); any other topology enables banked contention.
    /// Ignored by the post-hoc projection.
    pub topology: MemTopology,
}

impl Default for MultiPeConfig {
    fn default() -> Self {
        MultiPeConfig {
            pes: 1,
            scheduler: SchedulerKind::RoundRobin,
            exec: crate::exec_model::ExecModelKind::PostHoc,
            topology: MemTopology::default(),
        }
    }
}

/// Projects a finished engine report onto the configured multi-PE
/// arrangement: the fluid model runs the report's per-cluster profiles
/// through `cfg.scheduler` on `cfg.pes` PEs (total bandwidth
/// `pes * per_pe_bytes_per_cycle`) and the result is summarized for the
/// report. Pure post-processing — no phase counter changes.
pub fn summarize(
    report: &RunReport,
    cfg: &MultiPeConfig,
    per_pe_bytes_per_cycle: f64,
) -> MultiPeSummary {
    let profiles = report.cluster_profiles();
    let run = multi_pe::simulate_with(&profiles, cfg.pes, per_pe_bytes_per_cycle, cfg.scheduler);
    MultiPeSummary {
        scheduler: run.scheduler,
        pes: run.pes,
        makespan: run.makespan,
        imbalance: run.imbalance(),
        per_pe_busy: run.per_pe_busy,
    }
}

/// Generates a synthetic power-law cluster workload for scheduler studies:
/// `n` cluster profiles whose sizes follow a heavy-tailed (Pareto-like)
/// distribution, alternating between compute-bound and memory-bound
/// mixtures the way partitioned GCN clusters do. Deterministic in `seed`.
pub fn power_law_profiles(n: usize, seed: u64) -> Vec<ClusterProfile> {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next_u64 = move || {
        // splitmix64 — self-contained so the core crate stays
        // dependency-free.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            // Pareto(alpha = 1.2) cluster size in [1, 4096] work units.
            let u = (next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let size = (1.0 / (1.0 - u).max(1e-9)).powf(1.0 / 1.2).min(4096.0);
            // Memory intensity: bytes moved per compute cycle, spanning
            // clearly compute-bound clusters to memory-bound ones that
            // oversubscribe a Table III-like per-PE bandwidth share.
            let intensity = 0.5 + 5.5 * ((next_u64() >> 11) as f64 / (1u64 << 53) as f64);
            let compute = (size * 100.0) as u64 + 1;
            let mem_bytes = (compute as f64 * intensity) as u64 + 1;
            ClusterProfile {
                compute_cycles: compute,
                mem_bytes,
                // A plausible detailed standalone timeline for end-to-end
                // scheduler studies: the overlap estimate at a Table
                // III-like 4 B/cycle fair share plus a ~12% serialization
                // residue (latency tails, FIFO ordering).
                cycles: (compute.max(mem_bytes / 4) as f64 * 1.125) as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(c: u64, m: u64) -> ClusterProfile {
        ClusterProfile {
            compute_cycles: c,
            mem_bytes: m,
            cycles: 0,
        }
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in SchedulerKind::ALL {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.scheduler().name(), kind.name());
        }
        assert_eq!(
            SchedulerKind::parse("WorkStealing"),
            Some(SchedulerKind::WorkStealing)
        );
        assert_eq!(
            SchedulerKind::parse("Round-Robin"),
            Some(SchedulerKind::RoundRobin)
        );
        assert_eq!(SchedulerKind::parse("bogus"), None);
        assert_eq!(SchedulerKind::ALL.len(), SCHEDULER_NAMES.len());
    }

    #[test]
    fn round_robin_interleaves() {
        let profiles: Vec<ClusterProfile> = (0..5).map(|i| task(i + 1, 0)).collect();
        let mut d = RoundRobin.dispatcher(&profiles, 2, 1.0);
        assert_eq!(d.next(0), Some(0));
        assert_eq!(d.next(1), Some(1));
        assert_eq!(d.next(0), Some(2));
        assert_eq!(d.next(1), Some(3));
        assert_eq!(d.next(1), None);
        assert_eq!(d.next(0), Some(4));
        assert_eq!(d.next(0), None);
    }

    #[test]
    fn lpt_packs_longest_first() {
        // Durations 10, 1, 1, 1, 9 on 2 PEs: LPT puts 10 alone on PE 0 and
        // the rest (9 + 1 + 1 + 1) on PE 1 until loads cross.
        let profiles = [task(10, 0), task(1, 0), task(1, 0), task(1, 0), task(9, 0)];
        let mut d = StaticLpt.dispatcher(&profiles, 2, 1.0);
        assert_eq!(d.next(0), Some(0), "longest cluster first on PE 0");
        assert_eq!(d.next(1), Some(4), "second longest on PE 1");
        // Unit tasks fill up the lighter bin first (9+1), then the load
        // tie at 10 breaks toward PE 0, then back to PE 1.
        assert_eq!(d.next(1), Some(1));
        assert_eq!(d.next(0), Some(2));
        assert_eq!(d.next(1), Some(3));
        assert_eq!(d.next(0), None);
    }

    #[test]
    fn work_stealing_hands_out_in_cluster_order() {
        let profiles: Vec<ClusterProfile> = (0..4).map(|_| task(1, 1)).collect();
        let mut d = WorkStealing.dispatcher(&profiles, 2, 1.0);
        // Any PE asking gets the lowest pending index.
        assert_eq!(d.next(1), Some(0));
        assert_eq!(d.next(0), Some(1));
        assert_eq!(d.next(1), Some(2));
        assert_eq!(d.next(1), Some(3));
        assert_eq!(d.next(0), None);
    }

    #[test]
    fn contention_aware_interleaves_classes() {
        // 2 memory-bound (0, 1) and 2 compute-bound (2, 3) clusters at
        // B = 4: dispatch must alternate the classes across the PEs.
        let profiles = [task(10, 4000), task(10, 2000), task(900, 40), task(800, 40)];
        let mut d = ContentionAware.dispatcher(&profiles, 2, 4.0);
        // Balanced (nothing running): heavier head wins, ties toward the
        // memory-bound side — cluster 0 (standalone 1000) over 2 (900).
        assert_eq!(d.next(0), Some(0), "heaviest memory-bound first");
        assert_eq!(d.next(1), Some(2), "then top up the compute side");
        // PE 0 finishes: one compute-bound still running, so it takes the
        // next memory-bound cluster, and so on.
        assert_eq!(d.next(0), Some(1));
        assert_eq!(d.next(1), Some(3));
        assert_eq!(d.next(0), None);
        assert_eq!(d.next(1), None);
    }

    #[test]
    fn contention_aware_splits_grouped_classes() {
        // All memory-bound clusters first in index order, equal standalone
        // estimates: heaviest-first (ws) and round-robin both line the
        // memory-bound clusters up against each other on the channel; ca
        // pairs each with a compute-bound cluster instead.
        let mut profiles: Vec<ClusterProfile> = Vec::new();
        profiles.extend((0..8).map(|_| task(10, 4000)));
        profiles.extend((0..8).map(|_| task(1000, 40)));
        for pes in [2usize, 4] {
            let rr = multi_pe::simulate_with(&profiles, pes, 4.0, SchedulerKind::RoundRobin);
            let ws = multi_pe::simulate_with(&profiles, pes, 4.0, SchedulerKind::WorkStealing);
            let ca = multi_pe::simulate_with(&profiles, pes, 4.0, SchedulerKind::ContentionAware);
            assert!(
                ca.makespan < 0.8 * rr.makespan && ca.makespan < 0.8 * ws.makespan,
                "pes={pes}: ca {} vs rr {} / ws {}",
                ca.makespan,
                rr.makespan,
                ws.makespan
            );
        }
    }

    #[test]
    fn power_law_profiles_are_deterministic_and_heavy_tailed() {
        let a = power_law_profiles(256, 9);
        let b = power_law_profiles(256, 9);
        assert_eq!(a, b, "seeded generation is deterministic");
        assert_ne!(a, power_law_profiles(256, 10), "seed matters");
        let max = a.iter().map(|p| p.compute_cycles).max().unwrap();
        let mean = a.iter().map(|p| p.compute_cycles).sum::<u64>() as f64 / a.len() as f64;
        assert!(
            max as f64 > 5.0 * mean,
            "heavy tail expected: max {max} vs mean {mean}"
        );
    }

    #[test]
    fn summarize_matches_direct_simulation() {
        use crate::{prepare, Accelerator, GrowEngine, PartitionStrategy};
        let w = grow_model::DatasetKey::Cora
            .spec()
            .scaled_to(400)
            .instantiate(3);
        let p = prepare(
            &w,
            PartitionStrategy::Multilevel { cluster_nodes: 100 },
            4096,
        );
        let report = GrowEngine::default().run(&p);
        let cfg = MultiPeConfig {
            pes: 4,
            scheduler: SchedulerKind::WorkStealing,
            ..MultiPeConfig::default()
        };
        let summary = summarize(&report, &cfg, 32.0);
        let direct = multi_pe::simulate_with(&report.cluster_profiles(), 4, 32.0, cfg.scheduler);
        assert_eq!(summary.makespan, direct.makespan);
        assert_eq!(summary.per_pe_busy, direct.per_pe_busy);
        assert_eq!(summary.scheduler, "ws");
        assert_eq!(summary.pes, 4);
    }
}
