//! Parallel-scaling bench: wall-clock of every registry engine on a
//! partitioned Reddit-scale workload, swept across worker-thread counts
//! (the `GROW_THREADS` axis), against a forced-serial reference. Every
//! parallel leg is asserted bit-identical to the serial report before its
//! timing is trusted. Run with:
//!
//! ```text
//! cargo bench -p grow-bench --bench parallel_speedup -- \
//!     [--quick] [--iters N] [--out DIR] [--baseline results/BENCH_parallel.json]
//! ```
//!
//! Results land in `<out>/BENCH_parallel.json` with a fixed key order
//! (rows sorted by engine then thread count), the same deterministic-diff
//! protocol as `BENCH_hotpath.json`; `--quick` (the CI smoke mode) writes
//! `BENCH_parallel_smoke.json` on a smaller graph instead, so a smoke run
//! never clobbers the committed full-scale baseline. Passing `--baseline`
//! reports the serial-total speedup against a previous run's JSON.
//!
//! Setting `GROW_THREADS` above the hardware thread count is rejected up
//! front: an oversubscribed sweep measures scheduler thrash, not scaling,
//! and the committed artifact must never be produced by one.

use std::path::PathBuf;

use grow_bench::{json, timing};
use grow_core::registry::{engine_by_name, ENGINE_NAMES};
use grow_core::{prepare, PartitionStrategy};
use grow_model::DatasetKey;
use grow_sim::exec::{with_mode, with_workers, ExecMode};

struct Cell {
    engine: &'static str,
    threads: usize,
    min_ms: f64,
    mean_ms: f64,
    serial_min_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let mut baseline: Option<PathBuf> = None;
    let mut iters = 10u32;
    let mut quick = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // Cargo appends `--bench` when invoking harness=false benches.
            "--bench" => {}
            "--quick" => {
                quick = true;
                iters = 3;
            }
            "--iters" => iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N"),
            "--out" => out_dir = PathBuf::from(it.next().expect("--out DIR")),
            "--baseline" => baseline = Some(PathBuf::from(it.next().expect("--baseline FILE"))),
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // A single-core box can only produce a degenerate {1}-thread "sweep":
    // the numbers are real wall-clock but say nothing about scaling, so
    // warn loudly and mark the artifact instead of emitting a curve that
    // reads like a scaling result.
    if hw == 1 {
        eprintln!(
            "warning: only 1 hardware thread is available — the sweep \
             degenerates to a single-threaded measurement and contains no \
             parallel-scaling signal. The output is marked \
             \"degenerate_single_core\": true."
        );
    }
    // Fail fast on an oversubscribed environment: with more workers than
    // cores the sweep times scheduler thrash, not parallel scaling.
    if let Ok(v) = std::env::var("GROW_THREADS") {
        match v.parse::<usize>() {
            Ok(n) if n > hw => {
                eprintln!(
                    "error: GROW_THREADS={n} exceeds the {hw} available hardware \
                     thread(s); an oversubscribed run does not measure parallel \
                     scaling. Unset GROW_THREADS or set it to at most {hw}."
                );
                std::process::exit(2);
            }
            Ok(_) => {}
            Err(_) => {
                eprintln!("error: GROW_THREADS='{v}' is not a positive integer");
                std::process::exit(2);
            }
        }
    }
    // The sweep axis: powers of two up to the hardware thread count, plus
    // the hardware count itself (== {1} on a single-core box).
    let mut threads: Vec<usize> = Vec::new();
    let mut t = 1;
    while t <= hw {
        threads.push(t);
        t *= 2;
    }
    if *threads.last().expect("at least one thread") != hw {
        threads.push(hw);
    }

    // A Reddit-like spec with enough clusters (~40 at full scale) for the
    // fan-out to matter; the quick CI smoke leg shrinks the graph so the
    // bench binary is exercised end to end without the generation cost.
    let nodes = if quick { 10_000 } else { 40_000 };
    let spec = DatasetKey::Reddit.spec().scaled_to(nodes);
    eprintln!("[setup] generating {} nodes ...", spec.nodes);
    let workload = spec.instantiate(42);
    eprintln!("[setup] partitioning ...");
    let p = prepare(
        &workload,
        PartitionStrategy::Multilevel {
            cluster_nodes: 1024,
        },
        4096,
    );
    println!(
        "workload: {} nodes, {} clusters; {} hardware thread(s); sweep {threads:?}\n",
        p.nodes,
        p.clusters.len(),
        hw
    );
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>9}  ({iters} iters)",
        "engine", "threads", "serial ms", "min ms", "speedup"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for name in ENGINE_NAMES {
        let engine = engine_by_name(name).expect("registered engine");
        let serial_report = with_mode(ExecMode::Serial, || engine.run(&p));
        let serial = with_mode(ExecMode::Serial, || {
            timing::sample(iters, || {
                std::hint::black_box(engine.run(&p));
            })
        });
        for &t in &threads {
            // The timing is only meaningful if this leg computes the same
            // thing: every thread count must reproduce the serial report
            // bit for bit (plan/replay overlap and sharding included).
            let report = with_workers(t, || with_mode(ExecMode::Parallel, || engine.run(&p)));
            assert_eq!(
                report, serial_report,
                "{name}: {t}-thread report diverged from serial"
            );
            let timed = with_workers(t, || {
                with_mode(ExecMode::Parallel, || {
                    timing::sample(iters, || {
                        std::hint::black_box(engine.run(&p));
                    })
                })
            });
            println!(
                "{:<12} {:>8} {:>12.3} {:>12.3} {:>8.2}x",
                engine.name(),
                t,
                serial.min_ns / 1e6,
                timed.min_ns / 1e6,
                serial.min_ns / timed.min_ns
            );
            cells.push(Cell {
                engine: engine.name(),
                threads: t,
                min_ms: timed.min_ns / 1e6,
                mean_ms: timed.mean_ns / 1e6,
                serial_min_ms: serial.min_ns / 1e6,
            });
        }
    }
    // Fixed row order regardless of measurement order: engine, threads.
    cells.sort_by(|a, b| (a.engine, a.threads).cmp(&(b.engine, b.threads)));
    let serial_total_min_ms: f64 = cells
        .iter()
        .filter(|c| c.threads == 1)
        .map(|c| c.serial_min_ms)
        .sum();
    let max_threads = *threads.last().expect("at least one thread");
    let peak_total_min_ms: f64 = cells
        .iter()
        .filter(|c| c.threads == max_threads)
        .map(|c| c.min_ms)
        .sum();
    println!("\nserial total (sum of per-engine min): {serial_total_min_ms:.3} ms");
    println!(
        "{max_threads}-thread total {peak_total_min_ms:.3} ms -> scaling {:.2}x",
        serial_total_min_ms / peak_total_min_ms
    );

    let baseline_total = baseline.as_ref().and_then(|path| {
        let text = std::fs::read_to_string(path)
            .map_err(|e| eprintln!("warning: could not read baseline {}: {e}", path.display()))
            .ok()?;
        extract_number(&text, "serial_total_min_ms")
    });
    if let Some(base_ms) = baseline_total {
        println!(
            "baseline serial total {base_ms:.3} ms -> speedup {:.2}x",
            base_ms / serial_total_min_ms
        );
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            json::object(&[
                ("engine", json::string(c.engine)),
                ("threads", json::uint(c.threads as u64)),
                ("min_ms", json::number(c.min_ms)),
                ("mean_ms", json::number(c.mean_ms)),
                ("serial_min_ms", json::number(c.serial_min_ms)),
                (
                    "speedup_vs_serial",
                    json::number(c.serial_min_ms / c.min_ms),
                ),
            ])
        })
        .collect();
    let doc = json::object(&[
        (
            "grid",
            json::string(&format!(
                "parallel-scaling: reddit @{nodes} seed 42, multilevel 1024, \
                 threads sweep"
            )),
        ),
        ("iters", json::uint(iters as u64)),
        ("hw_threads", json::uint(hw as u64)),
        ("degenerate_single_core", json::boolean(hw == 1)),
        (
            "threads",
            json::array(threads.iter().map(|&t| json::uint(t as u64)).collect()),
        ),
        ("rows", json::array(rows)),
        ("serial_total_min_ms", json::number(serial_total_min_ms)),
        ("peak_total_min_ms", json::number(peak_total_min_ms)),
        (
            "baseline_serial_total_min_ms",
            baseline_total.map_or_else(|| "null".to_string(), json::number),
        ),
        (
            "speedup_vs_baseline",
            baseline_total.map_or_else(
                || "null".to_string(),
                |b| json::number(b / serial_total_min_ms),
            ),
        ),
    ]);
    // Quick smoke runs get their own file: the tracked BENCH_parallel.json
    // holds full-scale numbers only.
    let file = if quick {
        "BENCH_parallel_smoke.json"
    } else {
        "BENCH_parallel.json"
    };
    if let Err(e) =
        std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(out_dir.join(file), doc))
    {
        eprintln!("warning: could not write {file}: {e}");
    }
}

/// Pulls a top-level numeric field out of a BENCH_parallel.json document
/// (the workspace builds offline, so no JSON parser crate; the file format
/// is our own and the field is a bare number).
fn extract_number(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
