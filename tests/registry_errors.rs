//! Error-path coverage for the registry and session entry points: every
//! documented failure mode surfaces as the matching [`RegistryError`] —
//! never a panic — through each layer (`registry`, `SimSession`, and the
//! `grow_serve` batch service).

use grow::accel::registry::{self, RegistryError};
use grow::accel::PartitionStrategy;
use grow::model::DatasetKey;
use grow::serve::{BatchService, JobError, JobSpec};
use grow::session::SimSession;

fn spec() -> grow::model::DatasetSpec {
    DatasetKey::Cora.spec().scaled_to(300)
}

#[test]
fn unknown_engine_is_an_error_everywhere() {
    let expected = RegistryError::UnknownEngine("npu".into());
    assert_eq!(
        registry::engine_by_name("npu").err(),
        Some(expected.clone())
    );
    assert_eq!(
        registry::canonical_name("npu").err(),
        Some(expected.clone())
    );

    let workload = spec().instantiate(1);
    let prepared = grow::accel::prepare(&workload, PartitionStrategy::None, 4096);
    assert_eq!(
        registry::run_named("npu", &prepared).err(),
        Some(expected.clone())
    );

    let mut session = SimSession::from_spec(spec(), 1);
    assert_eq!(
        session.run("npu", PartitionStrategy::None).err(),
        Some(expected.clone())
    );
    assert_eq!(
        session.prepared_count(),
        0,
        "no preparation spent on an unknown engine"
    );

    let result = BatchService::new().run_one(&JobSpec::new(spec(), 1, "npu"));
    assert_eq!(
        result.outcome.err(),
        Some(JobError::Invalid(expected.clone()))
    );
    // The message names the valid engines, so the error is actionable.
    let message = expected.to_string();
    for name in registry::ENGINE_NAMES {
        assert!(message.contains(name), "{message}");
    }
}

#[test]
fn unknown_key_and_invalid_value_are_reported_not_panicked() {
    let unknown_key = RegistryError::UnknownKey {
        engine: "matraptor",
        key: "runahead".into(),
    };
    assert_eq!(
        registry::engine_from_overrides("matraptor", &[("runahead", "4")]).err(),
        Some(unknown_key.clone())
    );
    let mut session = SimSession::from_spec(spec(), 2);
    assert_eq!(
        session
            .run_with("matraptor", &[("runahead", "4")], PartitionStrategy::None)
            .err(),
        Some(unknown_key.clone())
    );
    let via_batch = BatchService::new()
        .run_one(&JobSpec::new(spec(), 2, "matraptor").with_override("runahead", "4"));
    assert_eq!(
        via_batch.outcome.err(),
        Some(JobError::Invalid(unknown_key))
    );

    let invalid_value = RegistryError::InvalidValue {
        key: "mac_lanes".into(),
        value: "lots".into(),
    };
    assert_eq!(
        registry::engine_from_overrides("gamma", &[("mac_lanes", "lots")]).err(),
        Some(invalid_value.clone())
    );
    let via_batch = BatchService::new()
        .run_one(&JobSpec::new(spec(), 2, "gamma").with_override("mac_lanes", "lots"));
    assert_eq!(
        via_batch.outcome.err(),
        Some(JobError::Invalid(invalid_value))
    );
}

#[test]
fn malformed_override_specs_are_rejected() {
    for bad in ["runahead", "=4", "runahead=", ""] {
        assert_eq!(
            registry::parse_override(bad).err(),
            Some(RegistryError::MalformedOverride { spec: bad.into() }),
            "{bad:?}"
        );
        let result =
            BatchService::new().run_one(&JobSpec::new(spec(), 3, "grow").with_override_spec(bad));
        assert_eq!(
            result.outcome.err(),
            Some(JobError::Invalid(RegistryError::MalformedOverride {
                spec: bad.into()
            })),
            "{bad:?}"
        );
    }
    // Values may contain '='; only the first one splits.
    assert_eq!(
        registry::parse_override("key=a=b").unwrap(),
        ("key".into(), "a=b".into())
    );
}

#[test]
fn unknown_scheduler_is_an_error_everywhere() {
    let expected = RegistryError::UnknownScheduler("bogus".into());
    for engine in registry::ENGINE_NAMES {
        assert_eq!(
            registry::engine_from_overrides(engine, &[("scheduler", "bogus")]).err(),
            Some(expected.clone()),
            "{engine}"
        );
    }

    let mut session = SimSession::from_spec(spec(), 4);
    assert_eq!(
        session
            .run_with("grow", &[("scheduler", "bogus")], PartitionStrategy::None)
            .err(),
        Some(expected.clone())
    );
    assert_eq!(
        session.prepared_count(),
        0,
        "no preparation spent on an unknown scheduler"
    );

    // Through the batch service: the bad job fails alone, the valid
    // scheduler jobs around it still run.
    let mut service = BatchService::new();
    let results = service.run_batch(&[
        JobSpec::new(spec(), 4, "grow").with_override("scheduler", "ws"),
        JobSpec::new(spec(), 4, "grow").with_override("scheduler", "bogus"),
        JobSpec::new(spec(), 4, "grow").with_override("scheduler", "lpt"),
    ]);
    assert!(results[0].outcome.is_ok());
    assert_eq!(results[1].outcome, Err(JobError::Invalid(expected.clone())));
    assert!(results[2].outcome.is_ok(), "later jobs unaffected");
    assert_eq!(service.stats().jobs_failed, 1);
    assert_eq!(service.stats().simulations_run, 2);

    // The message names the valid schedulers, so the error is actionable.
    let message = expected.to_string();
    for name in grow::accel::schedule::SCHEDULER_NAMES {
        assert!(message.contains(name), "{message}");
    }
}

#[test]
fn unknown_exec_model_is_an_error_everywhere() {
    let expected = RegistryError::UnknownExecModel("sideways".into());
    for engine in registry::ENGINE_NAMES {
        assert_eq!(
            registry::engine_from_overrides(engine, &[("exec", "sideways")]).err(),
            Some(expected.clone()),
            "{engine}"
        );
    }

    let mut session = SimSession::from_spec(spec(), 4);
    assert_eq!(
        session
            .run_with("grow", &[("exec", "sideways")], PartitionStrategy::None)
            .err(),
        Some(expected.clone())
    );
    assert_eq!(
        session.prepared_count(),
        0,
        "no preparation spent on an unknown execution model"
    );

    // Through the batch service: the bad job fails alone, the valid
    // exec-model jobs around it still run.
    let mut service = BatchService::new();
    let results = service.run_batch(&[
        JobSpec::new(spec(), 4, "grow").with_override("exec", "e2e"),
        JobSpec::new(spec(), 4, "grow").with_override("exec", "sideways"),
        JobSpec::new(spec(), 4, "grow").with_override("exec", "post_hoc"),
    ]);
    assert!(results[0].outcome.is_ok());
    assert_eq!(results[1].outcome, Err(JobError::Invalid(expected.clone())));
    assert!(results[2].outcome.is_ok(), "later jobs unaffected");

    // The message names the valid models, so the error is actionable.
    let message = expected.to_string();
    for name in grow::accel::exec_model::EXEC_MODEL_NAMES {
        assert!(message.contains(name), "{message}");
    }
}

#[test]
fn shard_rows_is_uniform_across_engines() {
    // Since the plan-module port, `shard_rows=off|auto|N` is a shared key:
    // every engine accepts it, every engine reports identically with it
    // (it is a simulator-throughput knob, not a model parameter), and a
    // bad value surfaces as InvalidValue — not UnknownKey — everywhere.
    let workload = spec().instantiate(9);
    let prepared = grow::accel::prepare(&workload, PartitionStrategy::None, 4096);
    for engine in registry::ENGINE_NAMES {
        let base = registry::run_named(engine, &prepared).unwrap();
        for value in ["off", "auto", "64", "0"] {
            let sharded = registry::engine_from_overrides(engine, &[("shard_rows", value)])
                .unwrap_or_else(|e| panic!("{engine} shard_rows={value}: {e}"))
                .run(&prepared);
            assert_eq!(base, sharded, "{engine} shard_rows={value}");
        }
        assert_eq!(
            registry::engine_from_overrides(engine, &[("shard_rows", "many")]).err(),
            Some(RegistryError::InvalidValue {
                key: "shard_rows".into(),
                value: "many".into(),
            }),
            "{engine}"
        );
    }

    // The shared key flows through the batch service like any other
    // override, and an unknown engine still wins over a bad value.
    let result = BatchService::new()
        .run_one(&JobSpec::new(spec(), 9, "gamma").with_override("shard_rows", "auto"));
    assert!(result.outcome.is_ok());
    assert_eq!(
        registry::engine_from_overrides("npu", &[("shard_rows", "many")]).err(),
        Some(RegistryError::UnknownEngine("npu".into()))
    );
}

#[test]
fn fault_is_uniform_across_engines() {
    // `fault=spec` is a shared key like `shard_rows`: every engine
    // accepts it, a disarmed plan (`off`, or an ordinal that never
    // fires) leaves the report bit-identical to the baseline, and a
    // malformed spec surfaces as InvalidValue{key:"fault"} — not
    // UnknownKey — everywhere.
    let workload = spec().instantiate(11);
    let prepared = grow::accel::prepare(&workload, PartitionStrategy::None, 4096);
    for engine in registry::ENGINE_NAMES {
        let base = registry::run_named(engine, &prepared).unwrap();
        // `off`/`none` and a never-firing ordinal are all report-neutral.
        for value in ["off", "none", "dram:error:9999999"] {
            let faulted = registry::engine_from_overrides(engine, &[("fault", value)])
                .unwrap_or_else(|e| panic!("{engine} fault={value}: {e}"))
                .run(&prepared);
            assert_eq!(base, faulted, "{engine} fault={value}");
        }
        // A full multi-spec plan parses on every engine (validation is
        // engine-independent; firing behaviour is exercised elsewhere).
        assert!(
            registry::engine_from_overrides(engine, &[("fault", "dram:error:1:2+exec:panic:3")])
                .is_ok(),
            "{engine}"
        );
        for bad in [
            "dram:boom",
            "bogus:error",
            "dram",
            "dram:error:0",
            "dram:error:1:2:3",
            "",
        ] {
            assert_eq!(
                registry::engine_from_overrides(engine, &[("fault", bad)]).err(),
                Some(RegistryError::InvalidValue {
                    key: "fault".into(),
                    value: bad.into(),
                }),
                "{engine} fault={bad:?}"
            );
        }
    }

    // Through the batch service: a malformed fault spec fails validation
    // before any simulation runs, on every engine.
    let mut service = BatchService::new();
    let jobs: Vec<JobSpec> = registry::ENGINE_NAMES
        .iter()
        .map(|engine| JobSpec::new(spec(), 11, engine).with_fault("dram:sideways"))
        .collect();
    let results = service.run_batch(&jobs);
    for (result, engine) in results.iter().zip(registry::ENGINE_NAMES) {
        assert_eq!(
            result.outcome.clone().err(),
            Some(JobError::Invalid(RegistryError::InvalidValue {
                key: "fault".into(),
                value: "dram:sideways".into(),
            })),
            "{engine}"
        );
    }
    assert_eq!(service.stats().simulations_run, 0, "validation is phase 1");
}

#[test]
fn zero_pes_is_an_invalid_value_not_a_panic() {
    let expected = RegistryError::InvalidValue {
        key: "pes".into(),
        value: "0".into(),
    };
    assert_eq!(
        registry::engine_from_overrides("grow", &[("pes", "0")]).err(),
        Some(expected.clone())
    );
    let result =
        BatchService::new().run_one(&JobSpec::new(spec(), 5, "grow").with_override("pes", "0"));
    assert_eq!(result.outcome.err(), Some(JobError::Invalid(expected)));
}

#[test]
fn every_error_displays_a_useful_message() {
    let errors: Vec<RegistryError> = vec![
        RegistryError::UnknownEngine("npu".into()),
        RegistryError::UnknownKey {
            engine: "grow",
            key: "warp_size".into(),
        },
        RegistryError::InvalidValue {
            key: "runahead".into(),
            value: "many".into(),
        },
        RegistryError::MalformedOverride {
            spec: "runahead".into(),
        },
        RegistryError::UnknownScheduler("bogus".into()),
        RegistryError::UnknownExecModel("sideways".into()),
    ];
    for e in errors {
        let text = e.to_string();
        assert!(!text.is_empty());
        // std::error::Error is implemented, so the errors compose with ?
        // and error-reporting crates.
        let as_dyn: &dyn std::error::Error = &e;
        assert_eq!(as_dyn.to_string(), text);
    }
}

#[test]
fn hdn_entry_changes_invalidate_without_panicking() {
    let mut session = SimSession::from_spec(spec(), 5);
    let wide = session
        .run("grow", PartitionStrategy::None)
        .expect("registered engine");
    assert_eq!(session.prepared_count(), 1);

    // Shrinking the HDN ID list drops every memoized preparation and
    // re-prepares on demand with the new bound.
    session.set_hdn_id_entries(8);
    assert_eq!(session.prepared_count(), 0);
    let narrow = session
        .run("grow", PartitionStrategy::None)
        .expect("still runs after invalidation");
    assert_eq!(
        wide.mac_ops(),
        narrow.mac_ops(),
        "list length changes movement, not work"
    );
    assert!(
        session
            .get_prepared(PartitionStrategy::None)
            .expect("re-prepared")
            .hdn_lists[0]
            .len()
            <= 8
    );

    // Setting the same value again is a no-op, not an invalidation.
    session.set_hdn_id_entries(8);
    assert_eq!(session.prepared_count(), 1);
}

#[test]
fn batch_jobs_with_distinct_hdn_entries_get_distinct_sessions() {
    let mut service = BatchService::new();
    let results = service.run_batch(&[
        JobSpec::new(spec(), 6, "grow"),
        JobSpec::new(spec(), 6, "grow").with_hdn_id_entries(8),
    ]);
    assert!(results[0].outcome.is_ok() && results[1].outcome.is_ok());
    assert_ne!(results[0].key, results[1].key);
    assert_eq!(service.pooled_sessions(), 2);
    assert_eq!(service.stats().simulations_run, 2);
}
