use crate::{CsrMatrix, DenseMatrix, SparseError};

/// A coordinate-format (triplet) sparse matrix builder.
///
/// COO is the natural intermediate when assembling a matrix from edge lists
/// or generators; convert to [`CsrMatrix`] with [`CooMatrix::to_csr`] for
/// computation. Duplicate entries are summed during conversion (the usual
/// finite-element / graph-multigraph convention).
///
/// ```
/// use grow_sparse::CooMatrix;
///
/// # fn main() -> Result<(), grow_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 2.0)?;
/// coo.push(0, 1, 3.0)?; // duplicate: summed on conversion
/// let csr = coo.to_csr();
/// assert_eq!(csr.nnz(), 1);
/// assert_eq!(csr.row_entries(0).next(), Some((1, 5.0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Creates an empty `rows x cols` COO matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` exceeds `u32::MAX` (indices are stored as
    /// `u32` to halve the memory footprint of large graph datasets).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows <= u32::MAX as usize && cols <= u32::MAX as usize);
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with pre-allocated capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        let mut coo = CooMatrix::new(rows, cols);
        coo.entries.reserve(cap);
        coo
    }

    /// Appends the entry `(row, col, value)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the coordinate lies
    /// outside the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.entries.push((row as u32, col as u32, value));
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries, including duplicates not yet merged.
    pub fn stored_entries(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over the stored `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Converts to CSR, sorting entries and summing duplicates.
    ///
    /// Entries whose duplicates sum to exactly zero are *kept* as explicit
    /// zeros: graph adjacency matrices never produce them in practice, and
    /// preserving them keeps nnz accounting deterministic.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column.
        let mut counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut sorted: Vec<(u32, f64)> = vec![(0, 0.0); self.entries.len()];
        let mut next = counts.clone();
        for &(r, c, v) in &self.entries {
            let slot = next[r as usize];
            sorted[slot] = (c, v);
            next[r as usize] += 1;
        }

        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        indptr.push(0usize);
        for r in 0..self.rows {
            let seg = &mut sorted[counts[r]..counts[r + 1]];
            seg.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < seg.len() {
                let col = seg[i].0;
                let mut sum = 0.0;
                while i < seg.len() && seg[i].0 == col {
                    sum += seg[i].1;
                    i += 1;
                }
                indices.push(col);
                values.push(sum);
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw(self.rows, self.cols, indptr, indices, values)
            .expect("COO conversion produces structurally valid CSR")
    }

    /// Converts to a dense matrix, summing duplicates.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut dense = DenseMatrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            let cur = dense.get(r as usize, c as usize);
            dense.set(r as usize, c as usize, cur + v);
        }
        dense
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    /// Extends the matrix with triplets.
    ///
    /// # Panics
    ///
    /// Panics if a triplet is out of bounds. Use [`CooMatrix::push`] for a
    /// fallible variant.
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("triplet within bounds");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn to_csr_sorts_rows_and_columns() {
        let mut coo = CooMatrix::new(3, 3);
        coo.extend([(2, 1, 5.0), (0, 2, 3.0), (0, 0, 1.0), (2, 0, 4.0)]);
        let csr = coo.to_csr();
        assert_eq!(csr.row_indices(0), &[0, 2]);
        assert_eq!(csr.row_indices(1), &[] as &[u32]);
        assert_eq!(csr.row_indices(2), &[0, 1]);
        assert_eq!(csr.row_values(2), &[4.0, 5.0]);
    }

    #[test]
    fn to_csr_merges_duplicates() {
        let mut coo = CooMatrix::new(1, 2);
        coo.extend([(0, 1, 1.0), (0, 1, 2.5), (0, 0, -1.0)]);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row_values(0), &[-1.0, 3.5]);
    }

    #[test]
    fn to_dense_matches_to_csr() {
        let mut coo = CooMatrix::new(2, 3);
        coo.extend([(0, 1, 1.0), (1, 2, 2.0), (0, 1, 1.0)]);
        let dense = coo.to_dense();
        let csr = coo.to_csr();
        assert!(csr.to_dense().approx_eq(&dense, 0.0));
    }

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(0, 0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.shape(), (0, 0));
    }
}
