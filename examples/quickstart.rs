//! Quickstart: simulate GROW on a small citation-network workload and
//! print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use grow::accel::PartitionStrategy;
use grow::model::DatasetKey;
use grow::session::SimSession;

fn main() {
    // 1. Instantiate a Cora-like dataset (Table I row 1) at full scale:
    //    2,708 nodes, power-law degrees, 1433-16-7 feature dimensions.
    //    The session owns the workload and memoizes its prepared forms.
    let mut session = SimSession::from_spec(DatasetKey::Cora.spec(), 42);
    println!("workload: {}", session.workload().graph);

    // 2. Software preprocessing (Section V-C): graph partitioning,
    //    cluster-sorted relabeling, per-cluster HDN ID lists.
    let partitioned = session.prepared(PartitionStrategy::multilevel_default());
    println!(
        "partitioned into {} clusters (intra-cluster edge fraction {:.1}%)",
        partitioned.clusters.len(),
        100.0 * partitioned.intra_edge_fraction
    );

    // 3. Simulate GROW and the GCNAX baseline, dispatched by name.
    let grow = session
        .run("grow", PartitionStrategy::multilevel_default())
        .expect("registered engine");
    let gcnax = session
        .run("gcnax", PartitionStrategy::None)
        .expect("registered engine");
    println!("\n{grow}");
    println!("{gcnax}");

    // 4. The paper's headline metrics.
    let speedup = gcnax.total_cycles() as f64 / grow.total_cycles() as f64;
    let traffic = gcnax.dram_bytes() as f64 / grow.dram_bytes() as f64;
    let hit_rate = grow.aggregation_cache().hit_rate().unwrap_or(0.0);
    println!("\nGROW vs GCNAX: {speedup:.2}x speedup, {traffic:.2}x less DRAM traffic");
    println!("HDN cache hit rate: {:.1}%", 100.0 * hit_rate);
}
