//! Engine registry: construct and run any accelerator model by name, with
//! configuration supplied as plain key-value overrides.
//!
//! This is the single entry point the bench harness, the examples, and
//! future serving layers drive engines through:
//!
//! ```
//! use grow_core::registry::{self, run_named};
//! use grow_core::{prepare, PartitionStrategy};
//! use grow_model::DatasetKey;
//!
//! let workload = DatasetKey::Cora.spec().scaled_to(300).instantiate(7);
//! let prepared = prepare(&workload, PartitionStrategy::None, 4096);
//! let report = run_named("grow", &prepared).unwrap();
//! assert_eq!(report.engine, "GROW");
//!
//! // Key-value overrides, e.g. straight from a CLI or a config file:
//! let engine = registry::engine_from_overrides(
//!     "grow",
//!     &[("hdn_cache_kb", "256"), ("runahead", "4")],
//! )
//! .unwrap();
//! assert!(engine.run(&prepared).total_cycles() > 0);
//! ```

use std::fmt;

use grow_sim::{DramConfig, FaultPlan};

use crate::exec_model::{ExecModelKind, EXEC_MODEL_NAMES};
use crate::schedule::{MultiPeConfig, SchedulerKind, SCHEDULER_NAMES};
use crate::{
    Accelerator, GammaConfig, GammaEngine, GcnaxConfig, GcnaxEngine, GrowConfig, GrowEngine,
    MatRaptorConfig, MatRaptorEngine, PreparedWorkload, ReplacementPolicy, RunReport, ShardRows,
};

/// Canonical lower-case names of the registered engines, in the paper's
/// comparison order.
pub const ENGINE_NAMES: [&str; 4] = ["grow", "gcnax", "matraptor", "gamma"];

/// Errors from engine construction or dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The engine name is not one of [`ENGINE_NAMES`].
    UnknownEngine(String),
    /// The override key is not recognized by the named engine.
    UnknownKey {
        /// Engine that rejected the key.
        engine: &'static str,
        /// The offending key.
        key: String,
    },
    /// The override value did not parse for its key.
    InvalidValue {
        /// Key whose value failed to parse.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A textual override specification was not of the form `key=value`.
    MalformedOverride {
        /// The offending specification string.
        spec: String,
    },
    /// The `scheduler=` override named no registered scheduler (see
    /// [`SCHEDULER_NAMES`]).
    UnknownScheduler(String),
    /// The `exec=` override named no registered execution model (see
    /// [`EXEC_MODEL_NAMES`]).
    UnknownExecModel(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownEngine(name) => {
                write!(
                    f,
                    "unknown engine '{name}' (known: {})",
                    ENGINE_NAMES.join(", ")
                )
            }
            RegistryError::UnknownKey { engine, key } => {
                write!(f, "engine '{engine}' has no configuration key '{key}'")
            }
            RegistryError::InvalidValue { key, value } => {
                write!(f, "invalid value '{value}' for key '{key}'")
            }
            RegistryError::MalformedOverride { spec } => {
                write!(f, "malformed override '{spec}' (expected key=value)")
            }
            RegistryError::UnknownScheduler(name) => {
                write!(
                    f,
                    "unknown scheduler '{name}' (known: {})",
                    SCHEDULER_NAMES.join(", ")
                )
            }
            RegistryError::UnknownExecModel(name) => {
                write!(
                    f,
                    "unknown execution model '{name}' (known: {})",
                    EXEC_MODEL_NAMES.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {}

fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, RegistryError> {
    value.parse().map_err(|_| RegistryError::InvalidValue {
        key: key.to_string(),
        value: value.to_string(),
    })
}

/// Applies the DRAM keys shared by every engine; returns `true` if `key`
/// was one of them.
fn apply_dram_key(dram: &mut DramConfig, key: &str, value: &str) -> Result<bool, RegistryError> {
    match key {
        "dram_gbps" => dram.bytes_per_cycle = parse(key, value)?,
        "dram_latency_cycles" => dram.latency_cycles = parse(key, value)?,
        "dram_request_overhead_cycles" => dram.request_overhead_cycles = parse(key, value)?,
        _ => return Ok(false),
    }
    Ok(true)
}

/// Applies the multi-PE keys shared by every engine (`pes=N`,
/// `scheduler=rr|lpt|ws|ca`, `exec=post_hoc|e2e`, and the banked-memory
/// topology `channels=N` / `banks=N`); returns `true` if `key` was one of
/// them.
fn apply_schedule_key(
    cfg: &mut MultiPeConfig,
    key: &str,
    value: &str,
) -> Result<bool, RegistryError> {
    let positive = |key: &str, value: &str| -> Result<usize, RegistryError> {
        let n: usize = parse(key, value)?;
        if n == 0 {
            return Err(RegistryError::InvalidValue {
                key: key.to_string(),
                value: value.to_string(),
            });
        }
        Ok(n)
    };
    match key {
        "pes" => cfg.pes = positive(key, value)?,
        "channels" => cfg.topology.channels = positive(key, value)?,
        "banks" => cfg.topology.banks = positive(key, value)?,
        "scheduler" => {
            cfg.scheduler = SchedulerKind::parse(value)
                .ok_or_else(|| RegistryError::UnknownScheduler(value.to_string()))?;
        }
        "exec" => {
            cfg.exec = ExecModelKind::parse(value)
                .ok_or_else(|| RegistryError::UnknownExecModel(value.to_string()))?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

/// Applies the `shard_rows=off|auto|N` key shared by every engine (the
/// plan-pass sharding knob is engine-uniform since the [`crate::plan`]
/// port); returns `true` if `key` was it.
fn apply_shard_key(shard: &mut ShardRows, key: &str, value: &str) -> Result<bool, RegistryError> {
    if key != "shard_rows" {
        return Ok(false);
    }
    *shard = if value.eq_ignore_ascii_case("auto") {
        ShardRows::Auto
    } else if value.eq_ignore_ascii_case("off") {
        ShardRows::Off
    } else {
        ShardRows::from(parse::<usize>(key, value)?)
    };
    Ok(true)
}

/// Applies the `fault=off|spec[+spec..]` deterministic fault-injection
/// key shared by every engine (spec grammar:
/// `site:action[:nth[:attempts]]`, see [`grow_sim::fault::FaultPlan`]);
/// returns `true` if `key` was it.
fn apply_fault_key(fault: &mut FaultPlan, key: &str, value: &str) -> Result<bool, RegistryError> {
    if key != "fault" {
        return Ok(false);
    }
    *fault = FaultPlan::parse(value).map_err(|_| RegistryError::InvalidValue {
        key: key.to_string(),
        value: value.to_string(),
    })?;
    Ok(true)
}

fn grow_from(overrides: &[(&str, &str)]) -> Result<GrowEngine, RegistryError> {
    let mut cfg = GrowConfig::default();
    for &(key, value) in overrides {
        if apply_dram_key(&mut cfg.dram, key, value)?
            || apply_schedule_key(&mut cfg.multi_pe, key, value)?
            || apply_shard_key(&mut cfg.shard_rows, key, value)?
            || apply_fault_key(&mut cfg.fault, key, value)?
        {
            continue;
        }
        match key {
            "mac_lanes" => cfg.mac_lanes = parse(key, value)?,
            "hdn_cache_kb" => cfg.hdn_cache_bytes = parse::<u64>(key, value)? * 1024,
            "hdn_id_entries" => cfg.hdn_id_entries = parse(key, value)?,
            "ibuf_sparse_kb" => cfg.ibuf_sparse_bytes = parse::<u64>(key, value)? * 1024,
            "obuf_kb" => cfg.obuf_bytes = parse::<u64>(key, value)? * 1024,
            "runahead" => cfg.runahead = parse(key, value)?,
            "ldn_entries" => cfg.ldn_entries = parse(key, value)?,
            "lhs_id_entries" => cfg.lhs_id_entries = parse(key, value)?,
            "hdn_caching" => cfg.hdn_caching = parse(key, value)?,
            "replacement" => {
                cfg.replacement = match value.to_ascii_lowercase().as_str() {
                    "pinned" => ReplacementPolicy::Pinned,
                    "lru" => ReplacementPolicy::Lru,
                    _ => {
                        return Err(RegistryError::InvalidValue {
                            key: key.to_string(),
                            value: value.to_string(),
                        })
                    }
                }
            }
            _ => {
                return Err(RegistryError::UnknownKey {
                    engine: "grow",
                    key: key.to_string(),
                })
            }
        }
    }
    Ok(GrowEngine::new(cfg))
}

fn gcnax_from(overrides: &[(&str, &str)]) -> Result<GcnaxEngine, RegistryError> {
    let mut cfg = GcnaxConfig::default();
    for &(key, value) in overrides {
        if apply_dram_key(&mut cfg.dram, key, value)?
            || apply_schedule_key(&mut cfg.multi_pe, key, value)?
            || apply_shard_key(&mut cfg.shard_rows, key, value)?
            || apply_fault_key(&mut cfg.fault, key, value)?
        {
            continue;
        }
        match key {
            "mac_lanes" => cfg.mac_lanes = parse(key, value)?,
            "tile_rows" => cfg.tile_rows = parse(key, value)?,
            "tile_cols" => cfg.tile_cols = parse(key, value)?,
            "dense_buffer_kb" => cfg.dense_buffer_bytes = parse::<u64>(key, value)? * 1024,
            "tile_fetch_depth" => cfg.tile_fetch_depth = parse(key, value)?,
            _ => {
                return Err(RegistryError::UnknownKey {
                    engine: "gcnax",
                    key: key.to_string(),
                })
            }
        }
    }
    Ok(GcnaxEngine::new(cfg))
}

fn matraptor_from(overrides: &[(&str, &str)]) -> Result<MatRaptorEngine, RegistryError> {
    let mut cfg = MatRaptorConfig::default();
    for &(key, value) in overrides {
        if apply_dram_key(&mut cfg.dram, key, value)?
            || apply_schedule_key(&mut cfg.multi_pe, key, value)?
            || apply_shard_key(&mut cfg.shard_rows, key, value)?
            || apply_fault_key(&mut cfg.fault, key, value)?
        {
            continue;
        }
        match key {
            "mac_lanes" => cfg.mac_lanes = parse(key, value)?,
            "merge_factor" => cfg.merge_factor = parse(key, value)?,
            _ => {
                return Err(RegistryError::UnknownKey {
                    engine: "matraptor",
                    key: key.to_string(),
                })
            }
        }
    }
    Ok(MatRaptorEngine::new(cfg))
}

fn gamma_from(overrides: &[(&str, &str)]) -> Result<GammaEngine, RegistryError> {
    let mut cfg = GammaConfig::default();
    for &(key, value) in overrides {
        if apply_dram_key(&mut cfg.dram, key, value)?
            || apply_schedule_key(&mut cfg.multi_pe, key, value)?
            || apply_shard_key(&mut cfg.shard_rows, key, value)?
            || apply_fault_key(&mut cfg.fault, key, value)?
        {
            continue;
        }
        match key {
            "mac_lanes" => cfg.mac_lanes = parse(key, value)?,
            "fiber_cache_kb" => cfg.fiber_cache_bytes = parse::<u64>(key, value)? * 1024,
            "merge_factor" => cfg.merge_factor = parse(key, value)?,
            _ => {
                return Err(RegistryError::UnknownKey {
                    engine: "gamma",
                    key: key.to_string(),
                })
            }
        }
    }
    Ok(GammaEngine::new(cfg))
}

/// Resolves `name` (case-insensitively) to its canonical [`ENGINE_NAMES`]
/// entry — the stable spelling job keys and caches should be built on.
///
/// # Errors
///
/// Returns [`RegistryError::UnknownEngine`] for unknown names.
pub fn canonical_name(name: &str) -> Result<&'static str, RegistryError> {
    ENGINE_NAMES
        .iter()
        .copied()
        .find(|n| n.eq_ignore_ascii_case(name))
        .ok_or_else(|| RegistryError::UnknownEngine(name.to_string()))
}

/// Splits a textual `key=value` override into its parts, trimming
/// whitespace around both — the form CLI flags, config files, and
/// `grow_serve` job definitions carry overrides in.
///
/// # Errors
///
/// Returns [`RegistryError::MalformedOverride`] when `spec` has no `=`,
/// or an empty key or value.
pub fn parse_override(spec: &str) -> Result<(String, String), RegistryError> {
    match spec.split_once('=') {
        Some((key, value)) if !key.trim().is_empty() && !value.trim().is_empty() => {
            Ok((key.trim().to_string(), value.trim().to_string()))
        }
        _ => Err(RegistryError::MalformedOverride {
            spec: spec.to_string(),
        }),
    }
}

/// Parses a list of `key=value` specifications (see [`parse_override`]).
///
/// # Errors
///
/// Returns the first [`RegistryError::MalformedOverride`] encountered.
pub fn parse_overrides<S: AsRef<str>>(specs: &[S]) -> Result<Vec<(String, String)>, RegistryError> {
    specs.iter().map(|s| parse_override(s.as_ref())).collect()
}

/// Builds an engine by (case-insensitive) name with its default
/// configuration modified by `overrides`.
///
/// # Errors
///
/// Returns [`RegistryError`] for unknown names, unknown keys, or values
/// that fail to parse.
pub fn engine_from_overrides(
    name: &str,
    overrides: &[(&str, &str)],
) -> Result<Box<dyn Accelerator>, RegistryError> {
    match name.to_ascii_lowercase().as_str() {
        "grow" => Ok(Box::new(grow_from(overrides)?)),
        "gcnax" => Ok(Box::new(gcnax_from(overrides)?)),
        "matraptor" => Ok(Box::new(matraptor_from(overrides)?)),
        "gamma" => Ok(Box::new(gamma_from(overrides)?)),
        _ => Err(RegistryError::UnknownEngine(name.to_string())),
    }
}

/// Builds a default-configured engine by (case-insensitive) name.
///
/// # Errors
///
/// Returns [`RegistryError::UnknownEngine`] for unknown names.
pub fn engine_by_name(name: &str) -> Result<Box<dyn Accelerator>, RegistryError> {
    engine_from_overrides(name, &[])
}

/// Runs the named engine (default configuration) on a prepared workload.
///
/// # Errors
///
/// Returns [`RegistryError::UnknownEngine`] for unknown names.
pub fn run_named(name: &str, workload: &PreparedWorkload) -> Result<RunReport, RegistryError> {
    Ok(engine_by_name(name)?.run(workload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, PartitionStrategy};
    use grow_model::DatasetKey;

    fn prepared() -> PreparedWorkload {
        let w = DatasetKey::Pubmed.spec().scaled_to(400).instantiate(3);
        prepare(&w, PartitionStrategy::None, 4096)
    }

    #[test]
    fn all_names_resolve_and_run() {
        let p = prepared();
        for name in ENGINE_NAMES {
            let report = run_named(name, &p).unwrap();
            assert!(report.total_cycles() > 0, "{name}");
        }
    }

    #[test]
    fn names_are_case_insensitive() {
        assert_eq!(engine_by_name("GROW").unwrap().name(), "GROW");
        assert_eq!(engine_by_name("MatRaptor").unwrap().name(), "MatRaptor");
    }

    #[test]
    fn unknown_engine_is_reported() {
        let err = engine_by_name("tpu").err().expect("unknown engine");
        assert_eq!(err, RegistryError::UnknownEngine("tpu".into()));
        assert!(err.to_string().contains("grow"));
    }

    #[test]
    fn overrides_change_behavior() {
        let p = prepared();
        let slow = engine_from_overrides("grow", &[("dram_gbps", "8")])
            .unwrap()
            .run(&p);
        let fast = engine_from_overrides("grow", &[("dram_gbps", "256")])
            .unwrap()
            .run(&p);
        assert!(slow.total_cycles() > fast.total_cycles());
        assert_eq!(slow.mac_ops(), fast.mac_ops());
    }

    #[test]
    fn overrides_match_typed_config() {
        let p = prepared();
        let via_registry = engine_from_overrides(
            "grow",
            &[
                ("hdn_cache_kb", "64"),
                ("runahead", "4"),
                ("replacement", "lru"),
            ],
        )
        .unwrap()
        .run(&p);
        let typed = GrowEngine::new(GrowConfig {
            hdn_cache_bytes: 64 * 1024,
            runahead: 4,
            replacement: ReplacementPolicy::Lru,
            ..GrowConfig::default()
        })
        .run(&p);
        assert_eq!(via_registry, typed);
    }

    #[test]
    fn unknown_key_and_bad_value_are_reported() {
        assert_eq!(
            engine_from_overrides("gcnax", &[("runahead", "4")])
                .err()
                .expect("must fail"),
            RegistryError::UnknownKey {
                engine: "gcnax",
                key: "runahead".into()
            }
        );
        assert_eq!(
            engine_from_overrides("grow", &[("runahead", "many")])
                .err()
                .expect("must fail"),
            RegistryError::InvalidValue {
                key: "runahead".into(),
                value: "many".into()
            }
        );
        assert_eq!(
            engine_from_overrides("grow", &[("replacement", "fifo")])
                .err()
                .expect("must fail"),
            RegistryError::InvalidValue {
                key: "replacement".into(),
                value: "fifo".into()
            }
        );
    }

    #[test]
    fn canonical_name_normalizes_case() {
        assert_eq!(canonical_name("GROW").unwrap(), "grow");
        assert_eq!(canonical_name("MatRaptor").unwrap(), "matraptor");
        assert_eq!(
            canonical_name("npu"),
            Err(RegistryError::UnknownEngine("npu".into()))
        );
    }

    #[test]
    fn parse_override_splits_and_trims() {
        assert_eq!(
            parse_override("runahead=4").unwrap(),
            ("runahead".into(), "4".into())
        );
        assert_eq!(
            parse_override(" hdn_cache_kb = 256 ").unwrap(),
            ("hdn_cache_kb".into(), "256".into())
        );
        // Values may themselves contain '=' (split at the first one).
        assert_eq!(parse_override("k=a=b").unwrap(), ("k".into(), "a=b".into()));
        for bad in ["runahead", "=4", "runahead=", " = ", ""] {
            assert_eq!(
                parse_override(bad),
                Err(RegistryError::MalformedOverride { spec: bad.into() }),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn parse_overrides_reports_first_malformed() {
        let specs = ["mac_lanes=32".to_string(), "oops".to_string()];
        assert_eq!(
            parse_overrides(&specs),
            Err(RegistryError::MalformedOverride {
                spec: "oops".into()
            })
        );
        let good = ["a=1", "b=2"];
        assert_eq!(parse_overrides(&good).unwrap().len(), 2);
    }

    #[test]
    fn every_engine_accepts_shared_dram_keys() {
        for name in ENGINE_NAMES {
            assert!(
                engine_from_overrides(name, &[("dram_gbps", "64"), ("mac_lanes", "32")]).is_ok(),
                "{name}"
            );
        }
    }

    #[test]
    fn every_engine_accepts_shared_schedule_keys() {
        let p = prepared();
        for name in ENGINE_NAMES {
            for scheduler in crate::schedule::SCHEDULER_NAMES {
                let report = engine_from_overrides(name, &[("scheduler", scheduler), ("pes", "4")])
                    .unwrap_or_else(|e| panic!("{name}/{scheduler}: {e}"))
                    .run(&p);
                let summary = report.multi_pe.expect("summary attached");
                assert_eq!(summary.scheduler, scheduler);
                assert_eq!(summary.pes, 4);
                assert_eq!(summary.per_pe_busy.len(), 4);
            }
        }
    }

    #[test]
    fn scheduler_and_pes_overrides_are_validated() {
        assert_eq!(
            engine_from_overrides("grow", &[("scheduler", "bogus")])
                .err()
                .expect("must fail"),
            RegistryError::UnknownScheduler("bogus".into())
        );
        let message = RegistryError::UnknownScheduler("bogus".into()).to_string();
        for name in crate::schedule::SCHEDULER_NAMES {
            assert!(message.contains(name), "{message}");
        }
        for bad_pes in ["0", "-3", "many"] {
            assert_eq!(
                engine_from_overrides("gamma", &[("pes", bad_pes)])
                    .err()
                    .expect("must fail"),
                RegistryError::InvalidValue {
                    key: "pes".into(),
                    value: bad_pes.into()
                },
                "{bad_pes}"
            );
        }
    }

    #[test]
    fn every_engine_accepts_banked_topology_keys() {
        let p = prepared();
        for name in ENGINE_NAMES {
            let report = engine_from_overrides(
                name,
                &[
                    ("exec", "e2e"),
                    ("pes", "4"),
                    ("channels", "4"),
                    ("banks", "8"),
                ],
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .run(&p);
            assert!(report.multi_pe_breakdown().is_some(), "{name}");
        }
    }

    #[test]
    fn banked_topology_overrides_are_validated() {
        for key in ["channels", "banks"] {
            for bad in ["0", "-3", "many"] {
                assert_eq!(
                    engine_from_overrides("grow", &[(key, bad)])
                        .err()
                        .expect("must fail"),
                    RegistryError::InvalidValue {
                        key: key.into(),
                        value: bad.into()
                    },
                    "{key}={bad}"
                );
            }
        }
    }

    #[test]
    fn scheduler_override_matches_typed_config() {
        let p = prepared();
        let via_registry = engine_from_overrides("grow", &[("scheduler", "ws"), ("pes", "8")])
            .unwrap()
            .run(&p);
        let typed = GrowEngine::new(GrowConfig {
            multi_pe: MultiPeConfig {
                pes: 8,
                scheduler: SchedulerKind::WorkStealing,
                ..MultiPeConfig::default()
            },
            ..GrowConfig::default()
        })
        .run(&p);
        assert_eq!(via_registry, typed);
    }

    #[test]
    fn exec_override_selects_the_execution_model() {
        let p = prepared();
        for name in ENGINE_NAMES {
            let post_hoc = engine_from_overrides(name, &[("exec", "post_hoc")])
                .unwrap()
                .run(&p);
            assert_eq!(post_hoc.exec, "post_hoc");
            let e2e = engine_from_overrides(name, &[("exec", "e2e"), ("pes", "4")])
                .unwrap()
                .run(&p);
            assert_eq!(e2e.exec, "e2e", "{name}");
            assert!(e2e.multi_pe_breakdown().is_some(), "{name}");
            assert!(post_hoc.multi_pe_breakdown().is_none(), "{name}");
        }
        assert_eq!(
            engine_from_overrides("grow", &[("exec", "sideways")])
                .err()
                .expect("must fail"),
            RegistryError::UnknownExecModel("sideways".into())
        );
        let message = RegistryError::UnknownExecModel("sideways".into()).to_string();
        for name in crate::exec_model::EXEC_MODEL_NAMES {
            assert!(message.contains(name), "{message}");
        }
    }

    #[test]
    fn shard_rows_accepts_auto_and_integers() {
        let p = prepared();
        for name in ENGINE_NAMES {
            let auto = engine_from_overrides(name, &[("shard_rows", "auto")])
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .run(&p);
            let fixed = engine_from_overrides(name, &[("shard_rows", "64")])
                .unwrap()
                .run(&p);
            let off = engine_from_overrides(name, &[("shard_rows", "0")])
                .unwrap()
                .run(&p);
            let off_word = engine_from_overrides(name, &[("shard_rows", "off")])
                .unwrap()
                .run(&p);
            // Sharding is a throughput knob: all four report identically.
            assert_eq!(auto, fixed, "{name}");
            assert_eq!(auto, off, "{name}");
            assert_eq!(auto, off_word, "{name}");
            assert_eq!(
                engine_from_overrides(name, &[("shard_rows", "many")])
                    .err()
                    .expect("must fail"),
                RegistryError::InvalidValue {
                    key: "shard_rows".into(),
                    value: "many".into()
                },
                "{name}"
            );
        }
    }
}
