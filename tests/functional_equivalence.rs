//! Functional correctness across the stack: the sparse kernels, the two
//! GCN execution orders, the normalized adjacency, and the MAC-count
//! analysis must all agree with each other and with the timing models.

use grow::graph::normalized_adjacency;
use grow::model::{reference, DatasetKey};
use grow::sparse::{analysis, ops, CsrMatrix, RowMajorSparse};

#[test]
fn execution_orders_agree_on_real_workload_shapes() {
    // Section II-B: (A*X)*W == A*(X*W) numerically; Figure 2 is only about
    // operation counts.
    let w = DatasetKey::Cora.spec().scaled_to(150).instantiate(5);
    let a = normalized_adjacency(&w.graph);
    let x = w.layers[0].x.materialize(9);
    let weights = reference::random_weights(&w, 9);
    let order_a = ops::gcn_layer_a_xw(&a, &x, &weights[0]).expect("shapes");
    let order_b = ops::gcn_layer_ax_w(&a, &x, &weights[0]).expect("shapes");
    assert!(order_a.approx_eq(&order_b, 1e-9));
}

#[test]
fn timing_model_mac_count_matches_analysis() {
    // The engines' reported MACs must equal the Figure 2 analysis count
    // for the A*(X*W) order.
    use grow::accel::{prepare, Accelerator, GrowEngine, PartitionStrategy};
    let w = DatasetKey::Citeseer.spec().scaled_to(400).instantiate(6);
    let prepared = prepare(&w, PartitionStrategy::None, 4096);
    let report = GrowEngine::default().run(&prepared);
    let expected: u64 = prepared
        .layers
        .iter()
        .map(|l| analysis::gcn_mac_counts(&prepared.adjacency, &l.x.view(), l.f_out).a_xw)
        .sum();
    assert_eq!(report.mac_ops(), expected);
}

#[test]
fn normalized_adjacency_keeps_feature_scale() {
    // Section II-A: normalization prevents features from changing scale.
    // Individual row sums of D^{-1/2}(A+I)D^{-1/2} may slightly exceed 1,
    // but the spectral radius is <= 1, so repeated aggregation of an
    // all-ones vector must stay bounded instead of growing per hop.
    // The iterate converges to the Perron vector (entries ~ sqrt(deg+1)),
    // so the right check is that the magnitude stops growing: ten more
    // hops must not increase the max (spectral radius <= 1), rather than
    // any fixed per-entry bound.
    let w = DatasetKey::Pubmed.spec().scaled_to(300).instantiate(8);
    let a = normalized_adjacency(&w.graph);
    let mut x = grow::sparse::DenseMatrix::from_fn(a.cols(), 1, |_, _| 1.0);
    let max_of = |m: &grow::sparse::DenseMatrix| {
        m.as_slice().iter().fold(0.0f64, |acc, &v| acc.max(v.abs()))
    };
    for _ in 0..10 {
        x = ops::spmm(&a, &x).expect("shapes");
    }
    let after_10 = max_of(&x);
    for _ in 0..10 {
        x = ops::spmm(&a, &x).expect("shapes");
    }
    let after_20 = max_of(&x);
    assert!(
        after_20 <= after_10 * 1.01,
        "aggregation kept growing: {after_10} -> {after_20}"
    );
    assert!(
        x.as_slice().iter().all(|&v| v >= 0.0),
        "values stay non-negative"
    );
}

#[test]
fn sparse_view_nnz_consistent_with_materialized_values() {
    let w = DatasetKey::Flickr.spec().scaled_to(600).instantiate(3);
    for layer in &w.layers {
        let view: RowMajorSparse<'_> = layer.x.view();
        let materialized: CsrMatrix = layer.x.materialize(1);
        assert_eq!(view.nnz(), materialized.nnz());
        assert_eq!(view.rows(), materialized.rows());
    }
}

#[test]
fn two_layer_functional_pipeline_is_finite() {
    let w = DatasetKey::Cora.spec().scaled_to(200).instantiate(4);
    let weights = reference::random_weights(&w, 11);
    let out = reference::run_gcn(&w, &weights, 11).expect("shapes");
    assert!(out.as_slice().iter().all(|v| v.is_finite()));
    assert_eq!(out.shape(), (200, w.spec.feature_dims[2]));
}
