use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Graph;

/// Specification of a community-structured power-law graph.
///
/// This is the generator used to stand in for the paper's SNAP/OGB/PyG
/// datasets (DESIGN.md §3). It plants `communities` node clusters, draws a
/// Zipf-like per-node weight sequence inside each cluster (so every cluster
/// has its own high-degree hubs, which is what GROW's *per-cluster* HDN
/// list exploits — Section V-C), and wires edges by weighted sampling:
/// a fraction `intra_fraction` of edge endpoints stay inside the source
/// community, the rest go anywhere. Finally a fraction `shuffle_fraction`
/// of node IDs is randomly permuted so the community structure is *not*
/// visible in the node ordering and must be re-discovered by graph
/// partitioning (Figure 13: partitioning is pure relabeling).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityGraphSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Target average degree (directed edges per node, Table I convention).
    pub avg_degree: f64,
    /// Number of planted communities.
    pub communities: usize,
    /// Fraction of edge endpoints kept inside the source community
    /// (`0.0..=1.0`). Real social graphs sit around `0.6..0.9`.
    pub intra_fraction: f64,
    /// Power-law exponent `gamma` of the degree distribution (typically
    /// `2.1..3.0`; Figure 11 of the paper shows Reddit's heavy tail).
    pub power_law_exponent: f64,
    /// Fraction of node IDs shuffled after generation (`0.0` keeps the
    /// community-sorted ordering — real datasets such as Reddit ship with
    /// locality-correlated orderings; `1.0` destroys ordering locality
    /// entirely).
    pub shuffle_fraction: f64,
}

/// A generated graph together with its planted ground truth, for tests and
/// partitioner-quality evaluation.
#[derive(Debug, Clone)]
pub struct GeneratedGraph {
    /// The generated graph (node IDs already shuffled per the spec).
    pub graph: Graph,
    /// Planted community of each node, indexed by final node ID.
    pub community: Vec<u32>,
}

impl CommunityGraphSpec {
    /// Generates the graph with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero nodes/communities, fractions
    /// outside `[0, 1]`, exponent `<= 1`).
    pub fn generate(&self, seed: u64) -> Graph {
        self.generate_detailed(seed).graph
    }

    /// Like [`CommunityGraphSpec::generate`] but also returns the planted
    /// community assignment.
    pub fn generate_detailed(&self, seed: u64) -> GeneratedGraph {
        assert!(self.nodes > 0, "graph must have nodes");
        assert!(self.communities > 0 && self.communities <= self.nodes);
        assert!((0.0..=1.0).contains(&self.intra_fraction));
        assert!((0.0..=1.0).contains(&self.shuffle_fraction));
        assert!(
            self.power_law_exponent > 1.0,
            "power-law exponent must exceed 1"
        );

        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.nodes;
        let k = self.communities;
        let target_undirected = ((n as f64 * self.avg_degree) / 2.0).round() as usize;

        // Community membership: contiguous blocks (pre-shuffle node IDs are
        // community-sorted; the shuffle below hides this).
        let bounds: Vec<usize> = (0..=k).map(|c| c * n / k).collect();
        let mut community = vec![0u32; n];
        for c in 0..k {
            community[bounds[c]..bounds[c + 1]].fill(c as u32);
        }

        // Zipf-like weights, restarting the rank inside each community so
        // every community has hubs. Capped so expected degrees stay
        // realizable (Chung-Lu style), then used for weighted endpoint
        // sampling via prefix sums.
        let alpha = 1.0 / (self.power_law_exponent - 1.0);
        let mut weights = vec![0.0f64; n];
        for c in 0..k {
            for (rank, node) in (bounds[c]..bounds[c + 1]).enumerate() {
                weights[node] = ((rank + 1) as f64).powf(-alpha);
            }
        }
        // Cap: expected degree of a node is ~ 2 * m * w / W. Limit hubs to
        // the smaller of 40x the average degree and ~35% of their community
        // (so intra-community sampling does not saturate).
        let min_comm = (1..=k)
            .map(|c| bounds[c] - bounds[c - 1])
            .min()
            .unwrap_or(n);
        let cap_degree = (40.0 * self.avg_degree)
            .min(0.35 * min_comm as f64 / self.intra_fraction.max(0.5))
            .max(self.avg_degree.max(2.0));
        for _ in 0..4 {
            let total: f64 = weights.iter().sum();
            let scale = 2.0 * target_undirected as f64 / total;
            let cap_w = cap_degree / scale;
            let mut changed = false;
            for w in &mut weights {
                if *w > cap_w {
                    *w = cap_w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Prefix sums: global and per-community.
        let global_prefix = prefix_sums(&weights);
        let comm_prefix: Vec<Vec<f64>> = (0..k)
            .map(|c| prefix_sums(&weights[bounds[c]..bounds[c + 1]]))
            .collect();

        // Sample edges with dedup top-up rounds.
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(target_undirected + 16);
        let mut rounds = 0;
        while edges.len() < target_undirected && rounds < 8 {
            let missing = target_undirected - edges.len();
            let batch = (missing as f64 * 1.1) as usize + 8;
            for _ in 0..batch {
                let u = sample_prefix(&global_prefix, &mut rng);
                let v = if rng.random::<f64>() < self.intra_fraction {
                    let c = community[u] as usize;
                    bounds[c] + sample_prefix(&comm_prefix[c], &mut rng)
                } else {
                    sample_prefix(&global_prefix, &mut rng)
                };
                if u != v {
                    edges.push((u.min(v) as u32, u.max(v) as u32));
                }
            }
            edges.sort_unstable();
            edges.dedup();
            rounds += 1;
        }
        edges.truncate(target_undirected);

        // Shuffle a fraction of node IDs (Fisher-Yates over a sampled subset).
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let shuffled = ((n as f64) * self.shuffle_fraction).round() as usize;
        if shuffled > 1 {
            let mut subset: Vec<usize> = sample_indices(n, shuffled, &mut rng);
            subset.sort_unstable();
            // Shuffle the IDs occupying the chosen positions among themselves.
            let mut shuffled_ids: Vec<u32> = subset.iter().map(|&i| perm[i]).collect();
            for i in (1..shuffled_ids.len()).rev() {
                let j = rng.random_range(0..=i);
                shuffled_ids.swap(i, j);
            }
            for (pos, id) in subset.iter().zip(shuffled_ids) {
                perm[*pos] = id;
            }
        }

        let relabeled = edges
            .into_iter()
            .map(|(u, v)| (perm[u as usize], perm[v as usize]));
        let graph = Graph::from_edges(n, relabeled);
        let mut final_community = vec![0u32; n];
        for (old, &new) in perm.iter().enumerate() {
            final_community[new as usize] = community[old];
        }
        GeneratedGraph {
            graph,
            community: final_community,
        }
    }
}

/// Specification of an R-MAT (recursive matrix) graph.
///
/// R-MAT with skewed quadrant probabilities produces power-law-ish graphs;
/// with `a = b = c = d = 0.25` it degenerates to Erdős–Rényi, which is the
/// "non-power-law graph" case discussed in Section VIII of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatGraphSpec {
    /// `log2` of the number of nodes.
    pub scale: u32,
    /// Target average degree.
    pub avg_degree: f64,
    /// Probability of the top-left quadrant (classic value 0.57).
    pub a: f64,
    /// Probability of the top-right quadrant (classic value 0.19).
    pub b: f64,
    /// Probability of the bottom-left quadrant (classic value 0.19).
    pub c: f64,
}

impl RmatGraphSpec {
    /// The classic Graph500 parameterization (a=0.57, b=c=0.19).
    pub fn graph500(scale: u32, avg_degree: f64) -> Self {
        RmatGraphSpec {
            scale,
            avg_degree,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// A uniform (Erdős–Rényi-like) parameterization: no degree skew.
    pub fn uniform(scale: u32, avg_degree: f64) -> Self {
        RmatGraphSpec {
            scale,
            avg_degree,
            a: 0.25,
            b: 0.25,
            c: 0.25,
        }
    }

    /// Generates the graph with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the quadrant probabilities are invalid (`a + b + c > 1`).
    pub fn generate(&self, seed: u64) -> Graph {
        assert!(self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0);
        assert!(
            self.a + self.b + self.c <= 1.0 + 1e-12,
            "quadrant probabilities exceed 1"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1usize << self.scale;
        let target = ((n as f64 * self.avg_degree) / 2.0).round() as usize;
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(target);
        let mut rounds = 0;
        while edges.len() < target && rounds < 8 {
            let missing = target - edges.len();
            for _ in 0..(missing + missing / 8 + 8) {
                let (mut u, mut v) = (0u32, 0u32);
                for _ in 0..self.scale {
                    let r: f64 = rng.random();
                    let (du, dv) = if r < self.a {
                        (0, 0)
                    } else if r < self.a + self.b {
                        (0, 1)
                    } else if r < self.a + self.b + self.c {
                        (1, 0)
                    } else {
                        (1, 1)
                    };
                    u = (u << 1) | du;
                    v = (v << 1) | dv;
                }
                if u != v {
                    edges.push((u.min(v), u.max(v)));
                }
            }
            edges.sort_unstable();
            edges.dedup();
            rounds += 1;
        }
        edges.truncate(target);
        Graph::from_edges(n, edges)
    }
}

fn prefix_sums(weights: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(weights.len() + 1);
    out.push(0.0);
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        out.push(acc);
    }
    out
}

/// Samples an index proportionally to the weights behind `prefix`
/// (binary search over the cumulative sums).
fn sample_prefix(prefix: &[f64], rng: &mut StdRng) -> usize {
    let total = *prefix.last().expect("non-empty prefix");
    let x = rng.random::<f64>() * total;
    // partition_point: first index with prefix[i] > x, minus one.
    prefix
        .partition_point(|&p| p <= x)
        .clamp(1, prefix.len() - 1)
        - 1
}

/// Samples `k` distinct indices from `0..n` (Floyd's algorithm).
fn sample_indices(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    use std::collections::HashSet;
    let mut chosen = HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(nodes: usize, deg: f64) -> CommunityGraphSpec {
        CommunityGraphSpec {
            nodes,
            avg_degree: deg,
            communities: 8,
            intra_fraction: 0.8,
            power_law_exponent: 2.3,
            shuffle_fraction: 1.0,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec(300, 6.0);
        assert_eq!(s.generate(7), s.generate(7));
    }

    #[test]
    fn different_seeds_differ() {
        let s = spec(300, 6.0);
        assert_ne!(s.generate(7), s.generate(8));
    }

    #[test]
    fn average_degree_close_to_target() {
        let g = spec(2000, 10.0).generate(1);
        let d = g.avg_degree();
        assert!((d - 10.0).abs() < 1.5, "avg degree {d} too far from 10");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = spec(2000, 10.0).generate(1);
        let mut degrees: Vec<usize> = (0..g.nodes()).map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs should be far above average for a power-law graph.
        assert!(
            degrees[0] > 5 * 10,
            "max degree {} not hub-like",
            degrees[0]
        );
    }

    #[test]
    fn intra_fraction_keeps_edges_inside_communities() {
        let s = CommunityGraphSpec {
            shuffle_fraction: 0.0,
            ..spec(1000, 8.0)
        };
        let gen = s.generate_detailed(3);
        let mut intra = 0usize;
        let mut total = 0usize;
        for v in 0..gen.graph.nodes() {
            for &u in gen.graph.neighbors(v) {
                total += 1;
                if gen.community[v] == gen.community[u as usize] {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.65, "intra fraction {frac} too low");
    }

    #[test]
    fn shuffle_hides_community_ordering() {
        let base = CommunityGraphSpec {
            shuffle_fraction: 0.0,
            ..spec(1000, 8.0)
        };
        let shuf = CommunityGraphSpec {
            shuffle_fraction: 1.0,
            ..spec(1000, 8.0)
        };
        // With ordering intact, consecutive nodes share communities; after a
        // full shuffle they mostly do not.
        let same_community_runs = |g: &GeneratedGraph| {
            (1..g.community.len())
                .filter(|&i| g.community[i] == g.community[i - 1])
                .count()
        };
        let ordered = same_community_runs(&base.generate_detailed(5));
        let shuffled = same_community_runs(&shuf.generate_detailed(5));
        assert!(ordered > 900, "ordered runs = {ordered}");
        assert!(shuffled < 400, "shuffled runs = {shuffled}");
    }

    #[test]
    fn rmat_generates_power_law_like_graph() {
        let g = RmatGraphSpec::graph500(10, 8.0).generate(9);
        assert_eq!(g.nodes(), 1024);
        let max_deg = (0..g.nodes()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg > 40, "R-MAT hub degree {max_deg} too small");
    }

    #[test]
    fn rmat_uniform_has_flat_degrees() {
        let g = RmatGraphSpec::uniform(10, 8.0).generate(9);
        let max_deg = (0..g.nodes()).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg < 30, "uniform R-MAT hub degree {max_deg} too large");
    }

    #[test]
    fn reproduces_target_edge_count_within_tolerance() {
        let g = spec(5000, 20.0).generate(11);
        let target = 5000 * 20 / 2;
        let got = g.undirected_edges();
        assert!(
            (got as f64) > 0.9 * target as f64 && (got as f64) <= 1.02 * target as f64,
            "edge count {got} vs target {target}"
        );
    }
}
