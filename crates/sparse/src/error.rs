use std::error::Error;
use std::fmt;

/// Error type for matrix construction and kernel shape mismatches.
///
/// Returned by constructors that validate their inputs ([C-VALIDATE]) and by
/// the kernels in [`crate::ops`] when operand shapes are incompatible.
///
/// ```
/// use grow_sparse::{CooMatrix, SparseError};
///
/// let mut coo = CooMatrix::new(2, 2);
/// let err = coo.push(5, 0, 1.0).unwrap_err();
/// assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// An explicit entry was addressed outside the matrix bounds.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// Two operands of a kernel have incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// The operation that was attempted, e.g. `"spmm"`.
        op: &'static str,
    },
    /// Raw CSR/CSC arrays passed to a `from_raw` constructor are inconsistent
    /// (wrong lengths, non-monotonic pointers, or unsorted indices).
    InvalidStructure(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "entry ({row}, {col}) is out of bounds for a {rows}x{cols} matrix"
            ),
            SparseError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::InvalidStructure(msg) => {
                write!(f, "invalid compressed-matrix structure: {msg}")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = SparseError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "spmm",
        };
        let text = err.to_string();
        assert!(text.contains("spmm"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
