//! Randomized-input tests for graph construction, generation, and
//! normalization invariants.
//!
//! (Formerly proptest-based; the offline build has no crates.io access, so
//! cases are drawn from the workspace's own seeded PRNG instead — same
//! properties, deterministic case set.)

use grow_graph::{normalized_adjacency, CommunityGraphSpec, Graph, RmatGraphSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_spec(rng: &mut StdRng) -> (CommunityGraphSpec, u64) {
    (
        CommunityGraphSpec {
            nodes: rng.random_range(50usize..400),
            avg_degree: rng.random_range(2.0f64..14.0),
            communities: rng.random_range(2usize..8),
            intra_fraction: rng.random_range(0.5f64..0.95),
            power_law_exponent: rng.random_range(2.05f64..3.0),
            shuffle_fraction: rng.random_range(0.0f64..1.0),
        },
        rng.random_range(0u64..10_000),
    )
}

const CASES: usize = 24;

#[test]
fn generated_graphs_are_simple_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x61a1);
    for case in 0..CASES {
        let (spec, seed) = random_spec(&mut rng);
        let g = spec.generate(seed);
        assert_eq!(g.nodes(), spec.nodes, "case {case}");
        for v in 0..g.nodes() {
            let row = g.neighbors(v);
            // No self-loops, strictly sorted (implies no duplicates).
            assert!(row.iter().all(|&u| u as usize != v), "case {case} row {v}");
            assert!(row.windows(2).all(|w| w[0] < w[1]), "case {case} row {v}");
            // Symmetry.
            for &u in row {
                assert!(
                    g.neighbors(u as usize).contains(&(v as u32)),
                    "case {case}: edge ({v}, {u}) missing its reverse"
                );
            }
        }
    }
}

#[test]
fn degree_sums_are_consistent() {
    let mut rng = StdRng::seed_from_u64(0x61a2);
    for case in 0..CASES {
        let (spec, seed) = random_spec(&mut rng);
        let g = spec.generate(seed);
        let sum: usize = (0..g.nodes()).map(|v| g.degree(v)).sum();
        assert_eq!(sum, g.directed_edges(), "case {case}");
        assert_eq!(g.directed_edges(), 2 * g.undirected_edges(), "case {case}");
    }
}

#[test]
fn relabeling_is_an_isomorphism() {
    let mut rng = StdRng::seed_from_u64(0x61a3);
    for case in 0..CASES {
        let (spec, seed) = random_spec(&mut rng);
        let g = spec.generate(seed);
        let n = g.nodes();
        // Rotate node IDs by one.
        let perm: Vec<u32> = (0..n as u32).map(|v| (v + 1) % n as u32).collect();
        let r = g.relabel(&perm);
        assert_eq!(r.undirected_edges(), g.undirected_edges(), "case {case}");
        let mut degrees_a: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        let mut degrees_b: Vec<usize> = (0..n).map(|v| r.degree(v)).collect();
        degrees_a.sort_unstable();
        degrees_b.sort_unstable();
        assert_eq!(degrees_a, degrees_b, "case {case}");
    }
}

#[test]
fn normalization_is_symmetric_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x61a4);
    for case in 0..CASES {
        let (spec, seed) = random_spec(&mut rng);
        let g = spec.generate(seed);
        let a = normalized_adjacency(&g);
        assert_eq!(a.nnz(), g.directed_edges() + g.nodes(), "case {case}");
        // Every value is in (0, 1] — each entry is 1/sqrt((d_u+1)(d_v+1)).
        assert!(
            a.values().iter().all(|&v| v > 0.0 && v <= 1.0),
            "case {case}"
        );
        // Symmetric values.
        let t = a.transpose();
        assert!(a.to_dense().approx_eq(&t.to_dense(), 1e-12), "case {case}");
    }
}

#[test]
fn rmat_respects_node_count() {
    let mut rng = StdRng::seed_from_u64(0x61a5);
    for case in 0..CASES {
        let scale = rng.random_range(6u32..11);
        let deg = rng.random_range(2.0f64..10.0);
        let seed = rng.random_range(0u64..1000);
        let g = RmatGraphSpec::graph500(scale, deg).generate(seed);
        assert_eq!(g.nodes(), 1usize << scale, "case {case}");
        assert!(g.undirected_edges() > 0, "case {case}");
    }
}

#[test]
fn from_edges_is_idempotent_under_duplication() {
    let mut rng = StdRng::seed_from_u64(0x61a6);
    for case in 0..CASES {
        let n = rng.random_range(4usize..40);
        let count = rng.random_range(0usize..80);
        let edges: Vec<(u32, u32)> = (0..count)
            .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
            .collect();
        let once = Graph::from_edges(n, edges.iter().copied());
        let doubled = Graph::from_edges(n, edges.iter().chain(edges.iter()).copied());
        assert_eq!(once, doubled, "case {case}");
    }
}
