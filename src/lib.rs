//! # GROW — a row-stationary sparse-dense GEMM accelerator for GCNs
//!
//! A from-scratch Rust reproduction of **GROW** (Hwang et al., HPCA 2023,
//! arXiv:2203.00158): a graph convolutional network inference accelerator
//! built on Gustavson's (row-wise product) algorithm, together with the
//! complete evaluation stack of the paper — cycle-level simulators for
//! GROW and its three baselines (GCNAX, MatRaptor, GAMMA), a METIS-class
//! graph partitioner, synthetic Table I dataset surrogates, and
//! energy/area models.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sparse`] | `grow-sparse` | CSR/CSC/COO/dense formats, reference kernels, workload analyses |
//! | [`graph`] | `grow-graph` | graphs, power-law community generators, GCN normalization |
//! | [`partition`] | `grow-partition` | multilevel + label-propagation partitioning, HDN lists |
//! | [`sim`] | `grow-sim` | DRAM channel, MAC array, HDN/LRU caches, runahead tables |
//! | [`energy`] | `grow-energy` | Horowitz/CACTI-style energy model, Table IV area model |
//! | [`model`] | `grow-model` | Table I dataset registry, feature synthesis, functional GCN |
//! | [`accel`] | `grow-core` | the four accelerator models, preprocessing, multi-PE scheduling + execution models (`exec=post_hoc\|e2e`), experiments |
//! | [`serve`] | `grow-serve` | `SimSession`, the batch simulation service, the async always-on front end, and the on-disk result store |
//!
//! plus [`session`], the single-workload entry point: a [`SimSession`]
//! (`session::SimSession`) instantiates a workload once, memoizes its
//! prepared forms, and dispatches any registered engine by name
//! (`session.run("grow", ..)`) with optional key-value configuration
//! overrides. Engines simulate graph clusters in parallel across threads
//! (deterministically — set `GROW_SERIAL=1` to force the serial path),
//! and the shared `exec=post_hoc|e2e`, `pes=N`, `scheduler=rr|lpt|ws|ca`
//! overrides select how those cluster timelines compose: the default
//! single-PE accounting with a post-hoc multi-PE projection, or the
//! end-to-end multi-PE execution mode where N PEs contend for the shared
//! memory channel inside the run itself (`grow::accel::exec_model`).
//!
//! For fleets of runs, [`serve`] scales the same API to batches:
//! [`serve::JobSpec`]s are pure data (dataset + seed + engine + partition
//! strategy + `key=value` overrides), shared preparation is deduplicated
//! through a keyed session pool, completed reports are cached by job key,
//! and results return in submission order with per-job status — see
//! [`serve::BatchService`] and `examples/batch_serving.rs`. For always-on
//! deployments, [`serve::AsyncService`] accepts submissions at any time
//! behind priority classes and admission control, streams each result on
//! completion, and — with a [`serve::ResultStore`] attached — serves
//! repeated queries from disk across process restarts, bit-identically.
//!
//! # Quickstart
//!
//! ```
//! use grow::accel::{prepare, Accelerator, GcnaxEngine, GrowEngine, PartitionStrategy};
//! use grow::model::DatasetKey;
//!
//! // A small Cora-like workload.
//! let workload = DatasetKey::Cora.spec().scaled_to(500).instantiate(42);
//!
//! // GROW's software preprocessing: partition + relabel + HDN lists.
//! let base = prepare(&workload, PartitionStrategy::None, 4096);
//! let partitioned = prepare(&workload, PartitionStrategy::multilevel_default(), 4096);
//!
//! // Simulate both accelerators.
//! let grow = GrowEngine::default().run(&partitioned);
//! let gcnax = GcnaxEngine::default().run(&base);
//! assert_eq!(grow.mac_ops(), gcnax.mac_ops(), "same work, different movement");
//! assert!(grow.dram_bytes() < gcnax.dram_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod session;

pub use grow_core as accel;
pub use grow_energy as energy;
pub use grow_graph as graph;
pub use grow_model as model;
pub use grow_partition as partition;
pub use grow_serve as serve;
pub use grow_sim as sim;
pub use grow_sparse as sparse;
