//! Architectural design-space exploration with the GROW model: sweep the
//! HDN cache capacity and the runahead degree, and report how cycles,
//! traffic, and estimated area trade off.
//!
//! This reproduces the *kind* of study Sections VII-F/G perform (PE count,
//! runahead degree, bandwidth) and shows how a downstream user would
//! evaluate their own configuration before committing to RTL. The sweep
//! is defined as *data* — a list of `grow_serve::JobSpec`s — and runs as
//! one batch: the workload is instantiated and partitioned once, shared
//! by all 15 configurations, and the simulations fan across threads.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use grow::accel::PartitionStrategy;
use grow::energy::{AreaModel, TECH_SCALE_65_TO_40};
use grow::model::DatasetKey;
use grow::serve::{BatchService, JobSpec};

fn main() {
    let spec = DatasetKey::Flickr.spec().scaled_to(20_000);

    // The sweep, as pure data: the same strings a CLI flag or a config
    // file would carry.
    let points: Vec<(u64, usize)> = [64u64, 128, 256, 512, 1024]
        .into_iter()
        .flat_map(|cache_kb| [1usize, 4, 16].map(|runahead| (cache_kb, runahead)))
        .collect();
    let jobs: Vec<JobSpec> = points
        .iter()
        .map(|&(cache_kb, runahead)| {
            JobSpec::new(spec, 5, "grow")
                .with_strategy(PartitionStrategy::multilevel_default())
                .with_override("hdn_cache_kb", &cache_kb.to_string())
                .with_override("runahead", &runahead.to_string())
                .with_override("ldn_entries", &runahead.to_string())
        })
        .collect();

    let mut service = BatchService::new();
    let results = service.run_batch(&jobs);
    let stats = service.stats();
    println!(
        "batch: {} jobs, {} simulations, {} workload preparation(s)",
        stats.jobs_submitted, stats.simulations_run, stats.preparations_run
    );
    println!(
        "\n{:>10} {:>9} {:>12} {:>12} {:>10} {:>9}",
        "cache", "runahead", "cycles", "DRAM MiB", "hit rate", "mm2@40nm"
    );

    let area_model = AreaModel::default();
    let mut best: Option<(f64, String)> = None;
    for (&(cache_kb, runahead), result) in points.iter().zip(&results) {
        let report = result.report().expect("valid overrides");
        let area = area_model
            .grow_65nm(16, 12.0, 4096, cache_kb as f64, 2.0)
            .scaled(TECH_SCALE_65_TO_40)
            .total();
        let cycles = report.total_cycles();
        let hit = report.aggregation_cache().hit_rate().unwrap_or(0.0);
        println!(
            "{:>8}KB {:>9} {:>12} {:>12.1} {:>9.1}% {:>9.3}",
            cache_kb,
            runahead,
            cycles,
            report.dram_bytes() as f64 / (1 << 20) as f64,
            100.0 * hit,
            area
        );
        // A simple perf/area figure of merit (Section VII-E reports
        // performance per mm2).
        let merit = 1.0 / (cycles as f64 * area);
        let label = format!("{cache_kb} KB cache, {runahead}-way runahead");
        if best.as_ref().is_none_or(|(m, _)| merit > *m) {
            best = Some((merit, label));
        }
    }
    let (_, label) = best.expect("sweep is non-empty");
    println!("\nbest performance/mm2 in this sweep: {label}");
    println!("(the paper's Table III point is 512 KB / 16-way)");
}
