//! Concurrent-serving bench: wall-clock of draining the 18-job mixed
//! fleet (the `chaos` soak's fleet shape) through `AsyncService`, swept
//! across worker-pool sizes {1, 2, 4}. Every pool size is asserted
//! bit-identical to a synchronous `BatchService::run_batch` over the
//! same jobs before its timing is trusted — the pool only changes wall
//! time and completion order, never a report. Run with:
//!
//! ```text
//! cargo bench -p grow-bench --bench serving_throughput -- \
//!     [--quick] [--iters N] [--out DIR] [--baseline results/BENCH_serving.json]
//! ```
//!
//! Results land in `<out>/BENCH_serving.json` with a fixed key order
//! (rows sorted by worker count), the same deterministic-diff protocol
//! as `BENCH_parallel.json`; `--quick` (the CI smoke mode) writes
//! `BENCH_serving_smoke.json` on a smaller graph instead, so a smoke run
//! never clobbers the committed full-scale baseline. Passing
//! `--baseline` reports the one-worker-total speedup against a previous
//! run's JSON.
//!
//! Each timed drain starts from a fresh `BatchService` (no result store,
//! cold result cache), so every iteration pays the full prepare+simulate
//! cost — the thing the worker pool actually parallelizes. On a
//! single-core box the sweep degenerates (the numbers carry no scaling
//! signal) and the artifact is marked `"degenerate_single_core": true`.
//! Setting `GROW_THREADS` above the hardware thread count is rejected up
//! front, exactly as in the parallel-scaling bench.

use std::path::PathBuf;

use grow_bench::{json, timing};
use grow_core::registry::ENGINE_NAMES;
use grow_core::PartitionStrategy;
use grow_model::DatasetKey;
use grow_serve::{AsyncConfig, AsyncService, BatchService, JobSpec, Ticket};

/// The chaos fleet shape: three configurations per registry engine
/// (unpartitioned, multilevel, row-sharded), plus six mixed extras —
/// scheduler/PE variants, config overrides, and two end-to-end jobs.
fn fleet(spec: grow_model::DatasetSpec, seed: u64) -> Vec<JobSpec> {
    let multilevel = PartitionStrategy::multilevel_default();
    let mut jobs: Vec<JobSpec> = Vec::new();
    for name in ENGINE_NAMES {
        for strategy in [PartitionStrategy::None, multilevel] {
            jobs.push(JobSpec::new(spec, seed, name).with_strategy(strategy));
        }
        jobs.push(JobSpec::new(spec, seed, name).with_override("shard_rows", "64"));
    }
    jobs.push(
        JobSpec::new(spec, seed, "grow")
            .with_strategy(multilevel)
            .with_scheduler(grow_core::SchedulerKind::WorkStealing)
            .with_pes(8),
    );
    jobs.push(
        JobSpec::new(spec, seed, "grow")
            .with_strategy(multilevel)
            .with_override("runahead", "8"),
    );
    jobs.push(
        JobSpec::new(spec, seed, "grow")
            .with_strategy(multilevel)
            .with_override("hdn_cache_kb", "64"),
    );
    jobs.push(JobSpec::new(spec, seed, "grow").with_override("exec", "e2e"));
    jobs.push(JobSpec::new(spec, seed, "gcnax").with_override("exec", "e2e"));
    jobs.push(JobSpec::new(spec, seed, "gamma").with_pes(4));
    assert_eq!(jobs.len(), 18, "the serving fleet is 18 jobs");
    jobs
}

/// One cold drain: fresh service, submit the whole fleet, wait every
/// ticket in submission order, shut down. Returns the results.
fn drain(jobs: &[JobSpec], workers: usize) -> Vec<grow_serve::JobResult> {
    let service = AsyncService::start(
        BatchService::new(),
        AsyncConfig {
            queue_capacity: jobs.len().max(1),
            session_capacity: None,
            workers,
        },
    );
    let tickets: Vec<Ticket> = jobs
        .iter()
        .map(|job| service.submit(job.clone()).expect("fleet fits the bound"))
        .collect();
    let results = tickets
        .into_iter()
        .map(|t| t.wait().expect("worker pool alive"))
        .collect();
    drop(service.finish());
    results
}

struct Cell {
    workers: usize,
    min_ms: f64,
    mean_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let mut baseline: Option<PathBuf> = None;
    let mut iters = 10u32;
    let mut quick = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // Cargo appends `--bench` when invoking harness=false benches.
            "--bench" => {}
            "--quick" => {
                quick = true;
                iters = 3;
            }
            "--iters" => iters = it.next().and_then(|v| v.parse().ok()).expect("--iters N"),
            "--out" => out_dir = PathBuf::from(it.next().expect("--out DIR")),
            "--baseline" => baseline = Some(PathBuf::from(it.next().expect("--baseline FILE"))),
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if hw == 1 {
        eprintln!(
            "warning: only 1 hardware thread is available — the worker-pool \
             sweep degenerates and contains no concurrency signal. The \
             output is marked \"degenerate_single_core\": true."
        );
    }
    // Fail fast on an oversubscribed environment, exactly as the
    // parallel-scaling bench does: the committed artifact must never be
    // produced by a thrashing run.
    if let Ok(v) = std::env::var("GROW_THREADS") {
        match v.parse::<usize>() {
            Ok(n) if n > hw => {
                eprintln!(
                    "error: GROW_THREADS={n} exceeds the {hw} available hardware \
                     thread(s); an oversubscribed run does not measure serving \
                     throughput. Unset GROW_THREADS or set it to at most {hw}."
                );
                std::process::exit(2);
            }
            Ok(_) => {}
            Err(_) => {
                eprintln!("error: GROW_THREADS='{v}' is not a positive integer");
                std::process::exit(2);
            }
        }
    }

    let nodes = if quick { 800 } else { 4_000 };
    let spec = DatasetKey::Pubmed.spec().scaled_to(nodes);
    let jobs = fleet(spec, 42);
    let worker_sweep = [1usize, 2, 4];

    // The reference: one synchronous batch over the same jobs. Every
    // async drain must reproduce it bit for bit before it is timed.
    eprintln!("[setup] reference run_batch over {} jobs ...", jobs.len());
    let mut reference_service = BatchService::new();
    let reference = reference_service.run_batch(&jobs);
    let failed = reference.iter().filter(|r| r.outcome.is_err()).count();
    assert_eq!(failed, 0, "the serving fleet must be all-green");

    println!(
        "fleet: {} jobs on pubmed @{nodes} seed 42; {} hardware thread(s); \
         workers sweep {worker_sweep:?}\n",
        jobs.len(),
        hw
    );
    println!(
        "{:>8} {:>12} {:>12} {:>9}  ({iters} iters)",
        "workers", "min ms", "mean ms", "speedup"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &workers in &worker_sweep {
        // The timing is only meaningful if this pool size computes the
        // same thing: every report must match the synchronous batch bit
        // for bit (plan-cache sharing and worker interleaving included).
        let drained = drain(&jobs, workers);
        for (r, reference) in drained.iter().zip(&reference) {
            assert_eq!(
                r.report(),
                reference.report(),
                "workers={workers}: report for job {} ({}) diverged from run_batch",
                reference.index,
                reference.engine
            );
        }
        let timed = timing::sample(iters, || {
            std::hint::black_box(drain(&jobs, workers));
        });
        let one_worker_min = cells.first().map_or(timed.min_ns, |c| c.min_ms * 1e6);
        println!(
            "{workers:>8} {:>12.3} {:>12.3} {:>8.2}x",
            timed.min_ns / 1e6,
            timed.mean_ns / 1e6,
            one_worker_min / timed.min_ns
        );
        cells.push(Cell {
            workers,
            min_ms: timed.min_ns / 1e6,
            mean_ms: timed.mean_ns / 1e6,
        });
    }
    cells.sort_by_key(|c| c.workers);
    let one_worker_min_ms = cells
        .iter()
        .find(|c| c.workers == 1)
        .expect("sweep includes 1")
        .min_ms;
    let peak = cells.last().expect("non-empty sweep");
    let peak_speedup = one_worker_min_ms / peak.min_ms;
    println!(
        "\n1-worker fleet drain {one_worker_min_ms:.3} ms; {}-worker {:.3} ms \
         -> {peak_speedup:.2}x",
        peak.workers, peak.min_ms
    );

    let baseline_total = baseline.as_ref().and_then(|path| {
        let text = std::fs::read_to_string(path)
            .map_err(|e| eprintln!("warning: could not read baseline {}: {e}", path.display()))
            .ok()?;
        extract_number(&text, "one_worker_min_ms")
    });
    if let Some(base_ms) = baseline_total {
        println!(
            "baseline 1-worker drain {base_ms:.3} ms -> speedup {:.2}x",
            base_ms / one_worker_min_ms
        );
    }

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            json::object(&[
                ("workers", json::uint(c.workers as u64)),
                ("min_ms", json::number(c.min_ms)),
                ("mean_ms", json::number(c.mean_ms)),
                (
                    "speedup_vs_one_worker",
                    json::number(one_worker_min_ms / c.min_ms),
                ),
            ])
        })
        .collect();
    let doc = json::object(&[
        (
            "grid",
            json::string(&format!(
                "concurrent-serving: 18-job fleet, pubmed @{nodes} seed 42, \
                 workers sweep"
            )),
        ),
        ("iters", json::uint(iters as u64)),
        ("hw_threads", json::uint(hw as u64)),
        ("degenerate_single_core", json::boolean(hw == 1)),
        (
            "workers",
            json::array(worker_sweep.iter().map(|&w| json::uint(w as u64)).collect()),
        ),
        ("rows", json::array(rows)),
        ("one_worker_min_ms", json::number(one_worker_min_ms)),
        ("peak_min_ms", json::number(peak.min_ms)),
        ("peak_speedup", json::number(peak_speedup)),
        (
            "baseline_one_worker_min_ms",
            baseline_total.map_or_else(|| "null".to_string(), json::number),
        ),
        (
            "speedup_vs_baseline",
            baseline_total.map_or_else(
                || "null".to_string(),
                |b| json::number(b / one_worker_min_ms),
            ),
        ),
    ]);
    // Quick smoke runs get their own file: the tracked BENCH_serving.json
    // holds full-scale numbers only.
    let file = if quick {
        "BENCH_serving_smoke.json"
    } else {
        "BENCH_serving.json"
    };
    if let Err(e) =
        std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(out_dir.join(file), doc))
    {
        eprintln!("warning: could not write {file}: {e}");
    }
}

/// Pulls a top-level numeric field out of a BENCH_serving.json document
/// (the workspace builds offline, so no JSON parser crate; the file format
/// is our own and the field is a bare number).
fn extract_number(text: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\":");
    let start = text.find(&needle)? + needle.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}
