//! The parallel cluster path must be bit-identical to a forced serial run
//! for every engine: cycles, traffic (useful and fetched, per class),
//! cache hit/miss counts, SRAM access counts, and per-cluster profiles.
//!
//! This is the contract that makes the thread fan-out safe to keep on by
//! default: clusters are simulated in isolated contexts and merged in
//! cluster order, so scheduling cannot leak into the results.

use grow::accel::{
    prepare, Accelerator, GammaEngine, GcnaxEngine, GrowConfig, GrowEngine, MatRaptorEngine,
    PartitionStrategy, PreparedWorkload, ReplacementPolicy,
};
use grow::model::DatasetKey;
use grow::sim::exec::{with_mode, with_workers, ExecMode};

/// Worker count forced on the parallel side: oversubscribed relative to
/// small CI machines so threads genuinely interleave.
const WORKERS: usize = 4;

fn multi_cluster_workload() -> PreparedWorkload {
    let w = DatasetKey::Pubmed.spec().scaled_to(4000).instantiate(11);
    let p = prepare(
        &w,
        PartitionStrategy::Multilevel { cluster_nodes: 300 },
        4096,
    );
    assert!(
        p.clusters.len() >= 8,
        "need many clusters: got {}",
        p.clusters.len()
    );
    p
}

#[test]
fn all_four_engines_parallel_equals_serial() {
    let p = multi_cluster_workload();
    let engines: Vec<Box<dyn Accelerator>> = vec![
        Box::new(GrowEngine::default()),
        Box::new(GcnaxEngine::default()),
        Box::new(MatRaptorEngine::default()),
        Box::new(GammaEngine::default()),
    ];
    for engine in engines {
        let parallel = with_workers(WORKERS, || engine.run(&p));
        let serial = with_mode(ExecMode::Serial, || engine.run(&p));
        // RunReport derives PartialEq over every counter it carries —
        // cycles, per-class traffic, cache stats, SRAM accesses, cluster
        // profiles — so this single assert covers the whole report.
        assert_eq!(
            parallel,
            serial,
            "{} diverged under parallel execution",
            engine.name()
        );
    }
}

#[test]
fn grow_variants_parallel_equals_serial() {
    // Exercise the paths with extra per-cluster state: LRU replacement and
    // disabled caching.
    let p = multi_cluster_workload();
    for config in [
        GrowConfig {
            replacement: ReplacementPolicy::Lru,
            ..GrowConfig::default()
        },
        GrowConfig {
            hdn_caching: false,
            ..GrowConfig::default()
        },
        GrowConfig {
            runahead: 1,
            hdn_cache_bytes: 4 * 1024,
            ..GrowConfig::default()
        },
    ] {
        let engine = GrowEngine::new(config);
        let parallel = with_workers(WORKERS, || engine.run(&p));
        let serial = with_mode(ExecMode::Serial, || engine.run(&p));
        assert_eq!(parallel, serial, "config {config:?}");
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Thread scheduling varies between runs; results must not. Force the
    // worker count so this exercises real fan-out even on one core.
    let p = multi_cluster_workload();
    let engine = GrowEngine::default();
    let first = with_workers(WORKERS, || engine.run(&p));
    for _ in 0..4 {
        assert_eq!(with_workers(WORKERS, || engine.run(&p)), first);
    }
}

#[test]
fn cluster_profiles_keep_cluster_order() {
    let p = multi_cluster_workload();
    let engine = GrowEngine::default();
    let parallel = with_workers(WORKERS, || engine.run(&p));
    let serial = with_mode(ExecMode::Serial, || engine.run(&p));
    let pp = parallel.cluster_profiles();
    let sp = serial.cluster_profiles();
    assert_eq!(pp.len(), sp.len());
    assert_eq!(pp, sp, "profiles must merge in cluster order");
    // Both phases of both layers contribute one profile per cluster.
    assert_eq!(pp.len(), 4 * p.clusters.len());
}
