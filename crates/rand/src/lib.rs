//! Self-contained seeded pseudo-random number generation.
//!
//! The build environment has no access to crates.io, so this crate stands
//! in for the tiny slice of the `rand` 0.9 API the workspace uses: a
//! seedable generator ([`rngs::StdRng`]), uniform floats via
//! [`Rng::random`], and integer ranges via [`Rng::random_range`]. The
//! library target is named `rand` so call sites (`use rand::rngs::StdRng`)
//! are source-compatible with the real crate; swapping the real `rand`
//! back in later is a one-line manifest change per crate.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed on every platform, which is what the reproduction's
//! seeded experiments require. Statistical quality is more than adequate
//! for synthetic-graph generation; none of this is cryptographic.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.random();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.random_range(10usize..20);
//! assert!((10..20).contains(&k));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait StandardUniform: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniformly distributed element of the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The generator interface: raw 64-bit output plus typed sampling helpers.
pub trait Rng {
    /// Produces the next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniformly distributed value of type `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one uniformly distributed element of `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding. Small (32 bytes of state), fast, and deterministic across
    /// platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to fill xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.random::<f64>()).collect();
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.random_range(5u32..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn inclusive_zero_to_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.random_range(0usize..=0), 0);
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }
}
